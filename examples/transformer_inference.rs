//! Transformer-base encoder inference with quantized weights — the paper's
//! NMT motivation (Section II-C/II-D) at full layer scale.
//!
//! Builds a 6-layer Transformer-base encoder twice from the same seed (fp32
//! and 2-bit BiQGEMM backends), runs an 18-token sentence through both, and
//! reports latency plus output fidelity.
//!
//! Run with: `cargo run --release --example transformer_inference`

use biqgemm_repro::biq_matrix::MatrixRng;
use biqgemm_repro::biq_nn::configs::TransformerConfig;
use biqgemm_repro::biq_nn::linear::QuantMethod;
use biqgemm_repro::biq_nn::transformer::{Encoder, LayerBackend};
use biqgemm_repro::biq_quant::error_metrics::cosine_similarity;
use biqgemm_repro::biqgemm_core::{BiqConfig, BiqGemm};
use std::time::Instant;

fn main() {
    let cfg = TransformerConfig::BASE;
    let seq = 18; // average sub-words per sentence (paper Table II)
    let depth = 2; // two of the six layers keep the example snappy
    println!(
        "Transformer-base encoder: d_model={}, d_ff={}, heads={}, layers={depth}, seq={seq}",
        cfg.d_model, cfg.d_ff, cfg.heads
    );
    let x = MatrixRng::seed_from(0x70c).gaussian_col(cfg.d_model, seq, 0.0, 1.0);

    let build = |backend: LayerBackend| {
        let mut g = MatrixRng::seed_from(0xe4c0de);
        Encoder::random(&mut g, depth, cfg.d_model, cfg.d_ff, cfg.heads, backend)
    };

    println!("building fp32 encoder...");
    let fp = build(LayerBackend::Fp32 { parallel: false });
    println!("building + quantizing 2-bit BiQGEMM encoder...");
    let biq = build(LayerBackend::Biq {
        bits: 2,
        method: QuantMethod::Greedy,
        cfg: BiqConfig::default(),
        parallel: false,
    });

    let t0 = Instant::now();
    let y_fp = fp.forward(&x);
    let t_fp = t0.elapsed();
    let t0 = Instant::now();
    let y_biq = biq.forward(&x);
    let t_biq = t0.elapsed();

    println!("fp32 encoder forward:    {:>8.2} ms", t_fp.as_secs_f64() * 1e3);
    println!("BiQGEMM 2-bit forward:   {:>8.2} ms", t_biq.as_secs_f64() * 1e3);
    println!(
        "speedup: {:.2}x   output cosine similarity: {:.4}",
        t_fp.as_secs_f64() / t_biq.as_secs_f64(),
        cosine_similarity(y_biq.as_slice(), y_fp.as_slice())
    );

    // Per-matrix view: one d_ff × d_model feed-forward weight at batch=seq.
    let w = MatrixRng::seed_from(0xff).gaussian(cfg.d_ff, cfg.d_model, 0.0, 0.04);
    let q = biqgemm_repro::biq_quant::greedy_quantize_matrix_rowwise(&w, 2);
    let engine = BiqGemm::new(&q, BiqConfig::default());
    let t0 = Instant::now();
    let _ = engine.matmul(&x);
    println!(
        "single ff1 matrix ({}x{}) through BiQGEMM: {:>6.2} ms",
        cfg.d_ff,
        cfg.d_model,
        t0.elapsed().as_secs_f64() * 1e3
    );
}
