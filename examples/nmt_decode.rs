//! NMT-style greedy decoding with a quantized Transformer — the paper's
//! headline workload: a token-by-token decode loop whose cost is dominated
//! by few-batch multiplications against large fixed weights.
//!
//! Builds the same randomly initialised seq2seq model twice (fp32 and 2-bit
//! BiQGEMM), decodes the same source, and compares latency. Random weights
//! mean the "translation" is gibberish tokens — the *computation* is the
//! real decode loop (encoder stack, per-step decoder with cross-attention,
//! vocab projection).
//!
//! Run with: `cargo run --release --example nmt_decode`

use biqgemm_repro::biq_matrix::MatrixRng;
use biqgemm_repro::biq_nn::linear::QuantMethod;
use biqgemm_repro::biq_nn::seq2seq::Seq2Seq;
use biqgemm_repro::biq_nn::transformer::LayerBackend;
use biqgemm_repro::biqgemm_core::{BiqConfig, BiqGemm};
use std::time::Instant;

fn main() {
    // Scaled-down Transformer-base: d=256, ff=1024, 4 heads, 2+2 layers,
    // 2048-token vocabulary (the vocab projection is the big GEMV here).
    let (vocab, d_model, d_ff, heads, enc_l, dec_l) = (2048, 256, 1024, 4, 2, 2);
    let src: Vec<usize> = vec![17, 250, 33, 801, 90, 1422, 7, 64, 5, 1999, 404, 12];
    let max_len = 16;
    println!(
        "seq2seq: vocab={vocab}, d_model={d_model}, d_ff={d_ff}, {enc_l}+{dec_l} layers, \
         src len {}, max decode {max_len}",
        src.len()
    );

    let build = |backend: LayerBackend| {
        let mut g = MatrixRng::seed_from(0x5e95);
        Seq2Seq::random(&mut g, vocab, d_model, d_ff, heads, enc_l, dec_l, backend)
    };

    println!("building fp32 model...");
    let fp = build(LayerBackend::Fp32 { parallel: false });
    println!("building 2-bit BiQGEMM model (quantizing every projection)...");
    let biq = build(LayerBackend::Biq {
        bits: 2,
        method: QuantMethod::Greedy,
        cfg: BiqConfig::default(),
        parallel: false,
    });

    let t0 = Instant::now();
    let out_fp = fp.greedy_decode(&src, max_len);
    let t_fp = t0.elapsed();
    let t0 = Instant::now();
    let out_biq = biq.greedy_decode(&src, max_len);
    let t_biq = t0.elapsed();

    println!(
        "fp32 decode:    {:>8.2} ms -> {} tokens {:?}",
        t_fp.as_secs_f64() * 1e3,
        out_fp.len(),
        &out_fp[..out_fp.len().min(8)]
    );
    println!(
        "BiQGEMM decode: {:>8.2} ms -> {} tokens {:?}",
        t_biq.as_secs_f64() * 1e3,
        out_biq.len(),
        &out_biq[..out_biq.len().min(8)]
    );
    println!("decode-loop speedup: {:.2}x", t_fp.as_secs_f64() / t_biq.as_secs_f64());

    // The vocab projection alone, at decode batch 1 — the paper's GEMV case.
    let w = MatrixRng::seed_from(9).gaussian(vocab, d_model, 0.0, 0.06);
    let q = biqgemm_repro::biq_quant::greedy_quantize_matrix_rowwise(&w, 2);
    let engine = BiqGemm::new(&q, BiqConfig::default());
    let x: Vec<f32> = MatrixRng::seed_from(10).gaussian_vec(d_model);
    let t0 = Instant::now();
    for _ in 0..100 {
        std::hint::black_box(engine.matvec(&x));
    }
    println!(
        "vocab projection GEMV ({vocab}x{d_model}, 2-bit): {:.1} µs/step",
        t0.elapsed().as_secs_f64() * 1e4
    );
}
