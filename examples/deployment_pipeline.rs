//! The full deployment pipeline through the serialization API: quantize and
//! pack offline, persist the key-matrix artifact, reload it in a fresh
//! "device process" and serve inference — the dense fp32 weights never cross
//! the boundary (paper footnote 3).
//!
//! Run with: `cargo run --release --example deployment_pipeline`

use biqgemm_repro::biq_matrix::io as mio;
use biqgemm_repro::biq_matrix::MatrixRng;
use biqgemm_repro::biq_quant::error_metrics::relative_l2;
use biqgemm_repro::biq_quant::greedy_quantize_matrix_rowwise;
use biqgemm_repro::biqgemm_core::serialize::{decode_weights, encode_weights};
use biqgemm_repro::biqgemm_core::{BiqConfig, BiqGemm, BiqWeights};

fn main() {
    let dir = std::env::temp_dir().join("biqgemm_deploy_example");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let weights_path = dir.join("layer0.biqw");
    let input_path = dir.join("request.biqm");

    // ---- Build host: quantize + pack + persist. ----
    let (m, n, b) = (1024, 1024, 18);
    let mut rng = MatrixRng::seed_from(0xde91);
    let dense = rng.gaussian(m, n, 0.0, 0.05);
    let quant = greedy_quantize_matrix_rowwise(&dense, 2);
    let packed = BiqWeights::from_multibit(&quant, 8);
    let artifact = encode_weights(&packed);
    std::fs::write(&weights_path, &artifact).expect("write weights");
    println!(
        "build host: {m}x{n} fp32 weights = {:.2} MB -> shipped artifact = {:.2} MB (2-bit, µ=8)",
        (m * n * 4) as f64 / 1e6,
        artifact.len() as f64 / 1e6
    );

    // An inference request (column-major activations), also on disk.
    let x = rng.gaussian_col(n, b, 0.0, 1.0);
    std::fs::write(&input_path, mio::encode_col_matrix(&x)).expect("write input");

    // ---- Device: reload and serve. ----
    let loaded = decode_weights(
        biqgemm_repro::biq_matrix::io::read_from(
            std::fs::File::open(&weights_path).expect("open artifact"),
        )
        .expect("read artifact"),
    )
    .expect("decode artifact");
    let engine = BiqGemm::from_weights(loaded, BiqConfig::default());
    let x_dev = mio::decode_col_matrix(
        mio::read_from(std::fs::File::open(&input_path).expect("open input")).expect("read"),
    )
    .expect("decode input");

    let t0 = std::time::Instant::now();
    let y = engine.matmul(&x_dev);
    println!(
        "device: served {m}x{b} output in {:.3} ms via table lookups",
        t0.elapsed().as_secs_f64() * 1e3
    );

    // Sanity: the served output equals the build host's own computation.
    let y_host = BiqGemm::new(&quant, BiqConfig::default()).matmul(&x);
    println!(
        "round-trip check: relative L2 host-vs-device = {:.2e} (must be 0)",
        relative_l2(y.as_slice(), y_host.as_slice())
    );
    assert_eq!(y.as_slice(), y_host.as_slice());

    let _ = std::fs::remove_dir_all(&dir);
    println!("done.");
}
