//! Quickstart: quantize a weight matrix with binary coding, multiply with
//! BiQGEMM, and compare against full-precision GEMM.
//!
//! Run with: `cargo run --release --example quickstart`

use biqgemm_repro::biq_gemm::gemm_blocked;
use biqgemm_repro::biq_matrix::{display::format_matrix, MatrixRng};
use biqgemm_repro::biq_quant::error_metrics::{relative_l2, sqnr_db};
use biqgemm_repro::biq_quant::greedy_quantize_matrix_rowwise;
use biqgemm_repro::biqgemm_core::{BiqConfig, BiqGemm};
use std::time::Instant;

fn main() {
    // A 1024×1024 layer at batch 8 — the few-batch regime the paper targets.
    let (m, n, b) = (1024, 1024, 8);
    let mut rng = MatrixRng::seed_from(7);
    let weights = rng.gaussian(m, n, 0.0, 0.05);
    let x = rng.gaussian_col(n, b, 0.0, 1.0);

    // Offline: quantize to 3 binary-coding bits and pack the key matrix.
    let quant = greedy_quantize_matrix_rowwise(&weights, 3);
    println!(
        "quantized {m}x{n} weights to {} bits; weight SQNR = {:.2} dB",
        quant.bits(),
        sqnr_db(weights.as_slice(), quant.dequantize().as_slice())
    );
    let engine = BiqGemm::new(&quant, BiqConfig::default());

    // Online: BiQGEMM inference vs fp32 GEMM.
    let t0 = Instant::now();
    let y_biq = engine.matmul(&x);
    let t_biq = t0.elapsed();

    let t0 = Instant::now();
    let y_fp = gemm_blocked(&weights, &x);
    let t_fp = t0.elapsed();

    println!("BiQGEMM (3-bit): {:>9.3} ms", t_biq.as_secs_f64() * 1e3);
    println!("fp32 GEMM:       {:>9.3} ms", t_fp.as_secs_f64() * 1e3);
    println!(
        "output relative L2 vs fp32 (quantization error, not kernel error): {:.4}",
        relative_l2(y_biq.as_slice(), y_fp.as_slice())
    );

    // The kernel itself is exact: multiplying the *dequantized* weights with
    // fp32 GEMM reproduces BiQGEMM's output to f32 rounding.
    let y_deq = gemm_blocked(&quant.dequantize(), &x);
    println!(
        "kernel error vs dequantized GEMM:                                   {:.2e}",
        relative_l2(y_biq.as_slice(), y_deq.as_slice())
    );
    println!("\nfirst rows of the BiQGEMM output:");
    println!("{}", format_matrix(&y_biq, 4, 6));
}
