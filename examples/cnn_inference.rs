//! Quantized CNN inference: a small conv → relu → pool → conv → pool →
//! linear classifier running with BiQGEMM conv kernels — the XNOR-Net-style
//! workload the paper's binary-coding lineage originally targeted, here with
//! fp32 activations preserved (weight-only quantization).
//!
//! Run with: `cargo run --release --example cnn_inference`

use biqgemm_repro::biq_matrix::ColMatrix;
use biqgemm_repro::biq_matrix::MatrixRng;
use biqgemm_repro::biq_nn::conv::{Conv2d, ConvShape, FeatureMap};
use biqgemm_repro::biq_nn::linear::{Linear, QuantMethod};
use biqgemm_repro::biq_nn::pooling::{global_avg_pool, max_pool2d, relu_inplace};
use biqgemm_repro::biq_nn::transformer::LayerBackend;
use biqgemm_repro::biq_quant::error_metrics::cosine_similarity;
use biqgemm_repro::biqgemm_core::BiqConfig;
use std::time::Instant;

struct SmallCnn {
    conv1: Conv2d,
    conv2: Conv2d,
    head: Linear,
}

impl SmallCnn {
    fn random(seed: u64, backend: LayerBackend) -> Self {
        let mut g = MatrixRng::seed_from(seed);
        let conv1 = Conv2d::random(
            &mut g,
            ConvShape { in_channels: 3, out_channels: 32, kernel: 3, stride: 1, padding: 1 },
            backend,
        );
        let conv2 = Conv2d::random(
            &mut g,
            ConvShape { in_channels: 32, out_channels: 64, kernel: 3, stride: 1, padding: 1 },
            backend,
        );
        let head_w = g.gaussian(10, 64, 0.0, 64f32.powf(-0.5));
        let head = backend.linear(head_w, None);
        Self { conv1, conv2, head }
    }

    fn forward(&self, image: &FeatureMap) -> Vec<f32> {
        let mut h = self.conv1.forward(image);
        relu_inplace(&mut h);
        let h = max_pool2d(&h, 2, 2);
        let mut h = self.conv2.forward(&h);
        relu_inplace(&mut h);
        let h = max_pool2d(&h, 2, 2);
        let feat = global_avg_pool(&h);
        self.head.forward(&ColMatrix::from_column(feat)).col(0).to_vec()
    }
}

fn main() {
    let image = {
        let mut g = MatrixRng::seed_from(0x1313);
        FeatureMap::random(&mut g, 3, 32, 32) // CIFAR-sized input
    };
    println!("SmallCnn on a 3x32x32 input: conv3->32 + conv32->64 (3x3, same), 10-way head\n");

    let fp = SmallCnn::random(0xc44, LayerBackend::Fp32 { parallel: false });
    let biq = SmallCnn::random(
        0xc44,
        LayerBackend::Biq {
            bits: 2,
            method: QuantMethod::Greedy,
            cfg: BiqConfig::default(),
            parallel: false,
        },
    );

    let t0 = Instant::now();
    let logits_fp = fp.forward(&image);
    let t_fp = t0.elapsed();
    let t0 = Instant::now();
    let logits_biq = biq.forward(&image);
    let t_biq = t0.elapsed();

    let top = |v: &[f32]| -> usize {
        v.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0
    };
    println!(
        "fp32 forward:    {:>7.2} ms, argmax class {}",
        t_fp.as_secs_f64() * 1e3,
        top(&logits_fp)
    );
    println!(
        "BiQGEMM 2-bit:   {:>7.2} ms, argmax class {}",
        t_biq.as_secs_f64() * 1e3,
        top(&logits_biq)
    );
    println!(
        "logit cosine similarity: {:.4}   speedup: {:.2}x",
        cosine_similarity(&logits_biq, &logits_fp),
        t_fp.as_secs_f64() / t_biq.as_secs_f64()
    );
    println!("\nNote: im2col gives the conv GEMM a *huge* batch (H·W ≈ 1024 columns) against");
    println!("small weight matrices (m = 32/64) — the far side of Fig. 10's crossover, where");
    println!("fp32 GEMM is competitive. BiQGEMM's regime is the opposite corner (large m, few");
    println!("batch): NLP projections and decode loops, as the other examples show.");
}
