//! LAS-style speech-recognition encoder (paper Section II-C): bi-directional
//! LSTM layers with large weight matrices, streamed one time-step at a time —
//! the canonical memory-bound GEMV workload BiQGEMM accelerates.
//!
//! The example runs a scaled-down LAS encoder layer (hidden 640 per
//! direction, i.e. 2560×1280 gate matrices) over a short utterance, fp32 vs
//! 2-bit BiQGEMM.
//!
//! Run with: `cargo run --release --example lstm_asr`

use biqgemm_repro::biq_matrix::{ColMatrix, MatrixRng};
use biqgemm_repro::biq_nn::configs::LAS;
use biqgemm_repro::biq_nn::linear::QuantMethod;
use biqgemm_repro::biq_nn::lstm::BiLstm;
use biqgemm_repro::biq_nn::transformer::LayerBackend;
use biqgemm_repro::biq_quant::error_metrics::cosine_similarity;
use biqgemm_repro::biqgemm_core::BiqConfig;
use std::time::Instant;

fn main() {
    println!(
        "LAS reference shapes: {} encoder bi-LSTM layers of {:?}, {} decoder layers of {:?}",
        LAS.encoder_layers, LAS.encoder_matrix, LAS.decoder_layers, LAS.decoder_matrix
    );
    // Scaled-down layer: input 320 features, hidden 640 per direction
    // -> gate matrices 2560×320 and 2560×640.
    let (input, hidden, frames, batch) = (320, 640, 12, 1);
    println!("example layer: input={input}, hidden={hidden}, frames={frames}, batch={batch}\n");

    let seq: Vec<ColMatrix> = {
        let mut g = MatrixRng::seed_from(0xa5a);
        (0..frames).map(|_| g.gaussian_col(input, batch, 0.0, 1.0)).collect()
    };
    let build = |backend: LayerBackend| {
        let mut g = MatrixRng::seed_from(0x1a5);
        BiLstm::random(&mut g, input, hidden, backend)
    };

    println!("building fp32 bi-LSTM...");
    let fp = build(LayerBackend::Fp32 { parallel: false });
    println!("building 2-bit BiQGEMM bi-LSTM...");
    let biq = build(LayerBackend::Biq {
        bits: 2,
        method: QuantMethod::Greedy,
        cfg: BiqConfig::default(),
        parallel: false,
    });

    let t0 = Instant::now();
    let y_fp = fp.forward(&seq);
    let t_fp = t0.elapsed();
    let t0 = Instant::now();
    let y_biq = biq.forward(&seq);
    let t_biq = t0.elapsed();

    println!("fp32 forward ({frames} frames):    {:>8.2} ms", t_fp.as_secs_f64() * 1e3);
    println!("BiQGEMM 2-bit forward:        {:>8.2} ms", t_biq.as_secs_f64() * 1e3);
    let last = frames - 1;
    println!(
        "speedup: {:.2}x   final-frame cosine similarity: {:.4}",
        t_fp.as_secs_f64() / t_biq.as_secs_f64(),
        cosine_similarity(y_biq[last].as_slice(), y_fp[last].as_slice())
    );
    println!("\nNote: batch = 1 streaming inference is the paper's headline regime — GEMV is");
    println!("memory-bound, so replacing weight traffic with µ-bit keys pays off most here.");
}
