//! Choosing the LUT-unit µ: analytic model vs measurement.
//!
//! Walks µ over 2..=12 for a 4096×1024 matrix at batch 32, printing the
//! Eq. 9 cost factor, the planner's cache-aware tile choice, and measured
//! runtime — showing why the paper lands on µ = 8.
//!
//! Run with: `cargo run --release --example tune_mu`

use biqgemm_repro::biq_matrix::MatrixRng;
use biqgemm_repro::biqgemm_core::complexity::{eq9_factor, model_speedup, optimal_mu};
use biqgemm_repro::biqgemm_core::planner::{plan, DEFAULT_LUT_BUDGET_BYTES};
use biqgemm_repro::biqgemm_core::{BiqConfig, BiqGemm};
use std::time::Instant;

fn main() {
    let (m, n, b) = (4096, 1024, 32);
    println!("µ tuning for a {m}x{n} binary matrix at batch {b}");
    println!("model optimum: µ* = argmin (2^µ + m)/(m·µ) = {}\n", optimal_mu(m));
    let mut g = MatrixRng::seed_from(0x3a);
    let signs = g.signs(m, n);
    let x = g.gaussian_col(n, b, 0.0, 1.0);
    println!(
        "{:>3} {:>12} {:>14} {:>12} {:>12}",
        "µ", "Eq.9 factor", "model speedup", "tile chunks", "measured ms"
    );
    for mu in 2..=12usize {
        let planned = plan(m, n, b, DEFAULT_LUT_BUDGET_BYTES);
        let cfg = BiqConfig { mu, ..planned };
        let engine = BiqGemm::from_signs(&signs, cfg);
        // One warmup + one measured run keeps the example fast; use the
        // mu_sweep bench binary for statistically solid numbers.
        let _ = engine.matmul(&x);
        let t0 = Instant::now();
        let _ = engine.matmul(&x);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{mu:>3} {:>12.5} {:>14.2} {:>12} {:>12.2}",
            eq9_factor(m, mu),
            model_speedup(m, n, mu, b, 1),
            cfg.tile_chunks,
            ms
        );
    }
    println!("\nThe measured minimum should sit near the model optimum (µ ≈ 8), with large µ");
    println!("penalised by table-build cost (2^µ) and cache pressure — paper Section IV-A.");
}
