//! Umbrella crate for the BiQGEMM reproduction workspace.
//!
//! This crate re-exports the public surface of every member crate so that
//! examples and integration tests can write `use biqgemm_repro::...`.
//! Downstream users will normally depend on the individual crates instead:
//!
//! * [`biq_matrix`] — dense matrix substrate (layouts, reshape, RNG workloads)
//! * [`biq_quant`] — binary-coding / uniform quantizers and bit packing
//! * [`biq_gemm`] — dense & quantized baseline kernels (naive, blocked, XNOR)
//! * [`biqgemm_core`] — the BiQGEMM lookup-table matrix-multiplication engine
//! * [`biq_runtime`] — the plan/executor runtime unifying every GEMM path
//!   behind reusable LUT arenas
//! * [`biq_artifact`] — the `BIQM` compiled-model artifact container with
//!   zero-copy loading
//! * [`biq_nn`] — NN layers (Linear/Attention/Transformer/LSTM) with pluggable
//!   matmul backends and whole-model artifact snapshot/restore

pub use biq_artifact;
pub use biq_gemm;
pub use biq_matrix;
pub use biq_nn;
pub use biq_quant;
pub use biq_runtime;
pub use biqgemm_core;
