//! Workspace-level property-based tests (proptest): the algebraic invariants
//! that hold for *arbitrary* shapes, µ, and data — the strongest correctness
//! evidence short of a proof.

use biqgemm_repro::biq_gemm::gemm_naive;
use biqgemm_repro::biq_matrix::{ColMatrix, SignMatrix};
use biqgemm_repro::biq_quant::greedy_quantize_vector;
use biqgemm_repro::biq_quant::packing::KeyMatrix;
use biqgemm_repro::biqgemm_core::lut::{build_lut_bruteforce, build_lut_dp};
use biqgemm_repro::biqgemm_core::{BiqConfig, BiqGemm};
use proptest::prelude::*;

/// Strategy: a sign matrix of bounded shape.
fn sign_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = SignMatrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(prop_oneof![Just(1i8), Just(-1i8)], r * c)
            .prop_map(move |v| SignMatrix::from_vec(r, c, v))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BiQGEMM == naive GEMM for arbitrary sign matrices, integer inputs,
    /// and every µ in range (bit-exact).
    #[test]
    fn biqgemm_equals_gemm(
        signs in sign_matrix(24, 40),
        mu in 1usize..=12,
        seed in 0u64..1000,
    ) {
        let n = signs.cols();
        let mut g = biqgemm_repro::biq_matrix::MatrixRng::seed_from(seed);
        let b = 1 + (seed as usize % 5);
        let x = g.small_int_col(n, b, 4);
        let cfg = BiqConfig { mu: mu.min(16), tile_rows: 5, tile_chunks: 3, tile_batch: 2, ..BiqConfig::default() };
        let engine = BiqGemm::from_signs(&signs, cfg);
        let y = engine.matmul(&x);
        let y_ref = gemm_naive(&signs.to_f32(), &x);
        prop_assert_eq!(y.as_slice(), y_ref.as_slice());
    }

    /// Key packing round-trips for any matrix and µ.
    #[test]
    fn key_pack_round_trip(signs in sign_matrix(16, 48), mu in 1usize..=16) {
        let k = KeyMatrix::pack(&signs, mu);
        prop_assert_eq!(k.unpack(), signs);
    }

    /// DP lookup tables equal brute force for arbitrary real sub-vectors.
    #[test]
    fn dp_lut_equals_bruteforce(
        x in proptest::collection::vec(-100.0f32..100.0, 1..=10),
    ) {
        let l = x.len();
        let mut dp = vec![0.0f32; 1 << l];
        let mut bf = vec![0.0f32; 1 << l];
        build_lut_dp(&x, &mut dp);
        build_lut_bruteforce(&x, &mut bf);
        for (k, (a, b)) in dp.iter().zip(&bf).enumerate() {
            prop_assert!((a - b).abs() <= 1e-3 * (1.0 + b.abs()), "key {}: {} vs {}", k, a, b);
        }
    }

    /// LUT mirror anti-symmetry: q[~k] == −q[k].
    #[test]
    fn lut_mirror_antisymmetry(
        x in proptest::collection::vec(-50.0f32..50.0, 1..=10),
    ) {
        let l = x.len();
        let mut q = vec![0.0f32; 1 << l];
        build_lut_dp(&x, &mut q);
        for k in 0..(1usize << l) {
            let comp = ((1usize << l) - 1) - k;
            prop_assert_eq!(q[k], -q[comp]);
        }
    }

    /// Greedy quantization: residual energy is non-increasing in bits, and
    /// scales are non-negative and non-increasing.
    #[test]
    fn greedy_residual_monotone(
        w in proptest::collection::vec(-10.0f32..10.0, 4..=64),
        bits in 1usize..=5,
    ) {
        let (alphas, planes) = greedy_quantize_vector(&w, bits);
        prop_assert!(alphas.iter().all(|&a| a >= 0.0));
        for pair in alphas.windows(2) {
            prop_assert!(pair[1] <= pair[0] + 1e-6);
        }
        // Reconstruction error shrinks (weakly) as planes accumulate.
        let mut prev = f64::INFINITY;
        for used in 1..=bits {
            let err: f64 = w
                .iter()
                .enumerate()
                .map(|(j, &wj)| {
                    let rec: f32 =
                        (0..used).map(|i| alphas[i] * planes[i][j] as f32).sum();
                    ((wj - rec) as f64).powi(2)
                })
                .sum();
            prop_assert!(err <= prev + 1e-6);
            prev = err;
        }
    }

    /// Linearity: BiQGEMM(x + y) == BiQGEMM(x) + BiQGEMM(y) on integer data.
    #[test]
    fn kernel_linearity(signs in sign_matrix(12, 24), seed in 0u64..500) {
        let n = signs.cols();
        let mut g = biqgemm_repro::biq_matrix::MatrixRng::seed_from(seed);
        let x1 = g.small_int_col(n, 2, 3);
        let x2 = g.small_int_col(n, 2, 3);
        let sum = ColMatrix::from_vec(
            n,
            2,
            x1.as_slice().iter().zip(x2.as_slice()).map(|(a, b)| a + b).collect(),
        );
        let engine = BiqGemm::from_signs(&signs, BiqConfig::with_mu(4));
        let y1 = engine.matmul(&x1);
        let y2 = engine.matmul(&x2);
        let ysum = engine.matmul(&sum);
        for ((a, b), s) in y1.as_slice().iter().zip(y2.as_slice()).zip(ysum.as_slice()) {
            prop_assert_eq!(a + b, *s);
        }
    }
}
