//! Failure-injection tests: every decoder in the workspace must return an
//! error — never panic, never over-allocate — when fed corrupted or
//! truncated artifacts. Byte flips and truncations are injected into valid
//! encodings at every position; decodes run inside `catch_unwind` so a panic
//! is reported as a test failure with the offending mutation.

use biqgemm_repro::biq_matrix::io::{
    decode_matrix, decode_sign_matrix, encode_matrix, encode_sign_matrix,
};
use biqgemm_repro::biq_matrix::MatrixRng;
use biqgemm_repro::biq_quant::serialize::{
    decode_key_matrix, decode_multibit, encode_key_matrix, encode_multibit,
};
use biqgemm_repro::biq_quant::{greedy_quantize_matrix_rowwise, KeyMatrix};
use biqgemm_repro::biqgemm_core::serialize::{decode_weights, encode_weights};
use biqgemm_repro::biqgemm_core::BiqWeights;
use bytes::Bytes;

fn check_no_panic<T, E>(
    name: &str,
    decode: impl Fn(Vec<u8>) -> Result<T, E> + std::panic::RefUnwindSafe,
    valid: &[u8],
) {
    // Truncations at every prefix length.
    for cut in 0..valid.len() {
        let data = valid[..cut].to_vec();
        let r = std::panic::catch_unwind(|| decode(data));
        assert!(r.is_ok(), "{name}: panicked on truncation to {cut} bytes");
    }
    // Single-byte corruptions at every offset (xor a few patterns).
    for off in 0..valid.len() {
        for pattern in [0xFFu8, 0x01, 0x80] {
            let mut data = valid.to_vec();
            data[off] ^= pattern;
            let r = std::panic::catch_unwind(|| decode(data));
            assert!(r.is_ok(), "{name}: panicked on byte {off} ^ {pattern:#x}");
        }
    }
}

#[test]
fn matrix_decoder_never_panics() {
    let mut g = MatrixRng::seed_from(0xc0);
    let enc = encode_matrix(&g.gaussian(3, 5, 0.0, 1.0)).to_vec();
    check_no_panic("decode_matrix", |d| decode_matrix(Bytes::from(d)), &enc);
}

#[test]
fn sign_decoder_never_panics() {
    let mut g = MatrixRng::seed_from(0xc1);
    let enc = encode_sign_matrix(&g.signs(4, 9)).to_vec();
    check_no_panic("decode_sign_matrix", |d| decode_sign_matrix(Bytes::from(d)), &enc);
}

#[test]
fn multibit_decoder_never_panics() {
    let mut g = MatrixRng::seed_from(0xc2);
    let q = greedy_quantize_matrix_rowwise(&g.gaussian(3, 10, 0.0, 1.0), 2);
    let enc = encode_multibit(&q).to_vec();
    check_no_panic("decode_multibit", |d| decode_multibit(Bytes::from(d)), &enc);
}

#[test]
fn key_matrix_decoder_never_panics() {
    let mut g = MatrixRng::seed_from(0xc3);
    let k = KeyMatrix::pack(&g.signs(3, 11), 4);
    let enc = encode_key_matrix(&k).to_vec();
    check_no_panic("decode_key_matrix", |d| decode_key_matrix(Bytes::from(d)), &enc);
}

#[test]
fn weights_decoder_never_panics() {
    let mut g = MatrixRng::seed_from(0xc4);
    let q = greedy_quantize_matrix_rowwise(&g.gaussian(4, 12, 0.0, 1.0), 2);
    let w = BiqWeights::from_multibit(&q, 4);
    let enc = encode_weights(&w).to_vec();
    check_no_panic("decode_weights", |d| decode_weights(Bytes::from(d)), &enc);
}

#[test]
fn random_garbage_is_rejected_not_crashed() {
    let mut g = MatrixRng::seed_from(0xc5);
    for len in [0usize, 3, 21, 64, 257] {
        let data: Vec<u8> =
            (0..len).map(|_| (g.uniform_f32(0.0, 256.0) as u32 & 0xff) as u8).collect();
        let r = std::panic::catch_unwind(|| {
            let _ = decode_matrix(Bytes::from(data.clone()));
            let _ = decode_multibit(Bytes::from(data.clone()));
            let _ = decode_key_matrix(Bytes::from(data.clone()));
            let _ = decode_weights(Bytes::from(data.clone()));
        });
        assert!(r.is_ok(), "panicked on {len} bytes of garbage");
    }
}
