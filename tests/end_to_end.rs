//! Cross-crate integration tests: the full pipeline from fp32 weights
//! through quantization, packing, BiQGEMM and back, checked against the
//! dense baselines.

use biqgemm_repro::biq_gemm::unpack_gemm::gemm_with_unpack;
use biqgemm_repro::biq_gemm::xnor::{xnor_gemm_presigned, XnorWeights};
use biqgemm_repro::biq_gemm::{gemm_blocked, gemm_naive, par_gemm_blocked};
use biqgemm_repro::biq_matrix::{assert_allclose, MatrixRng};
use biqgemm_repro::biq_quant::packing::{PackedRowsU32, PackedRowsU64};
use biqgemm_repro::biq_quant::{greedy_quantize_matrix_rowwise, MultiBitMatrix};
use biqgemm_repro::biqgemm_core::config::{LutLayout, Schedule};
use biqgemm_repro::biqgemm_core::{BiqConfig, BiqGemm};

/// Every kernel in the workspace computes the same quantized product.
#[test]
fn all_kernels_agree_on_one_bit_weights() {
    let mut g = MatrixRng::seed_from(0xe2e);
    let (m, n, b) = (96, 160, 12);
    let signs = g.signs(m, n);
    let x = g.small_int_col(n, b, 3);
    let dense = signs.to_f32();

    let y_naive = gemm_naive(&dense, &x);
    let y_blocked = gemm_blocked(&dense, &x);
    let y_par = par_gemm_blocked(&dense, &x);
    let y_unpack = gemm_with_unpack(&PackedRowsU32::pack(&signs), &x);
    let engine = BiqGemm::from_signs(&signs, BiqConfig::default());
    let y_biq = engine.matmul(&x);
    let y_biq_par = engine.matmul_parallel(&x);

    // Small-integer inputs make every accumulation order exact.
    assert_eq!(y_naive.as_slice(), y_blocked.as_slice());
    assert_eq!(y_naive.as_slice(), y_par.as_slice());
    assert_eq!(y_naive.as_slice(), y_unpack.as_slice());
    assert_eq!(y_naive.as_slice(), y_biq.as_slice());
    assert_eq!(y_naive.as_slice(), y_biq_par.as_slice());
}

/// XNOR with pre-signed activations joins the agreement set.
#[test]
fn xnor_agrees_when_activations_are_signs() {
    let mut g = MatrixRng::seed_from(0xe2f);
    let (m, n, b) = (50, 130, 7);
    let wsigns = g.signs(m, n);
    let xsigns = g.signs(n, b);
    let y_ref = gemm_naive(&wsigns.to_f32(), &xsigns.to_f32().to_col_major());
    let xw = XnorWeights::new(vec![(vec![1.0; m], PackedRowsU64::pack(&wsigns))]);
    let y_xnor = xnor_gemm_presigned(&xw, &xsigns);
    assert_eq!(y_ref.as_slice(), y_xnor.as_slice());
    let engine = BiqGemm::from_signs(&wsigns, BiqConfig::default());
    let y_biq = engine.matmul(&xsigns.to_f32().to_col_major());
    assert_eq!(y_ref.as_slice(), y_biq.as_slice());
}

/// Multi-bit BiQGEMM equals dense GEMM on the dequantized weights for every
/// bit width, layout, schedule and µ.
#[test]
fn multibit_full_config_matrix() {
    let mut g = MatrixRng::seed_from(0xe30);
    let (m, n, b) = (40, 72, 5);
    let wf = g.gaussian(m, n, 0.0, 1.0);
    let x = g.gaussian_col(n, b, 0.0, 1.0);
    for bits in 1..=3usize {
        let q = greedy_quantize_matrix_rowwise(&wf, bits);
        let y_ref = gemm_naive(&q.dequantize(), &x);
        for mu in [3usize, 8] {
            for layout in [LutLayout::KeyMajor, LutLayout::BatchMajor] {
                for schedule in [Schedule::RowParallel, Schedule::SharedLut] {
                    let cfg = BiqConfig {
                        mu,
                        layout,
                        schedule,
                        tile_rows: 16,
                        tile_chunks: 4,
                        tile_batch: 3,
                        ..BiqConfig::default()
                    };
                    let engine = BiqGemm::new(&q, cfg);
                    assert_allclose(&engine.matmul(&x), &y_ref, 1e-4, 1e-4);
                    assert_allclose(&engine.matmul_parallel(&x), &y_ref, 1e-4, 1e-4);
                }
            }
        }
    }
}

/// Quantize → stack → pack → BiQGEMM equals per-plane accumulation done by
/// hand (Eq. 2 of the paper).
#[test]
fn equation_two_by_hand() {
    let mut g = MatrixRng::seed_from(0xe31);
    let (m, n, b) = (18, 36, 3);
    let wf = g.gaussian(m, n, 0.0, 1.0);
    let x = g.gaussian_col(n, b, 0.0, 1.0);
    let q = greedy_quantize_matrix_rowwise(&wf, 3);
    // Hand evaluation of Σ_i α_i ∘ (B_i · x).
    let mut y_hand = biqgemm_repro::biq_matrix::Matrix::zeros(m, b);
    for plane in q.planes() {
        let partial = plane.signs.matmul(&x);
        for i in 0..m {
            for a in 0..b {
                let v = y_hand.get(i, a) + plane.scales[i] * partial.get(i, a);
                y_hand.set(i, a, v);
            }
        }
    }
    let engine = BiqGemm::new(&q, BiqConfig::default());
    assert_allclose(&engine.matmul(&x), &y_hand, 1e-4, 1e-4);
}

/// Truncating planes of one quantization = re-quantizing at fewer bits
/// (greedy is a prefix procedure), and the engine respects it.
#[test]
fn plane_truncation_consistency() {
    let mut g = MatrixRng::seed_from(0xe32);
    let wf = g.gaussian(24, 48, 0.0, 1.0);
    let x = g.gaussian_col(48, 4, 0.0, 1.0);
    let q3 = greedy_quantize_matrix_rowwise(&wf, 3);
    let q1: MultiBitMatrix = q3.truncated(1);
    let direct = greedy_quantize_matrix_rowwise(&wf, 1);
    let y_t = BiqGemm::new(&q1, BiqConfig::default()).matmul(&x);
    let y_d = BiqGemm::new(&direct, BiqConfig::default()).matmul(&x);
    assert_eq!(y_t.as_slice(), y_d.as_slice());
}
