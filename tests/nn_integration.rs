//! Integration tests spanning the NN substrate and the kernels: whole-model
//! shape checks on the paper's named configurations and fidelity of
//! quantized inference.

use biqgemm_repro::biq_matrix::MatrixRng;
use biqgemm_repro::biq_nn::configs::{TransformerConfig, ALBERT_XXLARGE_FF, LAS};
use biqgemm_repro::biq_nn::linear::{Linear, QuantMethod};
use biqgemm_repro::biq_nn::lstm::{Lstm, LstmState};
use biqgemm_repro::biq_nn::transformer::{DecoderLayer, EncoderLayer, LayerBackend};
use biqgemm_repro::biq_quant::error_metrics::cosine_similarity;
use biqgemm_repro::biqgemm_core::planner::{plan, DEFAULT_LUT_BUDGET_BYTES};
use biqgemm_repro::biqgemm_core::BiqConfig;

const FP: LayerBackend = LayerBackend::Fp32 { parallel: false };

#[test]
fn transformer_base_shapes_run_end_to_end() {
    // A miniature encoder+decoder pass with the base config's head count
    // (reduced width keeps the test fast; full-width runs live in benches).
    let cfg = TransformerConfig::BASE;
    assert_eq!(cfg.encoder_layer_matrices().len(), 6);
    let d = 64;
    let mut g = MatrixRng::seed_from(0x111);
    let enc = EncoderLayer::random(&mut g, d, 4 * d, 8, FP);
    let dec = DecoderLayer::random(&mut g, d, 4 * d, 8, FP);
    let src = g.gaussian_col(d, 9, 0.0, 1.0);
    let tgt = g.gaussian_col(d, 4, 0.0, 1.0);
    let memory = enc.forward(&src);
    let out = dec.forward(&tgt, &memory);
    assert_eq!(out.shape(), (d, 4));
    assert!(out.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn quantized_linear_on_albert_shaped_slice() {
    // A proportional slice of the ALBERT xx-large 4K×16K matrix (1/16 scale)
    // through the planner-chosen config.
    let (rows, cols) = (ALBERT_XXLARGE_FF.0 / 16, ALBERT_XXLARGE_FF.1 / 16);
    let mut g = MatrixRng::seed_from(0x222);
    let w = g.gaussian(rows, cols, 0.0, 0.02);
    let x = g.gaussian_col(cols, 4, 0.0, 1.0);
    let cfg = plan(rows, cols, 4, DEFAULT_LUT_BUDGET_BYTES);
    let fp = Linear::fp32(w.clone(), None).forward(&x);
    let q = Linear::quantized(&w, 3, QuantMethod::Greedy, cfg, None).forward(&x);
    let cs = cosine_similarity(q.as_slice(), fp.as_slice());
    assert!(cs > 0.95, "cosine similarity {cs}");
}

#[test]
fn las_shaped_lstm_step_batch_one() {
    // One real LAS-proportioned step at 1/8 scale: hidden 320 per direction,
    // batch 1 (streaming ASR), quantized weights.
    let hidden = LAS.encoder_matrix.0 / 8; // 320
    let input = hidden / 2;
    let mut g = MatrixRng::seed_from(0x333);
    let lstm = Lstm::random(
        &mut g,
        input,
        hidden,
        LayerBackend::Biq {
            bits: 2,
            method: QuantMethod::Greedy,
            cfg: BiqConfig::default(),
            parallel: false,
        },
    );
    let x = g.gaussian_col(input, 1, 0.0, 1.0);
    let s = lstm.cell().step(&x, &LstmState::zeros(hidden, 1));
    assert_eq!(s.h.shape(), (hidden, 1));
    assert!(s.h.as_slice().iter().all(|v| v.is_finite() && v.abs() <= 1.0 + 1e-6));
}

#[test]
fn backend_swap_preserves_shapes_everywhere() {
    // The same encoder built on all three backends accepts the same input
    // and emits the same shape — the drop-in-replacement contract.
    let x = MatrixRng::seed_from(0x444).gaussian_col(48, 6, 0.0, 1.0);
    for backend in [
        FP,
        LayerBackend::Biq {
            bits: 2,
            method: QuantMethod::Greedy,
            cfg: BiqConfig::default(),
            parallel: false,
        },
        LayerBackend::Xnor { bits: 1 },
    ] {
        let mut g = MatrixRng::seed_from(0x555);
        let layer = EncoderLayer::random(&mut g, 48, 96, 4, backend);
        let y = layer.forward(&x);
        assert_eq!(y.shape(), (48, 6));
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }
}

#[test]
fn more_bits_higher_fidelity_through_a_whole_layer() {
    let x = MatrixRng::seed_from(0x666).gaussian_col(64, 5, 0.0, 1.0);
    let fp_layer = {
        let mut g = MatrixRng::seed_from(0x777);
        EncoderLayer::random(&mut g, 64, 128, 4, FP)
    };
    let y_fp = fp_layer.forward(&x);
    let mut prev_cs = -1.0f64;
    for bits in [1usize, 2, 4] {
        let layer = {
            let mut g = MatrixRng::seed_from(0x777);
            EncoderLayer::random(
                &mut g,
                64,
                128,
                4,
                LayerBackend::Biq {
                    bits,
                    method: QuantMethod::Greedy,
                    cfg: BiqConfig::default(),
                    parallel: false,
                },
            )
        };
        let cs = cosine_similarity(layer.forward(&x).as_slice(), y_fp.as_slice());
        assert!(cs >= prev_cs - 0.02, "fidelity regressed at {bits} bits: {cs} < {prev_cs}");
        prev_cs = cs;
    }
    assert!(prev_cs > 0.95, "4-bit cosine similarity {prev_cs}");
}
