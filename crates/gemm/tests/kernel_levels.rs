//! Per-level exactness of the baseline kernels: the XNOR popcount
//! reduction and the int8 dot product are integer arithmetic, so every
//! kernel level must equal the scalar level **exactly** (and the fp32
//! scale application is order-identical across levels) — over random
//! shapes and the ragged word/lane tails (`n % 64`, `n % 256`, `n % 32`,
//! `n % 64` for int8) where the vector kernels hand off to their scalar
//! remainders.

use biq_gemm::int8::{Int8Gemm, Int8Phases};
use biq_gemm::xnor::{xnor_gemm, XnorWeights};
use biq_matrix::MatrixRng;
use biq_quant::greedy_quantize_matrix_rowwise;
use biqgemm_core::simd::supported_levels;
use biqgemm_core::{KernelRequest, ResolvedKernel};
use proptest::prelude::*;

fn exact(level: biqgemm_core::KernelLevel) -> ResolvedKernel {
    KernelRequest::Exact(level).resolve().expect("supported level must resolve")
}

#[test]
fn xnor_levels_exactly_equal_scalar_across_word_tails() {
    let mut g = MatrixRng::seed_from(8001);
    // n straddles the u64-word and the 4-/8-word vector-step boundaries.
    for &(m, n, b, bits) in &[
        (5usize, 1usize, 2usize, 1usize),
        (9, 63, 3, 1),
        (9, 64, 3, 2),
        (9, 65, 3, 1),
        (7, 255, 2, 2),
        (7, 256, 2, 1),
        (7, 257, 2, 1),
        (4, 511, 1, 3),
        (4, 513, 5, 1),
    ] {
        let wf = g.gaussian(m, n, 0.0, 1.0);
        let q = greedy_quantize_matrix_rowwise(&wf, bits);
        let w = XnorWeights::from_multibit(&q);
        let x = g.gaussian_col(n, b, 0.0, 1.0);
        let want = xnor_gemm(&w, &x, ResolvedKernel::scalar());
        for level in supported_levels() {
            let got = xnor_gemm(&w, &x, exact(level));
            assert_eq!(
                want.as_slice(),
                got.as_slice(),
                "(m,n,b,bits)=({m},{n},{b},{bits}) {level}"
            );
        }
    }
}

#[test]
fn int8_levels_exactly_equal_scalar_across_lane_tails() {
    let mut g = MatrixRng::seed_from(8002);
    // n straddles the 32-value (AVX2) and 64-value (AVX-512) step sizes.
    for &(m, n, b) in &[
        (6usize, 1usize, 1usize),
        (6, 31, 2),
        (6, 32, 2),
        (6, 33, 2),
        (5, 63, 3),
        (5, 64, 3),
        (5, 65, 3),
        (3, 130, 4),
        (3, 257, 1),
    ] {
        let w = g.gaussian(m, n, 0.0, 1.0);
        let x = g.gaussian_col(n, b, 0.0, 1.0);
        let engine = Int8Gemm::new(&w);
        let mut ph = Int8Phases::default();
        let want = engine.forward(&x, &mut ph);
        for level in supported_levels() {
            let got = engine.forward_level(&x, &mut ph, exact(level));
            assert_eq!(want.as_slice(), got.as_slice(), "(m,n,b)=({m},{n},{b}) {level}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_xnor_and_int8_all_levels_exact(
        m in 1usize..12,
        n in 1usize..400,
        b in 1usize..6,
        bits in 1usize..=3,
        seed in 0u64..1_000_000,
    ) {
        let mut g = MatrixRng::seed_from(seed);
        let wf = g.gaussian(m, n, 0.0, 1.0);
        let x = g.gaussian_col(n, b, 0.0, 1.0);

        let q = greedy_quantize_matrix_rowwise(&wf, bits);
        let xw = XnorWeights::from_multibit(&q);
        let want_xnor = xnor_gemm(&xw, &x, ResolvedKernel::scalar());

        let i8e = Int8Gemm::new(&wf);
        let mut ph = Int8Phases::default();
        let want_i8 = i8e.forward(&x, &mut ph);

        for level in supported_levels() {
            let k = exact(level);
            prop_assert_eq!(
                want_xnor.as_slice(),
                xnor_gemm(&xw, &x, k).as_slice(),
                "xnor level={}", level
            );
            prop_assert_eq!(
                want_i8.as_slice(),
                i8e.forward_level(&x, &mut ph, k).as_slice(),
                "int8 level={}", level
            );
        }
    }
}
