//! Property tests for the baseline kernels: all dense kernels agree
//! bit-exactly on integer data, and the quantized-path kernels agree with
//! their dense references.

use biq_gemm::packed_sgemm::DenseBinaryWeights;
use biq_gemm::unpack_gemm::{gemm_with_unpack, gemm_with_unpack_amortized};
use biq_gemm::xnor::{xnor_gemm_presigned, XnorWeights};
use biq_gemm::{
    gemm_blocked, gemm_naive, gemv_blocked, gemv_naive, par_gemm_blocked, par_gemm_naive,
};
use biq_matrix::{ColMatrix, Matrix, MatrixRng, SignMatrix};
use biq_quant::packing::{PackedRowsU32, PackedRowsU64};
use proptest::prelude::*;

fn int_matrix(max_r: usize, max_c: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_r, 1..=max_c).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-4i32..=4, r * c)
            .prop_map(move |v| Matrix::from_vec(r, c, v.iter().map(|&x| x as f32).collect()))
    })
}

fn int_inputs(n: usize, max_b: usize, seed: u64) -> ColMatrix {
    MatrixRng::seed_from(seed).small_int_col(n, 1 + (seed as usize % max_b), 4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// naive == blocked == parallel-naive == parallel-blocked, bit-exact on
    /// integer data for arbitrary shapes.
    #[test]
    fn dense_kernels_agree(w in int_matrix(20, 40), seed in any::<u64>()) {
        let x = int_inputs(w.cols(), 6, seed);
        let y = gemm_naive(&w, &x);
        let blocked = gemm_blocked(&w, &x);
        let pn = par_gemm_naive(&w, &x);
        let pb = par_gemm_blocked(&w, &x);
        prop_assert_eq!(y.as_slice(), blocked.as_slice());
        prop_assert_eq!(y.as_slice(), pn.as_slice());
        prop_assert_eq!(y.as_slice(), pb.as_slice());
    }

    /// GEMV kernels agree with the GEMM kernels' first column.
    #[test]
    fn gemv_consistency(w in int_matrix(16, 30), seed in any::<u64>()) {
        let x = int_inputs(w.cols(), 1, seed);
        let y = gemm_naive(&w, &x);
        prop_assert_eq!(y.col_to_vec(0), gemv_naive(&w, x.col(0)));
        prop_assert_eq!(y.col_to_vec(0), gemv_blocked(&w, x.col(0)));
    }

    /// Unpack-GEMM (both variants) equals sGEMM on the same signs.
    #[test]
    fn unpack_gemm_correct(
        (rows, cols) in (1usize..=16, 1usize..=80),
        seed in any::<u64>(),
    ) {
        let signs = MatrixRng::seed_from(seed).signs(rows, cols);
        let x = int_inputs(cols, 4, seed ^ 0x9e37);
        let dense = DenseBinaryWeights::unscaled(&signs);
        let y_ref = dense.sgemm_naive(&x);
        let packed = PackedRowsU32::pack(&signs);
        let y_unpack = gemm_with_unpack(&packed, &x);
        let y_amortized = gemm_with_unpack_amortized(&packed, &x);
        prop_assert_eq!(y_ref.as_slice(), y_unpack.as_slice());
        prop_assert_eq!(y_ref.as_slice(), y_amortized.as_slice());
    }

    /// XNOR equals dense sign GEMM for arbitrary sign operands.
    #[test]
    fn xnor_correct(
        (m, n, b) in (1usize..=12, 1usize..=100, 1usize..=5),
        seed in any::<u64>(),
    ) {
        let mut g = MatrixRng::seed_from(seed);
        let wsigns = g.signs(m, n);
        let xsigns: SignMatrix = g.signs(n, b);
        let w = XnorWeights::new(vec![(vec![1.0; m], PackedRowsU64::pack(&wsigns))]);
        let y = xnor_gemm_presigned(&w, &xsigns);
        let y_ref = gemm_naive(&wsigns.to_f32(), &xsigns.to_f32().to_col_major());
        prop_assert_eq!(y.as_slice(), y_ref.as_slice());
    }
}
