//! Baseline matrix-multiplication kernels the paper compares BiQGEMM against.
//!
//! Everything here computes `Y = W · X` with `W : m × n` (row-major),
//! `X : n × b` (column-major) and `Y : m × b` (row-major) — the shared
//! convention of the workspace.
//!
//! | paper name | this crate | notes |
//! |------------|-----------|-------|
//! | `kCpu` \[51\] / `kGpu` \[53\] | [`naive`] | textbook triple loop |
//! | `eigen` / `mkl` / `cublas` | [`blocked`] (+[`parallel`]) | cache-blocked, register-tiled, autovectorised fp32 GEMM — our stand-in for a vendor-tuned library |
//! | `sGEMM` | [`packed_sgemm`] | 1-bit weights stored one per 32-bit container: same speed as fp32 GEMM, no packing benefit |
//! | `w/ unpack` | [`unpack_gemm::gemm_with_unpack`] | bit-packed weights expanded via Algorithm 3 before multiplying (Fig. 9) |
//! | `w/o unpack` | [`unpack_gemm::gemm_without_unpack`] | multiplies the packed words directly — **wrong results by design**, a memory-bandwidth probe (Fig. 9) |
//! | `xnor` \[19\]\[22\] | [`xnor`] | weights *and* activations binarised; XNOR + popcount (Table IV) |

pub mod blocked;
pub mod int8;
pub mod naive;
pub mod packed_sgemm;
pub mod parallel;
pub mod unpack_gemm;
pub mod xnor;

pub use blocked::{gemm_blocked, gemm_blocked_into, gemv_blocked};
pub use naive::{gemm_naive, gemm_naive_into, gemv_naive};
pub use parallel::{par_gemm_blocked, par_gemm_blocked_into, par_gemm_naive};

/// Algorithm 3 as an inlined stack-array unpack (hot path of
/// [`unpack_gemm::gemm_with_unpack`]).
#[inline(always)]
pub(crate) fn unpack_word_inline(x: u32) -> [f32; 32] {
    let mut w = [0.0f32; 32];
    for (i, wi) in w.iter_mut().enumerate() {
        *wi = (((x >> i) & 1) as i32 * 2 - 1) as f32;
    }
    w
}
