//! XNOR-popcount GEMM (Rastegari et al. \[19\], Courbariaux et al. \[22\]) —
//! the `xnor` baseline of Table IV.
//!
//! Both operands are binarised. A dot product of two `{−1,+1}` vectors packed
//! LSB-first into words is
//!
//! ```text
//! dot = 2 · popcount(!(a ^ b) & mask) − valid_bits
//! ```
//!
//! because matching bits contribute `+1` and differing bits `−1`. Scales are
//! applied per weight row (`α_i`) and per input column (`γ_j`).
//!
//! Activation binarisation happens **on the fly** (dynamic quantization),
//! mirroring the real inference cost the paper attributes to
//! activation-quantizing schemes. Multi-bit weights/activations (`β_w`,
//! `β_a`) nest as in the paper's complexity expression
//! `O(β_w · β_a · m · n/32 · b)`.

use biq_matrix::store::PodStore;
use biq_matrix::{ColMatrix, Matrix};
use biq_quant::packing::{pack_signs_u64, PackedRowsU64};

/// XNOR-ready weights: one packed sign plane per weight bit, each with
/// per-row scales.
///
/// Scales and words live in shared-capable storage ([`PodStore`] /
/// [`PackedRowsU64::from_shared`]), so planes deserialized from a model
/// artifact borrow the artifact buffer instead of re-allocating.
#[derive(Clone, Debug)]
pub struct XnorWeights {
    planes: Vec<(PodStore<f32>, PackedRowsU64)>,
    rows: usize,
    cols: usize,
}

impl XnorWeights {
    /// Builds from `(per-row scales, packed signs)` planes.
    ///
    /// # Panics
    /// Panics if planes are empty or disagree in shape.
    pub fn new(planes: Vec<(Vec<f32>, PackedRowsU64)>) -> Self {
        Self::from_plane_stores(planes.into_iter().map(|(s, p)| (s.into(), p)).collect())
    }

    /// [`XnorWeights::new`] over shared-capable scale storage — the
    /// zero-copy artifact loading path.
    ///
    /// # Panics
    /// Panics if planes are empty or disagree in shape.
    pub fn from_plane_stores(planes: Vec<(PodStore<f32>, PackedRowsU64)>) -> Self {
        assert!(!planes.is_empty(), "at least one plane required");
        let rows = planes[0].1.rows();
        let cols = planes[0].1.cols();
        for (scales, p) in &planes {
            assert_eq!(p.rows(), rows, "plane row mismatch");
            assert_eq!(p.cols(), cols, "plane col mismatch");
            assert_eq!(scales.len(), rows, "scale length mismatch");
        }
        Self { planes, rows, cols }
    }

    /// From a multi-bit binary-coding quantized matrix.
    pub fn from_multibit(q: &biq_quant::MultiBitMatrix) -> Self {
        let planes =
            q.planes().iter().map(|p| (p.scales.clone(), PackedRowsU64::pack(&p.signs))).collect();
        Self::new(planes)
    }

    /// Number of weight bits `β_w`.
    pub fn bits(&self) -> usize {
        self.planes.len()
    }

    /// Output size `m`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input size `n`.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The `(per-row scales, packed signs)` planes — the payload a model
    /// artifact serializes.
    pub fn planes(&self) -> &[(PodStore<f32>, PackedRowsU64)] {
        &self.planes
    }
}

/// One binarised activation column: packed signs plus its scale `γ`.
struct BinColumn {
    words: Vec<u64>,
    gamma: f32,
}

/// Binarises every column of `x` with 1-bit greedy quantization
/// (`γ = mean |x|`, signs of `x`).
fn binarize_columns(x: &ColMatrix) -> Vec<BinColumn> {
    (0..x.cols())
        .map(|alpha| {
            let col = x.col(alpha);
            let gamma = col.iter().map(|v| v.abs()).sum::<f32>() / col.len() as f32;
            let signs: Vec<i8> = col.iter().map(|&v| if v >= 0.0 { 1 } else { -1 }).collect();
            BinColumn { words: pack_signs_u64(&signs), gamma }
        })
        .collect()
}

/// Packed ±1 dot product via XNOR + popcount.
#[inline]
fn xnor_dot(a: &[u64], b: &[u64], n: usize, tail_mask: u64) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut matched: u32 = 0;
    let last = a.len() - 1;
    for t in 0..=last {
        let mut same = !(a[t] ^ b[t]);
        if t == last {
            same &= tail_mask;
        }
        matched += same.count_ones();
    }
    2 * matched as i32 - n as i32
}

/// Full XNOR GEMM: binarises activations (1 bit, dynamic) and multiplies
/// against multi-bit XNOR weights.
///
/// # Panics
/// Panics if `x.rows() != w.cols()`.
pub fn xnor_gemm(w: &XnorWeights, x: &ColMatrix) -> Matrix {
    assert_eq!(x.rows(), w.cols(), "inner dimension mismatch");
    let (m, b, n) = (w.rows, x.cols(), w.cols);
    let bin = binarize_columns(x);
    let mut y = Matrix::zeros(m, b);
    let tail = w.planes[0].1.tail_mask();
    for (scales, packed) in &w.planes {
        for (i, &alpha_i) in scales.iter().enumerate() {
            let wrow = packed.row(i);
            let yrow = y.row_mut(i);
            for (col, ya) in bin.iter().zip(yrow.iter_mut()) {
                let d = xnor_dot(wrow, &col.words, n, tail);
                *ya += alpha_i * col.gamma * d as f32;
            }
        }
    }
    y
}

/// XNOR GEMM against *pre-binarised* sign activations (no dynamic
/// quantization, exact when inputs are genuinely ±1) — used by tests and the
/// Table IV 1-bit/1-bit configuration.
pub fn xnor_gemm_presigned(w: &XnorWeights, x_signs: &biq_matrix::SignMatrix) -> Matrix {
    assert_eq!(x_signs.rows(), w.cols(), "inner dimension mismatch");
    let (m, b, n) = (w.rows, x_signs.cols(), w.cols);
    let cols: Vec<Vec<u64>> = (0..b)
        .map(|alpha| {
            let signs: Vec<i8> = (0..n).map(|k| x_signs.get(k, alpha)).collect();
            pack_signs_u64(&signs)
        })
        .collect();
    let tail = w.planes[0].1.tail_mask();
    let mut y = Matrix::zeros(m, b);
    for (scales, packed) in &w.planes {
        for (i, &alpha_i) in scales.iter().enumerate() {
            let wrow = packed.row(i);
            let yrow = y.row_mut(i);
            for (col, ya) in cols.iter().zip(yrow.iter_mut()) {
                *ya += alpha_i * xnor_dot(wrow, col, n, tail) as f32;
            }
        }
    }
    y
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-style loops read clearer in reference checks
mod tests {
    use super::*;
    use crate::naive::gemm_naive;
    use biq_matrix::MatrixRng;
    use biq_quant::greedy_quantize_matrix_rowwise;

    #[test]
    fn xnor_dot_matches_scalar_dot() {
        let mut g = MatrixRng::seed_from(100);
        for n in [1usize, 63, 64, 65, 200] {
            let a = g.signs(1, n);
            let b = g.signs(1, n);
            let pa = PackedRowsU64::pack(&a);
            let pb = PackedRowsU64::pack(&b);
            let expected: i32 = (0..n).map(|j| (a.get(0, j) as i32) * (b.get(0, j) as i32)).sum();
            let got = xnor_dot(pa.row(0), pb.row(0), n, pa.tail_mask());
            assert_eq!(got, expected, "n = {n}");
        }
    }

    #[test]
    fn presigned_xnor_equals_float_gemm_on_signs() {
        let mut g = MatrixRng::seed_from(101);
        let wsigns = g.signs(13, 70);
        let xsigns = g.signs(70, 5);
        let w = XnorWeights::new(vec![(vec![1.0; 13], PackedRowsU64::pack(&wsigns))]);
        let y = xnor_gemm_presigned(&w, &xsigns);
        let y_ref = gemm_naive(&wsigns.to_f32(), &xsigns.to_f32().to_col_major());
        assert_eq!(y.as_slice(), y_ref.as_slice());
    }

    #[test]
    fn dynamic_binarization_matches_reference_quantized_product() {
        // y_xnor must equal (α ∘ B) · (γ ∘ s) computed densely.
        let mut g = MatrixRng::seed_from(102);
        let wsigns = g.signs(6, 40);
        let scales: Vec<f32> = (0..6).map(|i| 0.5 + i as f32 * 0.1).collect();
        let x = g.gaussian_col(40, 3, 0.0, 1.0);
        let w = XnorWeights::new(vec![(scales.clone(), PackedRowsU64::pack(&wsigns))]);
        let y = xnor_gemm(&w, &x);
        // Dense reference of the same quantized computation.
        for alpha in 0..3 {
            let col = x.col(alpha);
            let gamma = col.iter().map(|v| v.abs()).sum::<f32>() / 40.0;
            for i in 0..6 {
                let mut d = 0i32;
                for k in 0..40 {
                    let s = if col[k] >= 0.0 { 1 } else { -1 };
                    d += (wsigns.get(i, k) as i32) * s;
                }
                let expected = scales[i] * gamma * d as f32;
                let got = y.get(i, alpha);
                assert!((got - expected).abs() < 1e-4, "({i},{alpha}): {got} vs {expected}");
            }
        }
    }

    #[test]
    fn multibit_weights_accumulate_planes() {
        let mut g = MatrixRng::seed_from(103);
        let wf = g.gaussian(5, 64, 0.0, 1.0);
        let q = greedy_quantize_matrix_rowwise(&wf, 2);
        let w = XnorWeights::from_multibit(&q);
        assert_eq!(w.bits(), 2);
        let xsigns = g.signs(64, 2);
        let y = xnor_gemm_presigned(&w, &xsigns);
        let y_ref = gemm_naive(&q.dequantize(), &xsigns.to_f32().to_col_major());
        biq_matrix::assert_allclose(&y, &y_ref, 1e-4, 1e-4);
    }
}
