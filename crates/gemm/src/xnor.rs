//! XNOR-popcount GEMM (Rastegari et al. \[19\], Courbariaux et al. \[22\]) —
//! the `xnor` baseline of Table IV.
//!
//! Both operands are binarised. A dot product of two `{−1,+1}` vectors packed
//! LSB-first into words is
//!
//! ```text
//! dot = 2 · popcount(!(a ^ b) & mask) − valid_bits
//! ```
//!
//! because matching bits contribute `+1` and differing bits `−1`. Scales are
//! applied per weight row (`α_i`) and per input column (`γ_j`).
//!
//! Activation binarisation happens **on the fly** (dynamic quantization),
//! mirroring the real inference cost the paper attributes to
//! activation-quantizing schemes. Multi-bit weights/activations (`β_w`,
//! `β_a`) nest as in the paper's complexity expression
//! `O(β_w · β_a · m · n/32 · b)`.
//!
//! ## Kernel levels
//!
//! The word-wise XNOR + popcount reduction dispatches on the plan's
//! resolved [`ResolvedKernel`]: AVX2 and AVX-512 run a byte-shuffle
//! (Muła) popcount over 4 / 8 words per step; Scalar and NEON share the
//! portable `count_ones` body (LLVM lowers it to `popcnt` / `cnt`+`addv`
//! — an implementation choice for those levels, not a remap). The
//! reduction is pure integer arithmetic, so every level is exactly equal,
//! and the fp32 scale application is order-identical across levels.

use biq_matrix::store::PodStore;
use biq_matrix::{ColMatrix, Matrix};
use biq_quant::packing::{pack_signs_u64, PackedRowsU64};
use biqgemm_core::{KernelLevel, ResolvedKernel};

/// XNOR-ready weights: one packed sign plane per weight bit, each with
/// per-row scales.
///
/// Scales and words live in shared-capable storage ([`PodStore`] /
/// [`PackedRowsU64::from_shared`]), so planes deserialized from a model
/// artifact borrow the artifact buffer instead of re-allocating.
#[derive(Clone, Debug)]
pub struct XnorWeights {
    planes: Vec<(PodStore<f32>, PackedRowsU64)>,
    rows: usize,
    cols: usize,
}

impl XnorWeights {
    /// Builds from `(per-row scales, packed signs)` planes.
    ///
    /// # Panics
    /// Panics if planes are empty or disagree in shape.
    pub fn new(planes: Vec<(Vec<f32>, PackedRowsU64)>) -> Self {
        Self::from_plane_stores(planes.into_iter().map(|(s, p)| (s.into(), p)).collect())
    }

    /// [`XnorWeights::new`] over shared-capable scale storage — the
    /// zero-copy artifact loading path.
    ///
    /// # Panics
    /// Panics if planes are empty or disagree in shape.
    pub fn from_plane_stores(planes: Vec<(PodStore<f32>, PackedRowsU64)>) -> Self {
        assert!(!planes.is_empty(), "at least one plane required");
        let rows = planes[0].1.rows();
        let cols = planes[0].1.cols();
        for (scales, p) in &planes {
            assert_eq!(p.rows(), rows, "plane row mismatch");
            assert_eq!(p.cols(), cols, "plane col mismatch");
            assert_eq!(scales.len(), rows, "scale length mismatch");
        }
        Self { planes, rows, cols }
    }

    /// From a multi-bit binary-coding quantized matrix.
    pub fn from_multibit(q: &biq_quant::MultiBitMatrix) -> Self {
        let planes =
            q.planes().iter().map(|p| (p.scales.clone(), PackedRowsU64::pack(&p.signs))).collect();
        Self::new(planes)
    }

    /// Number of weight bits `β_w`.
    pub fn bits(&self) -> usize {
        self.planes.len()
    }

    /// Output size `m`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input size `n`.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The `(per-row scales, packed signs)` planes — the payload a model
    /// artifact serializes.
    pub fn planes(&self) -> &[(PodStore<f32>, PackedRowsU64)] {
        &self.planes
    }
}

/// One binarised activation column: packed signs plus its scale `γ`.
struct BinColumn {
    words: Vec<u64>,
    gamma: f32,
}

/// Binarises every column of `x` with 1-bit greedy quantization
/// (`γ = mean |x|`, signs of `x`).
fn binarize_columns(x: &ColMatrix) -> Vec<BinColumn> {
    (0..x.cols())
        .map(|alpha| {
            let col = x.col(alpha);
            let gamma = col.iter().map(|v| v.abs()).sum::<f32>() / col.len() as f32;
            let signs: Vec<i8> = col.iter().map(|&v| if v >= 0.0 { 1 } else { -1 }).collect();
            BinColumn { words: pack_signs_u64(&signs), gamma }
        })
        .collect()
}

/// Packed ±1 dot product via XNOR + popcount, dispatched on the resolved
/// kernel level. The tail word is always counted scalar under `tail_mask`;
/// the full words ahead of it go through [`matched_full`].
#[inline]
fn xnor_dot(a: &[u64], b: &[u64], n: usize, tail_mask: u64, k: ResolvedKernel) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let last = a.len() - 1;
    let mut matched = matched_full(&a[..last], &b[..last], k);
    matched += (!(a[last] ^ b[last]) & tail_mask).count_ones();
    2 * matched as i32 - n as i32
}

/// `Σ_t popcount(!(a[t] ^ b[t]))` over full (untailed) words.
#[inline]
fn matched_full(a: &[u64], b: &[u64], k: ResolvedKernel) -> u32 {
    match k.level() {
        // Portable body for Scalar and NEON (see the module docs).
        KernelLevel::Scalar | KernelLevel::Neon => matched_full_scalar(a, b),
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Avx2 => unsafe { x86::matched_full_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Avx512 => unsafe { x86::matched_full_avx512(a, b) },
        #[allow(unreachable_patterns)]
        other => unreachable!("kernel level {other:?} resolved on a foreign architecture"),
    }
}

#[inline]
fn matched_full_scalar(a: &[u64], b: &[u64]) -> u32 {
    let mut matched = 0u32;
    for (&av, &bv) in a.iter().zip(b) {
        matched += (!(av ^ bv)).count_ones();
    }
    matched
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    const NIBBLE_POP: [i8; 16] = [0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4];

    /// Muła byte-shuffle popcount of `!(a ^ b)`, 4 words per step.
    ///
    /// # Safety
    /// AVX2 must be available; `a.len() == b.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn matched_full_avx2(a: &[u64], b: &[u64]) -> u32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut i = 0;
        let mut total: u64 = 0;
        // SAFETY: every load covers 4 in-bounds words; the lookup shuffle
        // indexes only the low nibble of each byte.
        unsafe {
            let lookup =
                _mm256_broadcastsi128_si256(_mm_loadu_si128(NIBBLE_POP.as_ptr() as *const __m128i));
            let low_mask = _mm256_set1_epi8(0x0f);
            let ones = _mm256_set1_epi8(-1);
            let mut acc = _mm256_setzero_si256();
            while i + 4 <= n {
                let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
                let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
                let same = _mm256_xor_si256(_mm256_xor_si256(va, vb), ones);
                let lo = _mm256_and_si256(same, low_mask);
                let hi = _mm256_and_si256(_mm256_srli_epi16(same, 4), low_mask);
                let cnt = _mm256_add_epi8(
                    _mm256_shuffle_epi8(lookup, lo),
                    _mm256_shuffle_epi8(lookup, hi),
                );
                acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
                i += 4;
            }
            let mut lanes = [0u64; 4];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
            total += lanes.iter().sum::<u64>();
        }
        let mut matched = total as u32;
        for t in i..n {
            matched += (!(a[t] ^ b[t])).count_ones();
        }
        matched
    }

    /// Muła byte-shuffle popcount of `!(a ^ b)`, 8 words per step
    /// (512-bit `vpshufb`/`vpsadbw`, AVX-512BW).
    ///
    /// # Safety
    /// AVX-512F/BW must be available; `a.len() == b.len()`.
    #[target_feature(enable = "avx512f", enable = "avx512bw")]
    pub unsafe fn matched_full_avx512(a: &[u64], b: &[u64]) -> u32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut i = 0;
        let mut total: u64 = 0;
        // SAFETY: every load covers 8 in-bounds words.
        unsafe {
            let lookup =
                _mm512_broadcast_i32x4(_mm_loadu_si128(NIBBLE_POP.as_ptr() as *const __m128i));
            let low_mask = _mm512_set1_epi8(0x0f);
            let ones = _mm512_set1_epi8(-1);
            let mut acc = _mm512_setzero_si512();
            while i + 8 <= n {
                let va = _mm512_loadu_si512(a.as_ptr().add(i) as *const __m512i);
                let vb = _mm512_loadu_si512(b.as_ptr().add(i) as *const __m512i);
                let same = _mm512_xor_si512(_mm512_xor_si512(va, vb), ones);
                let lo = _mm512_and_si512(same, low_mask);
                let hi = _mm512_and_si512(_mm512_srli_epi16(same, 4), low_mask);
                let cnt = _mm512_add_epi8(
                    _mm512_shuffle_epi8(lookup, lo),
                    _mm512_shuffle_epi8(lookup, hi),
                );
                acc = _mm512_add_epi64(acc, _mm512_sad_epu8(cnt, _mm512_setzero_si512()));
                i += 8;
            }
            let mut lanes = [0u64; 8];
            _mm512_storeu_si512(lanes.as_mut_ptr() as *mut __m512i, acc);
            total += lanes.iter().sum::<u64>();
        }
        let mut matched = total as u32;
        for t in i..n {
            matched += (!(a[t] ^ b[t])).count_ones();
        }
        matched
    }

    /// Signed `i8 × i8 → i32` dot product: sign-extend to `i16`, `madd`
    /// pairs into `i32`, accumulate. 32 values per step.
    ///
    /// # Safety
    /// AVX2 must be available; `a.len() == b.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut i = 0;
        let mut sum: i32 = 0;
        // SAFETY: every load covers 32 in-bounds bytes.
        unsafe {
            let mut acc = _mm256_setzero_si256();
            while i + 32 <= n {
                let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
                let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
                let a_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(va));
                let a_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1));
                let b_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb));
                let b_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1));
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_lo, b_lo));
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_hi, b_hi));
                i += 32;
            }
            let mut lanes = [0i32; 8];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
            sum += lanes.iter().sum::<i32>();
        }
        for t in i..n {
            sum += a[t] as i32 * b[t] as i32;
        }
        sum
    }

    /// Signed `i8 × i8 → i32` dot product, 64 values per step (AVX-512BW
    /// `vpmaddwd`).
    ///
    /// # Safety
    /// AVX-512F/BW must be available; `a.len() == b.len()`.
    #[target_feature(enable = "avx512f", enable = "avx512bw")]
    pub unsafe fn dot_i8_avx512(a: &[i8], b: &[i8]) -> i32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let mut i = 0;
        let mut sum: i32 = 0;
        // SAFETY: every load covers 64 in-bounds bytes.
        unsafe {
            let mut acc = _mm512_setzero_si512();
            while i + 64 <= n {
                let va = _mm512_loadu_si512(a.as_ptr().add(i) as *const __m512i);
                let vb = _mm512_loadu_si512(b.as_ptr().add(i) as *const __m512i);
                let a_lo = _mm512_cvtepi8_epi16(_mm512_castsi512_si256(va));
                let a_hi = _mm512_cvtepi8_epi16(_mm512_extracti64x4_epi64(va, 1));
                let b_lo = _mm512_cvtepi8_epi16(_mm512_castsi512_si256(vb));
                let b_hi = _mm512_cvtepi8_epi16(_mm512_extracti64x4_epi64(vb, 1));
                acc = _mm512_add_epi32(acc, _mm512_madd_epi16(a_lo, b_lo));
                acc = _mm512_add_epi32(acc, _mm512_madd_epi16(a_hi, b_hi));
                i += 64;
            }
            let mut lanes = [0i32; 16];
            _mm512_storeu_si512(lanes.as_mut_ptr() as *mut __m512i, acc);
            sum += lanes.iter().sum::<i32>();
        }
        for t in i..n {
            sum += a[t] as i32 * b[t] as i32;
        }
        sum
    }
}

/// Signed `i8 × i8 → i32` dot product at the resolved kernel level (used
/// by the int8 pipeline; integer arithmetic — every level is exactly
/// equal).
#[inline]
pub(crate) fn dot_i8(a: &[i8], b: &[i8], k: ResolvedKernel) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    match k.level() {
        // Portable body for Scalar and NEON (see the module docs).
        KernelLevel::Scalar | KernelLevel::Neon => {
            let mut s = 0i32;
            for (&av, &bv) in a.iter().zip(b) {
                s += av as i32 * bv as i32;
            }
            s
        }
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Avx2 => unsafe { x86::dot_i8_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Avx512 => unsafe { x86::dot_i8_avx512(a, b) },
        #[allow(unreachable_patterns)]
        other => unreachable!("kernel level {other:?} resolved on a foreign architecture"),
    }
}

/// Full XNOR GEMM: binarises activations (1 bit, dynamic) and multiplies
/// against multi-bit XNOR weights, the popcount reduction running at the
/// resolved kernel level `k` (pinned by the caller's plan).
///
/// # Panics
/// Panics if `x.rows() != w.cols()`.
pub fn xnor_gemm(w: &XnorWeights, x: &ColMatrix, k: ResolvedKernel) -> Matrix {
    assert_eq!(x.rows(), w.cols(), "inner dimension mismatch");
    let (m, b, n) = (w.rows, x.cols(), w.cols);
    let bin = binarize_columns(x);
    let mut y = Matrix::zeros(m, b);
    let tail = w.planes[0].1.tail_mask();
    for (scales, packed) in &w.planes {
        for (i, &alpha_i) in scales.iter().enumerate() {
            let wrow = packed.row(i);
            let yrow = y.row_mut(i);
            for (col, ya) in bin.iter().zip(yrow.iter_mut()) {
                let d = xnor_dot(wrow, &col.words, n, tail, k);
                *ya += alpha_i * col.gamma * d as f32;
            }
        }
    }
    y
}

/// XNOR GEMM against *pre-binarised* sign activations (no dynamic
/// quantization, exact when inputs are genuinely ±1) — used by tests and the
/// Table IV 1-bit/1-bit configuration.
pub fn xnor_gemm_presigned(w: &XnorWeights, x_signs: &biq_matrix::SignMatrix) -> Matrix {
    assert_eq!(x_signs.rows(), w.cols(), "inner dimension mismatch");
    let (m, b, n) = (w.rows, x_signs.cols(), w.cols);
    let cols: Vec<Vec<u64>> = (0..b)
        .map(|alpha| {
            let signs: Vec<i8> = (0..n).map(|k| x_signs.get(k, alpha)).collect();
            pack_signs_u64(&signs)
        })
        .collect();
    let tail = w.planes[0].1.tail_mask();
    let mut y = Matrix::zeros(m, b);
    let k = ResolvedKernel::scalar();
    for (scales, packed) in &w.planes {
        for (i, &alpha_i) in scales.iter().enumerate() {
            let wrow = packed.row(i);
            let yrow = y.row_mut(i);
            for (col, ya) in cols.iter().zip(yrow.iter_mut()) {
                *ya += alpha_i * xnor_dot(wrow, col, n, tail, k) as f32;
            }
        }
    }
    y
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-style loops read clearer in reference checks
mod tests {
    use super::*;
    use crate::naive::gemm_naive;
    use biq_matrix::MatrixRng;
    use biq_quant::greedy_quantize_matrix_rowwise;

    #[test]
    fn xnor_dot_matches_scalar_dot() {
        let mut g = MatrixRng::seed_from(100);
        for n in [1usize, 63, 64, 65, 200] {
            let a = g.signs(1, n);
            let b = g.signs(1, n);
            let pa = PackedRowsU64::pack(&a);
            let pb = PackedRowsU64::pack(&b);
            let expected: i32 = (0..n).map(|j| (a.get(0, j) as i32) * (b.get(0, j) as i32)).sum();
            for level in biqgemm_core::simd::supported_levels() {
                let k = biqgemm_core::KernelRequest::Exact(level).resolve().unwrap();
                let got = xnor_dot(pa.row(0), pb.row(0), n, pa.tail_mask(), k);
                assert_eq!(got, expected, "n = {n} level = {level}");
            }
        }
    }

    #[test]
    fn presigned_xnor_equals_float_gemm_on_signs() {
        let mut g = MatrixRng::seed_from(101);
        let wsigns = g.signs(13, 70);
        let xsigns = g.signs(70, 5);
        let w = XnorWeights::new(vec![(vec![1.0; 13], PackedRowsU64::pack(&wsigns))]);
        let y = xnor_gemm_presigned(&w, &xsigns);
        let y_ref = gemm_naive(&wsigns.to_f32(), &xsigns.to_f32().to_col_major());
        assert_eq!(y.as_slice(), y_ref.as_slice());
    }

    #[test]
    fn dynamic_binarization_matches_reference_quantized_product() {
        // y_xnor must equal (α ∘ B) · (γ ∘ s) computed densely.
        let mut g = MatrixRng::seed_from(102);
        let wsigns = g.signs(6, 40);
        let scales: Vec<f32> = (0..6).map(|i| 0.5 + i as f32 * 0.1).collect();
        let x = g.gaussian_col(40, 3, 0.0, 1.0);
        let w = XnorWeights::new(vec![(scales.clone(), PackedRowsU64::pack(&wsigns))]);
        let y = xnor_gemm(&w, &x, ResolvedKernel::scalar());
        // Dense reference of the same quantized computation.
        for alpha in 0..3 {
            let col = x.col(alpha);
            let gamma = col.iter().map(|v| v.abs()).sum::<f32>() / 40.0;
            for i in 0..6 {
                let mut d = 0i32;
                for k in 0..40 {
                    let s = if col[k] >= 0.0 { 1 } else { -1 };
                    d += (wsigns.get(i, k) as i32) * s;
                }
                let expected = scales[i] * gamma * d as f32;
                let got = y.get(i, alpha);
                assert!((got - expected).abs() < 1e-4, "({i},{alpha}): {got} vs {expected}");
            }
        }
    }

    #[test]
    fn multibit_weights_accumulate_planes() {
        let mut g = MatrixRng::seed_from(103);
        let wf = g.gaussian(5, 64, 0.0, 1.0);
        let q = greedy_quantize_matrix_rowwise(&wf, 2);
        let w = XnorWeights::from_multibit(&q);
        assert_eq!(w.bits(), 2);
        let xsigns = g.signs(64, 2);
        let y = xnor_gemm_presigned(&w, &xsigns);
        let y_ref = gemm_naive(&q.dequantize(), &xsigns.to_f32().to_col_major());
        biq_matrix::assert_allclose(&y, &y_ref, 1e-4, 1e-4);
    }
}
