//! Rayon-parallel drivers for the baseline kernels.
//!
//! Output rows are disjoint across threads, so each worker writes its own
//! row-block of `Y` without synchronisation (`par_chunks_mut` hands out
//! non-overlapping `&mut` slices — data-race freedom is structural).
//!
//! Thread count is whatever the ambient rayon pool provides; the bench
//! harness pins pools explicitly when an experiment needs a fixed count.

use biq_matrix::{ColMatrix, Matrix};
use rayon::prelude::*;

/// Minimum rows per parallel task, to amortise scheduling overhead.
const MIN_ROWS_PER_TASK: usize = 16;

/// Parallel naive GEMM (`kGpu` analog: many simple workers, no blocking).
pub fn par_gemm_naive(w: &Matrix, x: &ColMatrix) -> Matrix {
    assert_eq!(x.rows(), w.cols(), "gemm inner dimension mismatch");
    let (m, b) = (w.rows(), x.cols());
    let mut y = Matrix::zeros(m, b);
    let rows_per_task = rows_per_task(m);
    y.as_mut_slice().par_chunks_mut(rows_per_task * b).enumerate().for_each(|(t, yblock)| {
        let row0 = t * rows_per_task;
        let rows = yblock.len() / b;
        for r in 0..rows {
            let wrow = w.row(row0 + r);
            let yrow = &mut yblock[r * b..(r + 1) * b];
            for (alpha, ya) in yrow.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for (a, v) in wrow.iter().zip(x.col(alpha)) {
                    acc += a * v;
                }
                *ya = acc;
            }
        }
    });
    y
}

/// Parallel blocked GEMM (`cublas`/multi-thread `mkl` analog).
pub fn par_gemm_blocked(w: &Matrix, x: &ColMatrix) -> Matrix {
    let mut y = Matrix::zeros(w.rows(), x.cols());
    let mut pack = Vec::new();
    par_gemm_blocked_into(w, x, &mut pack, y.as_mut_slice());
    y
}

/// Parallel blocked GEMM into a caller-provided row-major `m × b` buffer
/// (overwritten), packing the `X` panel into reusable caller scratch — the
/// form the runtime executor dispatches to. Worker bookkeeping still
/// allocates inside the thread driver; only the data-plane buffers are
/// caller-owned.
///
/// # Panics
/// Panics if `x.rows() != w.cols()` or `y.len() != m·b`.
pub fn par_gemm_blocked_into(w: &Matrix, x: &ColMatrix, pack: &mut Vec<f32>, y: &mut [f32]) {
    assert_eq!(x.rows(), w.cols(), "gemm inner dimension mismatch");
    let (m, b) = (w.rows(), x.cols());
    assert_eq!(y.len(), m * b, "output buffer must hold m·b floats");
    if b == 1 {
        par_gemv_into(w, x.col(0), y);
        return;
    }
    crate::blocked::pack_input_row_major_into(x, pack);
    let xr = &pack[..x.rows() * b];
    y.fill(0.0);
    let rows_per_task = rows_per_task(m);
    y.par_chunks_mut(rows_per_task * b).enumerate().for_each(|(t, yblock)| {
        let row0 = t * rows_per_task;
        let rows = yblock.len() / b;
        blocked_kernel_relative(&RowShiftedMatrix { w, row0 }, xr, b, rows, yblock);
    });
}

/// A borrowed view of `w` with rows shifted by `row0`.
struct RowShiftedMatrix<'a> {
    w: &'a Matrix,
    row0: usize,
}

impl RowShiftedMatrix<'_> {
    #[inline]
    fn row(&self, i: usize) -> &[f32] {
        self.w.row(self.row0 + i)
    }
    #[inline]
    fn cols(&self) -> usize {
        self.w.cols()
    }
}

/// Relative-row variant of the blocked kernel (mirrors
/// `blocked::gemm_blocked_packed`).
fn blocked_kernel_relative(
    w: &RowShiftedMatrix<'_>,
    xr: &[f32],
    b: usize,
    rows: usize,
    y: &mut [f32],
) {
    const MR: usize = 4;
    const KC: usize = 256;
    let n = w.cols();
    let mut k0 = 0;
    while k0 < n {
        let kc = KC.min(n - k0);
        let mut i = 0;
        while i + MR <= rows {
            let (r0, rest) = y[i * b..].split_at_mut(b);
            let (r1, rest) = rest.split_at_mut(b);
            let (r2, rest) = rest.split_at_mut(b);
            let r3 = &mut rest[..b];
            let w0 = &w.row(i)[k0..k0 + kc];
            let w1 = &w.row(i + 1)[k0..k0 + kc];
            let w2 = &w.row(i + 2)[k0..k0 + kc];
            let w3 = &w.row(i + 3)[k0..k0 + kc];
            for (t, (((&a0, &a1), &a2), &a3)) in w0.iter().zip(w1).zip(w2).zip(w3).enumerate() {
                let xrow = &xr[(k0 + t) * b..(k0 + t) * b + b];
                for (yv, &xv) in r0.iter_mut().zip(xrow) {
                    *yv += a0 * xv;
                }
                for (yv, &xv) in r1.iter_mut().zip(xrow) {
                    *yv += a1 * xv;
                }
                for (yv, &xv) in r2.iter_mut().zip(xrow) {
                    *yv += a2 * xv;
                }
                for (yv, &xv) in r3.iter_mut().zip(xrow) {
                    *yv += a3 * xv;
                }
            }
            i += MR;
        }
        while i < rows {
            let yrow = &mut y[i * b..i * b + b];
            let wrow = &w.row(i)[k0..k0 + kc];
            for (t, &a) in wrow.iter().enumerate() {
                let xrow = &xr[(k0 + t) * b..(k0 + t) * b + b];
                for (yv, &xv) in yrow.iter_mut().zip(xrow) {
                    *yv += a * xv;
                }
            }
            i += 1;
        }
        k0 += kc;
    }
}

/// Parallel GEMV over row chunks.
fn par_gemv_into(w: &Matrix, x: &[f32], y: &mut [f32]) {
    let m = w.rows();
    let rows_per_task = rows_per_task(m);
    y.par_chunks_mut(rows_per_task).enumerate().for_each(|(t, yblock)| {
        let row0 = t * rows_per_task;
        crate::blocked::gemv_rows_into(w, x, row0, yblock);
    });
}

#[inline]
fn rows_per_task(m: usize) -> usize {
    let threads = rayon::current_num_threads().max(1);
    (m.div_ceil(threads * 4)).max(MIN_ROWS_PER_TASK.min(m.max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocked::gemm_blocked;
    use crate::naive::gemm_naive;
    use biq_matrix::MatrixRng;

    #[test]
    fn par_naive_matches_serial() {
        let mut g = MatrixRng::seed_from(70);
        for &(m, n, b) in &[(3usize, 5usize, 2usize), (64, 48, 7), (130, 200, 33)] {
            let w = g.small_int_matrix(m, n, 3);
            let x = g.small_int_col(n, b, 3);
            assert_eq!(par_gemm_naive(&w, &x).as_slice(), gemm_naive(&w, &x).as_slice());
        }
    }

    #[test]
    fn par_blocked_matches_serial_blocked() {
        let mut g = MatrixRng::seed_from(71);
        for &(m, n, b) in &[(1usize, 4usize, 5usize), (65, 300, 8), (200, 64, 32)] {
            let w = g.small_int_matrix(m, n, 2);
            let x = g.small_int_col(n, b, 2);
            assert_eq!(
                par_gemm_blocked(&w, &x).as_slice(),
                gemm_blocked(&w, &x).as_slice(),
                "mismatch at ({m},{n},{b})"
            );
        }
    }

    #[test]
    fn par_blocked_batch_one() {
        let mut g = MatrixRng::seed_from(72);
        let w = g.small_int_matrix(100, 64, 3);
        let x = g.small_int_col(64, 1, 3);
        assert_eq!(par_gemm_blocked(&w, &x).as_slice(), gemm_naive(&w, &x).as_slice());
    }
}
