//! Textbook triple-loop GEMM/GEMV — the paper's `kCpu` \[51\] / `kGpu` \[53\]
//! baseline.
//!
//! The loop order is chosen so both operands of the inner dot product are
//! contiguous (`W` rows and `X` columns), which is as good as a naive kernel
//! gets; all cache-blocking sophistication lives in [`crate::blocked`].

use biq_matrix::{ColMatrix, Matrix};

/// Naive `y = W · x` for a single input vector.
///
/// # Panics
/// Panics if `x.len() != w.cols()`.
pub fn gemv_naive(w: &Matrix, x: &[f32]) -> Vec<f32> {
    assert_eq!(x.len(), w.cols(), "gemv dimension mismatch");
    (0..w.rows()).map(|i| dot(w.row(i), x)).collect()
}

/// Naive `Y = W · X`.
///
/// # Panics
/// Panics if `x.rows() != w.cols()`.
pub fn gemm_naive(w: &Matrix, x: &ColMatrix) -> Matrix {
    let mut y = Matrix::zeros(w.rows(), x.cols());
    gemm_naive_into(w, x, y.as_mut_slice());
    y
}

/// Naive GEMM into a caller-provided row-major `m × b` buffer (overwritten)
/// — the allocation-free form the runtime executor dispatches to.
///
/// # Panics
/// Panics if `x.rows() != w.cols()` or `y.len() != m·b`.
pub fn gemm_naive_into(w: &Matrix, x: &ColMatrix, y: &mut [f32]) {
    assert_eq!(x.rows(), w.cols(), "gemm inner dimension mismatch");
    let (m, b) = (w.rows(), x.cols());
    assert_eq!(y.len(), m * b, "output buffer must hold m·b floats");
    for i in 0..m {
        let wrow = w.row(i);
        let yrow = &mut y[i * b..(i + 1) * b];
        for (alpha, ya) in yrow.iter_mut().enumerate() {
            *ya = dot(wrow, x.col(alpha));
        }
    }
}

/// Plain contiguous dot product (single accumulator — the compiler may
/// vectorise, but we deliberately do not hand-tune this baseline).
#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-style loops read clearer in reference checks
mod tests {
    use super::*;
    use biq_matrix::MatrixRng;

    #[test]
    fn identity_times_x_is_x() {
        let w = Matrix::identity(4);
        let x = ColMatrix::from_fn(4, 2, |i, j| (i + 10 * j) as f32);
        let y = gemm_naive(&w, &x);
        for a in 0..2 {
            for i in 0..4 {
                assert_eq!(y.get(i, a), x.get(i, a));
            }
        }
    }

    #[test]
    fn known_product() {
        // [[1,2],[3,4]] · [5,6]ᵀ = [17, 39]
        let w = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(gemv_naive(&w, &[5.0, 6.0]), vec![17.0, 39.0]);
    }

    #[test]
    fn gemm_matches_gemv_per_column() {
        let mut g = MatrixRng::seed_from(50);
        let w = g.gaussian(7, 9, 0.0, 1.0);
        let x = g.gaussian_col(9, 4, 0.0, 1.0);
        let y = gemm_naive(&w, &x);
        for a in 0..4 {
            let ycol = gemv_naive(&w, x.col(a));
            for i in 0..7 {
                assert_eq!(y.get(i, a), ycol[i]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_shapes_panic() {
        let w = Matrix::zeros(2, 3);
        let x = ColMatrix::zeros(4, 1);
        let _ = gemm_naive(&w, &x);
    }
}
