//! Cache-blocked, register-tiled fp32 GEMM — the workspace's stand-in for a
//! vendor-tuned library (the paper's `eigen` / `mkl` / `cublas` baselines).
//!
//! Strategy (classic three-level blocking):
//!
//! 1. the input `X` (column-major `n × b`) is packed once into row-major
//!    `n × b` so a whole batch row `X[k, :]` is contiguous;
//! 2. `k` is blocked (`KC`) to keep the packed panel hot in L2;
//! 3. rows are register-tiled `MR = 4` at a time: four output rows accumulate
//!    simultaneously against each shared `X` row, so each loaded `X[k, :]`
//!    vector is reused 4× from registers;
//! 4. the innermost loop runs over the contiguous batch dimension and
//!    autovectorises (the slice-of-known-length pattern recommended by the
//!    perf-book's bounds-check chapter).
//!
//! For `b == 1` the axpy formulation degenerates, so [`gemv_blocked`] runs a
//! row-interleaved dot-product kernel instead; [`gemm_blocked`] dispatches
//! automatically. The GEMV accumulates each output element in plain
//! ascending-`k` order — the exact per-element order of the batched kernel
//! (which adds into `y[i]` once per `k`, ascending, across `KC` blocks) —
//! so the fp32-blocked family is packing-invariant: batching a column with
//! others, or serving it alone, produces bit-identical results. ILP comes
//! from interleaving `MR` independent row sums, never from splitting one
//! row's sum across accumulators.

use biq_matrix::{ColMatrix, Matrix};

/// Rows per register tile.
const MR: usize = 4;
/// `k`-dimension block: `KC · b · 4` bytes of packed panel should stay in L2.
const KC: usize = 256;

/// Blocked `Y = W · X`. Dispatches to a GEMV kernel when `b == 1`.
///
/// # Panics
/// Panics if `x.rows() != w.cols()`.
pub fn gemm_blocked(w: &Matrix, x: &ColMatrix) -> Matrix {
    let mut y = Matrix::zeros(w.rows(), x.cols());
    let mut pack = Vec::new();
    gemm_blocked_into(w, x, &mut pack, y.as_mut_slice());
    y
}

/// Blocked GEMM into a caller-provided row-major `m × b` buffer
/// (overwritten), with the `X`-panel packed into reusable caller scratch —
/// the allocation-free form the runtime executor dispatches to.
///
/// # Panics
/// Panics if `x.rows() != w.cols()` or `y.len() != m·b`.
pub fn gemm_blocked_into(w: &Matrix, x: &ColMatrix, pack: &mut Vec<f32>, y: &mut [f32]) {
    assert_eq!(x.rows(), w.cols(), "gemm inner dimension mismatch");
    let (m, b) = (w.rows(), x.cols());
    assert_eq!(y.len(), m * b, "output buffer must hold m·b floats");
    if b == 1 {
        gemv_rows_into(w, x.col(0), 0, y);
        return;
    }
    pack_input_row_major_into(x, pack);
    y.fill(0.0);
    gemm_blocked_packed(w, pack, b, 0, m, y);
}

/// Packs a column-major `n × b` input into a row-major buffer (row `k`
/// contiguous over the batch). This is the `X`-panel packing a library GEMM
/// performs internally.
pub fn pack_input_row_major(x: &ColMatrix) -> Vec<f32> {
    let mut xr = Vec::new();
    pack_input_row_major_into(x, &mut xr);
    xr
}

/// [`pack_input_row_major`] into reusable caller scratch (grown as needed,
/// never shrunk).
pub fn pack_input_row_major_into(x: &ColMatrix, xr: &mut Vec<f32>) {
    let (n, b) = x.shape();
    if xr.len() < n * b {
        xr.resize(n * b, 0.0);
    }
    let xr = &mut xr[..n * b];
    for alpha in 0..b {
        let col = x.col(alpha);
        for (k, &v) in col.iter().enumerate() {
            xr[k * b + alpha] = v;
        }
    }
}

/// The blocked kernel over a row range `[row_start, row_end)` of `W`,
/// writing into the matching rows of `y` (a full `m × b` row-major buffer).
/// Exposed so the rayon driver can hand disjoint row ranges to threads.
pub(crate) fn gemm_blocked_packed(
    w: &Matrix,
    xr: &[f32],
    b: usize,
    row_start: usize,
    row_end: usize,
    y: &mut [f32],
) {
    let n = w.cols();
    let mut k0 = 0;
    while k0 < n {
        let kc = KC.min(n - k0);
        let mut i = row_start;
        // MR-row register tiles.
        while i + MR <= row_end {
            // Split four disjoint output rows out of `y`.
            let (head, rest) = y[i * b..].split_at_mut(b);
            let (r1, rest) = rest.split_at_mut(b);
            let (r2, rest) = rest.split_at_mut(b);
            let r3 = &mut rest[..b];
            let w0 = &w.row(i)[k0..k0 + kc];
            let w1 = &w.row(i + 1)[k0..k0 + kc];
            let w2 = &w.row(i + 2)[k0..k0 + kc];
            let w3 = &w.row(i + 3)[k0..k0 + kc];
            for (t, (((&a0, &a1), &a2), &a3)) in w0.iter().zip(w1).zip(w2).zip(w3).enumerate() {
                let xrow = &xr[(k0 + t) * b..(k0 + t) * b + b];
                // Four axpys sharing one loaded X row; each loop
                // autovectorises over the contiguous batch dimension.
                for (y0, &xv) in head.iter_mut().zip(xrow) {
                    *y0 += a0 * xv;
                }
                for (y1, &xv) in r1.iter_mut().zip(xrow) {
                    *y1 += a1 * xv;
                }
                for (y2, &xv) in r2.iter_mut().zip(xrow) {
                    *y2 += a2 * xv;
                }
                for (y3, &xv) in r3.iter_mut().zip(xrow) {
                    *y3 += a3 * xv;
                }
            }
            i += MR;
        }
        // Remainder rows.
        while i < row_end {
            let yrow = &mut y[i * b..i * b + b];
            let wrow = &w.row(i)[k0..k0 + kc];
            for (t, &a) in wrow.iter().enumerate() {
                let xrow = &xr[(k0 + t) * b..(k0 + t) * b + b];
                for (yv, &xv) in yrow.iter_mut().zip(xrow) {
                    *yv += a * xv;
                }
            }
            i += 1;
        }
        k0 += kc;
    }
}

/// Row-interleaved GEMV (`b == 1` fast path).
///
/// # Panics
/// Panics if `x.len() != w.cols()`.
pub fn gemv_blocked(w: &Matrix, x: &[f32]) -> Vec<f32> {
    assert_eq!(x.len(), w.cols(), "gemv dimension mismatch");
    let mut y = vec![0.0f32; w.rows()];
    gemv_rows_into(w, x, 0, &mut y);
    y
}

/// The width-1 kernel over rows `[row_start, row_start + y.len())` of `W`:
/// each output element is a plain ascending-`k` sequential sum — the exact
/// per-element accumulation order of [`gemm_blocked_packed`], which is what
/// makes the fp32-blocked family packing-invariant — with `MR` independent
/// row sums interleaved so the FP adds pipeline across rows instead of
/// within one (order-preserving ILP). Exposed so the rayon driver can hand
/// disjoint row blocks to threads.
pub(crate) fn gemv_rows_into(w: &Matrix, x: &[f32], row_start: usize, y: &mut [f32]) {
    debug_assert_eq!(x.len(), w.cols());
    debug_assert!(row_start + y.len() <= w.rows());
    let rows = y.len();
    let mut i = 0;
    while i + MR <= rows {
        let w0 = w.row(row_start + i);
        let w1 = w.row(row_start + i + 1);
        let w2 = w.row(row_start + i + 2);
        let w3 = w.row(row_start + i + 3);
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for ((((&xv, &a0), &a1), &a2), &a3) in x.iter().zip(w0).zip(w1).zip(w2).zip(w3) {
            s0 += a0 * xv;
            s1 += a1 * xv;
            s2 += a2 * xv;
            s3 += a3 * xv;
        }
        y[i] = s0;
        y[i + 1] = s1;
        y[i + 2] = s2;
        y[i + 3] = s3;
        i += MR;
    }
    while i < rows {
        let mut s = 0.0f32;
        for (&a, &xv) in w.row(row_start + i).iter().zip(x) {
            s += a * xv;
        }
        y[i] = s;
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{gemm_naive, gemv_naive};
    use biq_matrix::{assert_allclose, MatrixRng};

    #[test]
    fn matches_naive_on_random_shapes() {
        let mut g = MatrixRng::seed_from(60);
        for &(m, n, b) in
            &[(1usize, 1usize, 1usize), (5, 7, 3), (16, 32, 8), (33, 65, 17), (128, 100, 2)]
        {
            let w = g.gaussian(m, n, 0.0, 1.0);
            let x = g.gaussian_col(n, b, 0.0, 1.0);
            let y = gemm_blocked(&w, &x);
            let y_ref = gemm_naive(&w, &x);
            assert_allclose(&y, &y_ref, 1e-4, 1e-4);
        }
    }

    #[test]
    fn bit_exact_on_small_integers() {
        // Small-integer inputs make every accumulation order exact.
        let mut g = MatrixRng::seed_from(61);
        let w = g.small_int_matrix(37, 53, 3);
        let x = g.small_int_col(53, 9, 3);
        let y = gemm_blocked(&w, &x);
        let y_ref = gemm_naive(&w, &x);
        assert_eq!(y.as_slice(), y_ref.as_slice());
    }

    #[test]
    fn gemv_matches_naive() {
        let mut g = MatrixRng::seed_from(62);
        let w = g.small_int_matrix(21, 40, 4);
        let x: Vec<f32> = (0..40).map(|i| ((i % 7) as f32) - 3.0).collect();
        assert_eq!(gemv_blocked(&w, &x), gemv_naive(&w, &x));
    }

    #[test]
    fn batch_one_dispatch_consistent() {
        let mut g = MatrixRng::seed_from(63);
        let w = g.small_int_matrix(11, 24, 2);
        let x = g.small_int_col(24, 1, 2);
        let y = gemm_blocked(&w, &x);
        assert_eq!(y.col_to_vec(0), gemv_blocked(&w, x.col(0)));
    }

    #[test]
    fn crosses_kc_boundary() {
        // n > KC exercises the k-blocking loop.
        let mut g = MatrixRng::seed_from(64);
        let w = g.small_int_matrix(6, 1000, 1);
        let x = g.small_int_col(1000, 3, 1);
        let y = gemm_blocked(&w, &x);
        let y_ref = gemm_naive(&w, &x);
        assert_eq!(y.as_slice(), y_ref.as_slice());
    }

    #[test]
    fn pack_input_transposes_correctly() {
        let x = ColMatrix::from_fn(3, 2, |i, j| (i * 10 + j) as f32);
        let xr = pack_input_row_major(&x);
        // row k contiguous over batch
        assert_eq!(xr, vec![0.0, 1.0, 10.0, 11.0, 20.0, 21.0]);
    }

    #[test]
    fn gemv_is_the_plain_sequential_dot_bit_for_bit() {
        // The width-1 contract: every output element is an ascending-k
        // sequential sum, exactly. Gaussian data so accumulation-order
        // differences would actually show up in the bits.
        let mut g = MatrixRng::seed_from(65);
        for &(m, n) in &[(1usize, 9usize), (3, 100), (6, 31), (11, 257)] {
            let w = g.gaussian(m, n, 0.0, 1.0);
            let x = g.gaussian_col(n, 1, 0.0, 1.0);
            let y = gemv_blocked(&w, x.col(0));
            for (i, yv) in y.iter().enumerate() {
                let mut s = 0.0f32;
                for (a, xv) in w.row(i).iter().zip(x.col(0)) {
                    s += a * xv;
                }
                assert_eq!(yv.to_bits(), s.to_bits(), "row {i} of {m}x{n}");
            }
        }
    }

    #[test]
    fn packing_a_column_never_changes_its_bits() {
        // The fp32-blocked family is packing-invariant on gaussian data:
        // column j of a batched run equals the column served alone,
        // bit-identically — the property the serve batcher relies on.
        let mut g = MatrixRng::seed_from(66);
        for &(m, n, b) in &[(5usize, 7usize, 3usize), (16, 300, 5), (33, 65, 12)] {
            let w = g.gaussian(m, n, 0.0, 1.0);
            let x = g.gaussian_col(n, b, 0.0, 1.0);
            let batched = gemm_blocked(&w, &x);
            for j in 0..b {
                let alone = ColMatrix::from_vec(n, 1, x.col(j).to_vec());
                let y = gemm_blocked(&w, &alone);
                for i in 0..m {
                    assert_eq!(
                        batched.row(i)[j].to_bits(),
                        y.row(i)[0].to_bits(),
                        "({m},{n},{b}) col {j} row {i}"
                    );
                }
            }
        }
    }
}
