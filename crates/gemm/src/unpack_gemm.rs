//! GEMM over bit-packed binary weights — the Fig. 9 experiment.
//!
//! Two scenarios from Section IV-C of the paper:
//!
//! * [`gemm_with_unpack`] — the *correct* way to use packed weights with a
//!   conventional GEMM: every weight row is expanded by Algorithm 3
//!   ([`biq_quant::unpack`]) into a scratch buffer before multiplying. The
//!   runtime difference against `sGEMM` is pure decompression overhead.
//! * [`gemm_without_unpack`] — reads each packed 32-bit word, converts the
//!   *container itself* to `f32`, and multiplies it with the input as if it
//!   were a weight. The result is **numerically wrong by design**; the paper
//!   uses it to isolate the memory-bandwidth benefit of packed weights
//!   (weight traffic shrinks 32×, arithmetic count unchanged).

use biq_matrix::{ColMatrix, Matrix};
use biq_quant::packing::PackedRowsU32;
use biq_quant::unpack::unpack_row_u32;

/// Correct GEMM over packed weights: Algorithm-3 unpacking **inside the
/// inner dot product**, exactly as a naive kernel fed packed data must run
/// (the paper's `w/ unpack` scenario — unpack work scales with `m·n·b`, not
/// `m·n`, which is what makes the overhead dominate in Fig. 9).
///
/// # Panics
/// Panics if `x.rows() != packed.cols()`.
pub fn gemm_with_unpack(packed: &PackedRowsU32, x: &ColMatrix) -> Matrix {
    assert_eq!(x.rows(), packed.cols(), "inner dimension mismatch");
    let (m, n, b) = (packed.rows(), packed.cols(), x.cols());
    let mut y = Matrix::zeros(m, b);
    for i in 0..m {
        let words = packed.row(i);
        let yrow = y.row_mut(i);
        for (alpha, ya) in yrow.iter_mut().enumerate() {
            let xcol = x.col(alpha);
            let mut acc = 0.0f32;
            let mut chunks = xcol.chunks_exact(32);
            for (&word, xc) in words.iter().zip(&mut chunks) {
                let w = crate::unpack_word_inline(word);
                for (a, v) in w.iter().zip(xc) {
                    acc += a * v;
                }
            }
            let rem = chunks.remainder();
            if !rem.is_empty() {
                let w = crate::unpack_word_inline(words[n / 32]);
                for (a, v) in w.iter().zip(rem) {
                    acc += a * v;
                }
            }
            *ya = acc;
        }
    }
    y
}

/// Row-amortised variant: each weight row is unpacked **once** into a scratch
/// buffer and reused across the whole batch — the best case for unpacking
/// (overhead `∝ m·n` instead of `m·n·b`). Reported alongside the naive
/// variant in the Fig. 9 harness to bound the overhead from below.
pub fn gemm_with_unpack_amortized(packed: &PackedRowsU32, x: &ColMatrix) -> Matrix {
    assert_eq!(x.rows(), packed.cols(), "inner dimension mismatch");
    let (m, n, b) = (packed.rows(), packed.cols(), x.cols());
    let mut y = Matrix::zeros(m, b);
    // Workhorse row buffer, reused across rows (perf-book: reuse collections).
    let mut wrow = vec![0.0f32; n];
    for i in 0..m {
        unpack_row_u32(packed.row(i), &mut wrow);
        let yrow = y.row_mut(i);
        for (alpha, ya) in yrow.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for (a, v) in wrow.iter().zip(x.col(alpha)) {
                acc += a * v;
            }
            *ya = acc;
        }
    }
    y
}

/// Bandwidth probe: multiplies the packed words directly without unpacking.
///
/// Each 32-bit container is cast to `f32` and multiplied against all 32 input
/// values it covers, so the arithmetic-operation count matches a real GEMM
/// while weight memory traffic is 1/32 of it. **Results are meaningless** —
/// only the runtime is (paper, Fig. 9: "will produce incorrect result, but is
/// useful to identify performance gain by decreased memory access latency").
pub fn gemm_without_unpack(packed: &PackedRowsU32, x: &ColMatrix) -> Matrix {
    assert_eq!(x.rows(), packed.cols(), "inner dimension mismatch");
    let (m, n, b) = (packed.rows(), packed.cols(), x.cols());
    let mut y = Matrix::zeros(m, b);
    for i in 0..m {
        let words = packed.row(i);
        let yrow = y.row_mut(i);
        for (alpha, ya) in yrow.iter_mut().enumerate() {
            let xcol = x.col(alpha);
            let mut acc = 0.0f32;
            let mut chunks = xcol.chunks_exact(32);
            for (&word, xc) in words.iter().zip(&mut chunks) {
                let s = word as f32; // container reinterpreted as a "weight"
                for &v in xc {
                    acc += s * v;
                }
            }
            let rem = chunks.remainder();
            if !rem.is_empty() {
                let s = words[n / 32] as f32;
                for &v in rem {
                    acc += s * v;
                }
            }
            *ya = acc;
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::gemm_naive;
    use biq_matrix::MatrixRng;
    use biq_quant::packing::PackedRowsU32;

    #[test]
    fn with_unpack_is_correct() {
        let mut g = MatrixRng::seed_from(90);
        for &(m, n, b) in &[(4usize, 32usize, 2usize), (7, 100, 5), (16, 64, 1)] {
            let signs = g.signs(m, n);
            let packed = PackedRowsU32::pack(&signs);
            let x = g.small_int_col(n, b, 3);
            let y = gemm_with_unpack(&packed, &x);
            let y_ref = gemm_naive(&signs.to_f32(), &x);
            assert_eq!(y.as_slice(), y_ref.as_slice(), "mismatch ({m},{n},{b})");
            let y_amortized = gemm_with_unpack_amortized(&packed, &x);
            assert_eq!(
                y_amortized.as_slice(),
                y_ref.as_slice(),
                "amortized mismatch ({m},{n},{b})"
            );
        }
    }

    #[test]
    fn without_unpack_is_intentionally_wrong_but_shaped() {
        let mut g = MatrixRng::seed_from(91);
        let signs = g.signs(8, 64);
        let packed = PackedRowsU32::pack(&signs);
        let x = g.uniform_col(64, 3, 0.5, 1.0);
        let y = gemm_without_unpack(&packed, &x);
        assert_eq!(y.shape(), (8, 3));
        // With strictly positive inputs and non-trivial packed words the
        // probe's output differs from the true product (that is its point).
        let y_ref = gemm_naive(&signs.to_f32(), &x);
        assert_ne!(y.as_slice(), y_ref.as_slice());
    }

    #[test]
    fn without_unpack_touches_every_input_once_per_row() {
        // With all-(+1) signs, every word is u32::MAX; acc = MAX * Σx.
        let signs = biq_matrix::SignMatrix::ones(1, 32);
        let packed = PackedRowsU32::pack(&signs);
        let x = ColMatrix::from_column(vec![1.0; 32]);
        let y = gemm_without_unpack(&packed, &x);
        assert_eq!(y.get(0, 0), u32::MAX as f32 * 32.0);
    }
}
