//! The paper's `sGEMM` scenario: 1-bit quantized weights stored **one value
//! per 32-bit container** — i.e. a plain `f32` matrix of `±α` values.
//!
//! Because nothing is bit-packed, quantization brings **no** speed or
//! footprint benefit: the multiply runs at exactly fp32-GEMM speed. The paper
//! uses this as the honest "quantized weights on an unmodified GEMM" baseline
//! in Fig. 9/10 and Table IV (both `cublas` and `kGpu` are run this way).

use crate::blocked::gemm_blocked;
use crate::naive::gemm_naive;
use biq_matrix::{ColMatrix, Matrix, SignMatrix};

/// A 1-bit quantized weight matrix stored densely (`scale · sign` per
/// element) — the `sGEMM` operand.
#[derive(Clone, Debug)]
pub struct DenseBinaryWeights {
    dense: Matrix,
}

impl DenseBinaryWeights {
    /// Expands `(per-row scales, signs)` into the dense form.
    ///
    /// # Panics
    /// Panics if `scales.len() != signs.rows()`.
    pub fn new(scales: &[f32], signs: &SignMatrix) -> Self {
        assert_eq!(scales.len(), signs.rows(), "scale length mismatch");
        let dense =
            Matrix::from_fn(signs.rows(), signs.cols(), |i, j| scales[i] * signs.get(i, j) as f32);
        Self { dense }
    }

    /// Expands signs with unit scales (raw `±1` matrix).
    pub fn unscaled(signs: &SignMatrix) -> Self {
        Self { dense: signs.to_f32() }
    }

    /// The dense matrix.
    pub fn dense(&self) -> &Matrix {
        &self.dense
    }

    /// `sGEMM` with the naive kernel.
    pub fn sgemm_naive(&self, x: &ColMatrix) -> Matrix {
        gemm_naive(&self.dense, x)
    }

    /// `sGEMM` with the blocked kernel.
    pub fn sgemm_blocked(&self, x: &ColMatrix) -> Matrix {
        gemm_blocked(&self.dense, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biq_matrix::MatrixRng;

    #[test]
    fn scaled_expansion_matches_manual() {
        let signs = SignMatrix::from_vec(2, 2, vec![1, -1, -1, 1]);
        let w = DenseBinaryWeights::new(&[2.0, 0.5], &signs);
        assert_eq!(w.dense().as_slice(), &[2.0, -2.0, -0.5, 0.5]);
    }

    #[test]
    fn sgemm_equals_reference_signmatrix_product() {
        let mut g = MatrixRng::seed_from(80);
        let signs = g.signs(9, 16);
        let x = g.small_int_col(16, 4, 3);
        let w = DenseBinaryWeights::unscaled(&signs);
        let y = w.sgemm_naive(&x);
        let y_ref = signs.matmul(&x);
        assert_eq!(y.as_slice(), y_ref.as_slice());
    }

    #[test]
    fn naive_and_blocked_agree_bit_exactly_on_ints() {
        let mut g = MatrixRng::seed_from(81);
        let signs = g.signs(30, 64);
        let scales = vec![1.0f32; 30];
        let x = g.small_int_col(64, 6, 2);
        let w = DenseBinaryWeights::new(&scales, &signs);
        assert_eq!(w.sgemm_naive(&x).as_slice(), w.sgemm_blocked(&x).as_slice());
    }
}
