//! INT8 fixed-point GEMM — the commercial quantization scheme the paper
//! contrasts with in Section II-A.
//!
//! Uniform quantization runs the whole multiply in integers: weights are
//! quantized offline (symmetric per-row), activations **dynamically per
//! inference** (symmetric per-column), the kernel accumulates `i8×i8 → i32`,
//! and the result is rescaled back to fp32. The paper's two criticisms are
//! both measurable here:
//!
//! * dynamic activation quantization + format conversions add overhead the
//!   binary-coding path avoids ("15%∼30% computational overhead" around
//!   float-demanding ops); [`Int8Gemm::forward`] exposes the conversion and
//!   kernel phases separately so the harness can report the split;
//! * accuracy at ≤4 bits collapses (Table I), while binary-coding degrades
//!   gracefully — see `biq-quant::uniform` and the Table I proxy.

use crate::xnor::dot_i8;
use biq_matrix::store::PodStore;
use biq_matrix::{ColMatrix, Matrix};
use biqgemm_core::ResolvedKernel;

/// Offline-quantized INT8 weights: row-major `i8` with one scale per row.
///
/// Both buffers live in shared-capable storage ([`PodStore`]), so weights
/// deserialized from a model artifact borrow the artifact buffer instead of
/// re-allocating.
#[derive(Clone, Debug)]
pub struct Int8Weights {
    data: PodStore<i8>,
    row_scales: PodStore<f32>,
    rows: usize,
    cols: usize,
}

impl Int8Weights {
    /// Symmetric per-row quantization of dense fp32 weights to 8 bits.
    pub fn quantize(w: &Matrix) -> Self {
        let (rows, cols) = w.shape();
        let mut data = Vec::with_capacity(rows * cols);
        let mut row_scales = Vec::with_capacity(rows);
        for i in 0..rows {
            let row = w.row(i);
            let max_abs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
            row_scales.push(scale);
            for &v in row {
                data.push((v / scale).round().clamp(-127.0, 127.0) as i8);
            }
        }
        Self { data: data.into(), row_scales: row_scales.into(), rows, cols }
    }

    /// Reassembles weights from deserialized parts (pass shared stores for
    /// zero-copy artifact loading).
    ///
    /// # Panics
    /// Panics when buffer lengths disagree with the shape.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        data: PodStore<i8>,
        row_scales: PodStore<f32>,
    ) -> Self {
        assert_eq!(data.len(), rows * cols, "int8 buffer length mismatch");
        assert_eq!(row_scales.len(), rows, "row scale count mismatch");
        Self { data, row_scales, rows, cols }
    }

    /// Output size `m`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input size `n`.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The row-major quantized values.
    pub fn as_slice(&self) -> &[i8] {
        self.data.as_slice()
    }

    /// The per-row dequantization scales.
    pub fn row_scales(&self) -> &[f32] {
        self.row_scales.as_slice()
    }

    /// Dequantizes back to fp32 (for error measurement).
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            self.data[i * self.cols + j] as f32 * self.row_scales[i]
        })
    }

    #[inline]
    fn row(&self, i: usize) -> &[i8] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }
}

/// Phase timings of one INT8 forward pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct Int8Phases {
    /// Dynamic activation quantization + output dequantization seconds.
    pub conversion_s: f64,
    /// Integer kernel seconds.
    pub kernel_s: f64,
}

impl Int8Phases {
    /// Conversion share of the total.
    pub fn conversion_fraction(&self) -> f64 {
        let t = self.conversion_s + self.kernel_s;
        if t == 0.0 {
            0.0
        } else {
            self.conversion_s / t
        }
    }
}

/// An INT8 matmul operator.
#[derive(Clone, Debug)]
pub struct Int8Gemm {
    weights: Int8Weights,
}

impl Int8Gemm {
    /// Quantizes `w` offline.
    pub fn new(w: &Matrix) -> Self {
        Self { weights: Int8Weights::quantize(w) }
    }

    /// Wraps pre-quantized weights.
    pub fn from_weights(weights: Int8Weights) -> Self {
        Self { weights }
    }

    /// The weights.
    pub fn weights(&self) -> &Int8Weights {
        &self.weights
    }

    /// [`Int8Gemm::forward_level`] at the scalar kernel level (ablation
    /// binaries and error-measurement paths; planned execution goes
    /// through the runtime, which pins the level).
    ///
    /// # Panics
    /// Panics if `x.rows() != weights.cols()`.
    pub fn forward(&self, x: &ColMatrix, phases: &mut Int8Phases) -> Matrix {
        self.forward_level(x, phases, ResolvedKernel::scalar())
    }

    /// `Y ≈ W·X` through the fixed-point pipeline; phase timings are added
    /// to `phases`. The `i8×i8 → i32` reduction runs at the resolved
    /// kernel level `k` (integer arithmetic — every level is exactly
    /// equal).
    ///
    /// # Panics
    /// Panics if `x.rows() != weights.cols()`.
    pub fn forward_level(
        &self,
        x: &ColMatrix,
        phases: &mut Int8Phases,
        k: ResolvedKernel,
    ) -> Matrix {
        assert_eq!(x.rows(), self.weights.cols, "inner dimension mismatch");
        let (m, n, b) = (self.weights.rows, self.weights.cols, x.cols());
        // Phase 1 (conversion): dynamic symmetric per-column activation
        // quantization.
        let t0 = std::time::Instant::now();
        let mut xq = vec![0i8; n * b];
        let mut col_scales = vec![0.0f32; b];
        for alpha in 0..b {
            let col = x.col(alpha);
            let max_abs = col.iter().fold(0.0f32, |mm, &v| mm.max(v.abs()));
            let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
            col_scales[alpha] = scale;
            let dst = &mut xq[alpha * n..(alpha + 1) * n];
            for (d, &v) in dst.iter_mut().zip(col) {
                *d = (v / scale).round().clamp(-127.0, 127.0) as i8;
            }
        }
        phases.conversion_s += t0.elapsed().as_secs_f64();
        // Phase 2 (kernel): i8×i8 → i32 accumulation.
        let t1 = std::time::Instant::now();
        let mut acc = vec![0i32; m * b];
        for i in 0..m {
            let wrow = self.weights.row(i);
            for alpha in 0..b {
                let xcol = &xq[alpha * n..(alpha + 1) * n];
                acc[i * b + alpha] = dot_i8(wrow, xcol, k);
            }
        }
        phases.kernel_s += t1.elapsed().as_secs_f64();
        // Phase 1 again (conversion): rescale to fp32.
        let t2 = std::time::Instant::now();
        let mut y = Matrix::zeros(m, b);
        for i in 0..m {
            let ws = self.weights.row_scales[i];
            let yrow = y.row_mut(i);
            for (alpha, yv) in yrow.iter_mut().enumerate() {
                *yv = acc[i * b + alpha] as f32 * ws * col_scales[alpha];
            }
        }
        phases.conversion_s += t2.elapsed().as_secs_f64();
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::gemm_naive;
    use biq_matrix::MatrixRng;
    use biq_quant::error_metrics::relative_l2;

    #[test]
    fn int8_tracks_fp32_closely() {
        let mut g = MatrixRng::seed_from(900);
        let w = g.gaussian(48, 96, 0.0, 0.1);
        let x = g.gaussian_col(96, 5, 0.0, 1.0);
        let engine = Int8Gemm::new(&w);
        let mut ph = Int8Phases::default();
        let y = engine.forward(&x, &mut ph);
        let y_ref = gemm_naive(&w, &x);
        let err = relative_l2(y.as_slice(), y_ref.as_slice());
        assert!(err < 0.02, "INT8 relative error {err}");
        assert!(ph.kernel_s > 0.0 && ph.conversion_s > 0.0);
    }

    #[test]
    fn weight_round_trip_error_bounded() {
        let mut g = MatrixRng::seed_from(901);
        let w = g.gaussian(16, 64, 0.0, 1.0);
        let q = Int8Weights::quantize(&w);
        let deq = q.dequantize();
        for i in 0..16 {
            let scale = w.row(i).iter().fold(0.0f32, |m, &v| m.max(v.abs())) / 127.0;
            for (a, b) in w.row(i).iter().zip(deq.row(i)) {
                assert!((a - b).abs() <= scale / 2.0 + 1e-6);
            }
        }
    }

    #[test]
    fn exact_on_pre_quantized_values() {
        // Weights/activations already on the i8 grid -> exact product.
        let w = Matrix::from_vec(2, 2, vec![127.0, -127.0, 64.0, 1.0]);
        let x = ColMatrix::from_vec(2, 1, vec![127.0, 127.0]);
        let engine = Int8Gemm::new(&w);
        let mut ph = Int8Phases::default();
        let y = engine.forward(&x, &mut ph);
        let y_ref = gemm_naive(&w, &x);
        for (a, b) in y.as_slice().iter().zip(y_ref.as_slice()) {
            assert!((a - b).abs() <= 1e-2 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn forward_levels_exactly_equal_scalar() {
        let mut g = MatrixRng::seed_from(902);
        for n in [1usize, 31, 32, 33, 64, 65, 130] {
            let w = g.gaussian(9, n, 0.0, 1.0);
            let x = g.gaussian_col(n, 3, 0.0, 1.0);
            let engine = Int8Gemm::new(&w);
            let mut ph = Int8Phases::default();
            let want = engine.forward(&x, &mut ph);
            for level in biqgemm_core::simd::supported_levels() {
                let k = biqgemm_core::KernelRequest::Exact(level).resolve().unwrap();
                let got = engine.forward_level(&x, &mut ph, k);
                assert_eq!(want.as_slice(), got.as_slice(), "n={n} level={level}");
            }
        }
    }

    #[test]
    fn zero_weights_are_stable() {
        let w = Matrix::zeros(3, 4);
        let x = ColMatrix::from_vec(4, 2, vec![1.0; 8]);
        let mut ph = Int8Phases::default();
        let y = Int8Gemm::new(&w).forward(&x, &mut ph);
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn conversion_fraction_in_unit_range() {
        let ph = Int8Phases { conversion_s: 1.0, kernel_s: 3.0 };
        assert!((ph.conversion_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(Int8Phases::default().conversion_fraction(), 0.0);
    }
}
