//! The wire-layer correctness property: a request that crosses a real TCP
//! socket — framed, checksummed, bridged into the batcher, packed with
//! frames from **other connections**, and framed back — is bit-identical
//! to a direct [`Executor::run`] of the same column. Concurrent
//! connections, pipelining, and mixed backend families included.
//!
//! Every family is driven with **Gaussian traffic**: the packing-invariance
//! contract now covers them all on arbitrary real inputs — BiQGEMM through
//! the canonical accumulation tree (pinned by
//! `core/tests/batch_invariance.rs`), fp32-blocked through its ascending-k
//! GEMV (same per-element order as its batched kernel), and int8/xnor
//! through per-column activation quantization. The historical small-int
//! workaround for fp32-blocked is gone.

use biq_matrix::{ColMatrix, MatrixRng};
use biq_runtime::{
    compile, BackendSpec, CompiledOp, Executor, PlanBuilder, QuantMethod, Threading, WeightSource,
};
use biq_serve::net::{NetClient, NetError, NetServer, Outcome, RejectCode};
use biq_serve::{ModelRegistry, Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

/// Mixed-backend op set: every kernel family the workspace serves.
fn build_ops(seed: u64) -> (ModelRegistry, Vec<(String, Arc<CompiledOp>)>) {
    let mut g = MatrixRng::seed_from(seed);
    let mut reg = ModelRegistry::new();
    let mut ops = Vec::new();
    let specs: [(usize, usize, BackendSpec); 4] = [
        (24, 32, BackendSpec::Biq { bits: 2, method: QuantMethod::Greedy }),
        (16, 24, BackendSpec::Fp32Blocked),
        (12, 20, BackendSpec::Int8),
        (20, 16, BackendSpec::Xnor { bits: 2 }),
    ];
    for (i, (m, n, spec)) in specs.into_iter().enumerate() {
        let w = g.small_int_matrix(m, n, 2);
        let plan =
            PlanBuilder::new(m, n).batch_hint(4).backend(spec).threading(Threading::Serial).build();
        let compiled = Arc::new(compile(&plan, WeightSource::Dense(&w)));
        let name = format!("op{i}");
        reg.register_op(name.clone(), Arc::clone(&compiled));
        ops.push((name, compiled));
    }
    (reg, ops)
}

fn start_net(seed: u64) -> (NetServer, Vec<(String, Arc<CompiledOp>)>) {
    let (reg, ops) = build_ops(seed);
    let server = Server::start(
        reg,
        ServerConfig {
            workers: 2,
            batch_window: Duration::from_micros(300),
            max_batch_cols: 6,
            ..ServerConfig::default()
        },
    );
    let net = NetServer::bind("127.0.0.1:0", server).expect("bind loopback");
    (net, ops)
}

#[test]
fn single_connection_round_trip_is_bit_identical() {
    let (net, ops) = start_net(11);
    let addr = net.local_addr();
    let mut client = NetClient::connect(addr).unwrap();
    let mut g = MatrixRng::seed_from(99);
    let mut exec = Executor::new();
    for (name, op) in &ops {
        for cols in [1usize, 3] {
            // Gaussian columns: every family in the mixed set (including
            // fp32-blocked) is packing-invariant on arbitrary reals.
            let x = g.gaussian_col(op.input_size(), cols, 0.0, 1.0);
            let y = client.request(name, &x).unwrap();
            let y_ref = exec.run(op, &x);
            assert_eq!(y.shape(), (op.output_size(), cols));
            assert_eq!(y.as_slice(), y_ref.as_slice(), "{name} cols={cols} over the wire");
        }
    }
    let stats = net.shutdown();
    assert_eq!(stats.completed(), ops.len() as u64 * 2);
}

#[test]
fn concurrent_pipelining_connections_match_direct_execution() {
    let (net, ops) = start_net(23);
    let addr = net.local_addr();
    let clients = 4usize;
    let per_client = 25usize;
    std::thread::scope(|s| {
        for c in 0..clients {
            let ops = &ops;
            s.spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                let mut g = MatrixRng::seed_from(1000 + c as u64);
                let mut exec = Executor::new();
                // Pipeline in bursts of 5 so frames from the 4 connections
                // really do share batcher buckets, on gaussian traffic —
                // packing must not change a bit for any family.
                for burst in 0..per_client / 5 {
                    let mut sent = Vec::new();
                    for k in 0..5 {
                        let (name, op) = &ops[(burst + k + c) % ops.len()];
                        let x = g.gaussian_col(op.input_size(), 1, 0.0, 1.0);
                        let id = client.send(name, &x).expect("send");
                        sent.push((id, name.clone(), x));
                    }
                    for (id, name, x) in sent {
                        let (got_id, outcome) = client.recv().expect("recv");
                        assert_eq!(got_id, id, "per-connection replies are FIFO");
                        let (_, op) = ops.iter().find(|(n, _)| *n == name).unwrap();
                        match outcome {
                            Outcome::Reply(y) => {
                                let y_ref = exec.run(op, &x);
                                assert_eq!(
                                    y.as_slice(),
                                    y_ref.as_slice(),
                                    "conn {c} {name}: wire result differs from direct run"
                                );
                            }
                            Outcome::Rejected { code, msg } => {
                                panic!("conn {c} {name} rejected ({code}): {msg}")
                            }
                        }
                    }
                }
            });
        }
    });
    let stats = net.shutdown();
    assert_eq!(stats.completed(), (clients * per_client) as u64);
    assert_eq!(stats.ops.iter().map(|o| o.rejected).sum::<u64>(), 0);
}

#[test]
fn packing_invariant_families_are_bit_identical_on_gaussian_traffic() {
    // Every family answers identically however the batcher packs it, on
    // arbitrary real inputs — the serving guarantee remote clients (and
    // the CI digest smoke) rely on. Fp32-blocked joined the set when its
    // width-1 GEMV adopted the batched kernel's per-element order.
    let mut g = MatrixRng::seed_from(71);
    let mut reg = ModelRegistry::new();
    let specs: [(usize, usize, BackendSpec); 4] = [
        (24, 32, BackendSpec::Biq { bits: 2, method: QuantMethod::Greedy }),
        (16, 24, BackendSpec::Fp32Blocked),
        (12, 20, BackendSpec::Int8),
        (20, 16, BackendSpec::Xnor { bits: 2 }),
    ];
    let mut ops = Vec::new();
    for (i, (m, n, spec)) in specs.into_iter().enumerate() {
        let w = g.gaussian(m, n, 0.0, 1.0);
        let plan =
            PlanBuilder::new(m, n).batch_hint(4).backend(spec).threading(Threading::Serial).build();
        let compiled = Arc::new(compile(&plan, WeightSource::Dense(&w)));
        let name = format!("op{i}");
        reg.register_op(name.clone(), Arc::clone(&compiled));
        ops.push((name, compiled));
    }
    let server = Server::start(
        reg,
        ServerConfig {
            workers: 2,
            batch_window: Duration::from_micros(400),
            max_batch_cols: 7, // odd cap: exercises ragged tile widths
            ..ServerConfig::default()
        },
    );
    let net = NetServer::bind("127.0.0.1:0", server).expect("bind loopback");
    let addr = net.local_addr();
    std::thread::scope(|s| {
        for c in 0..3usize {
            let ops = &ops;
            s.spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                let mut g = MatrixRng::seed_from(9000 + c as u64);
                let mut exec = Executor::new();
                for round in 0..30 {
                    let (name, op) = &ops[(round + c) % ops.len()];
                    let x = g.gaussian_col(op.input_size(), 1, 0.0, 1.0);
                    let y = client.request(name, &x).expect("request");
                    let y_ref = exec.run(op, &x);
                    assert_eq!(
                        y.as_slice(),
                        y_ref.as_slice(),
                        "conn {c} {name}: packed gaussian request drifted from direct run"
                    );
                }
            });
        }
    });
    let stats = net.shutdown();
    assert_eq!(stats.completed(), 90);
}

#[test]
fn unknown_op_and_shape_mismatch_reject_without_killing_the_connection() {
    let (net, ops) = start_net(37);
    let mut client = NetClient::connect(net.local_addr()).unwrap();
    // Unknown op name.
    match client.request("no_such_op", &ColMatrix::zeros(8, 1)) {
        Err(NetError::Rejected { code: RejectCode::UnknownOp, .. }) => {}
        other => panic!("expected unknown-op reject, got {other:?}"),
    }
    // Wrong row count for a real op.
    let (name, op) = &ops[0];
    match client.request(name, &ColMatrix::zeros(op.input_size() + 1, 1)) {
        Err(NetError::Rejected { code: RejectCode::ShapeMismatch, .. }) => {}
        other => panic!("expected shape-mismatch reject, got {other:?}"),
    }
    // The same connection still serves valid requests afterwards.
    let x = MatrixRng::seed_from(5).gaussian_col(op.input_size(), 1, 0.0, 1.0);
    let y = client.request(name, &x).unwrap();
    let y_ref = Executor::new().run(op, &x);
    assert_eq!(y.as_slice(), y_ref.as_slice());
    net.shutdown();
}

#[test]
fn history_and_slow_log_attribute_live_wire_traffic() {
    let (net, ops) = start_net(67);
    let addr = net.local_addr();
    net.sample_series(); // prime the series ring's delta baseline
    let mut client = NetClient::connect(addr).unwrap();
    let mut g = MatrixRng::seed_from(13);
    let (name, op) = &ops[0];
    for _ in 0..20 {
        let x = g.gaussian_col(op.input_size(), 1, 0.0, 1.0);
        client.request(name, &x).unwrap();
    }
    net.sample_series(); // close the interval covering the burst

    // History: the retained interval accounts for every completion, and a
    // bounded query honors its cap.
    let points = client.history(0).unwrap();
    assert!(!points.is_empty(), "one closed interval must be retained");
    let completed: u64 = points.iter().flat_map(|p| &p.ops).map(|o| o.completed).sum();
    assert_eq!(completed, 20, "series ring must cover the burst");
    assert!(client.history(1).unwrap().len() <= 1);

    // SlowLog: every exemplar names the loaded op, carries its wire
    // req_id, and partitions its latency exactly — slowest first.
    let hits = client.slow_log(0).unwrap();
    assert!(!hits.is_empty() && hits.len() <= 20, "{} exemplars", hits.len());
    for hit in &hits {
        // Slow-log rows carry the versioned display name; the boot
        // registry is version 1 of its model.
        assert_eq!(hit.op, format!("{name}@1"));
        assert!(hit.rec.req_id > 0, "wire requests carry their req_id: {hit:?}");
        assert!(hit.rec.total_ns > 0);
        assert_eq!(hit.rec.phase_sum(), hit.rec.total_ns, "{hit:?}");
    }
    for w in hits.windows(2) {
        assert!(w[0].rec.total_ns >= w[1].rec.total_ns, "slow log must be sorted");
    }
    assert!(client.slow_log(1).unwrap().len() == 1);
    net.shutdown();
}

#[test]
fn list_ops_reports_the_registry_in_order() {
    let (net, ops) = start_net(41);
    let mut client = NetClient::connect(net.local_addr()).unwrap();
    let listed = client.list_ops().unwrap();
    assert_eq!(listed.len(), ops.len());
    for (info, (name, op)) in listed.iter().zip(&ops) {
        // The op table lists versioned display names; bare names still
        // resolve (to the live version) when used in requests.
        assert_eq!(info.name, format!("{name}@1"));
        assert_eq!(info.m as usize, op.output_size());
        assert_eq!(info.n as usize, op.input_size());
    }
    net.shutdown();
}

#[test]
fn shutdown_flushes_pipelined_replies_then_closes() {
    let (net, ops) = start_net(53);
    let mut client = NetClient::connect(net.local_addr()).unwrap();
    let (name, op) = &ops[0];
    let mut g = MatrixRng::seed_from(7);
    let k = 12usize;
    let mut sent = Vec::new();
    for _ in 0..k {
        let x = g.gaussian_col(op.input_size(), 1, 0.0, 1.0);
        let id = client.send(name, &x).unwrap();
        sent.push((id, x));
    }
    // Wait until the reader thread has accepted every frame (submission is
    // counted at try_submit time); only then is the drain obligated to
    // answer all of them.
    let t0 = std::time::Instant::now();
    while net.stats().ops.iter().map(|o| o.submitted).sum::<u64>() < k as u64 {
        assert!(t0.elapsed() < Duration::from_secs(5), "server never accepted all requests");
        std::thread::sleep(Duration::from_millis(1));
    }
    // Shutdown drains: every accepted request is answered and flushed
    // before the writer exits, so all replies are readable afterwards.
    let stats = net.shutdown();
    assert_eq!(stats.completed(), k as u64);
    let mut exec = Executor::new();
    for (id, x) in sent {
        let (got, outcome) = client.recv().unwrap();
        assert_eq!(got, id);
        match outcome {
            Outcome::Reply(y) => assert_eq!(y.as_slice(), exec.run(op, &x).as_slice()),
            Outcome::Rejected { code, msg } => panic!("drained request rejected ({code}): {msg}"),
        }
    }
    // After the drain the server side is gone: the next read sees EOF.
    assert!(client.recv().is_err());
}
