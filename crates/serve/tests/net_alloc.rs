//! Encode-path allocation guarantee: once a frame scratch buffer has
//! grown to its steady-state size, re-encoding through the `*_into`
//! entry points performs **zero heap allocation** — measured with a
//! counting global allocator, in the style of the runtime's
//! `arena_reuse` suite.
//!
//! This is the acceptance gate for the reactor's reply path: the old
//! per-connection writer thread called `wire::encode` (a fresh `Vec`
//! per frame) and cloned the answer matrix into a `Message::Reply`;
//! the reactor borrows the answer's storage and recycles one buffer
//! per connection.

use biq_serve::net::wire::{self, Message, RejectCode};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation made through the global allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn warmed_reply_encodes_allocate_nothing() {
    // The reactor's hot path: a reply frame per request, encoded from a
    // borrowed result slice into a recycled buffer.
    let data = vec![0.125f32; 512 * 4];
    let mut scratch = Vec::new();
    wire::encode_reply_into(&mut scratch, 1, 512, 4, &data); // warm-up grows the buffer
    let before = allocs();
    for req_id in 2..34u64 {
        wire::encode_reply_into(&mut scratch, req_id, 512, 4, &data);
    }
    let after = allocs();
    assert_eq!(after - before, 0, "32 steady-state reply encodes allocated {}", after - before);
}

#[test]
fn warmed_request_encodes_allocate_nothing() {
    // The client's pipelined send path: op name and payload are borrowed,
    // the scratch frame is reused.
    let data = vec![0.5f32; 256 * 2];
    let mut scratch = Vec::new();
    wire::encode_request_into(&mut scratch, 1, "enc0.attn.wq", 256, 2, &data);
    let before = allocs();
    for req_id in 2..34u64 {
        wire::encode_request_into(&mut scratch, req_id, "enc0.attn.wq", 256, 2, &data);
    }
    let after = allocs();
    assert_eq!(after - before, 0, "32 steady-state request encodes allocated {}", after - before);
}

#[test]
fn warmed_message_encodes_reuse_the_buffer() {
    // The general `encode_into` (admin verbs, rejects) reuses capacity
    // too: the frame bytes themselves never allocate once warm. (The
    // `Message` is pre-built here; the reactor's reject path does build
    // its message string — that is the error path, not steady state.)
    let reject =
        Message::Reject { req_id: 7, code: RejectCode::Busy, msg: "queue full".to_string() };
    let mut scratch = Vec::new();
    wire::encode_into(&mut scratch, &reject);
    let before = allocs();
    for _ in 0..32 {
        wire::encode_into(&mut scratch, &reject);
    }
    let after = allocs();
    assert_eq!(after - before, 0, "32 steady-state reject encodes allocated {}", after - before);
}

#[test]
fn the_owned_encode_allocates_every_call() {
    // Contrast case documenting what the reactor path removed: `encode`
    // returns a fresh `Vec` per frame by construction.
    let data = vec![0.25f32; 64];
    let before = allocs();
    let frame = wire::encode(&Message::Reply { req_id: 1, rows: 32, cols: 2, data });
    assert!(allocs() - before > 0, "owned encode unexpectedly allocation-free");

    // And the two paths agree byte for byte.
    let mut scratch = Vec::new();
    wire::encode_reply_into(&mut scratch, 1, 32, 2, &[0.25f32; 64]);
    assert_eq!(scratch, frame);
}
