//! The fleet-management correctness property: **no request ever crosses a
//! version boundary**. Any interleaving of load / swap / unload with
//! concurrent traffic must answer every accepted request with bits
//! identical to the version that admitted it — never the version that
//! happened to be live when the batch finally ran, never a torn mix.
//!
//! The mechanism under test is drain-on-retire: an admission captures an
//! `Arc` of its version's compiled op, so a swap can retire the version
//! (dropping it from name resolution and memory accounting) while every
//! in-flight ticket still runs against the exact payload that accepted it.

use biq_matrix::{ColMatrix, MatrixRng};
use biq_nn::model::CompiledModel;
use biq_nn::Linear;
use biq_runtime::{Executor, QuantMethod};
use biq_serve::{ModelRegistry, OpId, ServeError, Server, ServerConfig, Ticket};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

const M: usize = 8;
const N: usize = 12;
/// Distinct weight versions the swap sequence cycles through.
const VERSIONS: usize = 4;

/// A small quantized-linear BIQM artifact; each seed is a distinct
/// "version" of model `m` with its own weights.
fn artifact(seed: u64) -> biq_artifact::Artifact {
    let mut g = MatrixRng::seed_from(seed);
    let w = g.gaussian(M, N, 0.0, 1.0);
    let layer =
        Linear::quantized(&w, 2, QuantMethod::Greedy, biqgemm_core::BiqConfig::default(), None);
    biq_artifact::Artifact::from_bytes(CompiledModel::Linear(layer).snapshot()).unwrap()
}

/// The reference `W·X` bits of one artifact version for the fixed probe.
fn reference(a: &biq_artifact::Artifact, x: &ColMatrix) -> Vec<f32> {
    let mut reg = ModelRegistry::new();
    let (_, ids) = reg.load_artifact(a).unwrap();
    let op = reg.get(ids[0].1).op();
    Executor::new().run(op, x).as_slice().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn interleaved_swaps_never_cross_versions(
        actions in proptest::collection::vec(0u8..4, 4..28),
    ) {
        let artifacts: Vec<_> = (0..VERSIONS as u64).map(|s| artifact(100 + s)).collect();
        let x = MatrixRng::seed_from(7).gaussian_col(N, 1, 0.0, 1.0);
        let expected: Vec<Vec<f32>> = artifacts.iter().map(|a| reference(a, &x)).collect();

        let mut boot = ModelRegistry::new();
        boot.set_model_name("m");
        boot.load_artifact(&artifacts[0]).unwrap();
        let server = Server::start(boot, ServerConfig {
            workers: 2,
            batch_window: Duration::from_micros(100),
            ..ServerConfig::default()
        });
        let client = server.client();

        // Slot ids are append-only and never reused, so the id a request
        // was admitted against identifies its version forever — even after
        // that version retires.
        let slot_version: Arc<RwLock<HashMap<OpId, usize>>> = Arc::new(RwLock::new(HashMap::new()));
        slot_version
            .write()
            .unwrap()
            .insert(server.registry().lookup("linear").unwrap(), 0);

        // Concurrent traffic: a hammer thread races the swap sequence with
        // bare-name lookups. UnknownOp (the name resolved, then the version
        // retired before admission) and Busy are legitimate races; a wrong
        // answer never is.
        let stop = Arc::new(AtomicBool::new(false));
        let hammer = {
            let client = client.clone();
            let x = x.clone();
            let expected = expected.clone();
            let slot_version = Arc::clone(&slot_version);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let Some(id) = client.registry().lookup("linear") else { continue };
                    let version = slot_version.read().unwrap()[&id];
                    match client.try_submit(id, x.clone()) {
                        Ok(ticket) => {
                            let y = ticket.wait().expect("accepted requests always answer");
                            assert_eq!(
                                y.as_slice(),
                                &expected[version][..],
                                "hammer reply crossed versions"
                            );
                            served += 1;
                        }
                        Err(ServeError::UnknownOp | ServeError::Busy) => {}
                        Err(e) => panic!("unexpected admission error: {e}"),
                    }
                }
                served
            })
        };

        // The interleaving under test: traffic bursts, swaps to the next
        // version, and unloads, in whatever order proptest drew.
        let mut tickets: Vec<(usize, Ticket)> = Vec::new();
        let mut next_version = 1usize;
        for action in actions {
            match action {
                // Traffic burst against the live version (reloading v0
                // first if an unload left the name dark).
                0 | 1 => {
                    let id = match server.registry().lookup("linear") {
                        Some(id) => id,
                        None => {
                            let out = server.registry().load_model("m", &artifacts[0]).unwrap();
                            let id = out.ops[0].1;
                            slot_version.write().unwrap().insert(id, 0);
                            id
                        }
                    };
                    let version = slot_version.read().unwrap()[&id];
                    for _ in 0..3 {
                        if let Ok(t) = client.try_submit(id, x.clone()) {
                            tickets.push((version, t));
                        }
                    }
                }
                // Swap: load the next weights under the same name. Old
                // tickets must still answer with old bits.
                2 => {
                    let v = next_version % VERSIONS;
                    next_version += 1;
                    let out = server.registry().load_model("m", &artifacts[v]).unwrap();
                    slot_version.write().unwrap().insert(out.ops[0].1, v);
                }
                // Unload the live version (idempotent: refusal when
                // nothing is live is part of the contract, not a failure).
                _ => {
                    let _ = server.registry().unload_model("m", 0);
                }
            }
        }

        stop.store(true, Ordering::Relaxed);
        let hammered = hammer.join().expect("hammer thread must not panic");
        // Every ticket admitted by the sequence answers with the bits of
        // the version that admitted it.
        let mut checked = 0usize;
        for (version, ticket) in tickets {
            let y = ticket.wait().expect("accepted requests always answer");
            prop_assert_eq!(y.as_slice(), &expected[version][..], "reply crossed versions");
            checked += 1;
        }
        let snap = server.shutdown();
        prop_assert_eq!(
            snap.completed(),
            checked as u64 + hammered,
            "every accepted request completed exactly once"
        );
    }
}
