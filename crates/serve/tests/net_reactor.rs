//! Reactor-specific hardening: the behaviours the readiness-driven net
//! layer must exhibit that a thread-per-connection design gets for free
//! (or never had at all).
//!
//! * **Slow-loris immunity.** A peer dribbling a frame byte by byte
//!   parks no thread: its bytes accumulate in the connection's read
//!   buffer across readiness events and decode exactly once complete,
//!   while other connections keep full service (proptest-driven
//!   chunkings pin the incremental decoder).
//! * **Bounded write queues.** A peer that stops reading its replies
//!   gets a disconnect when its un-flushed frames cross the configured
//!   cap — server memory stays bounded no matter how the peer behaves.
//! * **Cheap idle connections.** Hundreds of held-open idle sockets are
//!   state, not stacks; live traffic through the same reactor is
//!   unaffected.

use biq_matrix::{ColMatrix, MatrixRng};
use biq_serve::net::wire::{self, Message};
use biq_serve::net::{NetClient, NetConfig, NetServer, Outcome};
use biq_serve::{ModelRegistry, Server, ServerConfig};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

/// One shared daemon for the dribbling proptest: compiled once, leaked
/// for the life of the test binary (proptest re-enters the body per
/// case; a server per case would dominate the suite's runtime).
struct Fixture {
    addr: SocketAddr,
    x: ColMatrix,
    y_ref: Vec<f32>,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let (net, x, y_ref) = start_one_op_server(NetConfig::default());
        let addr = net.local_addr();
        std::mem::forget(net); // reactor threads live until process exit
        Fixture { addr, x, y_ref }
    })
}

fn start_one_op_server(config: NetConfig) -> (NetServer, ColMatrix, Vec<f32>) {
    use biq_runtime::{compile, BackendSpec, PlanBuilder, QuantMethod, WeightSource};
    let mut g = MatrixRng::seed_from(3);
    let signs = g.signs(16, 24);
    let plan = PlanBuilder::new(16, 24)
        .batch_hint(4)
        .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
        .build();
    let op = compile(&plan, WeightSource::Signs(&signs));
    let x = g.gaussian_col(24, 1, 0.0, 1.0);
    let y_ref = biq_runtime::Executor::new().run(&op, &x).as_slice().to_vec();
    let mut reg = ModelRegistry::new();
    reg.register_op("op", std::sync::Arc::new(op));
    let server = Server::start(reg, ServerConfig::default());
    (NetServer::bind_with("127.0.0.1:0", server, config).unwrap(), x, y_ref)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dribbled_frames_decode_incrementally_and_answer_bit_identically(
        chunks in proptest::collection::vec(1usize..16, 4..64),
        seed in 0u64..1000,
    ) {
        let fx = fixture();
        let mut g = MatrixRng::seed_from(seed);
        let x = g.gaussian_col(24, 1, 0.0, 1.0);
        let frame = wire::encode(&Message::Request {
            req_id: seed + 1,
            op: "op".into(),
            rows: 24,
            cols: 1,
            data: x.as_slice().to_vec(),
        });
        // Dribble the frame in the generated chunking, pausing so each
        // slice arrives as its own readiness event.
        let mut stream = TcpStream::connect(fx.addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut at = 0usize;
        let mut chunk_iter = chunks.iter().cycle();
        while at < frame.len() {
            let n = (*chunk_iter.next().unwrap()).min(frame.len() - at);
            stream.write_all(&frame[at..at + n]).unwrap();
            at += n;
            if at < frame.len() {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        let reply = wire::read_message(&mut stream).unwrap();
        match reply {
            Message::Reply { req_id, rows, cols, data } => {
                prop_assert_eq!(req_id, seed + 1);
                prop_assert_eq!((rows, cols), (16, 1));
                let mut direct = NetClient::connect(fx.addr).unwrap();
                let y = direct.request("op", &x).unwrap();
                prop_assert_eq!(data.as_slice(), y.as_slice(), "dribbled ≠ direct");
            }
            other => prop_assert!(false, "expected a reply, got {:?}", other),
        }
    }
}

#[test]
fn a_half_sent_frame_parks_no_thread() {
    let fx = fixture();
    // The loris: half a valid frame, then silence.
    let frame = wire::encode(&Message::Request {
        req_id: 42,
        op: "op".into(),
        rows: 24,
        cols: 1,
        data: fx.x.as_slice().to_vec(),
    });
    let mut loris = TcpStream::connect(fx.addr).unwrap();
    loris.write_all(&frame[..frame.len() / 2]).unwrap();

    // Full service continues for everyone else while the loris stalls —
    // with the default two io threads this fails if either parks on it.
    let mut fast = NetClient::connect(fx.addr).unwrap();
    for _ in 0..10 {
        let y = fast.request("op", &fx.x).unwrap();
        assert_eq!(y.as_slice(), fx.y_ref.as_slice());
    }

    // The loris finishes eventually and still gets its answer: stalled
    // bytes are buffered, not dropped.
    loris.write_all(&frame[frame.len() / 2..]).unwrap();
    match wire::read_message(&mut loris).unwrap() {
        Message::Reply { req_id, data, .. } => {
            assert_eq!(req_id, 42);
            assert_eq!(data.as_slice(), fx.y_ref.as_slice());
        }
        other => panic!("expected a reply, got {other:?}"),
    }
}

#[test]
fn unread_replies_hit_the_write_queue_cap_and_disconnect() {
    use biq_runtime::{compile, BackendSpec, PlanBuilder, QuantMethod, WeightSource};
    // A tall op makes replies ~1 MiB while requests stay ~2 KiB, so a
    // peer that never reads inflates the server-side write queue fast.
    let mut g = MatrixRng::seed_from(7);
    let (m, n) = (8192usize, 16usize);
    let signs = g.signs(m, n);
    let plan = PlanBuilder::new(m, n)
        .batch_hint(1)
        .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
        .build();
    let mut reg = ModelRegistry::new();
    reg.register_op("tall", std::sync::Arc::new(compile(&plan, WeightSource::Signs(&signs))));
    let server = Server::start(reg, ServerConfig::default());
    let config = NetConfig { max_write_queue: 256 << 10, ..NetConfig::default() };
    let net = NetServer::bind_with("127.0.0.1:0", server, config).unwrap();

    // Fire 40 requests (~40 MiB of replies) and read nothing: the kernel
    // socket buffers fill, then the server-side queue crosses 256 KiB and
    // the server must cut the connection instead of buffering 40 MiB.
    let mut hog = TcpStream::connect(net.local_addr()).unwrap();
    let x = g.gaussian_col(n, 32, 0.0, 1.0);
    let frame = wire::encode(&Message::Request {
        req_id: 1,
        op: "tall".into(),
        rows: n as u32,
        cols: 32,
        data: x.as_slice().to_vec(),
    });
    for _ in 0..40 {
        hog.write_all(&frame).unwrap();
    }
    // read_to_end terminating (EOF or reset — both prove the disconnect)
    // is the assertion; unbounded buffering would hang here forever.
    hog.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut sink = Vec::new();
    let drained = hog.read_to_end(&mut sink);
    assert!(
        matches!(drained, Ok(_) | Err(_)),
        "read_to_end returned — the server cut the connection"
    );

    // The reactor survives the amputation: a polite client gets service.
    let mut polite = NetClient::connect(net.local_addr()).unwrap();
    let sent = polite.send("tall", &g.gaussian_col(n, 1, 0.0, 1.0)).unwrap();
    let (req_id, outcome) = polite.recv().unwrap();
    assert_eq!(req_id, sent);
    assert!(matches!(outcome, Outcome::Reply(_)));
    net.shutdown();
}

#[test]
fn hundreds_of_idle_connections_cost_state_not_service() {
    let (net, x, y_ref) = start_one_op_server(NetConfig::default());
    let addr = net.local_addr();
    // Hold 256 idle connections open. Under the old thread-per-connection
    // design this was 512 parked threads; the reactor registers 256 fds.
    let idle: Vec<TcpStream> = (0..256).map(|_| TcpStream::connect(addr).unwrap()).collect();
    // Live traffic through the same reactor is unaffected.
    let mut client = NetClient::connect(addr).unwrap();
    for _ in 0..20 {
        let y = client.request("op", &x).unwrap();
        assert_eq!(y.as_slice(), y_ref.as_slice());
    }
    // Wait for every registration to land (accept → inbox → reactor is
    // asynchronous), then check the gauge's view.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let open: i64 = net
            .metrics()
            .samples
            .iter()
            .filter(|s| s.name == "biq_net_connections_open")
            .filter_map(|s| match s.value {
                biq_obs::MetricValue::Gauge(g) => Some(g),
                _ => None,
            })
            .sum();
        if open >= 257 || std::time::Instant::now() > deadline {
            assert!(open >= 257, "gauge saw {open} of 257 connections");
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(idle);
    // Shutdown drains cleanly with the idle herd mid-teardown.
    let stats = net.shutdown();
    assert_eq!(stats.completed(), 20);
}
