//! Hostile-input hardening for the `BIQP` wire codec, in the style of the
//! artifact/quant `decode_hostile` suites: every truncation errors, every
//! body bit-flip fails the checksum, oversized counts error before any
//! allocation, garbage never panics — and a live [`NetServer`] fed garbage
//! closes that connection while continuing to serve well-formed clients.

use biq_matrix::{ColMatrix, MatrixRng};
use biq_obs::{
    HistogramSnapshot, MetricValue, OpPoint, RequestRecord, Sample, SeriesPoint, SlowHit, BUCKETS,
};
use biq_runtime::{compile, BackendSpec, PlanBuilder, QuantMethod, WeightSource};
use biq_serve::net::wire::{self, Message, OpInfo, RejectCode, WireError};
use biq_serve::net::{NetClient, NetServer};
use biq_serve::{ModelRegistry, Server, ServerConfig};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;

/// Name pool for generated messages (the compat proptest shim has no
/// regex string strategy).
const NAMES: [&str; 6] = ["linear", "enc0.attn.wq", "lstm.w_ih", "op", "a", "out_proj"];

/// Deterministic message zoo driven by a proptest seed.
fn arb_message() -> impl Strategy<Value = Message> {
    let request = (any::<u64>(), 0usize..NAMES.len(), 1u32..9, 1u16..5, 0u64..1000).prop_map(
        |(req_id, name, rows, cols, seed)| {
            let mut g = MatrixRng::seed_from(seed);
            let data =
                (0..rows as usize * cols as usize).map(|_| g.uniform_f32(-4.0, 4.0)).collect();
            Message::Request { req_id, op: NAMES[name].to_string(), rows, cols, data }
        },
    );
    let reply = (any::<u64>(), 1u32..9, 1u16..5).prop_map(|(req_id, rows, cols)| Message::Reply {
        req_id,
        rows,
        cols,
        data: vec![0.25; rows as usize * cols as usize],
    });
    let reject = (any::<u64>(), 0usize..7, 0usize..NAMES.len()).prop_map(|(req_id, code, msg)| {
        let codes = [
            RejectCode::Busy,
            RejectCode::ShuttingDown,
            RejectCode::UnknownOp,
            RejectCode::ShapeMismatch,
            RejectCode::Canceled,
            RejectCode::Malformed,
            RejectCode::Refused,
        ];
        Message::Reject { req_id, code: codes[code], msg: NAMES[msg].to_string() }
    });
    let oplist = proptest::collection::vec(
        (0usize..NAMES.len(), any::<u32>(), any::<u32>()).prop_map(|(name, m, n)| OpInfo {
            name: NAMES[name].to_string(),
            m,
            n,
        }),
        0..5,
    )
    .prop_map(Message::OpList);
    let stats_reply = proptest::collection::vec(arb_sample(), 0..5).prop_map(Message::StatsReply);
    let history = any::<u16>().prop_map(|max_points| Message::History { max_points });
    let history_reply =
        proptest::collection::vec(arb_series_point(), 0..4).prop_map(Message::HistoryReply);
    let slow_log = any::<u16>().prop_map(|max| Message::SlowLog { max });
    let slow_log_reply =
        proptest::collection::vec(arb_slow_hit(), 0..4).prop_map(Message::SlowLogReply);
    let load_model = (0usize..NAMES.len(), 0usize..NAMES.len()).prop_map(|(name, path)| {
        Message::LoadModel { name: NAMES[name].to_string(), path: format!("/tmp/{}", NAMES[path]) }
    });
    let model_loaded = (
        0usize..NAMES.len(),
        1u32..9,
        any::<u64>(),
        1u32..9,
        proptest::collection::vec((0usize..NAMES.len(), 1u32..9), 0..3),
    )
        .prop_map(|(name, version, mem_bytes, ops, evicted)| Message::ModelLoaded {
            name: NAMES[name].to_string(),
            version,
            mem_bytes,
            ops,
            evicted: evicted.into_iter().map(|(n, v)| format!("{}@{v}", NAMES[n])).collect(),
        });
    let unload_model = (0usize..NAMES.len(), 0u32..9).prop_map(|(name, version)| {
        Message::UnloadModel { name: NAMES[name].to_string(), version }
    });
    let model_unloaded =
        (0usize..NAMES.len(), 1u32..9, 1u32..9).prop_map(|(name, version, ops_retired)| {
            Message::ModelUnloaded { name: NAMES[name].to_string(), version, ops_retired }
        });
    let model_list = proptest::collection::vec(
        (
            0usize..NAMES.len(),
            1u32..9,
            any::<bool>(),
            (any::<u64>(), 1u32..9, 0u32..5, any::<u64>()),
        )
            .prop_map(|(name, version, live, rest)| wire::ModelInfo {
                name: NAMES[name].to_string(),
                version,
                live,
                mem_bytes: rest.0,
                ops: rest.1,
                inflight: rest.2,
                completed: rest.3,
            }),
        0..4,
    )
    .prop_map(Message::ModelList);
    prop_oneof![
        request,
        reply,
        reject,
        Just(Message::ListOps),
        oplist,
        Just(Message::Stats),
        stats_reply,
        history,
        history_reply,
        slow_log,
        slow_log_reply,
        load_model,
        model_loaded,
        unload_model,
        model_unloaded,
        Just(Message::ListModels),
        model_list,
    ]
}

/// One attribution time-series point with arbitrary per-op rows.
fn arb_series_point() -> impl Strategy<Value = SeriesPoint> {
    let op = (
        0usize..NAMES.len(),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(|(name, a, b)| OpPoint {
            op: NAMES[name].to_string(),
            submitted: a.0,
            completed: a.1,
            rejected: a.2,
            queue_depth: a.3,
            batches: b.0,
            batch_cols_x100: b.1,
            p50_us: b.2,
            p99_us: b.3,
        });
    (any::<u64>(), any::<u64>(), proptest::collection::vec(op, 0..3))
        .prop_map(|(t_ms, interval_ns, ops)| SeriesPoint { t_ms, interval_ns, ops })
}

/// One slow-log exemplar built through the telescoping constructor so the
/// phase-sum invariant holds on every generated record.
fn arb_slow_hit() -> impl Strategy<Value = SlowHit> {
    (
        0usize..NAMES.len(),
        any::<u64>(),
        any::<u32>(),
        1u32..2048,
        proptest::collection::vec(0u64..1_000_000_000, 6),
    )
        .prop_map(|(name, req_id, op, cols, mut stamps)| {
            stamps.sort_unstable();
            SlowHit {
                op: NAMES[name].to_string(),
                rec: RequestRecord::from_timeline(
                    req_id, op, cols, stamps[0], stamps[1], stamps[2], stamps[3], stamps[4],
                    stamps[5],
                ),
            }
        })
}

/// Deterministic stats samples covering all three value kinds.
fn arb_sample() -> impl Strategy<Value = Sample> {
    let histogram = (proptest::collection::vec(any::<u64>(), BUCKETS), any::<u64>()).prop_map(
        |(counts, sum)| {
            let mut buckets = [0u64; BUCKETS];
            buckets.copy_from_slice(&counts);
            MetricValue::Histogram(HistogramSnapshot { buckets, sum })
        },
    );
    let value = prop_oneof![
        any::<u64>().prop_map(MetricValue::Counter),
        any::<i64>().prop_map(MetricValue::Gauge),
        histogram,
    ];
    let labels = proptest::collection::vec(
        (0usize..NAMES.len(), 0usize..NAMES.len())
            .prop_map(|(k, v)| (NAMES[k].to_string(), NAMES[v].to_string())),
        0..3,
    );
    (0usize..NAMES.len(), labels, value).prop_map(|(name, labels, value)| Sample {
        name: NAMES[name].to_string(),
        labels,
        value,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_message_round_trips(msg in arb_message()) {
        let frame = wire::encode(&msg);
        let (back, used) = wire::decode(&frame).unwrap();
        prop_assert_eq!(&back, &msg);
        prop_assert_eq!(used, frame.len());
    }

    #[test]
    fn truncated_frames_always_error(msg in arb_message(), cut_frac in 0.0f64..1.0) {
        let frame = wire::encode(&msg);
        let cut = ((frame.len() as f64 * cut_frac) as usize).min(frame.len() - 1);
        prop_assert!(wire::decode(&frame[..cut]).is_err(), "cut {} decoded", cut);
        // The stream path agrees: mid-frame EOF is Malformed, empty is Closed.
        let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
        match wire::read_message(&mut cursor) {
            Err(WireError::Closed) => prop_assert_eq!(cut, 0, "Closed only at a frame boundary"),
            Err(_) => {}
            Ok(m) => panic!("cut {cut} decoded {m:?}"),
        }
    }

    #[test]
    fn flipped_frames_never_panic(
        msg in arb_message(),
        flip_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let mut frame = wire::encode(&msg);
        let at = ((frame.len() as f64 * flip_frac) as usize).min(frame.len() - 1);
        frame[at] ^= 1 << flip_bit;
        // Must terminate with Ok or Err — never panic, never over-allocate.
        let _ = wire::decode(&frame);
    }

    #[test]
    fn body_flips_always_fail_the_checksum(
        msg in arb_message(),
        flip_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let mut frame = wire::encode(&msg);
        if frame.len() > wire::HEADER_LEN { // ListOps has no body to flip
            let span = frame.len() - wire::HEADER_LEN;
            let at = wire::HEADER_LEN + ((span as f64 * flip_frac) as usize).min(span - 1);
            frame[at] ^= 1 << flip_bit;
            prop_assert!(wire::decode(&frame).is_err(), "body flip at {} decoded", at);
        }
    }

    #[test]
    fn slow_log_phase_sums_survive_the_wire(
        hits in proptest::collection::vec(arb_slow_hit(), 1..8),
    ) {
        // Telescoping phases partition the end-to-end latency exactly
        // (tolerance zero), and the wire carries that invariant intact.
        for hit in &hits {
            prop_assert_eq!(hit.rec.phase_sum(), hit.rec.total_ns);
        }
        let frame = wire::encode(&Message::SlowLogReply(hits.clone()));
        match wire::decode(&frame).unwrap().0 {
            Message::SlowLogReply(decoded) => {
                for hit in &decoded {
                    prop_assert_eq!(hit.rec.phase_sum(), hit.rec.total_ns);
                }
                prop_assert_eq!(decoded, hits);
            }
            other => panic!("wrong kind back: {other:?}"),
        }
    }

    #[test]
    fn garbage_magic_always_errors(prefix in proptest::collection::vec(any::<u8>(), 16..64)) {
        if prefix[0..4] != wire::MAGIC {
            prop_assert!(wire::decode(&prefix).is_err());
        }
    }
}

#[test]
fn oversized_counts_error_instead_of_allocating() {
    // body_len over cap: rejected straight from the header.
    let mut frame = wire::encode(&Message::ListOps);
    frame[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(wire::decode(&frame), Err(WireError::Malformed(_))));

    // A request claiming MAX_ROWS×MAX_COLS values with a tiny body: the
    // payload count check fires before any buffer is reserved.
    let mut body = Vec::new();
    body.extend_from_slice(&1u64.to_le_bytes());
    body.extend_from_slice(&2u16.to_le_bytes());
    body.extend_from_slice(b"op");
    body.extend_from_slice(&(wire::MAX_ROWS as u32).to_le_bytes());
    body.extend_from_slice(&(wire::MAX_COLS as u16).to_le_bytes());
    let mut frame = Vec::new();
    frame.extend_from_slice(&wire::MAGIC);
    frame.push(wire::WIRE_VERSION);
    frame.push(1); // Request
    frame.extend_from_slice(&0u16.to_le_bytes());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&wire::fold_checksum(&body).to_le_bytes());
    frame.extend_from_slice(&body);
    match wire::decode(&frame) {
        Err(WireError::Malformed(m)) => assert!(m.contains("payload"), "{m}"),
        other => panic!("oversized count decoded: {other:?}"),
    }

    // An op list whose count can't fit the body errors on the same guard.
    let body = 4096u16.to_le_bytes().to_vec();
    let mut frame = Vec::new();
    frame.extend_from_slice(&wire::MAGIC);
    frame.push(wire::WIRE_VERSION);
    frame.push(5); // OpList
    frame.extend_from_slice(&0u16.to_le_bytes());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&wire::fold_checksum(&body).to_le_bytes());
    frame.extend_from_slice(&body);
    match wire::decode(&frame) {
        Err(WireError::Malformed(m)) => assert!(m.contains("count"), "{m}"),
        other => panic!("oversized op count decoded: {other:?}"),
    }
}

#[test]
fn unencodable_reply_is_rejected_up_front_not_panicked_in_the_writer() {
    // A request can satisfy every decode cap while the op's output blows
    // the frame budget: m=8192 × cols=512 × 4 B = exactly MAX_BODY, so
    // with the header it cannot be encoded. The server must answer with a
    // shape-mismatch reject — never hit the encoder asserts.
    let mut g = MatrixRng::seed_from(9);
    let signs = g.signs(8192, 16);
    let plan = PlanBuilder::new(8192, 16)
        .batch_hint(1)
        .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
        .build();
    let mut reg = ModelRegistry::new();
    reg.register_op("wide", std::sync::Arc::new(compile(&plan, WeightSource::Signs(&signs))));
    let server = Server::start(reg, ServerConfig::default());
    let net = NetServer::bind("127.0.0.1:0", server).unwrap();
    let mut client = NetClient::connect(net.local_addr()).unwrap();
    match client.request("wide", &ColMatrix::zeros(16, 512)) {
        Err(biq_serve::net::NetError::Rejected {
            code: RejectCode::ShapeMismatch, msg, ..
        }) => {
            assert!(msg.contains("frame caps"), "{msg}");
        }
        other => panic!("expected a frame-caps reject, got {other:?}"),
    }
    // The connection survives and narrower requests still work.
    let y = client.request("wide", &ColMatrix::zeros(16, 1)).unwrap();
    assert_eq!(y.shape(), (8192, 1));
    net.shutdown();
}

#[test]
fn client_send_errors_on_oversized_inputs_instead_of_panicking() {
    let (net, _x, _y) = start_one_op_server();
    let mut client = NetClient::connect(net.local_addr()).unwrap();
    // Over MAX_COLS: must be a clean error, not a truncating cast.
    let wide = ColMatrix::zeros(24, wire::MAX_COLS + 1);
    assert!(client.send("op", &wide).is_err(), "cols over cap must error");
    // Over MAX_NAME.
    let x = ColMatrix::zeros(24, 1);
    assert!(client.send(&"n".repeat(wire::MAX_NAME + 1), &x).is_err());
    // Within both per-dimension caps but over the frame body budget
    // (2^20 × 8 × 4 B = 32 MiB > MAX_BODY): clean error, no encoder panic.
    let huge = ColMatrix::zeros(wire::MAX_ROWS, 8);
    assert!(client.send("op", &huge).is_err(), "over-budget payload must error");
    // The connection is still usable for valid requests.
    assert!(client.request("op", &x).is_ok());
    net.shutdown();
}

fn start_one_op_server() -> (NetServer, ColMatrix, Vec<f32>) {
    let mut g = MatrixRng::seed_from(3);
    let signs = g.signs(16, 24);
    let plan = PlanBuilder::new(16, 24)
        .batch_hint(4)
        .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
        .build();
    let op = compile(&plan, WeightSource::Signs(&signs));
    let x = g.gaussian_col(24, 1, 0.0, 1.0);
    let y_ref = biq_runtime::Executor::new().run(&op, &x).as_slice().to_vec();
    let mut reg = ModelRegistry::new();
    reg.register_op("op", std::sync::Arc::new(op));
    let server = Server::start(reg, ServerConfig::default());
    (NetServer::bind("127.0.0.1:0", server).unwrap(), x, y_ref)
}

#[test]
fn refused_admin_verbs_leave_the_connection_serving() {
    // Unlike protocol violations, a refused model verb answers with
    // Reject(code = Refused) and keeps the connection open: an operator
    // typo must not drop the admin session (or any in-flight traffic).
    let (net, x, y_ref) = start_one_op_server();
    let mut client = NetClient::connect(net.local_addr()).unwrap();
    match client.load_model("ghost", "/nonexistent/path.biqm") {
        Err(biq_serve::net::NetError::Rejected { code: RejectCode::Refused, req_id: 0, msg }) => {
            assert!(msg.contains("/nonexistent/path.biqm"), "{msg}");
        }
        other => panic!("expected a refused reject, got {other:?}"),
    }
    match client.unload_model("ghost", 0) {
        Err(biq_serve::net::NetError::Rejected { code: RejectCode::Refused, .. }) => {}
        other => panic!("expected a refused reject, got {other:?}"),
    }
    // The same connection still lists models and serves requests.
    let models = client.list_models().unwrap();
    assert_eq!(models.len(), 1, "the boot model is the only one");
    assert!(models[0].live);
    let y = client.request("op", &x).unwrap();
    assert_eq!(y.as_slice(), y_ref.as_slice());
    net.shutdown();
}

#[test]
fn garbage_on_the_socket_closes_that_connection_but_not_the_server() {
    let (net, x, y_ref) = start_one_op_server();
    let addr = net.local_addr();

    // Connection 1: raw garbage. The server answers with a Malformed
    // reject (best effort) and closes; it must not crash or hang.
    let mut bad = TcpStream::connect(addr).unwrap();
    bad.write_all(b"GET / HTTP/1.1\r\n\r\n___not_biqp___").unwrap();
    let mut buf = Vec::new();
    bad.read_to_end(&mut buf).unwrap(); // EOF proves the server closed it
    if !buf.is_empty() {
        match wire::decode(&buf) {
            Ok((Message::Reject { code, .. }, _)) => assert_eq!(code, RejectCode::Malformed),
            other => panic!("expected a malformed-reject frame, got {other:?}"),
        }
    }

    // Connection 2: a frame with a corrupted body — same fate.
    let mut flipped = TcpStream::connect(addr).unwrap();
    let mut frame = wire::encode(&Message::Request {
        req_id: 1,
        op: "op".into(),
        rows: 24,
        cols: 1,
        data: x.as_slice().to_vec(),
    });
    let last = frame.len() - 1;
    frame[last] ^= 0x01;
    flipped.write_all(&frame).unwrap();
    let mut buf = Vec::new();
    flipped.read_to_end(&mut buf).unwrap();

    // A well-formed client still gets bit-identical service afterwards.
    let mut good = NetClient::connect(addr).unwrap();
    let y = good.request("op", &x).unwrap();
    assert_eq!(y.as_slice(), y_ref.as_slice());
    let stats = net.shutdown();
    assert_eq!(stats.completed(), 1, "only the well-formed request was served");
}
