//! The serving-layer correctness property: **any** interleaving of
//! mixed-shape submissions — whatever the batcher packs together, however
//! the worker pool schedules the buckets — returns results bit-identical
//! to running each request alone through `Executor::run`.
//!
//! This holds because every kernel family treats batch columns
//! independently: BiQGEMM builds per-column lookup tables, the dense paths
//! accumulate per column, and int8/xnor quantize activations per column —
//! and because every family accumulates each output element in the same
//! order at any batch width (BiQGEMM's canonical tree, fp32-blocked's
//! ascending-k GEMV). The inputs are gaussian, so any accumulation-order
//! divergence between the batched and width-1 paths would change the bits;
//! no small-integer domain restriction is needed. The property test drives
//! a live server (multiple submitter threads, a tiny batch window, several
//! workers) across every backend family and compares raw `f32` bits.

use biq_matrix::{ColMatrix, MatrixRng};
use biq_runtime::{
    compile, BackendSpec, CompiledOp, Executor, PlanBuilder, QuantMethod, Threading, WeightSource,
};
use biq_serve::{ModelRegistry, OpId, ServeError, Server, ServerConfig};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// The mixed-shape op set every case serves: every backend family, both
/// threading policies for BiQGEMM, deliberately unequal shapes.
fn build_ops(seed: u64) -> (ModelRegistry, Vec<(Arc<CompiledOp>, OpId)>) {
    let mut g = MatrixRng::seed_from(seed);
    let mut reg = ModelRegistry::new();
    let mut ops = Vec::new();
    let specs: [(usize, usize, BackendSpec, Threading); 5] = [
        (24, 32, BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy }, Threading::Serial),
        (17, 40, BackendSpec::Biq { bits: 2, method: QuantMethod::Greedy }, Threading::Parallel),
        (16, 24, BackendSpec::Fp32Blocked, Threading::Serial),
        (12, 20, BackendSpec::Int8, Threading::Serial),
        (20, 16, BackendSpec::Xnor { bits: 2 }, Threading::Serial),
    ];
    for (i, (m, n, spec, threading)) in specs.into_iter().enumerate() {
        let w = g.small_int_matrix(m, n, 2);
        let plan = PlanBuilder::new(m, n).batch_hint(4).backend(spec).threading(threading).build();
        let compiled = Arc::new(compile(&plan, WeightSource::Dense(&w)));
        let id = reg.register_op(format!("op{i}"), Arc::clone(&compiled));
        ops.push((compiled, id));
    }
    (reg, ops)
}

/// Runs `requests` through a live server from several submitter threads
/// and checks each reply against a direct per-request executor run.
fn check_interleaving(seed: u64, requests: &[(usize, usize)], submitters: usize) {
    let (reg, ops) = build_ops(seed);
    let server = Server::start(
        reg,
        ServerConfig {
            workers: 3,
            batch_window: Duration::from_micros(500),
            max_batch_cols: 6,
            ..ServerConfig::default()
        },
    );

    // Materialise inputs (and references) deterministically up front.
    let mut g = MatrixRng::seed_from(seed ^ 0x5eed);
    let inputs: Vec<(usize, ColMatrix)> = requests
        .iter()
        .map(|&(op_idx, cols)| {
            let op_idx = op_idx % ops.len();
            let n = ops[op_idx].0.input_size();
            (op_idx, g.gaussian_col(n, cols, 0.0, 1.0))
        })
        .collect();
    let references: Vec<Vec<f32>> = inputs
        .iter()
        .map(|(op_idx, x)| {
            let mut exec = Executor::new();
            exec.run(&ops[*op_idx].0, x).into_vec()
        })
        .collect();

    // Submit from several threads to randomise arrival interleavings.
    let results: Vec<(usize, Vec<f32>)> = std::thread::scope(|s| {
        let chunk = inputs.len().div_ceil(submitters.max(1));
        let handles: Vec<_> = inputs
            .chunks(chunk.max(1))
            .enumerate()
            .map(|(c, part)| {
                let client = server.client();
                let ops = &ops;
                s.spawn(move || {
                    let mut out = Vec::new();
                    for (j, (op_idx, x)) in part.iter().enumerate() {
                        let ticket = client.submit(ops[*op_idx].1, x.clone()).expect("submit");
                        out.push((c * chunk, j, ticket));
                    }
                    out.into_iter()
                        .map(|(base, j, t)| (base + j, t.wait().expect("reply").into_vec()))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("submitter")).collect()
    });

    let snap = server.shutdown();
    assert_eq!(snap.completed() as usize, inputs.len());
    for (idx, got) in results {
        assert_eq!(
            got, references[idx],
            "request {idx} (op {}) drifted from the direct executor run",
            inputs[idx].0
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random request mixes over every backend family stay bit-identical
    /// to per-request execution under concurrent submission.
    #[test]
    fn any_interleaving_is_bit_identical_to_direct_runs(
        seed in any::<u64>(),
        requests in proptest::collection::vec((0usize..5, 1usize..4), 1..40),
        submitters in 1usize..4,
    ) {
        check_interleaving(seed, &requests, submitters);
    }
}

#[test]
fn saturating_single_column_traffic_is_bit_identical() {
    // The paper's serving regime, concentrated on one op: a burst of
    // single-column queries that the batcher is free to pack to the cap.
    let requests: Vec<(usize, usize)> = (0..64).map(|_| (0usize, 1usize)).collect();
    check_interleaving(0xbeef, &requests, 3);
}

#[test]
fn shutdown_drains_every_accepted_request() {
    // A window far longer than the test means requests sit in the
    // batcher's buckets; shutdown must flush and answer them all.
    let (reg, ops) = build_ops(42);
    let server = Server::start(
        reg,
        ServerConfig {
            workers: 2,
            batch_window: Duration::from_secs(30),
            max_batch_cols: 1024,
            ..ServerConfig::default()
        },
    );
    let client = server.client();
    let mut g = MatrixRng::seed_from(43);
    let tickets: Vec<_> = (0..10)
        .map(|i| {
            let (op, id) = &ops[i % ops.len()];
            let x = g.small_int_col(op.input_size(), 1, 2);
            let reference = Executor::new().run(op, &x).into_vec();
            (client.submit(*id, x).expect("submit"), reference)
        })
        .collect();
    let snap = server.shutdown();
    assert_eq!(snap.completed(), 10, "shutdown must drain the queue, not drop it");
    for (t, reference) in tickets {
        assert_eq!(t.wait().expect("drained reply").into_vec(), reference);
    }
}

#[test]
fn backpressure_rejects_when_the_pipeline_is_full() {
    // One worker, tiny queues, and compute-heavy requests: submissions
    // outpace service, the bounded stages fill back to the submit queue,
    // and try_submit must start refusing with `Busy` instead of blocking.
    let mut g = MatrixRng::seed_from(44);
    let (m, n) = (512, 512);
    let signs = g.signs(m, n);
    let plan = PlanBuilder::new(m, n)
        .batch_hint(1)
        .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
        .threading(Threading::Serial)
        .build();
    let mut reg = ModelRegistry::new();
    let id = reg.register("big", &plan, WeightSource::Signs(&signs));
    let server = Server::start(
        reg,
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            job_capacity: 1,
            batch_window: Duration::ZERO,
            max_batch_cols: 1,
            ..ServerConfig::default()
        },
    );
    let client = server.client();
    let x = g.gaussian_col(n, 1, 0.0, 1.0);
    let mut accepted = Vec::new();
    let mut busy = 0u32;
    for _ in 0..200 {
        match client.try_submit(id, x.clone()) {
            Ok(t) => accepted.push(t),
            Err(ServeError::Busy) => busy += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(busy > 0, "bounded queue never pushed back on 200 instant submissions");
    assert!(!accepted.is_empty(), "some requests must get through");
    let expected = accepted.len() as u64;
    for t in accepted {
        let y = t.wait().expect("accepted requests complete");
        assert_eq!(y.shape(), (m, 1));
    }
    let snap = server.shutdown();
    assert_eq!(snap.ops[0].completed, expected);
    assert_eq!(snap.ops[0].rejected, u64::from(busy));
}
