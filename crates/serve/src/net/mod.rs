//! `BIQP` — the serving layer on the wire.
//!
//! A std-only TCP front-end over the in-process [`crate::Server`]: a
//! length-prefixed, checksummed little-endian frame protocol ([`wire`]),
//! a [`NetServer`] that bridges frames into [`crate::Client`] tickets so
//! batching, backpressure, and shutdown-drain apply to remote traffic
//! unchanged, and a blocking/pipelining [`NetClient`].
//!
//! The byte-level frame layout is specified in `docs/BIQP.md` at the
//! repository root (mirroring the artifact crate's container spec).
//! Design invariants:
//!
//! * **The bridge is a plain client.** Remote requests enter through
//!   [`crate::Client::try_submit`], so a frame from connection A and a
//!   frame from connection B pack into the same executor pass, and a full
//!   queue surfaces as an explicit `Busy` reject frame — the wire image of
//!   [`crate::ServeError::Busy`] — instead of unbounded buffering.
//! * **Corrupt frames error and close, never panic.** The codec is
//!   bounds-checked end to end with capped counts and a body checksum;
//!   the `net_hostile` proptests feed it truncations, bit flips, and
//!   oversized counts.
//! * **Bit-identical remote execution.** The wire carries fp32 payloads
//!   verbatim (little-endian `to_le_bytes`), so a remote answer equals the
//!   in-process [`biq_runtime::Executor::run`] result exactly — the
//!   `net_equivalence` test pins this across concurrent connections.
//! * **Readiness, not threads.** [`NetServer`] is a reactor (`sys` wraps
//!   epoll, with a portable `poll` fallback): a fixed pool of I/O threads
//!   multiplexes every connection through nonblocking sockets, incremental
//!   frame decode, and vectored writes — holding thousands of idle
//!   connections costs state, not stacks.

pub mod client;
pub mod server;
mod sys;
pub mod wire;

pub use client::{NetClient, NetError, Outcome};
pub use server::{NetConfig, NetServer};
pub use wire::{Message, ModelInfo, OpInfo, RejectCode, WireError};
