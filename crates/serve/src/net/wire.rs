//! The `BIQP` wire codec — pure frame encoding/decoding, no sockets.
//!
//! One frame per message, little-endian throughout:
//!
//! ```text
//! offset size  field
//!      0    4  magic     "BIQP"
//!      4    1  version   1
//!      5    1  kind      message discriminant (see [`Message`])
//!      6    2  reserved  must be zero
//!      8    4  body_len  bytes after the header (≤ MAX_BODY)
//!     12    4  checksum  fnv1a64(body) folded hi32 ^ lo32
//!     16    …  body      kind-specific, must be consumed exactly
//! ```
//!
//! Decoding follows the artifact crate's discipline: every read checks the
//! remaining length, every count is capped **before** any allocation, the
//! body must tile exactly (trailing bytes are an error), nonzero reserved
//! fields are errors, and the checksum is verified before the body is
//! parsed — a corrupt frame is always [`WireError::Malformed`], never a
//! panic or an over-allocation.

use biq_artifact::fnv1a64;
use biq_obs::{
    HistogramSnapshot, MetricValue, OpPoint, RequestRecord, Sample, SeriesPoint, SlowHit, BUCKETS,
};
use std::io::Read;

/// Frame magic.
pub const MAGIC: [u8; 4] = *b"BIQP";
/// Protocol version this codec speaks.
pub const WIRE_VERSION: u8 = 1;
/// Fixed frame-header size in bytes.
pub const HEADER_LEN: usize = 16;
/// Cap on `body_len`: nothing is allocated past this (16 MiB).
pub const MAX_BODY: usize = 1 << 24;
/// Cap on an op-name length in bytes.
pub const MAX_NAME: usize = 256;
/// Cap on request/reply columns per frame.
pub const MAX_COLS: usize = 4096;
/// Cap on request/reply rows per frame.
pub const MAX_ROWS: usize = 1 << 20;
/// Cap on a reject-message length in bytes.
pub const MAX_MSG: usize = 1024;
/// Cap on ops listed in one `OpList` frame.
pub const MAX_OPS: usize = 4096;
/// Cap on samples carried by one `StatsReply` frame.
pub const MAX_SAMPLES: usize = 2048;
/// Cap on a metric-name length in bytes.
pub const MAX_METRIC_NAME: usize = 160;
/// Cap on labels per stats sample.
pub const MAX_LABELS: usize = 8;
/// Cap on a label-key length in bytes.
pub const MAX_LABEL_KEY: usize = 64;
/// Cap on a label-value length in bytes.
pub const MAX_LABEL_VALUE: usize = 128;
/// `StatsReply` body schema version this codec speaks. The body carries
/// its own version byte (separate from the frame header's) so the stats
/// schema can evolve without a protocol bump.
pub const STATS_VERSION: u8 = 1;
/// Cap on time-series points carried by one `HistoryReply` frame.
pub const MAX_POINTS: usize = 512;
/// Cap on per-op rows within one history point.
pub const MAX_POINT_OPS: usize = 256;
/// Cap on slow-request entries carried by one `SlowLogReply` frame.
pub const MAX_SLOW: usize = 256;
/// `HistoryReply` body schema version (own byte, like `STATS_VERSION`).
pub const HISTORY_VERSION: u8 = 1;
/// `SlowLogReply` body schema version (own byte, like `STATS_VERSION`).
pub const SLOWLOG_VERSION: u8 = 1;
/// Cap on an artifact path carried by a `LoadModel` frame.
pub const MAX_PATH: usize = 4096;
/// Cap on model rows in one `ModelList` frame (and on evicted names in a
/// `ModelLoaded` frame). Mirrors [`crate::registry::MAX_MODELS`].
pub const MAX_MODELS: usize = 256;
/// Body schema version shared by all six model-fleet admin bodies
/// (`LoadModel`/`ModelLoaded`/`UnloadModel`/`ModelUnloaded`/`ListModels`/
/// `ModelList`) — each body leads with this byte, like `STATS_VERSION`.
pub const MODEL_VERSION: u8 = 1;

/// Why a request was refused (the wire image of
/// [`crate::ServeError`], plus `Malformed` for protocol errors).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectCode {
    /// The server's bounded queue is full — retry later.
    Busy,
    /// The server is draining and no longer accepts requests.
    ShuttingDown,
    /// The named op is not registered.
    UnknownOp,
    /// The payload's row count disagrees with the op's input size.
    ShapeMismatch,
    /// The server dropped the request without answering.
    Canceled,
    /// The frame itself was invalid; the connection closes after this.
    Malformed,
    /// An admin verb (model load/unload) was refused — bad artifact,
    /// name/op collision, memory budget, or in-flight protection. The
    /// connection stays open; `req_id` is 0 (admin verbs carry none).
    Refused,
}

impl RejectCode {
    fn to_u8(self) -> u8 {
        match self {
            RejectCode::Busy => 1,
            RejectCode::ShuttingDown => 2,
            RejectCode::UnknownOp => 3,
            RejectCode::ShapeMismatch => 4,
            RejectCode::Canceled => 5,
            RejectCode::Malformed => 6,
            RejectCode::Refused => 7,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            1 => RejectCode::Busy,
            2 => RejectCode::ShuttingDown,
            3 => RejectCode::UnknownOp,
            4 => RejectCode::ShapeMismatch,
            5 => RejectCode::Canceled,
            6 => RejectCode::Malformed,
            7 => RejectCode::Refused,
            other => return Err(malformed(format!("unknown reject code {other}"))),
        })
    }

    /// Stable lowercase name (reporting).
    pub fn name(self) -> &'static str {
        match self {
            RejectCode::Busy => "busy",
            RejectCode::ShuttingDown => "shutting-down",
            RejectCode::UnknownOp => "unknown-op",
            RejectCode::ShapeMismatch => "shape-mismatch",
            RejectCode::Canceled => "canceled",
            RejectCode::Malformed => "malformed",
            RejectCode::Refused => "refused",
        }
    }
}

impl std::fmt::Display for RejectCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One op row in an [`Message::OpList`] frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpInfo {
    /// Registration name.
    pub name: String,
    /// Output rows `m`.
    pub m: u32,
    /// Input rows `n` (what a request payload must have).
    pub n: u32,
}

/// One model row in a [`Message::ModelList`] frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelInfo {
    /// Model name (the `name` half of `op@v` resolution).
    pub name: String,
    /// Version of this row.
    pub version: u32,
    /// True while this version serves traffic; false once retired (its
    /// slots and traffic counters are retained, its payload is dropped).
    pub live: bool,
    /// Estimated resident bytes (0 once retired).
    pub mem_bytes: u64,
    /// Ops this version registered.
    pub ops: u32,
    /// Requests currently in flight against this version.
    pub inflight: u32,
    /// Requests completed across this version's ops.
    pub completed: u64,
}

/// Every message the protocol carries, client→server and server→client.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Client→server: run `op` on an `rows × cols` column-major fp32
    /// payload. `req_id` is echoed in the matching reply/reject and is the
    /// client's to choose (pipelining key).
    Request {
        /// Client-chosen correlation id.
        req_id: u64,
        /// Registered op name.
        op: String,
        /// Payload rows (the op's input size).
        rows: u32,
        /// Payload columns.
        cols: u16,
        /// Column-major fp32 payload, `rows × cols` values.
        data: Vec<f32>,
    },
    /// Server→client: the `m × cols` row-major result of a request.
    Reply {
        /// The request's correlation id.
        req_id: u64,
        /// Result rows (the op's output size `m`).
        rows: u32,
        /// Result columns (the request's column count).
        cols: u16,
        /// Row-major fp32 result, `rows × cols` values.
        data: Vec<f32>,
    },
    /// Server→client: the request was refused; `Busy` is the backpressure
    /// edge and is retryable.
    Reject {
        /// The request's correlation id (0 when no frame could be parsed).
        req_id: u64,
        /// Why.
        code: RejectCode,
        /// Human-readable detail.
        msg: String,
    },
    /// Client→server: ask for the op table.
    ListOps,
    /// Server→client: the registered ops, in registration order.
    OpList(Vec<OpInfo>),
    /// Client→server: ask for a live metrics snapshot (admin verb, empty
    /// body). Answered from counters the reader thread can reach — never
    /// by touching a worker.
    Stats,
    /// Server→client: the metric samples behind [`Message::Stats`].
    StatsReply(Vec<Sample>),
    /// Client→server: ask for the daemon's rolling per-interval
    /// time-series (admin verb). `max_points == 0` means "all retained".
    History {
        /// Newest points wanted (0 = every retained point).
        max_points: u16,
    },
    /// Server→client: the retained series points, oldest first.
    HistoryReply(Vec<SeriesPoint>),
    /// Client→server: ask for the slowest-request records (admin verb).
    /// `max == 0` means "the whole reservoir".
    SlowLog {
        /// Entries wanted (0 = the whole reservoir).
        max: u16,
    },
    /// Server→client: the slowest requests seen, slowest first, each with
    /// its full phase breakdown.
    SlowLogReply(Vec<SlowHit>),
    /// Client→server (admin verb): load the BIQM artifact at `path` (on
    /// the **daemon's** filesystem — the frame carries a path, never the
    /// artifact bytes) under `name`. An existing live `name` swaps to a
    /// new version and retires the old one (drain-on-retire). Refusals
    /// come back as `Reject(code = Refused, req_id = 0)`.
    LoadModel {
        /// Model name to load or swap.
        name: String,
        /// Artifact path, resolved daemon-side.
        path: String,
    },
    /// Server→client: the load succeeded.
    ModelLoaded {
        /// The loaded model's name (echoed).
        name: String,
        /// The version the load produced (1 for a new name, prev+1 for a
        /// swap).
        version: u32,
        /// Estimated resident bytes of the new version.
        mem_bytes: u64,
        /// Ops the artifact registered.
        ops: u32,
        /// `name@version` of models evicted to make room under the memory
        /// budget.
        evicted: Vec<String>,
    },
    /// Client→server (admin verb): retire a model version online.
    UnloadModel {
        /// Model name to unload.
        name: String,
        /// Version to retire; 0 means "the live version".
        version: u32,
    },
    /// Server→client: the unload succeeded.
    ModelUnloaded {
        /// The unloaded model's name (echoed).
        name: String,
        /// The version actually retired.
        version: u32,
        /// Ops the retirement removed from resolution.
        ops_retired: u32,
    },
    /// Client→server (admin verb): ask for the model table.
    ListModels,
    /// Server→client: every model version the registry knows, live first.
    ModelList(Vec<ModelInfo>),
}

impl Message {
    fn kind(&self) -> u8 {
        match self {
            Message::Request { .. } => 1,
            Message::Reply { .. } => 2,
            Message::Reject { .. } => 3,
            Message::ListOps => 4,
            Message::OpList(_) => 5,
            Message::Stats => 6,
            Message::StatsReply(_) => 7,
            Message::History { .. } => 8,
            Message::HistoryReply(_) => 9,
            Message::SlowLog { .. } => 10,
            Message::SlowLogReply(_) => 11,
            Message::LoadModel { .. } => 12,
            Message::ModelLoaded { .. } => 13,
            Message::UnloadModel { .. } => 14,
            Message::ModelUnloaded { .. } => 15,
            Message::ListModels => 16,
            Message::ModelList(_) => 17,
        }
    }
}

/// Decode/IO errors of the wire layer.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The peer closed the stream cleanly at a frame boundary.
    Closed,
    /// The bytes violate the protocol; the connection must close.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io error: {e}"),
            WireError::Closed => write!(f, "connection closed"),
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl WireError {
    /// True when the failure was specifically a body-checksum mismatch —
    /// the one malformed-frame class that indicates corruption in transit
    /// rather than a broken peer, so the net layer counts it separately.
    pub fn is_checksum_mismatch(&self) -> bool {
        matches!(self, WireError::Malformed(m) if m == "checksum mismatch")
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> WireError {
    WireError::Malformed(msg.into())
}

/// `fnv1a64` folded to the header's 32-bit checksum field.
pub fn fold_checksum(body: &[u8]) -> u32 {
    let h = fnv1a64(body);
    (h >> 32) as u32 ^ h as u32
}

// ---------------------------------------------------------------- encoding

struct Writer<'a> {
    buf: &'a mut Vec<u8>,
}

impl Writer<'_> {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
    fn f32s(&mut self, vs: &[f32]) {
        for v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Writes the 16-byte placeholder header; [`seal_frame`] patches it once
/// the body length and checksum are known.
fn start_frame(frame: &mut Vec<u8>, kind: u8) {
    frame.clear();
    frame.extend_from_slice(&MAGIC);
    frame.push(WIRE_VERSION);
    frame.push(kind);
    frame.extend_from_slice(&0u16.to_le_bytes());
    frame.extend_from_slice(&[0u8; 8]); // body_len + checksum, patched later
}

fn seal_frame(frame: &mut [u8]) {
    let body_len = frame.len() - HEADER_LEN;
    assert!(body_len <= MAX_BODY, "body over cap");
    let sum = fold_checksum(&frame[HEADER_LEN..]);
    frame[8..12].copy_from_slice(&(body_len as u32).to_le_bytes());
    frame[12..16].copy_from_slice(&sum.to_le_bytes());
}

/// Encodes one message as a complete frame (header + body).
///
/// # Panics
/// Panics when the message violates its own caps (name/msg/payload too
/// large, `data.len() != rows·cols`) — encoders construct messages, so a
/// violation is a local bug, not remote input.
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut frame = Vec::new();
    encode_into(&mut frame, msg);
    frame
}

/// [`encode`] into a caller-owned scratch buffer: the frame replaces the
/// buffer's contents and its capacity is reused, so a steady-state encode
/// loop allocates nothing once the buffer has grown to its working set.
pub fn encode_into(frame: &mut Vec<u8>, msg: &Message) {
    start_frame(frame, msg.kind());
    let mut w = Writer { buf: frame };
    match msg {
        Message::Request { req_id, op, rows, cols, data } => {
            assert!(op.len() <= MAX_NAME, "op name over cap");
            assert!((*rows as usize) <= MAX_ROWS && (*cols as usize) <= MAX_COLS);
            assert_eq!(data.len(), *rows as usize * *cols as usize, "payload shape");
            w.u64(*req_id);
            w.u16(op.len() as u16);
            w.bytes(op.as_bytes());
            w.u32(*rows);
            w.u16(*cols);
            w.f32s(data);
        }
        Message::Reply { req_id, rows, cols, data } => {
            assert!((*rows as usize) <= MAX_ROWS && (*cols as usize) <= MAX_COLS);
            assert_eq!(data.len(), *rows as usize * *cols as usize, "payload shape");
            w.u64(*req_id);
            w.u32(*rows);
            w.u16(*cols);
            w.f32s(data);
        }
        Message::Reject { req_id, code, msg } => {
            assert!(msg.len() <= MAX_MSG, "reject message over cap");
            w.u64(*req_id);
            w.u8(code.to_u8());
            w.u16(msg.len() as u16);
            w.bytes(msg.as_bytes());
        }
        Message::ListOps => {}
        Message::OpList(ops) => {
            assert!(ops.len() <= MAX_OPS, "op list over cap");
            w.u16(ops.len() as u16);
            for op in ops {
                assert!(op.name.len() <= MAX_NAME, "op name over cap");
                w.u16(op.name.len() as u16);
                w.bytes(op.name.as_bytes());
                w.u32(op.m);
                w.u32(op.n);
            }
        }
        Message::Stats => {}
        Message::StatsReply(samples) => {
            assert!(samples.len() <= MAX_SAMPLES, "sample list over cap");
            w.u8(STATS_VERSION);
            w.u16(samples.len() as u16);
            for s in samples {
                assert!(s.name.len() <= MAX_METRIC_NAME, "metric name over cap");
                assert!(s.labels.len() <= MAX_LABELS, "label list over cap");
                w.u8(match s.value {
                    MetricValue::Counter(_) => 1,
                    MetricValue::Gauge(_) => 2,
                    MetricValue::Histogram(_) => 3,
                });
                w.u16(s.name.len() as u16);
                w.bytes(s.name.as_bytes());
                w.u8(s.labels.len() as u8);
                for (k, v) in &s.labels {
                    assert!(k.len() <= MAX_LABEL_KEY, "label key over cap");
                    assert!(v.len() <= MAX_LABEL_VALUE, "label value over cap");
                    w.u8(k.len() as u8);
                    w.bytes(k.as_bytes());
                    w.u8(v.len() as u8);
                    w.bytes(v.as_bytes());
                }
                match &s.value {
                    MetricValue::Counter(v) => w.u64(*v),
                    MetricValue::Gauge(v) => w.u64(*v as u64),
                    MetricValue::Histogram(h) => {
                        for b in h.buckets {
                            w.u64(b);
                        }
                        w.u64(h.sum);
                    }
                }
            }
        }
        Message::History { max_points } => {
            w.u16(*max_points);
        }
        Message::HistoryReply(points) => {
            assert!(points.len() <= MAX_POINTS, "point list over cap");
            w.u8(HISTORY_VERSION);
            w.u16(points.len() as u16);
            for p in points {
                assert!(p.ops.len() <= MAX_POINT_OPS, "op rows over cap");
                w.u64(p.t_ms);
                w.u64(p.interval_ns);
                w.u16(p.ops.len() as u16);
                for op in &p.ops {
                    assert!(op.op.len() <= MAX_NAME, "op name over cap");
                    w.u16(op.op.len() as u16);
                    w.bytes(op.op.as_bytes());
                    w.u64(op.submitted);
                    w.u64(op.completed);
                    w.u64(op.rejected);
                    w.u64(op.queue_depth);
                    w.u64(op.batches);
                    w.u64(op.batch_cols_x100);
                    w.u64(op.p50_us);
                    w.u64(op.p99_us);
                }
            }
        }
        Message::SlowLog { max } => {
            w.u16(*max);
        }
        Message::SlowLogReply(hits) => {
            assert!(hits.len() <= MAX_SLOW, "slow list over cap");
            w.u8(SLOWLOG_VERSION);
            w.u16(hits.len() as u16);
            for hit in hits {
                assert!(hit.op.len() <= MAX_NAME, "op name over cap");
                w.u16(hit.op.len() as u16);
                w.bytes(hit.op.as_bytes());
                let r = &hit.rec;
                w.u64(r.req_id);
                w.u32(r.op);
                w.u32(r.cols);
                w.u64(r.start_ns);
                w.u64(r.total_ns);
                w.u64(r.queue_ns);
                w.u64(r.window_ns);
                w.u64(r.exec_ns);
                w.u64(r.ticket_ns);
                w.u64(r.write_ns);
            }
        }
        Message::LoadModel { name, path } => {
            assert!(name.len() <= MAX_NAME, "model name over cap");
            assert!(path.len() <= MAX_PATH, "artifact path over cap");
            w.u8(MODEL_VERSION);
            w.u16(name.len() as u16);
            w.bytes(name.as_bytes());
            w.u16(path.len() as u16);
            w.bytes(path.as_bytes());
        }
        Message::ModelLoaded { name, version, mem_bytes, ops, evicted } => {
            assert!(name.len() <= MAX_NAME, "model name over cap");
            assert!(evicted.len() <= MAX_MODELS, "evicted list over cap");
            w.u8(MODEL_VERSION);
            w.u16(name.len() as u16);
            w.bytes(name.as_bytes());
            w.u32(*version);
            w.u64(*mem_bytes);
            w.u32(*ops);
            w.u16(evicted.len() as u16);
            for e in evicted {
                assert!(e.len() <= MAX_NAME, "evicted name over cap");
                w.u16(e.len() as u16);
                w.bytes(e.as_bytes());
            }
        }
        Message::UnloadModel { name, version } => {
            assert!(name.len() <= MAX_NAME, "model name over cap");
            w.u8(MODEL_VERSION);
            w.u16(name.len() as u16);
            w.bytes(name.as_bytes());
            w.u32(*version);
        }
        Message::ModelUnloaded { name, version, ops_retired } => {
            assert!(name.len() <= MAX_NAME, "model name over cap");
            w.u8(MODEL_VERSION);
            w.u16(name.len() as u16);
            w.bytes(name.as_bytes());
            w.u32(*version);
            w.u32(*ops_retired);
        }
        Message::ListModels => {
            w.u8(MODEL_VERSION);
        }
        Message::ModelList(models) => {
            assert!(models.len() <= MAX_MODELS, "model list over cap");
            w.u8(MODEL_VERSION);
            w.u16(models.len() as u16);
            for m in models {
                assert!(m.name.len() <= MAX_NAME, "model name over cap");
                w.u16(m.name.len() as u16);
                w.bytes(m.name.as_bytes());
                w.u32(m.version);
                w.u8(if m.live { 1 } else { 2 });
                w.u64(m.mem_bytes);
                w.u32(m.ops);
                w.u32(m.inflight);
                w.u64(m.completed);
            }
        }
    }
    seal_frame(frame);
}

/// Encodes a [`Message::Request`] frame straight from borrowed parts —
/// byte-identical to `encode_into(frame, &Message::Request { .. })`
/// without materialising the owned `String`/`Vec<f32>` the `Message`
/// variant demands. The client's pipelined send path reuses one scratch
/// buffer and allocates nothing at steady state.
///
/// # Panics
/// Panics on cap violations, like [`encode`].
pub fn encode_request_into(
    frame: &mut Vec<u8>,
    req_id: u64,
    op: &str,
    rows: u32,
    cols: u16,
    data: &[f32],
) {
    assert!(op.len() <= MAX_NAME, "op name over cap");
    assert!((rows as usize) <= MAX_ROWS && (cols as usize) <= MAX_COLS);
    assert_eq!(data.len(), rows as usize * cols as usize, "payload shape");
    start_frame(frame, 1);
    let mut w = Writer { buf: frame };
    w.u64(req_id);
    w.u16(op.len() as u16);
    w.bytes(op.as_bytes());
    w.u32(rows);
    w.u16(cols);
    w.f32s(data);
    seal_frame(frame);
}

/// Encodes a `Reply` frame straight from its parts into `frame`
/// (cleared first), skipping the intermediate [`Message`] — the server's
/// hot reply path borrows the answer's storage instead of cloning it.
///
/// # Panics
/// Panics on cap violations, like [`encode`].
pub fn encode_reply_into(frame: &mut Vec<u8>, req_id: u64, rows: u32, cols: u16, data: &[f32]) {
    assert!((rows as usize) <= MAX_ROWS && (cols as usize) <= MAX_COLS);
    assert_eq!(data.len(), rows as usize * cols as usize, "payload shape");
    start_frame(frame, 2);
    let mut w = Writer { buf: frame };
    w.u64(req_id);
    w.u32(rows);
    w.u16(cols);
    w.f32s(data);
    seal_frame(frame);
}

// ---------------------------------------------------------------- decoding

/// A bounds-checked cursor over a frame body.
struct Reader<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).ok_or_else(|| malformed(format!("{what}: overflow")))?;
        if end > self.body.len() {
            return Err(malformed(format!(
                "{what}: needs {n} bytes, {} remain",
                self.body.len() - self.at
            )));
        }
        let s = &self.body[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }
    fn u16(&mut self, what: &str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().expect("2 bytes")))
    }
    fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    fn string(&mut self, len: usize, cap: usize, what: &str) -> Result<String, WireError> {
        if len > cap {
            return Err(malformed(format!("{what}: length {len} over cap {cap}")));
        }
        let raw = self.take(len, what)?;
        String::from_utf8(raw.to_vec()).map_err(|_| malformed(format!("{what}: not utf-8")))
    }

    /// `count` f32 values; the count is validated against the remaining
    /// body length **before** allocating.
    fn f32s(&mut self, count: usize, what: &str) -> Result<Vec<f32>, WireError> {
        let bytes =
            count.checked_mul(4).ok_or_else(|| malformed(format!("{what}: count overflow")))?;
        if self.at + bytes > self.body.len() {
            return Err(malformed(format!(
                "{what}: {count} values need {bytes} bytes, {} remain",
                self.body.len() - self.at
            )));
        }
        let raw = self.take(bytes, what)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    fn finish(self, what: &str) -> Result<(), WireError> {
        if self.at != self.body.len() {
            return Err(malformed(format!(
                "{what}: {} trailing body bytes",
                self.body.len() - self.at
            )));
        }
        Ok(())
    }
}

/// Validates a 16-byte header; returns `(kind, body_len, checksum)`.
fn parse_header(h: &[u8; HEADER_LEN]) -> Result<(u8, usize, u32), WireError> {
    if h[0..4] != MAGIC {
        return Err(malformed("bad magic"));
    }
    if h[4] != WIRE_VERSION {
        return Err(malformed(format!("unsupported version {}", h[4])));
    }
    let kind = h[5];
    if h[6] != 0 || h[7] != 0 {
        return Err(malformed("nonzero reserved field"));
    }
    let body_len = u32::from_le_bytes(h[8..12].try_into().expect("4 bytes")) as usize;
    if body_len > MAX_BODY {
        return Err(malformed(format!("body length {body_len} over cap {MAX_BODY}")));
    }
    let checksum = u32::from_le_bytes(h[12..16].try_into().expect("4 bytes"));
    Ok((kind, body_len, checksum))
}

/// Parses a checksum-verified body of the given kind.
fn parse_body(kind: u8, body: &[u8]) -> Result<Message, WireError> {
    let mut r = Reader { body, at: 0 };
    let msg = match kind {
        1 => {
            let req_id = r.u64("request id")?;
            let name_len = r.u16("op name length")? as usize;
            let op = r.string(name_len, MAX_NAME, "op name")?;
            let rows = r.u32("rows")?;
            let cols = r.u16("cols")?;
            if rows as usize > MAX_ROWS {
                return Err(malformed(format!("rows {rows} over cap {MAX_ROWS}")));
            }
            if cols as usize > MAX_COLS {
                return Err(malformed(format!("cols {cols} over cap {MAX_COLS}")));
            }
            let data = r.f32s(rows as usize * cols as usize, "request payload")?;
            Message::Request { req_id, op, rows, cols, data }
        }
        2 => {
            let req_id = r.u64("reply id")?;
            let rows = r.u32("rows")?;
            let cols = r.u16("cols")?;
            if rows as usize > MAX_ROWS {
                return Err(malformed(format!("rows {rows} over cap {MAX_ROWS}")));
            }
            if cols as usize > MAX_COLS {
                return Err(malformed(format!("cols {cols} over cap {MAX_COLS}")));
            }
            let data = r.f32s(rows as usize * cols as usize, "reply payload")?;
            Message::Reply { req_id, rows, cols, data }
        }
        3 => {
            let req_id = r.u64("reject id")?;
            let code = RejectCode::from_u8(r.u8("reject code")?)?;
            let msg_len = r.u16("reject message length")? as usize;
            let msg = r.string(msg_len, MAX_MSG, "reject message")?;
            Message::Reject { req_id, code, msg }
        }
        4 => Message::ListOps,
        5 => {
            let count = r.u16("op count")? as usize;
            if count > MAX_OPS {
                return Err(malformed(format!("op count {count} over cap {MAX_OPS}")));
            }
            // Each entry is ≥ 10 bytes; cap the allocation by what the body
            // can actually hold before reserving.
            if count * 10 > body.len() {
                return Err(malformed(format!("op count {count} exceeds body")));
            }
            let mut ops = Vec::with_capacity(count);
            for _ in 0..count {
                let name_len = r.u16("op name length")? as usize;
                let name = r.string(name_len, MAX_NAME, "op name")?;
                let m = r.u32("op m")?;
                let n = r.u32("op n")?;
                ops.push(OpInfo { name, m, n });
            }
            Message::OpList(ops)
        }
        6 => Message::Stats,
        7 => {
            let version = r.u8("stats version")?;
            if version != STATS_VERSION {
                return Err(malformed(format!("unsupported stats version {version}")));
            }
            let count = r.u16("sample count")? as usize;
            if count > MAX_SAMPLES {
                return Err(malformed(format!("sample count {count} over cap {MAX_SAMPLES}")));
            }
            // Each sample is ≥ 12 bytes (kind + name length + label count +
            // an 8-byte value); cap the allocation by what the body can
            // actually hold before reserving.
            if count * 12 > body.len() {
                return Err(malformed(format!("sample count {count} exceeds body")));
            }
            let mut samples = Vec::with_capacity(count);
            for _ in 0..count {
                let sample_kind = r.u8("sample kind")?;
                let name_len = r.u16("metric name length")? as usize;
                let name = r.string(name_len, MAX_METRIC_NAME, "metric name")?;
                let label_count = r.u8("label count")? as usize;
                if label_count > MAX_LABELS {
                    return Err(malformed(format!(
                        "label count {label_count} over cap {MAX_LABELS}"
                    )));
                }
                let mut labels = Vec::with_capacity(label_count);
                for _ in 0..label_count {
                    let klen = r.u8("label key length")? as usize;
                    let key = r.string(klen, MAX_LABEL_KEY, "label key")?;
                    let vlen = r.u8("label value length")? as usize;
                    let value = r.string(vlen, MAX_LABEL_VALUE, "label value")?;
                    labels.push((key, value));
                }
                let value = match sample_kind {
                    1 => MetricValue::Counter(r.u64("counter value")?),
                    2 => MetricValue::Gauge(r.u64("gauge value")? as i64),
                    3 => {
                        let mut buckets = [0u64; BUCKETS];
                        for b in buckets.iter_mut() {
                            *b = r.u64("histogram bucket")?;
                        }
                        let sum = r.u64("histogram sum")?;
                        MetricValue::Histogram(HistogramSnapshot { buckets, sum })
                    }
                    other => return Err(malformed(format!("unknown sample kind {other}"))),
                };
                samples.push(Sample { name, labels, value });
            }
            Message::StatsReply(samples)
        }
        8 => Message::History { max_points: r.u16("history max")? },
        9 => {
            let version = r.u8("history version")?;
            if version != HISTORY_VERSION {
                return Err(malformed(format!("unsupported history version {version}")));
            }
            let count = r.u16("point count")? as usize;
            if count > MAX_POINTS {
                return Err(malformed(format!("point count {count} over cap {MAX_POINTS}")));
            }
            // Each point is ≥ 18 bytes (two u64 stamps + an op count); cap
            // the allocation by what the body can actually hold.
            if count * 18 > body.len() {
                return Err(malformed(format!("point count {count} exceeds body")));
            }
            let mut points = Vec::with_capacity(count);
            for _ in 0..count {
                let t_ms = r.u64("point time")?;
                let interval_ns = r.u64("point interval")?;
                let op_count = r.u16("op row count")? as usize;
                if op_count > MAX_POINT_OPS {
                    return Err(malformed(format!(
                        "op row count {op_count} over cap {MAX_POINT_OPS}"
                    )));
                }
                // Each op row is ≥ 66 bytes (name length + eight u64s);
                // validate against the bytes actually left.
                if op_count * 66 > body.len() - r.at {
                    return Err(malformed(format!("op row count {op_count} exceeds body")));
                }
                let mut ops = Vec::with_capacity(op_count);
                for _ in 0..op_count {
                    let name_len = r.u16("op name length")? as usize;
                    let op = r.string(name_len, MAX_NAME, "op name")?;
                    ops.push(OpPoint {
                        op,
                        submitted: r.u64("submitted")?,
                        completed: r.u64("completed")?,
                        rejected: r.u64("rejected")?,
                        queue_depth: r.u64("queue depth")?,
                        batches: r.u64("batches")?,
                        batch_cols_x100: r.u64("batch cols")?,
                        p50_us: r.u64("p50")?,
                        p99_us: r.u64("p99")?,
                    });
                }
                points.push(SeriesPoint { t_ms, interval_ns, ops });
            }
            Message::HistoryReply(points)
        }
        10 => Message::SlowLog { max: r.u16("slowlog max")? },
        11 => {
            let version = r.u8("slowlog version")?;
            if version != SLOWLOG_VERSION {
                return Err(malformed(format!("unsupported slowlog version {version}")));
            }
            let count = r.u16("slow entry count")? as usize;
            if count > MAX_SLOW {
                return Err(malformed(format!("slow entry count {count} over cap {MAX_SLOW}")));
            }
            // Each entry is ≥ 74 bytes (name length + the fixed record);
            // cap the allocation by what the body can actually hold.
            if count * 74 > body.len() {
                return Err(malformed(format!("slow entry count {count} exceeds body")));
            }
            let mut hits = Vec::with_capacity(count);
            for _ in 0..count {
                let name_len = r.u16("op name length")? as usize;
                let op_name = r.string(name_len, MAX_NAME, "op name")?;
                hits.push(SlowHit {
                    op: op_name,
                    rec: RequestRecord {
                        req_id: r.u64("req id")?,
                        op: r.u32("op index")?,
                        cols: r.u32("cols")?,
                        start_ns: r.u64("start")?,
                        total_ns: r.u64("total")?,
                        queue_ns: r.u64("queue phase")?,
                        window_ns: r.u64("window phase")?,
                        exec_ns: r.u64("exec phase")?,
                        ticket_ns: r.u64("ticket phase")?,
                        write_ns: r.u64("write phase")?,
                    },
                });
            }
            Message::SlowLogReply(hits)
        }
        12 => {
            let version = r.u8("model body version")?;
            if version != MODEL_VERSION {
                return Err(malformed(format!("unsupported model body version {version}")));
            }
            let name_len = r.u16("model name length")? as usize;
            let name = r.string(name_len, MAX_NAME, "model name")?;
            let path_len = r.u16("artifact path length")? as usize;
            let path = r.string(path_len, MAX_PATH, "artifact path")?;
            Message::LoadModel { name, path }
        }
        13 => {
            let version = r.u8("model body version")?;
            if version != MODEL_VERSION {
                return Err(malformed(format!("unsupported model body version {version}")));
            }
            let name_len = r.u16("model name length")? as usize;
            let name = r.string(name_len, MAX_NAME, "model name")?;
            let model_version = r.u32("model version")?;
            let mem_bytes = r.u64("model bytes")?;
            let ops = r.u32("op count")?;
            let count = r.u16("evicted count")? as usize;
            if count > MAX_MODELS {
                return Err(malformed(format!("evicted count {count} over cap {MAX_MODELS}")));
            }
            // Each evicted name is ≥ 2 bytes (its length prefix); cap the
            // allocation by the bytes actually left.
            if count * 2 > body.len() - r.at {
                return Err(malformed(format!("evicted count {count} exceeds body")));
            }
            let mut evicted = Vec::with_capacity(count);
            for _ in 0..count {
                let len = r.u16("evicted name length")? as usize;
                evicted.push(r.string(len, MAX_NAME, "evicted name")?);
            }
            Message::ModelLoaded { name, version: model_version, mem_bytes, ops, evicted }
        }
        14 => {
            let version = r.u8("model body version")?;
            if version != MODEL_VERSION {
                return Err(malformed(format!("unsupported model body version {version}")));
            }
            let name_len = r.u16("model name length")? as usize;
            let name = r.string(name_len, MAX_NAME, "model name")?;
            let model_version = r.u32("model version")?;
            Message::UnloadModel { name, version: model_version }
        }
        15 => {
            let version = r.u8("model body version")?;
            if version != MODEL_VERSION {
                return Err(malformed(format!("unsupported model body version {version}")));
            }
            let name_len = r.u16("model name length")? as usize;
            let name = r.string(name_len, MAX_NAME, "model name")?;
            let model_version = r.u32("model version")?;
            let ops_retired = r.u32("ops retired")?;
            Message::ModelUnloaded { name, version: model_version, ops_retired }
        }
        16 => {
            let version = r.u8("model body version")?;
            if version != MODEL_VERSION {
                return Err(malformed(format!("unsupported model body version {version}")));
            }
            Message::ListModels
        }
        17 => {
            let version = r.u8("model body version")?;
            if version != MODEL_VERSION {
                return Err(malformed(format!("unsupported model body version {version}")));
            }
            let count = r.u16("model count")? as usize;
            if count > MAX_MODELS {
                return Err(malformed(format!("model count {count} over cap {MAX_MODELS}")));
            }
            // Each row is ≥ 31 bytes (name length + the fixed fields); cap
            // the allocation by what the body can actually hold.
            if count * 31 > body.len() - r.at {
                return Err(malformed(format!("model count {count} exceeds body")));
            }
            let mut models = Vec::with_capacity(count);
            for _ in 0..count {
                let name_len = r.u16("model name length")? as usize;
                let name = r.string(name_len, MAX_NAME, "model name")?;
                let model_version = r.u32("model version")?;
                let live = match r.u8("model state")? {
                    1 => true,
                    2 => false,
                    other => return Err(malformed(format!("unknown model state {other}"))),
                };
                models.push(ModelInfo {
                    name,
                    version: model_version,
                    live,
                    mem_bytes: r.u64("model bytes")?,
                    ops: r.u32("op count")?,
                    inflight: r.u32("inflight")?,
                    completed: r.u64("completed")?,
                });
            }
            Message::ModelList(models)
        }
        other => return Err(malformed(format!("unknown frame kind {other}"))),
    };
    r.finish("frame body")?;
    Ok(msg)
}

/// Decodes one frame from a byte buffer; returns the message and the bytes
/// consumed. Pure — this is what the hostile-input proptests hammer.
pub fn decode(bytes: &[u8]) -> Result<(Message, usize), WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(malformed(format!("{} header bytes, need {HEADER_LEN}", bytes.len())));
    }
    let header: &[u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().expect("16 bytes");
    let (kind, body_len, checksum) = parse_header(header)?;
    if bytes.len() < HEADER_LEN + body_len {
        return Err(malformed(format!(
            "body needs {body_len} bytes, {} remain",
            bytes.len() - HEADER_LEN
        )));
    }
    let body = &bytes[HEADER_LEN..HEADER_LEN + body_len];
    if fold_checksum(body) != checksum {
        return Err(malformed("checksum mismatch"));
    }
    Ok((parse_body(kind, body)?, HEADER_LEN + body_len))
}

/// What [`decode_frame`] found at the front of a partial buffer.
#[derive(Debug)]
pub enum FrameStatus {
    /// The buffer holds a frame prefix; at least this many more bytes are
    /// needed before the frame can complete.
    NeedMore(usize),
    /// A complete frame: the decoded message and the bytes it consumed
    /// (drain exactly `used` from the buffer's front).
    Frame {
        /// The decoded message.
        msg: Message,
        /// Bytes consumed from the buffer's front.
        used: usize,
    },
}

/// Incremental sibling of [`decode`] for nonblocking readers: decodes the
/// frame at the front of a possibly-partial buffer. The header is
/// validated as soon as 16 bytes are present — garbage fails fast instead
/// of waiting for a body that will never arrive — and the same cap/
/// checksum/tiling discipline as [`decode`] applies once the body is
/// complete.
pub fn decode_frame(bytes: &[u8]) -> Result<FrameStatus, WireError> {
    if bytes.len() < HEADER_LEN {
        return Ok(FrameStatus::NeedMore(HEADER_LEN - bytes.len()));
    }
    let header: &[u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().expect("16 bytes");
    let (kind, body_len, checksum) = parse_header(header)?;
    if bytes.len() < HEADER_LEN + body_len {
        return Ok(FrameStatus::NeedMore(HEADER_LEN + body_len - bytes.len()));
    }
    let body = &bytes[HEADER_LEN..HEADER_LEN + body_len];
    if fold_checksum(body) != checksum {
        return Err(malformed("checksum mismatch"));
    }
    Ok(FrameStatus::Frame { msg: parse_body(kind, body)?, used: HEADER_LEN + body_len })
}

/// Reads exactly one frame from a stream. A clean EOF **at a frame
/// boundary** is [`WireError::Closed`]; EOF mid-frame is `Malformed`. The
/// body buffer is only allocated after the header's cap check.
pub fn read_message(r: &mut impl Read) -> Result<Message, WireError> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0usize;
    while got < HEADER_LEN {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Err(WireError::Closed),
            Ok(0) => return Err(malformed(format!("eof after {got} header bytes"))),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let (kind, body_len, checksum) = parse_header(&header)?;
    let mut body = vec![0u8; body_len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            malformed("eof inside frame body")
        } else {
            WireError::Io(e)
        }
    })?;
    if fold_checksum(&body) != checksum {
        return Err(malformed("checksum mismatch"));
    }
    parse_body(kind, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Message {
        Message::Request {
            req_id: 7,
            op: "linear".into(),
            rows: 3,
            cols: 2,
            data: vec![1.0, -2.5, 0.0, 4.0, 5.5, -6.25],
        }
    }

    #[test]
    fn every_message_kind_round_trips() {
        let msgs = [
            sample_request(),
            Message::Reply { req_id: 9, rows: 2, cols: 1, data: vec![0.5, -0.5] },
            Message::Reject { req_id: 3, code: RejectCode::Busy, msg: "queue full".into() },
            Message::ListOps,
            Message::OpList(vec![
                OpInfo { name: "a".into(), m: 4, n: 8 },
                OpInfo { name: "b.c".into(), m: 16, n: 2 },
            ]),
            Message::Stats,
            Message::StatsReply(vec![
                Sample {
                    name: "biq_serve_completed_total".into(),
                    labels: vec![("op".into(), "linear".into())],
                    value: MetricValue::Counter(42),
                },
                Sample {
                    name: "biq_serve_queue_depth".into(),
                    labels: vec![("op".into(), "linear".into())],
                    value: MetricValue::Gauge(-3),
                },
                Sample {
                    name: "biq_serve_latency_us".into(),
                    labels: Vec::new(),
                    value: MetricValue::Histogram({
                        let mut h = HistogramSnapshot::default();
                        h.buckets[0] = 1;
                        h.buckets[31] = 7;
                        h.sum = u64::MAX;
                        h
                    }),
                },
            ]),
            Message::History { max_points: 60 },
            Message::HistoryReply(vec![
                SeriesPoint { t_ms: 1_000, interval_ns: 1_000_000_000, ops: Vec::new() },
                SeriesPoint {
                    t_ms: 2_000,
                    interval_ns: 999_555_000,
                    ops: vec![OpPoint {
                        op: "linear".into(),
                        submitted: 41,
                        completed: 40,
                        rejected: 1,
                        queue_depth: 3,
                        batches: 10,
                        batch_cols_x100: 412,
                        p50_us: 120,
                        p99_us: 900,
                    }],
                },
            ]),
            Message::SlowLog { max: 8 },
            Message::SlowLogReply(vec![SlowHit {
                op: "linear".into(),
                rec: RequestRecord::from_timeline(
                    17, 0, 2, 1_000, 2_000, 300_000, 5_000_000, 5_100_000, 5_301_000,
                ),
            }]),
            Message::LoadModel { name: "bert".into(), path: "/models/bert.biqm".into() },
            Message::ModelLoaded {
                name: "bert".into(),
                version: 3,
                mem_bytes: 123_456,
                ops: 6,
                evicted: vec!["gpt@1".into(), "t5@4".into()],
            },
            Message::UnloadModel { name: "bert".into(), version: 0 },
            Message::ModelUnloaded { name: "bert".into(), version: 3, ops_retired: 6 },
            Message::ListModels,
            Message::ModelList(vec![
                ModelInfo {
                    name: "bert".into(),
                    version: 3,
                    live: true,
                    mem_bytes: 123_456,
                    ops: 6,
                    inflight: 2,
                    completed: 9_000,
                },
                ModelInfo {
                    name: "bert".into(),
                    version: 2,
                    live: false,
                    mem_bytes: 0,
                    ops: 6,
                    inflight: 0,
                    completed: 41,
                },
            ]),
        ];
        for msg in msgs {
            let frame = encode(&msg);
            let (back, used) = decode(&frame).unwrap();
            assert_eq!(back, msg);
            assert_eq!(used, frame.len());
            // Stream path agrees with the buffer path.
            let mut cursor = std::io::Cursor::new(frame);
            assert_eq!(read_message(&mut cursor).unwrap(), msg);
        }
    }

    #[test]
    fn encode_into_and_reply_into_match_encode_bytes() {
        let mut scratch = Vec::new();
        let reply = Message::Reply { req_id: 11, rows: 3, cols: 2, data: vec![0.5f32; 6] };
        for msg in [sample_request(), reply.clone(), Message::Stats] {
            encode_into(&mut scratch, &msg);
            assert_eq!(scratch, encode(&msg), "scratch encode must be byte-identical");
        }
        // The direct reply encoder agrees with the Message path and reuses
        // capacity (second call must not grow the buffer).
        encode_reply_into(&mut scratch, 11, 3, 2, &[0.5f32; 6]);
        assert_eq!(scratch, encode(&reply));
        let cap = scratch.capacity();
        encode_reply_into(&mut scratch, 11, 3, 2, &[0.5f32; 6]);
        assert_eq!(scratch.capacity(), cap, "steady-state encode must reuse the buffer");
    }

    #[test]
    fn decode_frame_streams_partial_input() {
        let frame = encode(&sample_request());
        // Every prefix short of the full frame asks for more; header
        // prefixes ask for the rest of the header first.
        for cut in 0..frame.len() {
            match decode_frame(&frame[..cut]).unwrap() {
                FrameStatus::NeedMore(n) => {
                    assert!(n > 0 && cut + n <= frame.len(), "cut {cut} wants {n}");
                    if cut < HEADER_LEN {
                        assert_eq!(n, HEADER_LEN - cut, "header completes first");
                    } else {
                        assert_eq!(cut + n, frame.len(), "body asks for exactly the rest");
                    }
                }
                other => panic!("prefix {cut} decoded: {other:?}"),
            }
        }
        // The full frame (plus pipelined trailing bytes) decodes the front.
        let mut two = frame.clone();
        two.extend_from_slice(&frame);
        match decode_frame(&two).unwrap() {
            FrameStatus::Frame { msg, used } => {
                assert_eq!(msg, sample_request());
                assert_eq!(used, frame.len());
            }
            other => panic!("full frame: {other:?}"),
        }
    }

    #[test]
    fn decode_frame_fails_garbage_at_the_header() {
        // A bad header must fail as soon as 16 bytes exist — an attacker
        // cannot park a connection on a body that never comes.
        let garbage = [0x5au8; HEADER_LEN];
        assert!(matches!(decode_frame(&garbage), Err(WireError::Malformed(_))));
        // Checksum corruption is detected once the body is complete.
        let mut frame = encode(&sample_request());
        let at = HEADER_LEN + 3;
        frame[at] ^= 0x40;
        match decode_frame(&frame) {
            Err(e) => assert!(e.is_checksum_mismatch(), "{e}"),
            other => panic!("flip decoded: {other:?}"),
        }
    }

    #[test]
    fn clean_eof_is_closed_mid_frame_is_malformed() {
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_message(&mut empty), Err(WireError::Closed)));
        let frame = encode(&sample_request());
        let mut cut = std::io::Cursor::new(frame[..10].to_vec());
        assert!(matches!(read_message(&mut cut), Err(WireError::Malformed(_))));
    }

    #[test]
    fn body_flip_fails_the_checksum() {
        let mut frame = encode(&sample_request());
        let at = HEADER_LEN + 3;
        frame[at] ^= 0x40;
        match decode(&frame) {
            Err(WireError::Malformed(m)) => assert!(m.contains("checksum"), "{m}"),
            other => panic!("flip decoded: {other:?}"),
        }
    }

    #[test]
    fn oversized_header_length_errors_before_allocating() {
        let mut frame = encode(&Message::ListOps);
        frame[8..12].copy_from_slice(&(MAX_BODY as u32 + 1).to_le_bytes());
        assert!(matches!(decode(&frame), Err(WireError::Malformed(_))));
    }

    /// Re-stamps a frame's checksum after the body was edited so only the
    /// body validation under test can object.
    fn restamp(frame: &mut [u8]) {
        let sum = fold_checksum(&frame[HEADER_LEN..]);
        frame[12..16].copy_from_slice(&sum.to_le_bytes());
    }

    #[test]
    fn stats_reply_rejects_bad_version_and_inflated_counts() {
        let msg = Message::StatsReply(vec![Sample {
            name: "x".into(),
            labels: Vec::new(),
            value: MetricValue::Counter(1),
        }]);
        // Unknown stats schema version.
        let mut frame = encode(&msg);
        frame[HEADER_LEN] = 9;
        restamp(&mut frame);
        match decode(&frame) {
            Err(WireError::Malformed(m)) => assert!(m.contains("stats version"), "{m}"),
            other => panic!("bad version decoded: {other:?}"),
        }
        // A sample count the body cannot hold must fail before allocating.
        let mut frame = encode(&msg);
        frame[HEADER_LEN + 1..HEADER_LEN + 3].copy_from_slice(&2000u16.to_le_bytes());
        restamp(&mut frame);
        match decode(&frame) {
            Err(WireError::Malformed(m)) => assert!(m.contains("sample count"), "{m}"),
            other => panic!("inflated count decoded: {other:?}"),
        }
        // Trailing garbage after the last sample is an error.
        let mut frame = encode(&msg);
        frame.push(0);
        let len = (frame.len() - HEADER_LEN) as u32;
        frame[8..12].copy_from_slice(&len.to_le_bytes());
        restamp(&mut frame);
        match decode(&frame) {
            Err(WireError::Malformed(m)) => assert!(m.contains("trailing"), "{m}"),
            other => panic!("trailing bytes decoded: {other:?}"),
        }
    }

    #[test]
    fn history_reply_rejects_bad_version_and_inflated_counts() {
        let msg = Message::HistoryReply(vec![SeriesPoint {
            t_ms: 5,
            interval_ns: 7,
            ops: vec![OpPoint { op: "x".into(), completed: 1, ..OpPoint::default() }],
        }]);
        // Unknown history schema version.
        let mut frame = encode(&msg);
        frame[HEADER_LEN] = 9;
        restamp(&mut frame);
        match decode(&frame) {
            Err(WireError::Malformed(m)) => assert!(m.contains("history version"), "{m}"),
            other => panic!("bad version decoded: {other:?}"),
        }
        // A point count the body cannot hold must fail before allocating.
        let mut frame = encode(&msg);
        frame[HEADER_LEN + 1..HEADER_LEN + 3].copy_from_slice(&500u16.to_le_bytes());
        restamp(&mut frame);
        match decode(&frame) {
            Err(WireError::Malformed(m)) => assert!(m.contains("point count"), "{m}"),
            other => panic!("inflated point count decoded: {other:?}"),
        }
        // Same for the nested per-point op-row count.
        let mut frame = encode(&msg);
        let ops_at = HEADER_LEN + 3 + 16; // version + count + t_ms + interval_ns
        frame[ops_at..ops_at + 2].copy_from_slice(&200u16.to_le_bytes());
        restamp(&mut frame);
        match decode(&frame) {
            Err(WireError::Malformed(m)) => assert!(m.contains("op row count"), "{m}"),
            other => panic!("inflated op count decoded: {other:?}"),
        }
        // Trailing garbage after the last point is an error.
        let mut frame = encode(&msg);
        frame.push(0);
        let len = (frame.len() - HEADER_LEN) as u32;
        frame[8..12].copy_from_slice(&len.to_le_bytes());
        restamp(&mut frame);
        match decode(&frame) {
            Err(WireError::Malformed(m)) => assert!(m.contains("trailing"), "{m}"),
            other => panic!("trailing bytes decoded: {other:?}"),
        }
    }

    #[test]
    fn slowlog_reply_rejects_bad_version_and_inflated_counts() {
        let msg = Message::SlowLogReply(vec![SlowHit {
            op: "x".into(),
            rec: RequestRecord::from_timeline(1, 0, 1, 0, 1, 2, 3, 4, 5),
        }]);
        // Unknown slowlog schema version.
        let mut frame = encode(&msg);
        frame[HEADER_LEN] = 9;
        restamp(&mut frame);
        match decode(&frame) {
            Err(WireError::Malformed(m)) => assert!(m.contains("slowlog version"), "{m}"),
            other => panic!("bad version decoded: {other:?}"),
        }
        // An entry count the body cannot hold must fail before allocating.
        let mut frame = encode(&msg);
        frame[HEADER_LEN + 1..HEADER_LEN + 3].copy_from_slice(&200u16.to_le_bytes());
        restamp(&mut frame);
        match decode(&frame) {
            Err(WireError::Malformed(m)) => assert!(m.contains("slow entry count"), "{m}"),
            other => panic!("inflated count decoded: {other:?}"),
        }
        // Trailing garbage after the last entry is an error.
        let mut frame = encode(&msg);
        frame.push(0);
        let len = (frame.len() - HEADER_LEN) as u32;
        frame[8..12].copy_from_slice(&len.to_le_bytes());
        restamp(&mut frame);
        match decode(&frame) {
            Err(WireError::Malformed(m)) => assert!(m.contains("trailing"), "{m}"),
            other => panic!("trailing bytes decoded: {other:?}"),
        }
    }

    #[test]
    fn model_verbs_reject_bad_version_and_inflated_counts() {
        // Every model-fleet body leads with MODEL_VERSION; a bumped byte
        // must refuse on all six kinds, request and reply alike.
        for msg in [
            Message::LoadModel { name: "m".into(), path: "/p".into() },
            Message::ModelLoaded {
                name: "m".into(),
                version: 1,
                mem_bytes: 8,
                ops: 1,
                evicted: vec![],
            },
            Message::UnloadModel { name: "m".into(), version: 0 },
            Message::ModelUnloaded { name: "m".into(), version: 1, ops_retired: 1 },
            Message::ListModels,
            Message::ModelList(vec![]),
        ] {
            let mut frame = encode(&msg);
            frame[HEADER_LEN] = 9;
            restamp(&mut frame);
            match decode(&frame) {
                Err(WireError::Malformed(m)) => assert!(m.contains("model body version"), "{m}"),
                other => panic!("bad version decoded: {other:?}"),
            }
        }
        // An evicted-name count the body cannot hold fails before
        // allocating (count lives after name + version + mem + ops).
        let loaded = Message::ModelLoaded {
            name: "m".into(),
            version: 1,
            mem_bytes: 8,
            ops: 1,
            evicted: vec!["x@1".into()],
        };
        let mut frame = encode(&loaded);
        let count_at = HEADER_LEN + 1 + 2 + 1 + 4 + 8 + 4;
        frame[count_at..count_at + 2].copy_from_slice(&200u16.to_le_bytes());
        restamp(&mut frame);
        match decode(&frame) {
            Err(WireError::Malformed(m)) => assert!(m.contains("evicted count"), "{m}"),
            other => panic!("inflated evicted count decoded: {other:?}"),
        }
        // Same for the model-row count in a ModelList.
        let list = Message::ModelList(vec![ModelInfo {
            name: "m".into(),
            version: 1,
            live: true,
            mem_bytes: 8,
            ops: 1,
            inflight: 0,
            completed: 0,
        }]);
        let mut frame = encode(&list);
        frame[HEADER_LEN + 1..HEADER_LEN + 3].copy_from_slice(&200u16.to_le_bytes());
        restamp(&mut frame);
        match decode(&frame) {
            Err(WireError::Malformed(m)) => assert!(m.contains("model count"), "{m}"),
            other => panic!("inflated model count decoded: {other:?}"),
        }
        // An unknown model-state byte is an error, not a default.
        let mut frame = encode(&list);
        let state_at = HEADER_LEN + 1 + 2 + 2 + 1 + 4; // ver + count + name_len + "m" + version
        frame[state_at] = 7;
        restamp(&mut frame);
        match decode(&frame) {
            Err(WireError::Malformed(m)) => assert!(m.contains("model state"), "{m}"),
            other => panic!("bad state decoded: {other:?}"),
        }
        // Trailing garbage after the last row is an error on each kind.
        for msg in [loaded, list, Message::ListModels] {
            let mut frame = encode(&msg);
            frame.push(0);
            let len = (frame.len() - HEADER_LEN) as u32;
            frame[8..12].copy_from_slice(&len.to_le_bytes());
            restamp(&mut frame);
            match decode(&frame) {
                Err(WireError::Malformed(m)) => assert!(m.contains("trailing"), "{m}"),
                other => panic!("trailing bytes decoded: {other:?}"),
            }
        }
        // A LoadModel path over MAX_PATH refuses before allocating.
        let mut frame = encode(&Message::LoadModel { name: "m".into(), path: "/p".into() });
        let path_len_at = HEADER_LEN + 1 + 2 + 1; // ver + name_len + "m"
        frame[path_len_at..path_len_at + 2].copy_from_slice(&((MAX_PATH + 1) as u16).to_le_bytes());
        restamp(&mut frame);
        match decode(&frame) {
            Err(WireError::Malformed(m)) => assert!(m.contains("artifact path"), "{m}"),
            other => panic!("oversized path decoded: {other:?}"),
        }
    }

    #[test]
    fn payload_count_must_tile_the_body_exactly() {
        // Hand-build a request body whose rows·cols disagrees with the
        // payload bytes actually present.
        let msg = sample_request();
        let mut frame = encode(&msg);
        // rows lives right after req_id(8) + name_len(2) + "linear"(6).
        let rows_at = HEADER_LEN + 16;
        frame[rows_at..rows_at + 4].copy_from_slice(&100u32.to_le_bytes());
        // Re-stamp the checksum so only the count validation can object.
        let body_len = frame.len() - HEADER_LEN;
        let sum = fold_checksum(&frame[HEADER_LEN..HEADER_LEN + body_len]);
        frame[12..16].copy_from_slice(&sum.to_le_bytes());
        match decode(&frame) {
            Err(WireError::Malformed(m)) => assert!(m.contains("payload"), "{m}"),
            other => panic!("bad count decoded: {other:?}"),
        }
    }
}
