//! The TCP front-end: an acceptor thread plus per-connection reader/writer
//! threads that bridge `BIQP` frames into [`crate::Client`] tickets.
//!
//! ```text
//!  TcpListener ──► acceptor thread ──► per connection:
//!                                        reader thread ── read frame
//!                                        │   Request ─► Client::try_submit
//!                                        │     Ok(ticket)  ─► writer queue
//!                                        │     Err(Busy…)  ─► reject frame
//!                                        │   ListOps ─► op table frame
//!                                        └► writer thread ── Ticket::wait → reply frame
//! ```
//!
//! Everything the in-process serving layer guarantees applies to remote
//! traffic unchanged, because the bridge is a plain [`crate::Client`]:
//! batching packs frames from different connections into one executor
//! pass, backpressure surfaces as an explicit `Busy` reject frame
//! (retryable), and [`NetServer::shutdown`] drains every accepted request
//! before the final [`StatsSnapshot`] is captured.
//!
//! Malformed frames follow the codec's contract: the connection gets a
//! best-effort `Reject(code = Malformed)` frame and is then closed —
//! corrupt input never takes the server down (`net_hostile` pins this).

use crate::net::wire::{self, Message, OpInfo, RejectCode, WireError};
use crate::server::{Client, Server, StatsHandle, Ticket};
use crate::stats::StatsSnapshot;
use crate::ServeError;
use biq_matrix::ColMatrix;
use biq_obs::{span, Counter, Gauge, MetricsSnapshot, Registry, RequestRecord, SeriesRing};
use std::io::{BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the (non-blocking) acceptor polls for the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Time-series points the daemon retains (at the CLI's ~1 Hz sampling
/// tick, two minutes of history) — under the wire's `MAX_POINTS` cap.
const HISTORY_POINTS: usize = 120;

/// Transport-layer counters, one set per [`NetServer`]. Every update is a
/// relaxed atomic op on a reader/writer thread — nothing here touches a
/// worker or takes a lock on the hot path.
pub(crate) struct NetMetrics {
    registry: Registry,
    frames_in: Counter,
    frames_out: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    checksum_failures: Counter,
    malformed: Counter,
    busy_rejects: Counter,
    connections_opened: Counter,
    connections_open: Gauge,
    stats_queries: Counter,
    history_queries: Counter,
    slowlog_queries: Counter,
}

impl NetMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        NetMetrics {
            frames_in: registry.counter("biq_net_frames_in_total", &[]),
            frames_out: registry.counter("biq_net_frames_out_total", &[]),
            bytes_in: registry.counter("biq_net_bytes_in_total", &[]),
            bytes_out: registry.counter("biq_net_bytes_out_total", &[]),
            checksum_failures: registry.counter("biq_net_checksum_failures_total", &[]),
            malformed: registry.counter("biq_net_malformed_total", &[]),
            busy_rejects: registry.counter("biq_net_busy_rejects_total", &[]),
            connections_opened: registry.counter("biq_net_connections_opened_total", &[]),
            connections_open: registry.gauge("biq_net_connections_open", &[]),
            stats_queries: registry.counter("biq_net_stats_queries_total", &[]),
            history_queries: registry.counter("biq_net_history_queries_total", &[]),
            slowlog_queries: registry.counter("biq_net_slowlog_queries_total", &[]),
            registry,
        }
    }
}

/// Everything a `Stats` frame is answered from: the serving layer's
/// counters (via [`StatsHandle`]) merged with the transport counters.
/// Shared by every connection; snapshotting reads atomics only.
pub(crate) struct MetricsHub {
    serve: StatsHandle,
    net: NetMetrics,
    /// Rolling per-interval time-series (the `History` verb's payload),
    /// fed by [`NetServer::sample_series`] on the daemon's housekeeping
    /// tick.
    series: SeriesRing,
}

impl MetricsHub {
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let mut m = self.serve.metrics();
        m.merge(&self.net.registry.snapshot());
        // Observability of the observability: trace-ring drop counts and
        // the enabled flag ride along with every snapshot, so the CI smoke
        // can assert drops stayed zero under load.
        m.samples.extend(biq_obs::trace::health().samples());
        m
    }
}

/// A [`Read`] adapter that charges every byte pulled off the socket to a
/// counter — how `biq_net_bytes_in_total` sees partial frames and garbage,
/// not just well-formed messages.
struct CountingRead<R> {
    inner: R,
    counter: Counter,
}

impl<R: Read> Read for CountingRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.counter.add(n as u64);
        Ok(n)
    }
}

/// What a reader hands its connection's writer thread.
enum WriterMsg {
    /// Wait the ticket, then write the reply (or a `Canceled` reject).
    Reply { req_id: u64, ticket: Ticket },
    /// Write a reject frame.
    Reject { req_id: u64, code: RejectCode, msg: String },
    /// Write the op table.
    Ops,
    /// Write a metrics snapshot (the `Stats` admin verb).
    Stats,
    /// Write the rolling time-series (the `History` admin verb).
    History {
        /// Newest points wanted (0 = every retained point).
        max: u16,
    },
    /// Write the slowest-request records (the `SlowLog` admin verb).
    SlowLog {
        /// Entries wanted (0 = the whole reservoir).
        max: u16,
    },
}

/// One live connection: the stream handle (for shutdown) and the reader
/// thread (which joins its own writer before exiting).
struct Conn {
    stream: TcpStream,
    reader: JoinHandle<()>,
}

/// A running TCP front-end over a [`Server`]. Construct with
/// [`NetServer::bind`], stop with [`NetServer::shutdown`].
pub struct NetServer {
    server: Option<Server>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<Conn>>>,
    hub: Arc<MetricsHub>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port — see
    /// [`NetServer::local_addr`]) and starts accepting connections that
    /// submit into `server`'s batching pipeline.
    pub fn bind(addr: impl ToSocketAddrs, server: Server) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Mutex::new(Vec::new()));
        // The op table is immutable after Server::start; snapshot it once
        // and share it with every connection.
        let ops: Arc<Vec<OpInfo>> = Arc::new(
            server
                .registry()
                .iter()
                .map(|(_, o)| OpInfo {
                    name: o.name().to_string(),
                    m: o.op().output_size() as u32,
                    n: o.op().input_size() as u32,
                })
                .collect(),
        );
        let client = server.client();
        let hub = Arc::new(MetricsHub {
            serve: server.stats_handle(),
            net: NetMetrics::new(),
            series: SeriesRing::new(HISTORY_POINTS),
        });
        let acceptor = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let hub = Arc::clone(&hub);
            std::thread::Builder::new()
                .name("biq-net-acceptor".to_string())
                .spawn(move || acceptor_loop(listener, &stop, &conns, &client, &ops, &hub))
                .expect("spawn net acceptor")
        };
        Ok(NetServer {
            server: Some(server),
            local_addr,
            stop,
            acceptor: Some(acceptor),
            conns,
            hub,
        })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live statistics of the inner server.
    pub fn stats(&self) -> StatsSnapshot {
        self.server.as_ref().expect("server present until shutdown").stats()
    }

    /// Live metric samples: the serving layer's counters merged with the
    /// transport counters — exactly what a `Stats` frame is answered with.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.hub.snapshot()
    }

    /// Feeds one tick into the rolling time-series the `History` admin
    /// verb answers from. Call periodically (the daemon's housekeeping
    /// beat, ~1 Hz); the first call primes the delta baseline. Reads
    /// atomics only — never a worker.
    pub fn sample_series(&self) {
        let t_ms = biq_obs::trace::now_ns() / 1_000_000;
        self.hub.series.sample(&self.hub.snapshot(), t_ms);
    }

    /// Graceful shutdown: stops accepting new connections, half-closes
    /// every connection's read side (in-flight requests keep their reply
    /// path), waits for readers/writers to drain, then drains the inner
    /// [`Server`] and returns the final statistics.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.stop_net();
        self.server.take().expect("server present until shutdown").shutdown()
    }

    /// Network-side teardown, shared by `shutdown` and `Drop`.
    fn stop_net(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().expect("conn list poisoned"));
        for conn in &conns {
            // Half-close: the reader sees EOF and stops accepting frames;
            // the writer still flushes every queued reply first.
            let _ = conn.stream.shutdown(Shutdown::Read);
        }
        for conn in conns {
            let _ = conn.reader.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        // `shutdown` already tore the network down; a dropped NetServer
        // still stops its threads (the inner Server's own Drop contract
        // then applies).
        if self.server.is_some() {
            self.stop_net();
        }
    }
}

fn acceptor_loop(
    listener: TcpListener,
    stop: &AtomicBool,
    conns: &Mutex<Vec<Conn>>,
    client: &Client,
    ops: &Arc<Vec<OpInfo>>,
    hub: &Arc<MetricsHub>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Blocking I/O per connection; the listener alone stays
                // non-blocking for the stop poll.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                // Reply frames are latency-critical and already batched at
                // the application layer — never let Nagle hold one back
                // for a delayed ACK.
                let _ = stream.set_nodelay(true);
                let client = client.clone();
                let ops = Arc::clone(ops);
                let hub = Arc::clone(hub);
                let Ok(read_half) = stream.try_clone() else { continue };
                let reader = std::thread::Builder::new()
                    .name("biq-net-conn".to_string())
                    .spawn(move || connection_loop(read_half, &client, &ops, &hub))
                    .expect("spawn net connection");
                let mut guard = conns.lock().expect("conn list poisoned");
                // Reap finished connections so the list doesn't grow with
                // every client that ever connected.
                guard.retain(|c| !c.reader.is_finished());
                guard.push(Conn { stream, reader });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Idle beat: reap finished connections so their fds and
                // join handles don't linger until the next accept.
                if let Ok(mut guard) = conns.lock() {
                    guard.retain(|c| !c.reader.is_finished());
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Dropping the listener closes the accept socket.
}

/// Reader side of one connection. Owns the writer thread: spawns it,
/// feeds it, and joins it before returning (so `NetServer::shutdown`
/// joining the reader implies the writer has flushed).
fn connection_loop(
    stream: TcpStream,
    client: &Client,
    ops: &Arc<Vec<OpInfo>>,
    hub: &Arc<MetricsHub>,
) {
    let Ok(write_half) = stream.try_clone() else { return };
    hub.net.connections_opened.inc();
    hub.net.connections_open.add(1);
    let (tx, rx) = mpsc::channel::<WriterMsg>();
    let ops_for_writer = Arc::clone(ops);
    let hub_for_writer = Arc::clone(hub);
    let writer = std::thread::Builder::new()
        .name("biq-net-writer".to_string())
        .spawn(move || writer_loop(write_half, &rx, &ops_for_writer, &hub_for_writer))
        .expect("spawn net writer");

    let mut read = CountingRead { inner: stream, counter: hub.net.bytes_in.clone() };
    loop {
        match wire::read_message(&mut read) {
            Ok(Message::Request { req_id, op, rows, cols, data }) => {
                hub.net.frames_in.inc();
                handle_request(client, &tx, req_id, &op, rows, cols, data);
            }
            Ok(Message::ListOps) => {
                hub.net.frames_in.inc();
                if tx.send(WriterMsg::Ops).is_err() {
                    break;
                }
            }
            Ok(Message::Stats) => {
                hub.net.frames_in.inc();
                hub.net.stats_queries.inc();
                if tx.send(WriterMsg::Stats).is_err() {
                    break;
                }
            }
            Ok(Message::History { max_points }) => {
                hub.net.frames_in.inc();
                hub.net.history_queries.inc();
                if tx.send(WriterMsg::History { max: max_points }).is_err() {
                    break;
                }
            }
            Ok(Message::SlowLog { max }) => {
                hub.net.frames_in.inc();
                hub.net.slowlog_queries.inc();
                if tx.send(WriterMsg::SlowLog { max }).is_err() {
                    break;
                }
            }
            Ok(_) => {
                // Server-to-client kinds arriving at the server violate
                // the protocol just like garbage bytes do.
                hub.net.frames_in.inc();
                hub.net.malformed.inc();
                let _ = tx.send(WriterMsg::Reject {
                    req_id: 0,
                    code: RejectCode::Malformed,
                    msg: "unexpected server-to-client frame".into(),
                });
                break;
            }
            Err(WireError::Closed) => break,
            Err(WireError::Io(_)) => break,
            Err(e @ WireError::Malformed(_)) => {
                hub.net.malformed.inc();
                if e.is_checksum_mismatch() {
                    hub.net.checksum_failures.inc();
                }
                let WireError::Malformed(mut m) = e else { unreachable!() };
                // Best-effort error report, then close: a peer that sends
                // garbage cannot be resynchronized mid-stream.
                m.truncate(wire::MAX_MSG);
                let _ =
                    tx.send(WriterMsg::Reject { req_id: 0, code: RejectCode::Malformed, msg: m });
                break;
            }
        }
    }
    let _ = read.inner.shutdown(Shutdown::Read);
    // Closing the channel lets the writer drain queued replies and exit;
    // joining it here makes connection teardown single-step for callers.
    drop(tx);
    let _ = writer.join();
    // Full shutdown once the writer has flushed: the acceptor still holds
    // a clone of this socket (for NetServer::shutdown), so dropping our
    // halves alone would never FIN the peer.
    let _ = read.inner.shutdown(Shutdown::Both);
    hub.net.connections_open.add(-1);
}

fn handle_request(
    client: &Client,
    tx: &Sender<WriterMsg>,
    req_id: u64,
    op_name: &str,
    rows: u32,
    cols: u16,
    data: Vec<f32>,
) {
    let _span = span!("net.request");
    // The request's admission stamp: taken once here (where `try_submit`
    // used to read the clock internally — same read count) so the queue
    // phase starts at frame decode, not after validation.
    let t0 = Instant::now();
    let Some(op) = client.registry().lookup(op_name) else {
        let _ = tx.send(WriterMsg::Reject {
            req_id,
            code: RejectCode::UnknownOp,
            msg: format!("no op named '{op_name}'"),
        });
        return;
    };
    // The reply must be encodable too: a request can satisfy every decode
    // cap while `m × cols` blows the frame budget (large-`m` ops). Reject
    // up front — the writer's encode asserts must stay unreachable.
    let m = client.registry().get(op).op().output_size();
    let reply_values = m.saturating_mul(cols as usize);
    if m > wire::MAX_ROWS || reply_values.saturating_mul(4) + wire::HEADER_LEN > wire::MAX_BODY {
        let _ = tx.send(WriterMsg::Reject {
            req_id,
            code: RejectCode::ShapeMismatch,
            msg: format!("reply {m}x{cols} exceeds the frame caps; send fewer columns"),
        });
        return;
    }
    let x = ColMatrix::from_vec(rows as usize, cols as usize, data);
    // `try_submit_stamped` (not `submit`): a full queue must become an
    // explicit Busy frame, not a reader thread blocked on the submit
    // queue — and the admission stamp defers lifecycle recording to the
    // writer, which owns the last two phases.
    let msg = match client.try_submit_stamped(op, x, t0) {
        Ok(ticket) => WriterMsg::Reply { req_id, ticket },
        Err(e) => WriterMsg::Reject { req_id, code: reject_code(&e), msg: e.to_string() },
    };
    let _ = tx.send(msg);
}

/// Maps a serving error onto its wire code.
fn reject_code(e: &ServeError) -> RejectCode {
    match e {
        ServeError::Busy => RejectCode::Busy,
        ServeError::ShuttingDown => RejectCode::ShuttingDown,
        ServeError::UnknownOp => RejectCode::UnknownOp,
        ServeError::ShapeMismatch { .. } => RejectCode::ShapeMismatch,
        ServeError::Canceled => RejectCode::Canceled,
    }
}

/// Writer side of one connection: serializes every outbound frame. Ticket
/// waits happen here, off the reader, so a connection can pipeline many
/// requests; replies go out in submission order (FIFO per connection,
/// which keeps the stream deterministic for a pipelining client).
fn writer_loop(stream: TcpStream, rx: &Receiver<WriterMsg>, ops: &[OpInfo], hub: &MetricsHub) {
    let mut w = BufWriter::new(stream);
    // After a write error the peer is gone: keep draining tickets (their
    // results must not dam up the worker replies) but stop writing.
    let mut broken = false;
    while let Ok(msg) = rx.recv() {
        // Replies carry their lifecycle stamps; the record is finalized
        // only after the frame actually reaches the socket.
        let (frame, reply_lap) = match msg {
            WriterMsg::Reply { req_id, ticket } => {
                let waited = {
                    let _span = span!("net.ticket_wait");
                    ticket.wait_full()
                };
                // First of the two clock reads attribution adds on this
                // thread (socket-bound, off the kernel hot path): the
                // ticket phase ends here.
                let wait_end = Instant::now();
                match waited {
                    Ok(a) => (
                        wire::encode(&Message::Reply {
                            req_id,
                            rows: a.matrix.rows() as u32,
                            cols: a.matrix.cols() as u16,
                            data: a.matrix.as_slice().to_vec(),
                        }),
                        Some((req_id, a.lap, wait_end)),
                    ),
                    Err(e) => {
                        let code = reject_code(&e);
                        if code == RejectCode::Busy {
                            hub.net.busy_rejects.inc();
                        }
                        (wire::encode(&Message::Reject { req_id, code, msg: e.to_string() }), None)
                    }
                }
            }
            WriterMsg::Reject { req_id, code, msg } => {
                if code == RejectCode::Busy {
                    hub.net.busy_rejects.inc();
                }
                (wire::encode(&Message::Reject { req_id, code, msg }), None)
            }
            WriterMsg::Ops => (wire::encode(&Message::OpList(ops.to_vec())), None),
            WriterMsg::Stats => {
                // Answered from counters alone — no worker, no submit
                // queue. Truncation below the wire cap is defensive; the
                // sample count is ~10 per op plus a fixed transport set.
                let mut samples = hub.snapshot().samples;
                samples.truncate(wire::MAX_SAMPLES);
                (wire::encode(&Message::StatsReply(samples)), None)
            }
            WriterMsg::History { max } => {
                let n =
                    if max == 0 { wire::MAX_POINTS } else { (max as usize).min(wire::MAX_POINTS) };
                (wire::encode(&Message::HistoryReply(hub.series.recent(n))), None)
            }
            WriterMsg::SlowLog { max } => {
                let n = if max == 0 { wire::MAX_SLOW } else { (max as usize).min(wire::MAX_SLOW) };
                (wire::encode(&Message::SlowLogReply(hub.serve.slow_hits(n))), None)
            }
        };
        if !broken {
            let _span = span!("net.write");
            broken = w.write_all(&frame).and_then(|()| w.flush()).is_err();
            if !broken {
                hub.net.frames_out.inc();
                hub.net.bytes_out.add(frame.len() as u64);
                if let Some((req_id, lap, wait_end)) = reply_lap {
                    // Second added clock read: the write phase ends when
                    // the reply is flushed, closing the record's timeline.
                    let write_end = Instant::now();
                    hub.serve.sink().record(&RequestRecord::from_timeline(
                        req_id,
                        lap.op,
                        lap.cols,
                        lap.enqueued_ns,
                        lap.pushed_ns,
                        lap.dispatched_ns,
                        lap.done_ns,
                        biq_obs::trace::instant_ns(wait_end),
                        biq_obs::trace::instant_ns(write_end),
                    ));
                }
            }
        }
    }
}
