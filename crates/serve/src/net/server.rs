//! The TCP front-end: a readiness-driven reactor bridging `BIQP` frames
//! into [`crate::Client`] tickets.
//!
//! ```text
//!  TcpListener ──► acceptor thread ──► round-robin handoff
//!                                          │
//!                         io thread 0..N-1 (epoll / poll):
//!                           ┌───────────────────────────────────────────┐
//!                           │ nonblocking sockets, one state machine    │
//!                           │ per connection:                           │
//!                           │   readable ─► rbuf ─► incremental decode  │
//!                           │     Request ─► Client::try_submit ─► FIFO │
//!                           │   ticket resolved (ReplyNotify wake)      │
//!                           │     ─► encode into recycled buffer ─► wq  │
//!                           │   writable ─► writev drains wq            │
//!                           └───────────────────────────────────────────┘
//! ```
//!
//! A small fixed pool of I/O threads multiplexes every connection: no
//! thread ever parks on one socket or one ticket, so thousands of idle
//! connections cost file descriptors and a few hundred bytes of state
//! each, not stacks. Workers wake the reactor through a `ReplyNotify`
//! guard that fires when a request's reply lands on its ticket channel.
//!
//! Everything the in-process serving layer guarantees applies to remote
//! traffic unchanged, because the bridge is a plain [`crate::Client`]:
//! batching packs frames from different connections into one executor
//! pass, backpressure surfaces as an explicit `Busy` reject frame
//! (retryable), replies stay FIFO per connection, and
//! [`NetServer::shutdown`] drains every accepted request before the final
//! [`StatsSnapshot`] is captured. A slow-reading peer gets a bounded
//! write queue and a disconnect, never unbounded server memory.
//!
//! Malformed frames follow the codec's contract: the connection gets a
//! best-effort `Reject(code = Malformed)` frame and is then closed —
//! corrupt input never takes the server down (`net_hostile` pins this).

use crate::batcher::{Lap, ReplyNotify};
use crate::net::sys::{self, Poller, Waker, WAKER_TOKEN};
use crate::net::wire::{self, FrameStatus, Message, OpInfo, RejectCode, WireError};
use crate::server::{Client, Server, StatsHandle, Ticket};
use crate::stats::StatsSnapshot;
use crate::ServeError;
use biq_obs::{
    span, Counter, Gauge, MetricsSnapshot, Pow2Histogram, Registry, RequestRecord, SeriesRing,
};
use std::collections::VecDeque;
use std::io::{IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the (non-blocking) acceptor polls for the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Time-series points the daemon retains (at the CLI's ~1 Hz sampling
/// tick, two minutes of history) — under the wire's `MAX_POINTS` cap.
const HISTORY_POINTS: usize = 120;

/// Bytes read per `read` syscall, and the cap on chunk rounds per
/// readiness event: a firehosing connection yields after
/// `READ_ROUNDS × READ_CHUNK` so byte-trickling neighbours still get
/// their turn (level-triggered polling re-reports the leftover).
const READ_CHUNK: usize = 64 * 1024;
const READ_ROUNDS: usize = 4;

/// Frames per `writev`: matches the kernel's `UIO_FASTIOV` fast path.
const WRITE_BATCH: usize = 8;

/// Poll timeout when anything might be in flight (drain, resolved
/// tickets) — a safety net; every real transition also fires the waker.
const BUSY_TICK_MS: i32 = 25;
/// Poll timeout when fully idle.
const IDLE_TICK_MS: i32 = 500;

/// Reactor tunables for [`NetServer::bind_with`].
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// I/O (reactor) threads multiplexing the connections. Two saturate a
    /// loopback benchmark; raise for many-core fan-in. Clamped to ≥ 1.
    pub io_threads: usize,
    /// Per-connection write-queue cap in bytes: once a connection's
    /// un-flushed replies exceed this, the peer is judged dead or
    /// malicious (slow-loris reader) and the connection is dropped.
    /// Memory stays bounded at roughly `cap + one frame` per connection.
    pub max_write_queue: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self { io_threads: 2, max_write_queue: 32 << 20 }
    }
}

/// Transport-layer counters, one set per [`NetServer`]. Every update is a
/// relaxed atomic op on a reactor thread — nothing here touches a worker
/// or takes a lock on the hot path.
pub(crate) struct NetMetrics {
    registry: Registry,
    frames_in: Counter,
    frames_out: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    checksum_failures: Counter,
    malformed: Counter,
    busy_rejects: Counter,
    connections_opened: Counter,
    connections_open: Gauge,
    stats_queries: Counter,
    history_queries: Counter,
    slowlog_queries: Counter,
    reactor_wakeups: Counter,
    read_syscalls: Counter,
    write_syscalls: Counter,
    write_queue_depth: Arc<Pow2Histogram>,
}

impl NetMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        NetMetrics {
            frames_in: registry.counter("biq_net_frames_in_total", &[]),
            frames_out: registry.counter("biq_net_frames_out_total", &[]),
            bytes_in: registry.counter("biq_net_bytes_in_total", &[]),
            bytes_out: registry.counter("biq_net_bytes_out_total", &[]),
            checksum_failures: registry.counter("biq_net_checksum_failures_total", &[]),
            malformed: registry.counter("biq_net_malformed_total", &[]),
            busy_rejects: registry.counter("biq_net_busy_rejects_total", &[]),
            connections_opened: registry.counter("biq_net_connections_opened_total", &[]),
            connections_open: registry.gauge("biq_net_connections_open", &[]),
            stats_queries: registry.counter("biq_net_stats_queries_total", &[]),
            history_queries: registry.counter("biq_net_history_queries_total", &[]),
            slowlog_queries: registry.counter("biq_net_slowlog_queries_total", &[]),
            reactor_wakeups: registry.counter("biq_net_reactor_wakeups_total", &[]),
            read_syscalls: registry.counter("biq_net_read_syscalls_total", &[]),
            write_syscalls: registry.counter("biq_net_write_syscalls_total", &[]),
            write_queue_depth: registry.histogram("biq_net_write_queue_depth", &[]),
            registry,
        }
    }
}

/// Everything a `Stats` frame is answered from: the serving layer's
/// counters (via [`StatsHandle`]) merged with the transport counters.
/// Shared by every connection; snapshotting reads atomics only.
pub(crate) struct MetricsHub {
    serve: StatsHandle,
    net: NetMetrics,
    /// Rolling per-interval time-series (the `History` verb's payload),
    /// fed by [`NetServer::sample_series`] on the daemon's housekeeping
    /// tick.
    series: SeriesRing,
}

impl MetricsHub {
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let mut m = self.serve.metrics();
        m.merge(&self.net.registry.snapshot());
        // Observability of the observability: trace-ring drop counts and
        // the enabled flag ride along with every snapshot, so the CI smoke
        // can assert drops stayed zero under load.
        m.samples.extend(biq_obs::trace::health().samples());
        m
    }
}

/// What an io thread's peers (acceptor, workers via [`ReplyNotify`],
/// shutdown) hand it between wakeups.
#[derive(Default)]
struct Inbox {
    /// Accepted sockets awaiting registration.
    new_conns: Vec<TcpStream>,
    /// Tokens whose tickets (may) have resolved — pump these.
    ready: Vec<u64>,
    /// Shutdown: stop reading, answer what's pending, flush, exit.
    drain: bool,
}

/// One io thread's shared half: its inbox plus the waker that interrupts
/// its poll.
struct IoShared {
    inbox: Mutex<Inbox>,
    waker: Waker,
}

impl IoShared {
    /// Queues a token for pumping and wakes the thread (worker-side path
    /// of [`ReplyNotify`]; a poisoned inbox degrades to the timeout tick).
    fn notify_ready(&self, token: u64) {
        if let Ok(mut inbox) = self.inbox.lock() {
            inbox.ready.push(token);
        }
        self.waker.wake();
    }
}

/// An outbound obligation, FIFO per connection. Admin verbs are encoded
/// only when they reach the queue's head, preserving reply order across
/// every frame kind exactly like the old per-connection writer thread.
enum PendingOut {
    /// A submitted request: encode its reply (or reject) once the ticket
    /// resolves.
    Ticket { req_id: u64, ticket: Ticket },
    /// An immediate reject (validation/admission failure).
    Reject { req_id: u64, code: RejectCode, msg: String },
    /// A reply computed at decode time (the model-fleet admin verbs run
    /// inline on the reactor and queue their finished answer here, so it
    /// still leaves in FIFO order behind earlier obligations).
    Ready(Message),
    /// The op table.
    Ops,
    /// A metrics snapshot (the `Stats` admin verb).
    Stats,
    /// The rolling time-series (the `History` admin verb).
    History { max: u16 },
    /// The slowest-request records (the `SlowLog` admin verb).
    SlowLog { max: u16 },
}

/// One encoded frame waiting in a connection's write queue, plus the
/// record finalized when its last byte reaches the socket.
struct WBuf {
    buf: Vec<u8>,
    /// `(req_id, lap, ticket-wait end)` for replies whose lifecycle record
    /// the reactor owns.
    rec: Option<(u64, Lap, Instant)>,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    fd: i32,
    token: u64,
    /// Accumulated unread bytes; frames decode incrementally off its front.
    rbuf: Vec<u8>,
    /// False after EOF, a protocol violation, or shutdown drain — the
    /// connection only flushes from then on.
    reading: bool,
    /// Outbound obligations in arrival order.
    pending: VecDeque<PendingOut>,
    /// Encoded frames awaiting the socket.
    wq: VecDeque<WBuf>,
    /// Total bytes across `wq` (the backpressure measure).
    wq_bytes: usize,
    /// Bytes of `wq.front()` already written.
    woff: usize,
    /// Recycled frame buffers (steady-state encodes allocate nothing).
    spare: Vec<Vec<u8>>,
    /// The registered poll interests, to elide no-op `modify` calls.
    intr: (bool, bool),
    /// The per-connection wake-up closure, shared by every in-flight
    /// request (one allocation per connection, not per request).
    notify_fn: Arc<dyn Fn() + Send + Sync>,
    /// Set on I/O error or backpressure overflow: close without flushing.
    dead: bool,
}

impl Conn {
    /// Done: nothing more will be read and everything owed was flushed.
    fn finished(&self) -> bool {
        self.dead || (!self.reading && self.pending.is_empty() && self.wq.is_empty())
    }

    fn recycle(&mut self, mut buf: Vec<u8>) {
        // Keep a few buffers, but never park a one-off giant frame's
        // allocation on an idle connection.
        if self.spare.len() < 4 && buf.capacity() <= (1 << 20) {
            buf.clear();
            self.spare.push(buf);
        }
    }

    fn take_spare(&mut self) -> Vec<u8> {
        self.spare.pop().unwrap_or_default()
    }
}

/// Immutable per-io-thread context.
struct IoCtx {
    poller: Poller,
    shared: Arc<IoShared>,
    client: Client,
    hub: Arc<MetricsHub>,
    max_write_queue: usize,
}

/// A running TCP front-end over a [`Server`]. Construct with
/// [`NetServer::bind`] or [`NetServer::bind_with`], stop with
/// [`NetServer::shutdown`].
pub struct NetServer {
    server: Option<Server>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    io: Vec<(Arc<IoShared>, Option<JoinHandle<()>>)>,
    hub: Arc<MetricsHub>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port — see
    /// [`NetServer::local_addr`]) and starts accepting connections that
    /// submit into `server`'s batching pipeline, with default reactor
    /// tunables.
    pub fn bind(addr: impl ToSocketAddrs, server: Server) -> std::io::Result<NetServer> {
        Self::bind_with(addr, server, NetConfig::default())
    }

    /// [`NetServer::bind`] with explicit reactor tunables.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        server: Server,
        config: NetConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let client = server.client();
        let hub = Arc::new(MetricsHub {
            serve: server.stats_handle(),
            net: NetMetrics::new(),
            series: SeriesRing::new(HISTORY_POINTS),
        });
        // Create every poller before spawning anything so a failure here
        // cannot leave half a reactor running.
        let n_io = config.io_threads.max(1);
        let mut pollers = Vec::with_capacity(n_io);
        for _ in 0..n_io {
            pollers.push(Poller::new()?);
        }
        let mut io = Vec::with_capacity(n_io);
        for (i, poller) in pollers.into_iter().enumerate() {
            let shared =
                Arc::new(IoShared { inbox: Mutex::new(Inbox::default()), waker: poller.waker() });
            let ctx = IoCtx {
                poller,
                shared: Arc::clone(&shared),
                client: client.clone(),
                hub: Arc::clone(&hub),
                max_write_queue: config.max_write_queue.max(1),
            };
            let handle = std::thread::Builder::new()
                .name(format!("biq-net-io-{i}"))
                .spawn(move || io_loop(ctx))
                .expect("spawn net io thread");
            io.push((shared, Some(handle)));
        }
        let acceptor = {
            let stop = Arc::clone(&stop);
            let targets: Vec<Arc<IoShared>> = io.iter().map(|(s, _)| Arc::clone(s)).collect();
            std::thread::Builder::new()
                .name("biq-net-acceptor".to_string())
                .spawn(move || acceptor_loop(listener, &stop, &targets))
                .expect("spawn net acceptor")
        };
        Ok(NetServer { server: Some(server), local_addr, stop, acceptor: Some(acceptor), io, hub })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live statistics of the inner server.
    pub fn stats(&self) -> StatsSnapshot {
        self.server.as_ref().expect("server present until shutdown").stats()
    }

    /// Live metric samples: the serving layer's counters merged with the
    /// transport counters — exactly what a `Stats` frame is answered with.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.hub.snapshot()
    }

    /// Feeds one tick into the rolling time-series the `History` admin
    /// verb answers from. Call periodically (the daemon's housekeeping
    /// beat, ~1 Hz); the first call primes the delta baseline. Reads
    /// atomics only — never a worker.
    pub fn sample_series(&self) {
        let t_ms = biq_obs::trace::now_ns() / 1_000_000;
        self.hub.series.sample(&self.hub.snapshot(), t_ms);
    }

    /// Graceful shutdown: stops accepting new connections, stops reading
    /// from every connection (in-flight requests keep their reply path),
    /// waits for the reactor to answer and flush everything pending, then
    /// drains the inner [`Server`] and returns the final statistics.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.stop_net();
        self.server.take().expect("server present until shutdown").shutdown()
    }

    /// Network-side teardown, shared by `shutdown` and `Drop`.
    fn stop_net(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // Workers are still alive here (Server::shutdown comes after), so
        // every pending ticket resolves and the drain terminates.
        for (shared, _) in &self.io {
            if let Ok(mut inbox) = shared.inbox.lock() {
                inbox.drain = true;
            }
            shared.waker.wake();
        }
        for (_, handle) in &mut self.io {
            if let Some(h) = handle.take() {
                let _ = h.join();
            }
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        // `shutdown` already tore the network down; a dropped NetServer
        // still stops its threads (the inner Server's own Drop contract
        // then applies).
        if self.server.is_some() {
            self.stop_net();
        }
    }
}

fn acceptor_loop(listener: TcpListener, stop: &AtomicBool, targets: &[Arc<IoShared>]) {
    let mut next = 0usize;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // The reactor owns all socket I/O; connections stay
                // nonblocking for their whole life.
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                // Reply frames are latency-critical and already batched at
                // the application layer — never let Nagle hold one back
                // for a delayed ACK.
                let _ = stream.set_nodelay(true);
                let target = &targets[next % targets.len()];
                next += 1;
                if let Ok(mut inbox) = target.inbox.lock() {
                    inbox.new_conns.push(stream);
                }
                target.waker.wake();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Dropping the listener closes the accept socket.
}

/// One reactor thread: multiplexes its share of the connections until a
/// shutdown drain completes.
fn io_loop(ctx: IoCtx) {
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut events = Vec::new();
    let mut draining = false;
    // Connections whose pending FIFO is non-empty, maintained by deltas in
    // `service_counted` — the busy test must be O(1), not a slab scan, or
    // a large idle herd taxes every wakeup (this loop runs per event
    // batch, and 10k idle connections are exactly the case the reactor
    // exists for).
    let mut waiting = 0usize;
    loop {
        let busy = draining || waiting > 0;
        let timeout = if busy { BUSY_TICK_MS } else { IDLE_TICK_MS };
        if ctx.poller.wait(&mut events, timeout).is_err() {
            // A broken poller can't be recovered; back off instead of
            // spinning (the timeout sweep below still makes progress).
            std::thread::sleep(Duration::from_millis(5));
        }
        ctx.hub.net.reactor_wakeups.inc();

        // Drain the inbox: new sockets, resolved-ticket hints, shutdown.
        let (new_conns, ready, drain_req) = {
            let mut inbox = ctx.shared.inbox.lock().expect("net inbox poisoned");
            (std::mem::take(&mut inbox.new_conns), std::mem::take(&mut inbox.ready), inbox.drain)
        };
        if drain_req && !draining {
            draining = true;
            for conn in conns.iter_mut().flatten() {
                // Equivalent of the old half-close: frames not yet decoded
                // are discarded, everything already admitted is answered.
                conn.reading = false;
                conn.rbuf = Vec::new();
            }
        }
        for stream in new_conns {
            if draining {
                continue; // dropped: a straggler past the stop flag
            }
            register(&mut conns, &mut free, stream, &ctx);
        }

        // Readiness events, then resolved-ticket hints. Stale tokens are
        // harmless: a replaced slot just gets a spurious pump/flush.
        for ev in &events {
            if ev.token == WAKER_TOKEN {
                continue;
            }
            service_counted(
                &mut conns,
                &mut free,
                ev.token as usize,
                ev.readable,
                &ctx,
                &mut waiting,
            );
        }
        for token in ready {
            service_counted(&mut conns, &mut free, token as usize, false, &ctx, &mut waiting);
        }

        // Timeout tick (and every drain round): sweep everything — the
        // safety net against a lost wake, and the drain's progress engine.
        if events.is_empty() || draining {
            for idx in 0..conns.len() {
                service_counted(&mut conns, &mut free, idx, false, &ctx, &mut waiting);
            }
        }
        if draining && conns.iter().all(Option::is_none) {
            return;
        }
    }
}

/// Registers an accepted socket under a slab token.
fn register(conns: &mut Vec<Option<Conn>>, free: &mut Vec<usize>, stream: TcpStream, ctx: &IoCtx) {
    let fd = sys::sock_fd(&stream);
    let idx = free.pop().unwrap_or_else(|| {
        conns.push(None);
        conns.len() - 1
    });
    let token = idx as u64;
    if token == WAKER_TOKEN || ctx.poller.add(fd, token, true, false).is_err() {
        free.push(idx);
        return; // dropping the stream closes it
    }
    ctx.hub.net.connections_opened.inc();
    ctx.hub.net.connections_open.add(1);
    let shared = Arc::clone(&ctx.shared);
    let notify_fn: Arc<dyn Fn() + Send + Sync> = Arc::new(move || shared.notify_ready(token));
    conns[idx] = Some(Conn {
        stream,
        fd,
        token,
        rbuf: Vec::new(),
        reading: true,
        pending: VecDeque::new(),
        wq: VecDeque::new(),
        wq_bytes: 0,
        woff: 0,
        spare: Vec::new(),
        intr: (true, false),
        notify_fn,
        dead: false,
    });
}

/// [`service`] plus bookkeeping for the reactor's O(1) busy test: every
/// mutation of a connection's pending FIFO happens inside `service` (frame
/// decode pushes, pump pops, teardown drops the slot), so the before/after
/// delta here keeps `waiting` exact without ever scanning the slab.
fn service_counted(
    conns: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    idx: usize,
    readable: bool,
    ctx: &IoCtx,
    waiting: &mut usize,
) {
    let pending = |conns: &[Option<Conn>]| {
        conns.get(idx).and_then(Option::as_ref).is_some_and(|c| !c.pending.is_empty())
    };
    let before = pending(conns);
    service(conns, free, idx, readable, ctx);
    match (before, pending(conns)) {
        (false, true) => *waiting += 1,
        (true, false) => *waiting -= 1,
        _ => {}
    }
}

/// Advances one connection's state machine: read if the event said so,
/// answer whatever resolved, flush, and reap it when finished.
fn service(
    conns: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    idx: usize,
    readable: bool,
    ctx: &IoCtx,
) {
    let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
        return;
    };
    if readable && conn.reading && !conn.dead {
        read_ready(conn, ctx);
    }
    pump(conn, ctx);
    flush(conn, ctx);
    if conn.finished() {
        ctx.poller.delete(conn.fd);
        ctx.hub.net.connections_open.add(-1);
        conns[idx] = None;
        free.push(idx);
    } else {
        set_interest(conn, ctx);
    }
}

/// Pulls whatever the socket has (bounded per event for fairness) and
/// decodes complete frames off the buffer's front.
fn read_ready(conn: &mut Conn, ctx: &IoCtx) {
    let mut chunk = [0u8; READ_CHUNK];
    for _ in 0..READ_ROUNDS {
        match (&conn.stream).read(&mut chunk) {
            Ok(0) => {
                // EOF: answer what was admitted, flush, close.
                conn.reading = false;
                break;
            }
            Ok(n) => {
                ctx.hub.net.read_syscalls.inc();
                ctx.hub.net.bytes_in.add(n as u64);
                conn.rbuf.extend_from_slice(&chunk[..n]);
                if n < chunk.len() {
                    break; // socket drained
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    let mut at = 0usize;
    while conn.reading {
        match wire::decode_frame(&conn.rbuf[at..]) {
            Ok(FrameStatus::Frame { msg, used }) => {
                at += used;
                handle_message(conn, ctx, msg);
            }
            Ok(FrameStatus::NeedMore(_)) => break,
            Err(e) => {
                // Best-effort error report, then close: a peer that sends
                // garbage cannot be resynchronized mid-stream.
                ctx.hub.net.malformed.inc();
                if e.is_checksum_mismatch() {
                    ctx.hub.net.checksum_failures.inc();
                }
                let WireError::Malformed(mut m) = e else { unreachable!("decode_frame is pure") };
                m.truncate(wire::MAX_MSG);
                conn.pending.push_back(PendingOut::Reject {
                    req_id: 0,
                    code: RejectCode::Malformed,
                    msg: m,
                });
                conn.reading = false;
            }
        }
    }
    if !conn.reading {
        conn.rbuf = Vec::new();
    } else if at > 0 {
        conn.rbuf.drain(..at);
        if conn.rbuf.is_empty() && conn.rbuf.capacity() > 16 * 1024 {
            // Don't park a burst's buffer on a connection going idle —
            // 10k held connections must stay cheap.
            conn.rbuf = Vec::new();
        }
    }
}

/// One decoded client frame: validate, submit or queue the obligation.
fn handle_message(conn: &mut Conn, ctx: &IoCtx, msg: Message) {
    ctx.hub.net.frames_in.inc();
    match msg {
        Message::Request { req_id, op, rows, cols, data } => {
            handle_request(conn, ctx, req_id, &op, rows, cols, data);
        }
        Message::ListOps => conn.pending.push_back(PendingOut::Ops),
        Message::Stats => {
            ctx.hub.net.stats_queries.inc();
            conn.pending.push_back(PendingOut::Stats);
        }
        Message::History { max_points } => {
            ctx.hub.net.history_queries.inc();
            conn.pending.push_back(PendingOut::History { max: max_points });
        }
        Message::SlowLog { max } => {
            ctx.hub.net.slowlog_queries.inc();
            conn.pending.push_back(PendingOut::SlowLog { max });
        }
        // Model-fleet admin verbs run inline on the reactor thread: a load
        // briefly stalls this thread's other connections (artifact read +
        // compile) but never drops a request — everything already admitted
        // keeps its ticket, and the other io threads keep serving.
        Message::LoadModel { name, path } => {
            conn.pending.push_back(handle_load_model(ctx, &name, &path));
        }
        Message::UnloadModel { name, version } => {
            conn.pending.push_back(match ctx.client.registry().unload_model(&name, version) {
                Ok(out) => PendingOut::Ready(Message::ModelUnloaded {
                    name,
                    version: out.version,
                    ops_retired: out.ops_retired as u32,
                }),
                Err(e) => refused(e.to_string()),
            });
        }
        Message::ListModels => {
            let models = ctx
                .client
                .registry()
                .models()
                .into_iter()
                .map(|m| wire::ModelInfo {
                    name: m.name,
                    version: m.version,
                    live: m.live,
                    mem_bytes: m.mem_bytes,
                    ops: m.ops as u32,
                    inflight: m.inflight as u32,
                    completed: m.completed,
                })
                .collect();
            conn.pending.push_back(PendingOut::Ready(Message::ModelList(models)));
        }
        _ => {
            // Server-to-client kinds arriving at the server violate the
            // protocol just like garbage bytes do.
            ctx.hub.net.malformed.inc();
            conn.pending.push_back(PendingOut::Reject {
                req_id: 0,
                code: RejectCode::Malformed,
                msg: "unexpected server-to-client frame".into(),
            });
            conn.reading = false;
        }
    }
}

fn handle_request(
    conn: &mut Conn,
    ctx: &IoCtx,
    req_id: u64,
    op_name: &str,
    rows: u32,
    cols: u16,
    data: Vec<f32>,
) {
    let _span = span!("net.request");
    // The request's admission stamp: taken once here (where `try_submit`
    // used to read the clock internally — same read count) so the queue
    // phase starts at frame decode, not after validation.
    let t0 = Instant::now();
    let Some(op) = ctx.client.registry().lookup(op_name) else {
        conn.pending.push_back(PendingOut::Reject {
            req_id,
            code: RejectCode::UnknownOp,
            msg: format!("no op named '{op_name}'"),
        });
        return;
    };
    // The reply must be encodable too: a request can satisfy every decode
    // cap while `m × cols` blows the frame budget (large-`m` ops). Reject
    // up front — the reply path's encode asserts must stay unreachable.
    // (`op` resolved above but the model can retire between the two
    // snapshot reads; admission re-checks, so treat a gap as UnknownOp.)
    let Some(compiled) = ctx.client.registry().op(op) else {
        conn.pending.push_back(PendingOut::Reject {
            req_id,
            code: RejectCode::UnknownOp,
            msg: format!("op '{op_name}' was retired"),
        });
        return;
    };
    let m = compiled.output_size();
    drop(compiled);
    let reply_values = m.saturating_mul(cols as usize);
    if m > wire::MAX_ROWS || reply_values.saturating_mul(4) + wire::HEADER_LEN > wire::MAX_BODY {
        conn.pending.push_back(PendingOut::Reject {
            req_id,
            code: RejectCode::ShapeMismatch,
            msg: format!("reply {m}x{cols} exceeds the frame caps; send fewer columns"),
        });
        return;
    }
    let x = biq_matrix::ColMatrix::from_vec(rows as usize, cols as usize, data);
    // `try_submit_stamped` (not `submit`): a full queue must become an
    // explicit Busy frame, not a reactor thread blocked on the submit
    // queue. The notify guard wakes this thread once the reply lands.
    let notify = ReplyNotify(Arc::clone(&conn.notify_fn));
    match ctx.client.try_submit_stamped(op, x, t0, Some(notify)) {
        Ok(ticket) => conn.pending.push_back(PendingOut::Ticket { req_id, ticket }),
        Err(e) => conn.pending.push_back(PendingOut::Reject {
            req_id,
            code: reject_code(&e),
            msg: e.to_string(),
        }),
    }
}

/// An admin-verb failure: `Reject(code = Refused)` with `req_id = 0`,
/// connection stays open (unlike protocol violations).
fn refused(msg: String) -> PendingOut {
    let mut msg = msg;
    msg.truncate(wire::MAX_MSG);
    PendingOut::Reject { req_id: 0, code: RejectCode::Refused, msg }
}

/// The `LoadModel` verb: reads the BIQM artifact from the **daemon's**
/// filesystem at `path` (the operator ships bytes out of band; the frame
/// carries a path, never a multi-megabyte payload), then loads or swaps it
/// in the live registry.
fn handle_load_model(ctx: &IoCtx, name: &str, path: &str) -> PendingOut {
    let artifact = match biq_artifact::Artifact::open(std::path::Path::new(path)) {
        Ok(a) => a,
        Err(e) => return refused(format!("open '{path}': {e}")),
    };
    match ctx.client.registry().load_model(name, &artifact) {
        Ok(out) => PendingOut::Ready(Message::ModelLoaded {
            name: name.to_string(),
            version: out.version,
            mem_bytes: out.mem_bytes,
            ops: out.ops.len() as u32,
            evicted: out.evicted.into_iter().map(|(n, v)| format!("{n}@{v}")).collect(),
        }),
        Err(e) => refused(e.to_string()),
    }
}

/// Maps a serving error onto its wire code.
fn reject_code(e: &ServeError) -> RejectCode {
    match e {
        ServeError::Busy => RejectCode::Busy,
        ServeError::ShuttingDown => RejectCode::ShuttingDown,
        ServeError::UnknownOp => RejectCode::UnknownOp,
        ServeError::ShapeMismatch { .. } => RejectCode::ShapeMismatch,
        ServeError::Canceled => RejectCode::Canceled,
    }
}

/// Converts resolved obligations at the FIFO head into encoded frames on
/// the write queue. Stops at the first still-in-flight ticket — replies
/// stay in submission order per connection.
fn pump(conn: &mut Conn, ctx: &IoCtx) {
    while !conn.dead {
        // Backpressure: a peer not draining its replies must not buffer
        // unbounded frames server-side. (Checked before each encode, so a
        // single over-cap frame on an empty queue still goes out.)
        if conn.wq_bytes > ctx.max_write_queue {
            conn.dead = true;
            return;
        }
        let resolved = match conn.pending.front() {
            None => return,
            Some(PendingOut::Ticket { ticket, .. }) => match ticket.try_wait_full() {
                None => return, // in flight; ReplyNotify will wake us
                Some(r) => Some(r),
            },
            Some(_) => None,
        };
        // First of the two clock reads attribution adds on the reactor
        // (socket-bound, off the kernel hot path): the ticket phase ends
        // where the reactor observes the resolved reply.
        let wait_end = Instant::now();
        let item = conn.pending.pop_front().expect("front checked above");
        let mut buf = conn.take_spare();
        let mut rec = None;
        match (item, resolved) {
            (PendingOut::Ticket { req_id, .. }, Some(Ok(a))) => {
                wire::encode_reply_into(
                    &mut buf,
                    req_id,
                    a.matrix.rows() as u32,
                    a.matrix.cols() as u16,
                    a.matrix.as_slice(),
                );
                rec = Some((req_id, a.lap, wait_end));
            }
            (PendingOut::Ticket { .. }, None) => {
                unreachable!("ticket resolution checked before pop")
            }
            (PendingOut::Ticket { req_id, .. }, Some(Err(e))) => {
                let code = reject_code(&e);
                if code == RejectCode::Busy {
                    ctx.hub.net.busy_rejects.inc();
                }
                wire::encode_into(&mut buf, &Message::Reject { req_id, code, msg: e.to_string() });
            }
            (PendingOut::Reject { req_id, code, msg }, _) => {
                if code == RejectCode::Busy {
                    ctx.hub.net.busy_rejects.inc();
                }
                wire::encode_into(&mut buf, &Message::Reject { req_id, code, msg });
            }
            (PendingOut::Ready(msg), _) => {
                wire::encode_into(&mut buf, &msg);
            }
            (PendingOut::Ops, _) => {
                // Built from the live snapshot at answer time — the op
                // table changes whenever a model loads, swaps, or retires.
                let snap = ctx.client.registry().snapshot();
                let ops: Vec<OpInfo> = snap
                    .live()
                    .map(|(_, s)| OpInfo {
                        name: s.meta.name.clone(),
                        m: s.meta.m as u32,
                        n: s.meta.n as u32,
                    })
                    .collect();
                wire::encode_into(&mut buf, &Message::OpList(ops));
            }
            (PendingOut::Stats, _) => {
                // Answered from counters alone — no worker, no submit
                // queue. Truncation below the wire cap is defensive; the
                // sample count is ~10 per op plus a fixed transport set.
                let mut samples = ctx.hub.snapshot().samples;
                samples.truncate(wire::MAX_SAMPLES);
                wire::encode_into(&mut buf, &Message::StatsReply(samples));
            }
            (PendingOut::History { max }, _) => {
                let n =
                    if max == 0 { wire::MAX_POINTS } else { (max as usize).min(wire::MAX_POINTS) };
                wire::encode_into(&mut buf, &Message::HistoryReply(ctx.hub.series.recent(n)));
            }
            (PendingOut::SlowLog { max }, _) => {
                let n = if max == 0 { wire::MAX_SLOW } else { (max as usize).min(wire::MAX_SLOW) };
                wire::encode_into(&mut buf, &Message::SlowLogReply(ctx.hub.serve.slow_hits(n)));
            }
        }
        conn.wq_bytes += buf.len();
        conn.wq.push_back(WBuf { buf, rec });
        ctx.hub.net.write_queue_depth.record(conn.wq.len() as u64);
    }
}

/// Drains the write queue with vectored writes: one syscall carries up to
/// [`WRITE_BATCH`] queued frames. Lifecycle records are finalized when
/// their frame's last byte is accepted by the socket.
fn flush(conn: &mut Conn, ctx: &IoCtx) {
    if conn.dead || conn.wq.is_empty() {
        return;
    }
    let _span = span!("net.write");
    // Second added clock read, shared by every frame this flush completes
    // (they hit the socket microseconds apart; one read is the cheaper,
    // equally-faithful stamp).
    let mut write_end: Option<Instant> = None;
    'writing: while !conn.wq.is_empty() {
        let n = {
            let mut slices = [IoSlice::new(&[]); WRITE_BATCH];
            let mut count = 0usize;
            for (i, w) in conn.wq.iter().enumerate().take(WRITE_BATCH) {
                slices[count] = IoSlice::new(if i == 0 { &w.buf[conn.woff..] } else { &w.buf });
                count += 1;
            }
            match (&conn.stream).write_vectored(&slices[..count]) {
                Ok(0) => {
                    conn.dead = true;
                    return;
                }
                Ok(n) => n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break 'writing,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue 'writing,
                Err(_) => {
                    // The peer is gone: stop writing. Still-pending tickets
                    // drain harmlessly (their reply senders just error).
                    conn.dead = true;
                    return;
                }
            }
        };
        ctx.hub.net.write_syscalls.inc();
        ctx.hub.net.bytes_out.add(n as u64);
        let mut rem = n;
        while rem > 0 {
            let front_left = conn.wq.front().expect("bytes imply a frame").buf.len() - conn.woff;
            if rem < front_left {
                conn.woff += rem;
                break;
            }
            rem -= front_left;
            let w = conn.wq.pop_front().expect("front exists");
            conn.wq_bytes -= w.buf.len();
            conn.woff = 0;
            ctx.hub.net.frames_out.inc();
            if let Some((req_id, lap, wait_end)) = w.rec {
                let end = *write_end.get_or_insert_with(Instant::now);
                ctx.hub.serve.sink().record(&RequestRecord::from_timeline(
                    req_id,
                    lap.op,
                    lap.cols,
                    lap.enqueued_ns,
                    lap.pushed_ns,
                    lap.dispatched_ns,
                    lap.done_ns,
                    biq_obs::trace::instant_ns(wait_end),
                    biq_obs::trace::instant_ns(end),
                ));
            }
            conn.recycle(w.buf);
        }
    }
}

/// Syncs the poller's interest set with what the connection can act on.
fn set_interest(conn: &mut Conn, ctx: &IoCtx) {
    let want = (conn.reading, !conn.wq.is_empty());
    if want != conn.intr {
        if ctx.poller.modify(conn.fd, conn.token, want.0, want.1).is_err() {
            conn.dead = true;
            return;
        }
        conn.intr = want;
    }
}
