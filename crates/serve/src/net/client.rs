//! A std-only blocking `BIQP` client with optional pipelining.
//!
//! One [`NetClient`] owns one TCP connection. The simple path is
//! [`NetClient::request`] (send one, wait for its answer); load
//! generators use [`NetClient::send`] / [`NetClient::recv`] to keep many
//! requests in flight on the same connection — the server answers a
//! connection's requests in submission order, correlated by `req_id`.

use crate::net::wire::{self, Message, OpInfo, RejectCode, WireError};
use biq_matrix::{ColMatrix, Matrix};
use std::io::Write;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

/// Client-side errors.
#[derive(Debug)]
pub enum NetError {
    /// Transport or codec failure (the connection is unusable).
    Wire(WireError),
    /// The server answered with a reject frame; `Busy` is retryable.
    Rejected {
        /// The request's correlation id.
        req_id: u64,
        /// Why.
        code: RejectCode,
        /// Server-side detail.
        msg: String,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Wire(e) => write!(f, "{e}"),
            NetError::Rejected { code, msg, .. } => write!(f, "rejected ({code}): {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Wire(WireError::Io(e))
    }
}

/// What [`NetClient::recv`] resolves a pipelined request to.
#[derive(Debug)]
pub enum Outcome {
    /// The request's `m × cols` row-major result.
    Reply(Matrix),
    /// The request was refused; [`RejectCode::Busy`] is retryable.
    Rejected {
        /// Why.
        code: RejectCode,
        /// Server-side detail.
        msg: String,
    },
}

/// One connection to a [`crate::net::NetServer`].
pub struct NetClient {
    stream: TcpStream,
    next_id: u64,
    /// Reused frame-encode scratch: steady-state sends allocate nothing.
    scratch: Vec<u8>,
}

impl NetClient {
    /// Connects to a serving daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient { stream, next_id: 1, scratch: Vec::new() })
    }

    /// The peer address.
    pub fn peer_addr(&self) -> std::io::Result<SocketAddr> {
        self.stream.peer_addr()
    }

    /// Asks the server for a live metrics snapshot (the `Stats` admin
    /// verb). Answered from the daemon's counters without touching a
    /// worker, so it is safe to poll while a load test is in flight.
    pub fn stats(&mut self) -> Result<Vec<biq_obs::Sample>, NetError> {
        self.write_frame(&Message::Stats)?;
        match wire::read_message(&mut self.stream)? {
            Message::StatsReply(samples) => Ok(samples),
            Message::Reject { req_id, code, msg } => Err(NetError::Rejected { req_id, code, msg }),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server for its rolling per-interval time-series (the
    /// `History` admin verb): one point per sampling tick, oldest first.
    /// `max_points == 0` asks for every retained point. Answered from the
    /// daemon's series ring without touching a worker.
    pub fn history(&mut self, max_points: u16) -> Result<Vec<biq_obs::SeriesPoint>, NetError> {
        self.write_frame(&Message::History { max_points })?;
        match wire::read_message(&mut self.stream)? {
            Message::HistoryReply(points) => Ok(points),
            Message::Reject { req_id, code, msg } => Err(NetError::Rejected { req_id, code, msg }),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server for its slowest-request records (the `SlowLog`
    /// admin verb), slowest first, each with its full phase breakdown.
    /// `max == 0` asks for the whole reservoir.
    pub fn slow_log(&mut self, max: u16) -> Result<Vec<biq_obs::SlowHit>, NetError> {
        self.write_frame(&Message::SlowLog { max })?;
        match wire::read_message(&mut self.stream)? {
            Message::SlowLogReply(hits) => Ok(hits),
            Message::Reject { req_id, code, msg } => Err(NetError::Rejected { req_id, code, msg }),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the daemon to load (or swap) the BIQM artifact at `path` —
    /// a path on the **daemon's** filesystem — under `name` (the
    /// `LoadModel` admin verb). Returns the resulting
    /// [`Message::ModelLoaded`] fields `(version, mem_bytes, ops,
    /// evicted)`. Refusals (bad artifact, op collision, memory budget)
    /// come back as [`NetError::Rejected`] with
    /// [`RejectCode::Refused`]; the connection stays usable.
    pub fn load_model(
        &mut self,
        name: &str,
        path: &str,
    ) -> Result<(u32, u64, u32, Vec<String>), NetError> {
        self.write_frame(&Message::LoadModel { name: name.into(), path: path.into() })?;
        match wire::read_message(&mut self.stream)? {
            Message::ModelLoaded { version, mem_bytes, ops, evicted, .. } => {
                Ok((version, mem_bytes, ops, evicted))
            }
            Message::Reject { req_id, code, msg } => Err(NetError::Rejected { req_id, code, msg }),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the daemon to retire a model version online (the
    /// `UnloadModel` admin verb); `version == 0` retires the live
    /// version. Returns `(version retired, ops retired)`. In-flight
    /// requests against the retired version still complete
    /// (drain-on-retire).
    pub fn unload_model(&mut self, name: &str, version: u32) -> Result<(u32, u32), NetError> {
        self.write_frame(&Message::UnloadModel { name: name.into(), version })?;
        match wire::read_message(&mut self.stream)? {
            Message::ModelUnloaded { version, ops_retired, .. } => Ok((version, ops_retired)),
            Message::Reject { req_id, code, msg } => Err(NetError::Rejected { req_id, code, msg }),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the daemon for its model table (the `ListModels` admin verb):
    /// every version the registry knows, live first, with memory and
    /// traffic accounting per row.
    pub fn list_models(&mut self) -> Result<Vec<wire::ModelInfo>, NetError> {
        self.write_frame(&Message::ListModels)?;
        match wire::read_message(&mut self.stream)? {
            Message::ModelList(models) => Ok(models),
            Message::Reject { req_id, code, msg } => Err(NetError::Rejected { req_id, code, msg }),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server for its op table.
    pub fn list_ops(&mut self) -> Result<Vec<OpInfo>, NetError> {
        self.write_frame(&Message::ListOps)?;
        match wire::read_message(&mut self.stream)? {
            Message::OpList(ops) => Ok(ops),
            Message::Reject { req_id, code, msg } => Err(NetError::Rejected { req_id, code, msg }),
            other => Err(unexpected(&other)),
        }
    }

    /// Sends a request without waiting; returns its `req_id`. Answers
    /// arrive in submission order via [`NetClient::recv`]. Inputs beyond
    /// the wire caps ([`wire::MAX_ROWS`]/[`wire::MAX_COLS`], op names
    /// beyond [`wire::MAX_NAME`]) error here instead of panicking in the
    /// encoder.
    pub fn send(&mut self, op: &str, x: &ColMatrix) -> Result<u64, NetError> {
        if x.rows() > wire::MAX_ROWS || x.cols() > wire::MAX_COLS {
            return Err(NetError::Wire(WireError::Malformed(format!(
                "request shape {}x{} exceeds the wire caps ({}x{})",
                x.rows(),
                x.cols(),
                wire::MAX_ROWS,
                wire::MAX_COLS,
            ))));
        }
        // Both dimensions can be under their caps while the payload blows
        // the frame budget; the fixed body overhead (req_id + name-length
        // + rows + cols = 16 bytes) plus the name rides along.
        let body = x.rows().saturating_mul(x.cols()).saturating_mul(4) + op.len() + 16;
        if body > wire::MAX_BODY {
            return Err(NetError::Wire(WireError::Malformed(format!(
                "request payload of {body} bytes exceeds the {} byte frame cap; \
                 send fewer columns",
                wire::MAX_BODY,
            ))));
        }
        if op.len() > wire::MAX_NAME {
            return Err(NetError::Wire(WireError::Malformed(format!(
                "op name of {} bytes exceeds the wire cap ({})",
                op.len(),
                wire::MAX_NAME,
            ))));
        }
        let req_id = self.next_id;
        self.next_id += 1;
        // Borrow the caller's matrix and name directly into the scratch
        // frame — no owned `Message`, no per-send allocation.
        wire::encode_request_into(
            &mut self.scratch,
            req_id,
            op,
            x.rows() as u32,
            x.cols() as u16,
            x.as_slice(),
        );
        self.stream.write_all(&self.scratch)?;
        Ok(req_id)
    }

    /// Receives the next answer frame: `(req_id, outcome)`.
    pub fn recv(&mut self) -> Result<(u64, Outcome), NetError> {
        match wire::read_message(&mut self.stream)? {
            Message::Reply { req_id, rows, cols, data } => {
                Ok((req_id, Outcome::Reply(Matrix::from_vec(rows as usize, cols as usize, data))))
            }
            Message::Reject { req_id, code, msg } => Ok((req_id, Outcome::Rejected { code, msg })),
            other => Err(unexpected(&other)),
        }
    }

    /// One blocking round trip: the op's `W·X` for this request.
    pub fn request(&mut self, op: &str, x: &ColMatrix) -> Result<Matrix, NetError> {
        let sent = self.send(op, x)?;
        let (req_id, outcome) = self.recv()?;
        if req_id != sent {
            return Err(NetError::Wire(WireError::Malformed(format!(
                "answer for request {req_id}, expected {sent}"
            ))));
        }
        match outcome {
            Outcome::Reply(y) => Ok(y),
            Outcome::Rejected { code, msg } => Err(NetError::Rejected { req_id, code, msg }),
        }
    }

    fn write_frame(&mut self, msg: &Message) -> Result<(), NetError> {
        wire::encode_into(&mut self.scratch, msg);
        self.stream.write_all(&self.scratch)?;
        Ok(())
    }
}

fn unexpected(msg: &Message) -> NetError {
    let kind = match msg {
        Message::Request { .. } => "request",
        Message::Reply { .. } => "reply",
        Message::Reject { .. } => "reject",
        Message::ListOps => "list-ops",
        Message::OpList(_) => "op-list",
        Message::Stats => "stats",
        Message::StatsReply(_) => "stats-reply",
        Message::History { .. } => "history",
        Message::HistoryReply(_) => "history-reply",
        Message::SlowLog { .. } => "slow-log",
        Message::SlowLogReply(_) => "slow-log-reply",
        Message::LoadModel { .. } => "load-model",
        Message::ModelLoaded { .. } => "model-loaded",
        Message::UnloadModel { .. } => "unload-model",
        Message::ModelUnloaded { .. } => "model-unloaded",
        Message::ListModels => "list-models",
        Message::ModelList(_) => "model-list",
    };
    NetError::Wire(WireError::Malformed(format!("unexpected {kind} frame from server")))
}
