//! Readiness polling for the reactor — epoll on Linux, `poll(2)` elsewhere
//! on unix, a degraded always-ready tick on everything else.
//!
//! The reactor needs exactly four things from the OS: "tell me which of
//! these sockets can make progress", "wake me from another thread", a way
//! to register/deregister sockets, and nothing more. This module provides
//! that surface with raw syscalls behind `extern "C"` declarations (the
//! same pattern [`crate::affinity`] uses for `sched_setaffinity`) so the
//! crate stays free of foreign dependencies.
//!
//! Tokens are caller-chosen `u64`s echoed back with each event. The
//! reactor uses connection-slot indices, reserving [`WAKER_TOKEN`] for the
//! cross-thread waker. Events are *hints*: a stale event for a closed slot
//! is harmless because every read/write on a nonblocking socket rechecks
//! readiness by construction.

/// Token the poller reports when [`Waker::wake`] was called.
pub(crate) const WAKER_TOKEN: u64 = u64::MAX;

/// One readiness report.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Event {
    pub(crate) token: u64,
    pub(crate) readable: bool,
    /// Part of the readiness ABI; the reactor flushes on every service
    /// pass, so it never branches on this today.
    #[allow(dead_code)]
    pub(crate) writable: bool,
}

#[cfg(target_os = "linux")]
pub(crate) use linux::{Poller, Waker};

#[cfg(all(unix, not(target_os = "linux")))]
pub(crate) use fallback::{Poller, Waker};

#[cfg(not(unix))]
pub(crate) use degraded::{Poller, Waker};

/// Raw fd of a socket, for registration. Events remain hints, so a token
/// outliving its socket never corrupts anything.
#[cfg(unix)]
pub(crate) fn sock_fd(stream: &std::net::TcpStream) -> i32 {
    use std::os::unix::io::AsRawFd;
    stream.as_raw_fd()
}

#[cfg(not(unix))]
pub(crate) fn sock_fd(_stream: &std::net::TcpStream) -> i32 {
    -1
}

#[cfg(target_os = "linux")]
mod linux {
    use super::{Event, WAKER_TOKEN};
    use std::io;
    use std::sync::Arc;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    /// Kernel `struct epoll_event`. Packed on x86-64 only (the kernel ABI
    /// quirk); naturally aligned everywhere else.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    /// Owns an fd, closing it on drop.
    struct OwnedFd(i32);

    impl Drop for OwnedFd {
        fn drop(&mut self) {
            unsafe { close(self.0) };
        }
    }

    /// epoll instance plus an eventfd waker registered under [`WAKER_TOKEN`].
    pub(crate) struct Poller {
        epfd: OwnedFd,
        waker: Arc<OwnedFd>,
    }

    /// Wakes the owning [`Poller`] from any thread.
    #[derive(Clone)]
    pub(crate) struct Waker {
        efd: Arc<OwnedFd>,
    }

    impl Waker {
        pub(crate) fn wake(&self) {
            let one = 1u64.to_ne_bytes();
            // A full eventfd counter still wakes the poller; ignore errors.
            unsafe { write(self.efd.0, one.as_ptr(), one.len()) };
        }
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Self> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            let epfd = OwnedFd(epfd);
            let efd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if efd < 0 {
                return Err(io::Error::last_os_error());
            }
            let waker = Arc::new(OwnedFd(efd));
            let mut ev = EpollEvent { events: EPOLLIN, data: WAKER_TOKEN };
            if unsafe { epoll_ctl(epfd.0, EPOLL_CTL_ADD, waker.0, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { epfd, waker })
        }

        pub(crate) fn waker(&self) -> Waker {
            Waker { efd: Arc::clone(&self.waker) }
        }

        fn ctl(&self, op: i32, fd: i32, token: u64, read: bool, write: bool) -> io::Result<()> {
            // Error/hangup conditions are always reported by epoll; with
            // both interests off the fd just waits silently (a drained
            // connection parked on in-flight tickets).
            let events =
                if read { EPOLLIN | EPOLLRDHUP } else { 0 } | if write { EPOLLOUT } else { 0 };
            let mut ev = EpollEvent { events, data: token };
            if unsafe { epoll_ctl(self.epfd.0, op, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(crate) fn add(&self, fd: i32, token: u64, read: bool, write: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, read, write)
        }

        pub(crate) fn modify(
            &self,
            fd: i32,
            token: u64,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, read, write)
        }

        pub(crate) fn delete(&self, fd: i32) {
            let mut ev = EpollEvent { events: 0, data: 0 };
            // Kernels before 2.6.9 required a non-null event for DEL.
            unsafe { epoll_ctl(self.epfd.0, EPOLL_CTL_DEL, fd, &mut ev) };
        }

        /// Blocks up to `timeout_ms` for readiness; drains the waker if it
        /// fired so the next wait blocks again.
        pub(crate) fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            events.clear();
            let mut raw = [EpollEvent { events: 0, data: 0 }; 256];
            let n =
                unsafe { epoll_wait(self.epfd.0, raw.as_mut_ptr(), raw.len() as i32, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in raw.iter().take(n as usize) {
                let (bits, token) = (ev.events, ev.data);
                if token == WAKER_TOKEN {
                    let mut buf = [0u8; 8];
                    unsafe { read(self.waker.0, buf.as_mut_ptr(), buf.len()) };
                    events.push(Event { token, readable: true, writable: false });
                    continue;
                }
                // Error/hangup surfaces as readable: the next read reports
                // the actual condition (EOF or an io::Error) in-band.
                let err = bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
                events.push(Event {
                    token,
                    readable: bits & EPOLLIN != 0 || err,
                    writable: bits & EPOLLOUT != 0 || err,
                });
            }
            Ok(())
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod fallback {
    use super::{Event, WAKER_TOKEN};
    use std::io;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};

    const POLLIN: i16 = 0x1;
    const POLLOUT: i16 = 0x4;
    const POLLERR: i16 = 0x8;
    const POLLHUP: i16 = 0x10;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: i32) -> i32;
    }

    struct Slot {
        fd: i32,
        token: u64,
        want_read: bool,
        want_write: bool,
    }

    /// `poll(2)`-backed poller. The waker is an atomic flag checked every
    /// tick: waits are capped at 5ms so a wake is observed promptly without
    /// needing a self-pipe (no portable non-libc pipe/fcntl surface).
    pub(crate) struct Poller {
        slots: Mutex<Vec<Slot>>,
        woken: Arc<AtomicBool>,
    }

    #[derive(Clone)]
    pub(crate) struct Waker {
        woken: Arc<AtomicBool>,
    }

    impl Waker {
        pub(crate) fn wake(&self) {
            self.woken.store(true, Ordering::Release);
        }
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Self> {
            Ok(Self { slots: Mutex::new(Vec::new()), woken: Arc::new(AtomicBool::new(false)) })
        }

        pub(crate) fn waker(&self) -> Waker {
            Waker { woken: Arc::clone(&self.woken) }
        }

        pub(crate) fn add(&self, fd: i32, token: u64, read: bool, write: bool) -> io::Result<()> {
            self.slots.lock().unwrap().push(Slot { fd, token, want_read: read, want_write: write });
            Ok(())
        }

        pub(crate) fn modify(
            &self,
            fd: i32,
            token: u64,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            let mut slots = self.slots.lock().unwrap();
            if let Some(s) = slots.iter_mut().find(|s| s.fd == fd) {
                s.token = token;
                s.want_read = read;
                s.want_write = write;
            }
            Ok(())
        }

        pub(crate) fn delete(&self, fd: i32) {
            self.slots.lock().unwrap().retain(|s| s.fd != fd);
        }

        pub(crate) fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            events.clear();
            let mut fds: Vec<PollFd> = {
                let slots = self.slots.lock().unwrap();
                slots
                    .iter()
                    .map(|s| PollFd {
                        fd: s.fd,
                        events: if s.want_read { POLLIN } else { 0 }
                            | if s.want_write { POLLOUT } else { 0 },
                        revents: 0,
                    })
                    .collect()
            };
            let cap = if timeout_ms < 0 { 5 } else { timeout_ms.min(5) };
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, cap) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            if self.woken.swap(false, Ordering::AcqRel) {
                events.push(Event { token: WAKER_TOKEN, readable: true, writable: false });
            }
            let slots = self.slots.lock().unwrap();
            for (pf, s) in fds.iter().zip(slots.iter()) {
                if pf.fd != s.fd {
                    continue; // registration changed mid-wait; skip the tick
                }
                let err = pf.revents & (POLLERR | POLLHUP) != 0;
                if pf.revents != 0 {
                    events.push(Event {
                        token: s.token,
                        readable: pf.revents & POLLIN != 0 || err,
                        writable: pf.revents & POLLOUT != 0 || err,
                    });
                }
            }
            Ok(())
        }
    }
}

#[cfg(not(unix))]
mod degraded {
    use super::{Event, WAKER_TOKEN};
    use std::io;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};

    /// No readiness API: report every registered token ready each tick and
    /// sleep briefly. Correct (sockets are nonblocking; spurious readiness
    /// just yields `WouldBlock`) but busy — acceptable for the platforms
    /// the serving path doesn't target.
    pub(crate) struct Poller {
        tokens: Mutex<Vec<(i32, u64)>>,
        woken: Arc<AtomicBool>,
    }

    #[derive(Clone)]
    pub(crate) struct Waker {
        woken: Arc<AtomicBool>,
    }

    impl Waker {
        pub(crate) fn wake(&self) {
            self.woken.store(true, Ordering::Release);
        }
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Self> {
            Ok(Self { tokens: Mutex::new(Vec::new()), woken: Arc::new(AtomicBool::new(false)) })
        }

        pub(crate) fn waker(&self) -> Waker {
            Waker { woken: Arc::clone(&self.woken) }
        }

        pub(crate) fn add(&self, fd: i32, token: u64, _read: bool, _write: bool) -> io::Result<()> {
            self.tokens.lock().unwrap().push((fd, token));
            Ok(())
        }

        pub(crate) fn modify(
            &self,
            _fd: i32,
            _token: u64,
            _read: bool,
            _write: bool,
        ) -> io::Result<()> {
            Ok(())
        }

        pub(crate) fn delete(&self, fd: i32) {
            self.tokens.lock().unwrap().retain(|(f, _)| *f != fd);
        }

        pub(crate) fn wait(&self, events: &mut Vec<Event>, _timeout_ms: i32) -> io::Result<()> {
            events.clear();
            std::thread::sleep(std::time::Duration::from_millis(2));
            if self.woken.swap(false, Ordering::AcqRel) {
                events.push(Event { token: WAKER_TOKEN, readable: true, writable: false });
            }
            for (_, token) in self.tokens.lock().unwrap().iter() {
                events.push(Event { token: *token, readable: true, writable: true });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    #[test]
    fn waker_interrupts_a_long_wait() {
        let poller = Poller::new().expect("poller");
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let mut events = Vec::new();
        let start = Instant::now();
        // Poll until the wake is observed (the fallback poller caps each
        // wait at a few ms, so loop rather than rely on one long block).
        loop {
            poller.wait(&mut events, 2_000).expect("wait");
            if events.iter().any(|e| e.token == WAKER_TOKEN) {
                break;
            }
            assert!(start.elapsed() < Duration::from_secs(5), "wake never observed");
        }
        handle.join().unwrap();
    }

    #[test]
    fn readable_socket_reports_its_token() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        let poller = Poller::new().expect("poller");
        poller.add(sock_fd(&server), 7, true, false).expect("add");

        client.write_all(b"ping").expect("write");
        let mut events = Vec::new();
        let start = Instant::now();
        loop {
            poller.wait(&mut events, 2_000).expect("wait");
            if let Some(ev) = events.iter().find(|e| e.token == 7) {
                assert!(ev.readable, "socket with buffered bytes must be readable");
                break;
            }
            assert!(start.elapsed() < Duration::from_secs(5), "readiness never observed");
        }
        let mut one = { &server };
        let mut buf = [0u8; 16];
        let n = one.read(&mut buf).expect("read");
        assert_eq!(&buf[..n], b"ping");
        poller.delete(sock_fd(&server));
    }
}
