//! Window/bucket/pack policy — the pure core of the serving layer.
//!
//! The `Batcher` owns no threads and does no I/O: the server's batcher
//! thread feeds it accepted requests and asks it what to flush, which keeps
//! the policy unit-testable without spinning up workers.
//!
//! Policy: requests are bucketed by `(op, input rows)` — in practice by op,
//! since shape validation at submit time already pins `rows` to the op's
//! input size. A bucket flushes when either
//!
//! * its packed width reaches `max_cols` (size trigger, zero added
//!   latency), or
//! * its **oldest** request has waited `window` (time trigger, bounding the
//!   latency cost of waiting for company).
//!
//! Flushing produces a `BatchJob`: the requests whose columns a worker
//! will pack side by side into one `ColMatrix`, run through a single
//! executor pass — one LUT build amortised across every column, the
//! paper's core win — and scatter back to per-request reply channels.
//!
//! Buckets are keyed by slot index in a map (not a fixed table): the live
//! registry grows online as models load, and a request against an op the
//! batcher has never seen simply opens a new bucket. Each request carries
//! its own `Arc`s of the compiled op and its stats block, captured at
//! admission — the drain-on-retire contract: a swap or unload can never
//! change what an already-accepted request runs against.

use crate::registry::{InflightGuard, OpId};
use crate::stats::OpStats;
use biq_matrix::{ColMatrix, Matrix};
use biq_runtime::CompiledOp;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors a request can be answered with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded queue is full ([`crate::Client::try_submit`] only).
    Busy,
    /// The server no longer accepts requests.
    ShuttingDown,
    /// The op id or name does not resolve to a live op (never registered,
    /// or its version was retired by a swap/unload/eviction).
    UnknownOp,
    /// The input's row count disagrees with the op's input size.
    ShapeMismatch {
        /// The op's input size `n`.
        expected: usize,
        /// The submitted row count.
        got: usize,
    },
    /// The server dropped the request without answering (worker loss).
    Canceled,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Busy => write!(f, "queue full"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
            ServeError::UnknownOp => write!(f, "unknown op id"),
            ServeError::ShapeMismatch { expected, got } => {
                write!(f, "input has {got} rows, op expects {expected}")
            }
            ServeError::Canceled => write!(f, "request canceled"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Lifecycle stamps a worker hands back with each reply: everything known
/// up to "outputs ready", as nanoseconds since the trace epoch. The net
/// writer extends the timeline with its own ticket/write stamps and turns
/// the whole thing into a [`biq_obs::RequestRecord`]; in-process requests
/// are recorded at the worker with the last two phases zero. Built from
/// clock reads the serving path already takes — stamping adds arithmetic,
/// never an extra `Instant::now()`.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Lap {
    /// Op registration index.
    pub(crate) op: u32,
    /// This request's column count.
    pub(crate) cols: u32,
    /// Admission (submit or frame decode).
    pub(crate) enqueued_ns: u64,
    /// Picked up by the batcher thread.
    pub(crate) pushed_ns: u64,
    /// Bucket flushed to the worker channel.
    pub(crate) dispatched_ns: u64,
    /// Outputs computed, reply about to be sent.
    pub(crate) done_ns: u64,
}

/// A successful reply: the result plus its lifecycle stamps.
#[derive(Debug)]
pub(crate) struct Answer {
    pub(crate) matrix: Matrix,
    pub(crate) lap: Lap,
}

/// Fires its callback when dropped. The serving engine attaches one to a
/// wire request's [`Pending`]: whichever path the request leaves the
/// engine by — answered by a worker, canceled by a dropped channel, or
/// refused at admission — the guard drops *after* the reply lands on the
/// ticket channel, so the net reactor learns "poll this ticket now"
/// without parking a thread on it. Spurious fires are harmless by
/// contract: the reactor's pump simply finds nothing new.
pub(crate) struct ReplyNotify(pub(crate) Arc<dyn Fn() + Send + Sync>);

impl Drop for ReplyNotify {
    fn drop(&mut self) {
        (self.0)();
    }
}

impl std::fmt::Debug for ReplyNotify {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ReplyNotify")
    }
}

/// One accepted inference request, waiting in a bucket.
#[derive(Debug)]
pub(crate) struct Pending {
    pub(crate) op: OpId,
    /// The compiled op captured at admission — what this request WILL run
    /// against, regardless of any swap/unload that lands in between.
    pub(crate) compiled: Arc<CompiledOp>,
    /// The op's stats block, captured with it.
    pub(crate) stats: Arc<OpStats>,
    pub(crate) x: ColMatrix,
    pub(crate) reply: mpsc::Sender<Result<Answer, ServeError>>,
    pub(crate) enqueued: Instant,
    /// When the batcher picked the request off the submit queue (restamped
    /// by [`Batcher::push`] from the clock read the loop already took).
    pub(crate) pushed: Instant,
    /// When `true`, the request came over the wire and the net writer
    /// finalizes its lifecycle record (adding ticket/write phases); the
    /// worker must not record it, or it would be counted twice.
    pub(crate) deferred: bool,
    /// Pins the owning model "in flight" for eviction refusal; released
    /// on drop, whichever way the request exits.
    #[allow(dead_code)]
    pub(crate) inflight: Option<InflightGuard>,
    /// Declared after `reply` so the wake-up fires only after the reply
    /// sender is dropped (field drop order is declaration order) — by the
    /// time the reactor polls, the ticket always resolves. Held only for
    /// its `Drop`.
    #[allow(dead_code)]
    pub(crate) notify: Option<ReplyNotify>,
}

/// A flushed bucket: requests a worker packs into one executor pass.
#[derive(Debug)]
pub(crate) struct BatchJob {
    pub(crate) op: OpId,
    /// Shared by every request in the bucket (same op ⇒ same capture).
    pub(crate) compiled: Arc<CompiledOp>,
    pub(crate) stats: Arc<OpStats>,
    pub(crate) requests: Vec<Pending>,
    /// Total packed width (sum of request column counts).
    pub(crate) cols: usize,
    /// When the bucket flushed toward a worker (the window phase's end).
    pub(crate) dispatched: Instant,
}

/// One op's open bucket.
#[derive(Debug)]
struct Bucket {
    requests: Vec<Pending>,
    cols: usize,
    /// Enqueue time of the oldest request — the window anchor.
    opened: Instant,
}

/// The window/bucket policy state: one open bucket per active op.
pub(crate) struct Batcher {
    window: Duration,
    max_cols: usize,
    buckets: HashMap<usize, Bucket>,
}

impl Batcher {
    pub(crate) fn new(window: Duration, max_cols: usize) -> Self {
        Self { window, max_cols: max_cols.max(1), buckets: HashMap::new() }
    }

    /// Accepts one request; returns a job when the size trigger fires.
    ///
    /// A request wider than `max_cols` on its own flushes immediately as a
    /// single-request job (it cannot gain from waiting and must not stall
    /// the bucket).
    pub(crate) fn push(&mut self, p: Pending, now: Instant) -> Option<BatchJob> {
        let mut p = p;
        p.pushed = now; // queue wait ends here; window wait begins
        let op = p.op;
        let cols = p.x.cols();
        match self.buckets.get_mut(&op.0) {
            None if cols >= self.max_cols => {
                let (compiled, stats) = (Arc::clone(&p.compiled), Arc::clone(&p.stats));
                return Some(BatchJob {
                    op,
                    compiled,
                    stats,
                    cols,
                    requests: vec![p],
                    dispatched: now,
                });
            }
            None => {
                self.buckets.insert(op.0, Bucket { requests: vec![p], cols, opened: now });
            }
            Some(bucket) => {
                bucket.requests.push(p);
                bucket.cols += cols;
            }
        }
        if self.buckets.get(&op.0).is_some_and(|b| b.cols >= self.max_cols) {
            self.take(op, now)
        } else {
            None
        }
    }

    /// Earliest moment any open bucket's window expires.
    pub(crate) fn next_deadline(&self) -> Option<Instant> {
        self.buckets.values().map(|b| b.opened + self.window).min()
    }

    /// Flushes every bucket whose window has expired at `now`.
    pub(crate) fn flush_expired(&mut self, now: Instant) -> Vec<BatchJob> {
        let window = self.window;
        let expired: Vec<OpId> = self
            .buckets
            .iter()
            .filter(|(_, b)| b.opened + window <= now)
            .map(|(&i, _)| OpId(i))
            .collect();
        expired.into_iter().filter_map(|op| self.take(op, now)).collect()
    }

    /// Flushes everything (shutdown drain).
    pub(crate) fn flush_all(&mut self, now: Instant) -> Vec<BatchJob> {
        let open: Vec<OpId> = self.buckets.keys().map(|&i| OpId(i)).collect();
        open.into_iter().filter_map(|op| self.take(op, now)).collect()
    }

    /// Requests currently waiting in open buckets.
    #[cfg(test)]
    pub(crate) fn pending(&self) -> usize {
        self.buckets.values().map(|b| b.requests.len()).sum()
    }

    fn take(&mut self, op: OpId, now: Instant) -> Option<BatchJob> {
        self.buckets.remove(&op.0).map(|b| {
            let first = &b.requests[0];
            let (compiled, stats) = (Arc::clone(&first.compiled), Arc::clone(&first.stats));
            BatchJob { op, compiled, stats, requests: b.requests, cols: b.cols, dispatched: now }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biq_runtime::{compile, BackendSpec, PlanBuilder, QuantMethod, WeightSource};

    fn tiny_op() -> Arc<CompiledOp> {
        let signs = biq_matrix::MatrixRng::seed_from(6).signs(4, 4);
        let plan = PlanBuilder::new(4, 4)
            .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
            .build();
        Arc::new(compile(&plan, WeightSource::Signs(&signs)))
    }

    fn pending(
        compiled: &Arc<CompiledOp>,
        op: usize,
        cols: usize,
        now: Instant,
    ) -> (Pending, mpsc::Receiver<Result<Answer, ServeError>>) {
        let (tx, rx) = mpsc::channel();
        let p = Pending {
            op: OpId(op),
            compiled: Arc::clone(compiled),
            stats: Arc::new(OpStats::default()),
            x: ColMatrix::zeros(4, cols),
            reply: tx,
            enqueued: now,
            pushed: now,
            deferred: false,
            inflight: None,
            notify: None,
        };
        (p, rx)
    }

    #[test]
    fn size_trigger_flushes_exactly_at_max_cols() {
        let c = tiny_op();
        let now = Instant::now();
        let mut b = Batcher::new(Duration::from_millis(10), 4);
        let mut rxs = Vec::new();
        for i in 0..3 {
            let (p, rx) = pending(&c, 0, 1, now);
            rxs.push(rx);
            assert!(b.push(p, now).is_none(), "push {i} must keep collecting");
        }
        let (p, rx) = pending(&c, 0, 1, now);
        rxs.push(rx);
        let job = b.push(p, now).expect("fourth column fires the size trigger");
        assert_eq!(job.cols, 4);
        assert_eq!(job.requests.len(), 4);
        assert!(Arc::ptr_eq(&job.compiled, &c), "job carries the admission-time op");
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn oversized_request_flushes_alone_without_stalling_the_bucket() {
        let c = tiny_op();
        let now = Instant::now();
        let mut b = Batcher::new(Duration::from_millis(10), 4);
        let (small, _rx1) = pending(&c, 0, 1, now);
        assert!(b.push(small, now).is_none());
        let (big, _rx2) = pending(&c, 0, 9, now);
        let job = b.push(big, now).expect("bucket exceeds max_cols");
        assert_eq!(job.cols, 10, "waiting small request rides along");
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn time_trigger_only_fires_per_bucket_window() {
        let c = tiny_op();
        let now = Instant::now();
        let window = Duration::from_millis(5);
        let mut b = Batcher::new(window, 64);
        let (p0, _rx0) = pending(&c, 0, 1, now);
        b.push(p0, now);
        let later = now + Duration::from_millis(3);
        let (p1, _rx1) = pending(&c, 1, 2, later);
        b.push(p1, later);
        assert_eq!(b.next_deadline(), Some(now + window), "oldest bucket anchors the deadline");
        assert!(b.flush_expired(now + Duration::from_millis(4)).is_empty());
        let jobs = b.flush_expired(now + window);
        assert_eq!(jobs.len(), 1, "only op 0's window has passed");
        assert_eq!(jobs[0].op, OpId(0));
        assert_eq!(b.pending(), 1);
        let jobs = b.flush_expired(later + window);
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].cols, 2);
    }

    #[test]
    fn push_restamps_pickup_and_jobs_carry_dispatch_time() {
        let c = tiny_op();
        let t0 = Instant::now();
        let later = t0 + Duration::from_millis(2);
        let mut b = Batcher::new(Duration::from_millis(10), 2);
        let (p, _rx0) = pending(&c, 0, 1, t0);
        assert!(b.push(p, later).is_none());
        let (p2, _rx1) = pending(&c, 0, 1, t0);
        let job = b.push(p2, later).expect("size trigger");
        assert_eq!(job.dispatched, later, "dispatch stamp is the triggering clock read");
        assert!(
            job.requests.iter().all(|r| r.pushed == later && r.enqueued == t0),
            "queue wait ends at batcher pickup, admission stamp survives"
        );
    }

    #[test]
    fn flush_all_drains_every_bucket() {
        let c = tiny_op();
        let now = Instant::now();
        let mut b = Batcher::new(Duration::from_secs(1), 64);
        let mut rxs = Vec::new();
        for op in [0usize, 1, 1, 2] {
            let (p, rx) = pending(&c, op, 1, now);
            rxs.push(rx);
            assert!(b.push(p, now).is_none());
        }
        let jobs = b.flush_all(now);
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs.iter().map(|j| j.requests.len()).sum::<usize>(), 4);
        assert_eq!(b.pending(), 0);
        assert_eq!(b.next_deadline(), None);
    }
}
