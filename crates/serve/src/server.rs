//! The serving engine: a batcher thread feeding a pool of worker threads,
//! each worker owning a private warmed [`Executor`].
//!
//! ```text
//!  Client::submit ──► bounded MPSC queue ──► batcher thread
//!  (backpressure:          │                   │ window/bucket (Batcher)
//!   try_submit→Busy)       │                   ▼
//!                          │            bounded job channel ──► worker 0..N-1
//!                          │            (full ⇒ batcher blocks    │ own Executor
//!                          ▼             ⇒ submit queue fills     │ pack → run → scatter
//!                   Ticket::wait ◄───────── reply channels ◄──────┘
//! ```
//!
//! Workers never share an executor: each owns one, warmed at startup for
//! every boot-time op, so the `SharedExecutor` mutex bottleneck never
//! appears on the serving path and per-worker arenas stay hot across
//! batches. Ops loaded online later warm lazily on their first batch (the
//! executor grows arenas on demand). Backpressure is end-to-end — slow
//! workers fill the bounded job channel, which blocks the batcher, which
//! fills the bounded submit queue, which turns [`Client::try_submit`] into
//! [`ServeError::Busy`].
//!
//! Requests resolve against the [`LiveRegistry`] at admission and carry
//! their own `Arc` of the compiled op from there on — a model swap or
//! unload never changes what an accepted request runs against, and the
//! retiring version's payload drops only after its last in-flight request
//! answers (drain-on-retire).

use crate::batcher::{Answer, BatchJob, Batcher, Lap, Pending, ReplyNotify, ServeError};
use crate::registry::{LiveRegistry, ModelRegistry, OpId};
use crate::stats::{ServerStats, StatsSnapshot};
use biq_matrix::{ColMatrix, Matrix};
use biq_obs::{MetricsSnapshot, RequestRecord, SlowHit};
use biq_runtime::Executor;
use biqgemm_core::PhaseProfile;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for [`Server::start`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads, each with a private warmed [`Executor`].
    pub workers: usize,
    /// Capacity of the bounded submit queue (requests waiting for the
    /// batcher). Full queue ⇒ [`Client::submit`] blocks,
    /// [`Client::try_submit`] returns [`ServeError::Busy`].
    pub queue_capacity: usize,
    /// How long an under-filled bucket may wait for company before it is
    /// flushed anyway. Zero serves every request immediately.
    pub batch_window: Duration,
    /// Packed-width cap per batch; a bucket reaching it flushes at once.
    pub max_batch_cols: usize,
    /// Capacity of the bounded batcher→worker job channel; the knob that
    /// propagates worker slowness back to the submit queue.
    pub job_capacity: usize,
    /// Pin worker `i` to core `i % cpu_count()` (Linux `sched_setaffinity`)
    /// before its executor warm-up, so first-touch arena pages land on the
    /// core that will serve from them. Best effort: a failed pin degrades to
    /// an unpinned worker. Off by default (`--pin-workers` opts in).
    pub pin_workers: bool,
    /// Byte ceiling for resident model memory (`--mem-budget`). Online
    /// loads beyond it evict cold models LRU-first, or are refused when
    /// everything else is in flight. `None` disables accounting-based
    /// eviction (gauges still export).
    pub mem_budget: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 1024,
            batch_window: Duration::from_micros(200),
            max_batch_cols: 16,
            job_capacity: 4,
            pin_workers: false,
            mem_budget: None,
        }
    }
}

/// Messages on the submit queue.
enum Submission {
    Request(Pending),
    /// Shutdown sentinel: everything queued ahead of it is still served.
    Shutdown,
}

/// A pending reply: wait on it to get the request's `W·X` result.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Result<Answer, ServeError>>,
}

impl Ticket {
    /// Blocks until the server answers.
    pub fn wait(self) -> Result<Matrix, ServeError> {
        self.wait_full().map(|a| a.matrix)
    }

    /// Like [`Ticket::wait`] but keeping the lifecycle stamps that ride
    /// with the reply — the net writer finalizes them into a
    /// [`RequestRecord`] after its own ticket/write phases.
    pub(crate) fn wait_full(self) -> Result<Answer, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Canceled))
    }

    /// Non-blocking poll; `None` while the request is still in flight. A
    /// dropped reply channel (worker loss) resolves to
    /// [`ServeError::Canceled`], exactly like [`Ticket::wait`].
    pub fn try_wait(&self) -> Option<Result<Matrix, ServeError>> {
        self.try_wait_full().map(|r| r.map(|a| a.matrix))
    }

    /// [`Ticket::try_wait`] keeping the lifecycle stamps — what the net
    /// reactor polls when a request's [`ReplyNotify`] fires.
    pub(crate) fn try_wait_full(&self) -> Option<Result<Answer, ServeError>> {
        match self.rx.try_recv() {
            Ok(reply) => Some(reply),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Canceled)),
        }
    }
}

/// A cheaply cloneable submission handle.
#[derive(Clone)]
pub struct Client {
    tx: SyncSender<Submission>,
    registry: Arc<LiveRegistry>,
    /// The admission gate: submissions hold a read lock across the
    /// check-and-send, [`Server::shutdown`] takes the write lock to flip it.
    /// That ordering guarantees every accepted request is queued **before**
    /// the shutdown sentinel, so "submit returned Ok" always means "the
    /// drain will answer this ticket" — no straddling race.
    accepting: Arc<RwLock<bool>>,
}

impl Client {
    /// Validates and enqueues a request, blocking while the queue is full.
    /// The returned [`Ticket`] resolves to `W·X` for the registered op.
    pub fn submit(&self, op: OpId, x: ColMatrix) -> Result<Ticket, ServeError> {
        let gate = self.accepting.read().expect("admission gate poisoned");
        if !*gate {
            return Err(ServeError::ShuttingDown);
        }
        let (pending, ticket) = self.admit(op, x, Instant::now(), false, None)?;
        match pending {
            Some(p) => {
                let stats = Arc::clone(&p.stats);
                match self.tx.send(Submission::Request(p)) {
                    Ok(()) => {
                        stats.submitted.fetch_add(1, Ordering::Relaxed);
                        stats.queue_depth.fetch_add(1, Ordering::Relaxed);
                        Ok(ticket)
                    }
                    Err(_) => Err(ServeError::ShuttingDown),
                }
            }
            None => Ok(ticket),
        }
    }

    /// Like [`Client::submit`] but refusing with [`ServeError::Busy`]
    /// instead of blocking when the queue is full — the backpressure edge.
    pub fn try_submit(&self, op: OpId, x: ColMatrix) -> Result<Ticket, ServeError> {
        self.try_submit_inner(op, x, Instant::now(), false, None)
    }

    /// [`Client::try_submit`] with an admission stamp the caller already
    /// took (the net front-end stamps at frame decode, so a request's
    /// recorded queue wait includes the submit hop), the lifecycle record
    /// deferred to the net writer, and an optional [`ReplyNotify`] that
    /// rides with the request and fires once its reply (or cancellation)
    /// has landed on the ticket channel — the reactor's wake-up.
    pub(crate) fn try_submit_stamped(
        &self,
        op: OpId,
        x: ColMatrix,
        enqueued: Instant,
        notify: Option<ReplyNotify>,
    ) -> Result<Ticket, ServeError> {
        self.try_submit_inner(op, x, enqueued, true, notify)
    }

    fn try_submit_inner(
        &self,
        op: OpId,
        x: ColMatrix,
        enqueued: Instant,
        deferred: bool,
        notify: Option<ReplyNotify>,
    ) -> Result<Ticket, ServeError> {
        let gate = self.accepting.read().expect("admission gate poisoned");
        if !*gate {
            return Err(ServeError::ShuttingDown);
        }
        let (pending, ticket) = self.admit(op, x, enqueued, deferred, notify)?;
        match pending {
            Some(p) => {
                let stats = Arc::clone(&p.stats);
                match self.tx.try_send(Submission::Request(p)) {
                    Ok(()) => {
                        stats.submitted.fetch_add(1, Ordering::Relaxed);
                        stats.queue_depth.fetch_add(1, Ordering::Relaxed);
                        Ok(ticket)
                    }
                    Err(TrySendError::Full(_)) => {
                        stats.rejected.fetch_add(1, Ordering::Relaxed);
                        Err(ServeError::Busy)
                    }
                    Err(TrySendError::Disconnected(_)) => Err(ServeError::ShuttingDown),
                }
            }
            None => Ok(ticket),
        }
    }

    /// Shared validation; `Ok((None, ticket))` means the request was
    /// answered inline (empty batch) without touching the queue. A
    /// successful admission captures the op's `Arc`s from the current
    /// registry snapshot and pins the owning model in flight.
    fn admit(
        &self,
        op: OpId,
        x: ColMatrix,
        enqueued: Instant,
        deferred: bool,
        notify: Option<ReplyNotify>,
    ) -> Result<(Option<Pending>, Ticket), ServeError> {
        let snap = self.registry.snapshot();
        let Some(slot) = snap.slot(op) else { return Err(ServeError::UnknownOp) };
        // A retired slot keeps its stats but serves nothing.
        let Some(compiled) = slot.op.clone() else { return Err(ServeError::UnknownOp) };
        if x.rows() != compiled.input_size() {
            return Err(ServeError::ShapeMismatch {
                expected: compiled.input_size(),
                got: x.rows(),
            });
        }
        let (reply, rx) = mpsc::channel();
        let ticket = Ticket { rx };
        if x.cols() == 0 {
            // Nothing to compute; answer inline so workers never see b = 0.
            // The notify guard (if any) drops here, after the send — the
            // reactor's poll finds the inline answer immediately.
            let zero = Matrix::zeros(compiled.output_size(), 0);
            let _ = reply.send(Ok(Answer { matrix: zero, lap: Lap::default() }));
            return Ok((None, ticket));
        }
        let inflight = Some(self.registry.begin(slot));
        let p = Pending {
            op,
            compiled,
            stats: Arc::clone(&slot.stats),
            x,
            reply,
            enqueued,
            pushed: enqueued,
            deferred,
            inflight,
            notify,
        };
        Ok((Some(p), ticket))
    }

    /// The live registry this client submits against: op lookup by
    /// (versioned) name for the wire front-end, and the online
    /// load/unload surface for the model-fleet admin verbs.
    pub fn registry(&self) -> &LiveRegistry {
        &self.registry
    }
}

/// A running serving engine. Construct with [`Server::start`], stop with
/// [`Server::shutdown`] (which drains every accepted request).
///
/// Dropping a `Server` without calling `shutdown` detaches its threads:
/// they exit once every [`Client`] clone is gone and the queues drain.
pub struct Server {
    tx: SyncSender<Submission>,
    registry: Arc<LiveRegistry>,
    stats: Arc<ServerStats>,
    accepting: Arc<RwLock<bool>>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// A cheap handle onto a server's statistics block — what the net layer
/// answers `Stats` frames from without touching the [`Server`] itself
/// (reads are atomics only; no worker is ever involved).
#[derive(Clone)]
pub(crate) struct StatsHandle {
    stats: Arc<ServerStats>,
    registry: Arc<LiveRegistry>,
}

impl StatsHandle {
    /// The serving layer's live metric samples.
    pub(crate) fn metrics(&self) -> MetricsSnapshot {
        crate::stats::metrics(&self.registry, &self.stats)
    }

    /// The slowest captured requests, op indices resolved to versioned
    /// display names — what the `SlowLog` wire verb answers with.
    pub(crate) fn slow_hits(&self, max: usize) -> Vec<SlowHit> {
        self.stats
            .sink
            .slow
            .slowest(max)
            .into_iter()
            .map(|rec| SlowHit { op: self.registry.op_name(rec.op as usize), rec })
            .collect()
    }

    /// The per-server record sink (the net writer records into it).
    pub(crate) fn sink(&self) -> &biq_obs::RecordSink {
        &self.stats.sink
    }
}

impl Server {
    /// Spawns the batcher and `config.workers` worker threads; every worker
    /// warms a private executor for every boot-time op (at the batcher's
    /// packed-width cap) before serving. The boot registry becomes version
    /// 1 of the boot model in the server's [`LiveRegistry`].
    pub fn start(registry: ModelRegistry, config: ServerConfig) -> Server {
        let registry = Arc::new(LiveRegistry::from_builder(registry, config.mem_budget));
        let stats = Arc::new(ServerStats::new());
        let accepting = Arc::new(RwLock::new(true));

        let (tx, rx) = mpsc::sync_channel::<Submission>(config.queue_capacity.max(1));
        let (job_tx, job_rx) = mpsc::sync_channel::<BatchJob>(config.job_capacity.max(1));
        let job_rx = Arc::new(Mutex::new(job_rx));

        let cpus = crate::affinity::cpu_count();
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let registry = Arc::clone(&registry);
                let stats = Arc::clone(&stats);
                let job_rx = Arc::clone(&job_rx);
                let max_cols = config.max_batch_cols.max(1);
                let pin_to = config.pin_workers.then_some(i % cpus);
                std::thread::Builder::new()
                    .name(format!("biq-serve-worker-{i}"))
                    .spawn(move || worker_loop(&registry, &stats, &job_rx, max_cols, pin_to))
                    .expect("spawn serve worker")
            })
            .collect();

        let batcher = {
            let window = config.batch_window;
            let max_cols = config.max_batch_cols.max(1);
            std::thread::Builder::new()
                .name("biq-serve-batcher".to_string())
                .spawn(move || batcher_loop(rx, job_tx, window, max_cols))
                .expect("spawn serve batcher")
        };

        Server { tx, registry, stats, accepting, batcher: Some(batcher), workers }
    }

    /// A new submission handle.
    pub fn client(&self) -> Client {
        Client {
            tx: self.tx.clone(),
            registry: Arc::clone(&self.registry),
            accepting: Arc::clone(&self.accepting),
        }
    }

    /// The live registry this server serves from.
    pub fn registry(&self) -> &LiveRegistry {
        &self.registry
    }

    /// Live statistics snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot::capture(&self.registry, &self.stats)
    }

    /// Live metric samples ([`biq_obs`] form — what the net layer's
    /// `Stats` verb and the Prometheus renderer consume).
    pub fn metrics(&self) -> MetricsSnapshot {
        crate::stats::metrics(&self.registry, &self.stats)
    }

    /// A handle that can capture metrics after `self` moves elsewhere.
    pub(crate) fn stats_handle(&self) -> StatsHandle {
        StatsHandle { stats: Arc::clone(&self.stats), registry: Arc::clone(&self.registry) }
    }

    /// Graceful shutdown: stops accepting, serves everything already
    /// accepted (queued in the batcher's buckets, the submit queue, or the
    /// job channel), joins every thread, and returns the final statistics.
    pub fn shutdown(mut self) -> StatsSnapshot {
        // Taking the write lock waits out every in-flight submission (each
        // holds the read lock across its check-and-send), so once the flag
        // flips, every accepted request is already in the FIFO — and the
        // sentinel sent below queues behind all of them.
        *self.accepting.write().expect("admission gate poisoned") = false;
        let _ = self.tx.send(Submission::Shutdown);
        if let Some(b) = self.batcher.take() {
            let _ = b.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        StatsSnapshot::capture(&self.registry, &self.stats)
    }
}

fn batcher_loop(
    rx: Receiver<Submission>,
    job_tx: SyncSender<BatchJob>,
    window: Duration,
    max_cols: usize,
) {
    let mut batcher = Batcher::new(window, max_cols);
    let dispatch = |job: BatchJob| {
        let s = &job.stats;
        s.queue_depth.fetch_sub(job.requests.len(), Ordering::Relaxed);
        s.record_batch(job.cols);
        // Trace the batcher window as a span from the oldest request's
        // enqueue to this dispatch (the time batching "charged" the
        // batch), reusing the dispatch stamp instead of re-reading the
        // clock.
        if biq_obs::trace::tracing_enabled() {
            if let Some(earliest) = job.requests.iter().map(|r| r.enqueued).min() {
                let start = biq_obs::trace::instant_ns(earliest);
                let end = biq_obs::trace::instant_ns(job.dispatched);
                biq_obs::trace::emit("serve.batch_window", start, end.saturating_sub(start));
            }
        }
        // A send error means every worker is gone; requests are answered
        // with `Canceled` by the dropped reply senders.
        let _ = job_tx.send(job);
    };
    loop {
        let now = Instant::now();
        let msg = match batcher.next_deadline() {
            Some(deadline) => rx.recv_timeout(deadline.saturating_duration_since(now)),
            None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
        };
        match msg {
            Ok(Submission::Request(p)) => {
                let now = Instant::now();
                if let Some(job) = batcher.push(p, now) {
                    dispatch(job);
                }
            }
            Ok(Submission::Shutdown) => {
                // The admission gate orders every accepted request ahead of
                // the sentinel; this drain is belt-and-braces against any
                // future sender that bypasses the gate.
                while let Ok(Submission::Request(p)) = rx.try_recv() {
                    if let Some(job) = batcher.push(p, Instant::now()) {
                        dispatch(job);
                    }
                }
                break;
            }
            Err(RecvTimeoutError::Timeout) => {
                for job in batcher.flush_expired(Instant::now()) {
                    dispatch(job);
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Shutdown drain: one cold clock read stamps whatever still flushes.
    for job in batcher.flush_all(Instant::now()) {
        dispatch(job);
    }
    // Dropping `job_tx` lets workers drain the channel and exit.
}

fn worker_loop(
    registry: &LiveRegistry,
    stats: &ServerStats,
    jobs: &Mutex<Receiver<BatchJob>>,
    max_cols: usize,
    pin_to: Option<usize>,
) {
    // Pin BEFORE warming: the warm-up below first-touches every arena page,
    // and pinning first makes those faults land on the serving core's node.
    if let Some(cpu) = pin_to {
        crate::affinity::pin_current_thread(cpu);
    }
    let mut exec = Executor::new();
    {
        // Boot-time ops get provisioned arenas before the first request;
        // models loaded online later warm lazily on their first batch.
        let snap = registry.snapshot();
        for (_, slot) in snap.live() {
            let op = slot.op.as_ref().expect("live slot has an op");
            exec.warm_batch(op, max_cols.max(op.plan().batch_hint));
        }
    }
    let mut xbuf: Vec<f32> = Vec::new();
    let mut ybuf: Vec<f32> = Vec::new();
    let mut profiled = PhaseProfile::new();
    loop {
        // Holding the lock while blocked in `recv` is the multi-consumer
        // queue: exactly one idle worker waits on the channel, the rest
        // wait on the mutex, and a job wakes exactly one of them.
        let job = match jobs.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => break,
        };
        let Ok(job) = job else { break };
        // One clock read per batch when tracing (the PR 6 lesson: never
        // per-chunk); the kernel-phase child spans below are bridged from
        // the profile delta, not re-timed.
        let batch_start = biq_obs::trace::tracing_enabled().then(biq_obs::trace::now_ns);
        {
            let _span = biq_obs::span!("serve.batch");
            run_job(stats, &mut exec, &mut xbuf, &mut ybuf, job);
        }
        // Publish this worker's kernel-phase delta since the last batch.
        let total = *exec.profile();
        let delta = total.delta_since(&profiled);
        profiled = total;
        if let Ok(mut merged) = stats.profile.lock() {
            merged.merge(&delta);
        }
        // Bridge the delta into the trace as sequential child events of
        // this batch: build, then query, then replace — the phases run in
        // that order inside the kernel, so laying them head-to-tail from
        // the batch start reconstructs the timeline without extra clock
        // reads inside the kernel.
        if let Some(t0) = batch_start {
            let mut at = t0;
            for (name, d) in [
                ("kernel.build", delta.build),
                ("kernel.query", delta.query),
                ("kernel.replace", delta.replace),
            ] {
                let ns = d.as_nanos() as u64;
                if ns > 0 {
                    biq_obs::trace::emit(name, at, ns);
                    at += ns;
                }
            }
        }
    }
}

fn run_job(
    stats: &ServerStats,
    exec: &mut Executor,
    xbuf: &mut Vec<f32>,
    ybuf: &mut Vec<f32>,
    job: BatchJob,
) {
    // The job's own arc — NOT a registry lookup: the op may have been
    // retired by a swap while this batch waited, and it must still run
    // against the version that admitted it.
    let op = &job.compiled;
    let (m, n, b) = (op.output_size(), op.input_size(), job.cols);
    if ybuf.len() < m * b {
        ybuf.resize(m * b, 0.0);
    }
    let y = &mut ybuf[..m * b];
    if let [single] = job.requests.as_slice() {
        // Lone request: run its matrix directly, no pack/scatter copies.
        exec.run_into(op, &single.x, y);
    } else {
        // Pack: concatenating col-major matrices with equal row counts is
        // plain buffer concatenation — one executor pass, one LUT build,
        // amortised across every packed column.
        xbuf.clear();
        xbuf.reserve(n * b);
        for req in &job.requests {
            xbuf.extend_from_slice(req.x.as_slice());
        }
        let x = ColMatrix::from_vec(n, b, std::mem::take(xbuf));
        exec.run_into(op, &x, y);
        *xbuf = x.into_vec();
    }
    // Scatter: each request gets the row-major slice of its columns. One
    // hoisted clock read stamps the whole batch "done" — strictly fewer
    // reads than the per-request `elapsed()` this replaces — and feeds
    // both the latency histogram and each request's lifecycle record.
    let op_stats = &job.stats;
    let done = Instant::now();
    let done_ns = biq_obs::trace::instant_ns(done);
    let dispatched_ns = biq_obs::trace::instant_ns(job.dispatched);
    let mut col0 = 0usize;
    for req in job.requests {
        let k = req.x.cols();
        let mut out = Matrix::zeros(m, k);
        for i in 0..m {
            out.row_mut(i).copy_from_slice(&y[i * b + col0..i * b + col0 + k]);
        }
        col0 += k;
        op_stats.record_latency(done.saturating_duration_since(req.enqueued));
        let lap = Lap {
            op: job.op.0 as u32,
            cols: k as u32,
            enqueued_ns: biq_obs::trace::instant_ns(req.enqueued),
            pushed_ns: biq_obs::trace::instant_ns(req.pushed),
            dispatched_ns,
            done_ns,
        };
        if !req.deferred {
            // In-process request: its lifecycle ends here (no ticket/write
            // phases); wire requests are recorded by the net writer instead.
            stats.sink.record(&RequestRecord::from_timeline(
                0,
                lap.op,
                lap.cols,
                lap.enqueued_ns,
                lap.pushed_ns,
                lap.dispatched_ns,
                lap.done_ns,
                lap.done_ns,
                lap.done_ns,
            ));
        }
        let _ = req.reply.send(Ok(Answer { matrix: out, lap }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biq_matrix::MatrixRng;
    use biq_runtime::{BackendSpec, PlanBuilder, QuantMethod, Threading, WeightSource};

    fn one_op_registry(m: usize, n: usize) -> (ModelRegistry, OpId) {
        let mut g = MatrixRng::seed_from(7);
        let signs = g.signs(m, n);
        let plan = PlanBuilder::new(m, n)
            .batch_hint(8)
            .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
            .threading(Threading::Serial)
            .build();
        let mut reg = ModelRegistry::new();
        let id = reg.register("op", &plan, WeightSource::Signs(&signs));
        (reg, id)
    }

    #[test]
    fn serves_a_single_request() {
        let (reg, id) = one_op_registry(16, 32);
        let server = Server::start(reg, ServerConfig::default());
        let client = server.client();
        let x = MatrixRng::seed_from(8).small_int_col(32, 1, 3);
        let y = client.submit(id, x.clone()).unwrap().wait().unwrap();
        assert_eq!(y.shape(), (16, 1));
        let mut exec = Executor::new();
        let y_ref = exec.run(&server.registry().op(id).unwrap(), &x);
        assert_eq!(y.as_slice(), y_ref.as_slice());
        let snap = server.shutdown();
        assert_eq!(snap.ops[0].completed, 1);
        assert_eq!(snap.ops[0].queue_depth, 0);
    }

    #[test]
    fn pinned_workers_serve_identically() {
        // Pinning is a placement hint, never a semantic change: the same
        // request answered by a pinned worker is bit-identical to the
        // executor's direct answer, and a failed pin degrades silently.
        let (reg, id) = one_op_registry(16, 32);
        let config = ServerConfig { workers: 3, pin_workers: true, ..ServerConfig::default() };
        let server = Server::start(reg, config);
        let client = server.client();
        let x = MatrixRng::seed_from(9).gaussian_col(32, 1, 0.0, 1.0);
        let y = client.submit(id, x.clone()).unwrap().wait().unwrap();
        let mut exec = Executor::new();
        let y_ref = exec.run(&server.registry().op(id).unwrap(), &x);
        assert_eq!(y.as_slice(), y_ref.as_slice());
        let snap = server.shutdown();
        assert_eq!(snap.ops[0].completed, 1);
    }

    #[test]
    fn rejects_bad_submissions_upfront() {
        let (reg, id) = one_op_registry(8, 16);
        let server = Server::start(reg, ServerConfig::default());
        let client = server.client();
        assert!(matches!(
            client.submit(OpId(42), ColMatrix::zeros(16, 1)),
            Err(ServeError::UnknownOp)
        ));
        match client.submit(id, ColMatrix::zeros(5, 1)) {
            Err(ServeError::ShapeMismatch { expected: 16, got: 5 }) => {}
            other => panic!("expected shape mismatch, got {other:?}"),
        }
        // Empty batches answer inline with an m×0 result.
        let y = client.submit(id, ColMatrix::zeros(16, 0)).unwrap().wait().unwrap();
        assert_eq!(y.shape(), (8, 0));
        server.shutdown();
    }

    #[test]
    fn try_wait_reports_in_flight_and_canceled_distinctly() {
        let (tx, rx) = mpsc::channel();
        let ticket = Ticket { rx };
        assert!(ticket.try_wait().is_none(), "sender alive, no reply: in flight");
        drop(tx);
        assert_eq!(
            ticket.try_wait(),
            Some(Err(ServeError::Canceled)),
            "dropped reply channel must resolve, not poll forever"
        );
    }

    #[test]
    fn completed_requests_leave_lifecycle_records() {
        let (reg, id) = one_op_registry(8, 16);
        let server = Server::start(reg, ServerConfig::default());
        let client = server.client();
        for _ in 0..3 {
            let x = MatrixRng::seed_from(5).small_int_col(16, 2, 3);
            client.submit(id, x).unwrap().wait().unwrap();
        }
        let handle = server.stats_handle();
        let recent = handle.sink().ring.recent(16);
        assert_eq!(recent.len(), 3, "every completed request is captured");
        for r in &recent {
            assert_eq!(r.phase_sum(), r.total_ns, "phases telescope to the total");
            assert_eq!(r.cols, 2);
            assert_eq!(r.req_id, 0, "in-process requests carry no wire id");
            assert_eq!((r.ticket_ns, r.write_ns), (0, 0), "no net phases in-process");
        }
        let hits = handle.slow_hits(8);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].op, "op@1", "slow hits resolve the versioned display name");
        assert!(hits[0].rec.total_ns >= hits[2].rec.total_ns, "slowest first");
        server.shutdown();
    }

    #[test]
    fn submits_after_shutdown_are_refused() {
        let (reg, id) = one_op_registry(8, 16);
        let server = Server::start(reg, ServerConfig::default());
        let client = server.client();
        server.shutdown();
        assert!(matches!(
            client.submit(id, ColMatrix::zeros(16, 1)),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn swap_mid_flight_answers_with_the_admitting_version() {
        // Admit against v1, swap to v2 while the request sits in the
        // bucket (long window), then flush by shutdown: the reply must be
        // v1's bits, and v1's payload must have drained by then.
        let mut g = MatrixRng::seed_from(77);
        let w1 = g.gaussian(8, 16, 0.0, 1.0);
        let l1 = biq_nn::Linear::quantized(
            &w1,
            2,
            QuantMethod::Greedy,
            biqgemm_core::BiqConfig::default(),
            None,
        );
        let a1 =
            biq_artifact::Artifact::from_bytes(biq_nn::model::CompiledModel::Linear(l1).snapshot())
                .unwrap();
        let w2 = g.gaussian(8, 16, 0.0, 1.0);
        let l2 = biq_nn::Linear::quantized(
            &w2,
            2,
            QuantMethod::Greedy,
            biqgemm_core::BiqConfig::default(),
            None,
        );
        let a2 =
            biq_artifact::Artifact::from_bytes(biq_nn::model::CompiledModel::Linear(l2).snapshot())
                .unwrap();

        let mut reg = ModelRegistry::new();
        reg.set_model_name("m");
        reg.load_artifact(&a1).unwrap();
        let config = ServerConfig {
            batch_window: Duration::from_secs(30),
            max_batch_cols: 64,
            ..ServerConfig::default()
        };
        let server = Server::start(reg, config);
        let client = server.client();
        let v1 = server.registry().lookup("linear").unwrap();
        let v1_op = server.registry().op(v1).unwrap();
        let x = MatrixRng::seed_from(78).gaussian_col(16, 1, 0.0, 1.0);
        let mut exec = Executor::new();
        let expect_v1 = exec.run(&v1_op, &x);
        drop(v1_op);

        let ticket = client.submit(v1, x.clone()).unwrap();
        // Swap while the request waits in the bucket.
        server.registry().load_model("m", &a2).unwrap();
        let v2 = server.registry().lookup("linear").unwrap();
        assert_ne!(v1, v2);
        assert!(server.registry().op(v1).is_none(), "v1 retired");
        // New admissions against v1's id are refused now.
        assert!(matches!(client.submit(v1, x.clone()), Err(ServeError::UnknownOp)));
        // v2 answers with v2's bits while v1's request still waits.
        let expect_v2 = exec.run(&server.registry().op(v2).unwrap(), &x);
        let ticket2 = client.submit(v2, x.clone()).unwrap();
        // Shutdown flushes both buckets and drains every accepted request.
        let snap = server.shutdown();
        let y1 = ticket.wait().unwrap();
        let y2 = ticket2.wait().unwrap();
        assert_eq!(y1.as_slice(), expect_v1.as_slice(), "v1 request got v1 bits");
        assert_eq!(y2.as_slice(), expect_v2.as_slice(), "v2 request got v2 bits");
        assert_eq!(snap.completed(), 2, "zero dropped requests across the swap");
    }
}
