//! # biq_serve — shape-bucketed batching and serving over the executor
//! runtime
//!
//! BiQGEMM wins precisely in the small-batch inference regime where the
//! cost of building lookup tables is amortised across the query columns of
//! one call (the paper's Section III argument). A serving system receives
//! those columns one request at a time: without batching, every
//! single-column request pays a full LUT build alone. This crate closes
//! that gap — it is the repo's path from "a fast kernel" to "a system that
//! serves heavy concurrent traffic":
//!
//! * a [`ModelRegistry`] names the [`biq_runtime::CompiledOp`]s to serve
//!   (register plans + weights directly, or share an `nn` layer's packed
//!   weights via [`ModelRegistry::register_linear`]); at
//!   [`Server::start`] it becomes a [`LiveRegistry`] — a versioned,
//!   multi-tenant store that loads, swaps, and retires whole models
//!   **online** (`op@v` names, atomic snapshot swap, drain-on-retire,
//!   `--mem-budget` LRU eviction);
//! * a [`Server`] owns one batcher thread and N worker threads, each
//!   worker with a **private** [`biq_runtime::Executor`] warmed for every
//!   boot-time op at startup (online-loaded ops warm lazily on first use)
//!   — the sanctioned concurrent path, replacing the
//!   [`biq_runtime::SharedExecutor`] mutex that would serialise traffic;
//! * a [`Client`] submits `(op, ColMatrix)` requests into a **bounded**
//!   queue ([`Client::try_submit`] surfaces backpressure as
//!   [`ServeError::Busy`]); each request yields a [`Ticket`] that resolves
//!   to the request's own `W·X` slice;
//! * the batcher collects requests inside a time/size window, buckets them
//!   by `(op, input rows)`, and packs compatible queries side by side into
//!   one multi-column `ColMatrix`, so **one LUT build serves the whole
//!   bucket**; workers scatter the result columns back to per-request
//!   reply channels;
//! * [`Server::stats`] reports per-op queue depth, batch-width
//!   distribution, p50/p99 latency, and the merged kernel
//!   [`biqgemm_core::PhaseProfile`] across workers;
//! * [`net::NetServer`] puts all of the above on the wire: a std-only TCP
//!   front-end speaking the checksummed `BIQP` frame protocol, bridging
//!   remote connections into the same batching pipeline ([`net`]).
//!
//! Packing is exact, not approximate: every kernel family in the
//! workspace treats batch columns independently (BiQGEMM builds per-column
//! tables; int8/xnor quantize activations per column), so a batched run is
//! **bit-identical** to running each request alone — the
//! `serve_equivalence` property test pins this.
//!
//! ## Example
//!
//! ```
//! use biq_matrix::MatrixRng;
//! use biq_runtime::{BackendSpec, PlanBuilder, QuantMethod, Threading, WeightSource};
//! use biq_serve::{ModelRegistry, Server, ServerConfig};
//!
//! let mut rng = MatrixRng::seed_from(11);
//! let signs = rng.signs(64, 128);
//! let plan = PlanBuilder::new(64, 128)
//!     .batch_hint(8)
//!     .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
//!     .threading(Threading::Serial)
//!     .build();
//! let mut registry = ModelRegistry::new();
//! let op = registry.register("mlp.fc1", &plan, WeightSource::Signs(&signs));
//!
//! let server = Server::start(registry, ServerConfig::default());
//! let client = server.client();
//! let x = rng.gaussian_col(128, 1, 0.0, 1.0);
//! let y = client.submit(op, x).unwrap().wait().unwrap();
//! assert_eq!(y.shape(), (64, 1));
//! let stats = server.shutdown();
//! assert_eq!(stats.completed(), 1);
//! ```

pub mod affinity;
pub mod batcher;
pub mod net;
pub mod registry;
pub mod server;
pub mod stats;

pub use batcher::ServeError;
pub use net::{NetClient, NetServer};
pub use registry::{
    LiveRegistry, LoadedModel, ModelError, ModelInfo, ModelRegistry, OpId, RegisteredOp,
    UnloadedModel, MAX_MODELS,
};
pub use server::{Client, Server, ServerConfig, Ticket};
pub use stats::{OpMeta, OpStatsSnapshot, StatsSnapshot};
