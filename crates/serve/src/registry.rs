//! The catalogue of operators a server can run — a *living*, versioned,
//! multi-tenant store.
//!
//! Two types split the lifecycle:
//!
//! * [`ModelRegistry`] is the **builder**: ops registered before
//!   [`crate::Server::start`] (directly, via
//!   [`ModelRegistry::register_linear`], or from a BIQM artifact via
//!   [`ModelRegistry::load_artifact`]) become the boot model, version 1.
//! * [`LiveRegistry`] is what a running server actually serves from. It is
//!   shared by every [`crate::Client`] and the net front-end, and it
//!   changes online: [`LiveRegistry::load_model`] loads additional
//!   artifacts (or swaps a model to a new version) while traffic is in
//!   flight, [`LiveRegistry::unload_model`] retires one, and a
//!   `--mem-budget` byte ceiling evicts cold models LRU-first to make
//!   room.
//!
//! ## Versioned-name resolution
//!
//! Every load of a model named `M` gets the next version number; its ops
//! are addressable under two names:
//!
//! * `op@v` — pinned to that exact version for as long as it is live;
//! * `op` (unversioned) — resolves to the **latest live** version. A swap
//!   repoints the bare name atomically: requests admitted before the swap
//!   run against the old version, requests admitted after run against the
//!   new one, and nothing in between sees a torn table.
//!
//! An op name may only ever be owned by one model name at a time
//! (otherwise `op@v` would be ambiguous); loading a model whose op names
//! collide with another live model is refused.
//!
//! ## Drain-on-retire
//!
//! Retiring a version (swap, unload, or eviction) removes it from name
//! resolution immediately but never cancels in-flight work: every
//! admitted request holds its own `Arc` of the compiled op, so a batch
//! already queued or running completes bit-identically against the
//! version that admitted it, and the packed payload is freed when the
//! last in-flight reference drops. Readers see registry updates through
//! an atomically swapped snapshot (`Mutex<Arc<Snapshot>>` — a hand-rolled
//! `ArcSwap`), so resolution is a brief lock + `Arc` clone, never a walk
//! of shared mutable state.
//!
//! Compiled ops are reference-counted end to end — registering a layer
//! that already exists shares the packed weights instead of re-quantizing
//! them, and a loaded artifact's payloads stay borrowed from the artifact
//! buffer.

use crate::stats::{OpMeta, OpStats};
use biq_obs::{MetricValue, Sample};
use biq_runtime::{compile, BackendSpec, CompiledOp, ExecutionPlan, WeightSource};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Most models a [`LiveRegistry`] will track (live + retired) — mirrors
/// the wire-side `MAX_MODELS` cap so a `ListModels` reply always fits.
pub const MAX_MODELS: usize = 256;

/// Stable identifier of a registered op (an index into the registry's
/// slot table; slots are append-only and never reused, so an `OpId` stays
/// valid — though possibly retired — for the life of the server).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OpId(pub(crate) usize);

impl OpId {
    /// The registry index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One registered operator: a name for reporting plus the compiled op.
#[derive(Debug)]
pub struct RegisteredOp {
    name: String,
    op: Arc<CompiledOp>,
}

impl RegisteredOp {
    /// The name given at registration.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The compiled op (shared with every worker).
    pub fn op(&self) -> &Arc<CompiledOp> {
        &self.op
    }
}

/// The boot-time builder: the set of [`CompiledOp`]s a [`crate::Server`]
/// starts serving as version 1 of the boot model. After
/// [`crate::Server::start`] the server's [`LiveRegistry`] takes over and
/// models come and go online.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    ops: Vec<RegisteredOp>,
    model_name: Option<String>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Names the boot model (defaults to `"default"`); `biq serve` passes
    /// the artifact's file stem so fleet views and metrics read naturally.
    pub fn set_model_name(&mut self, name: impl Into<String>) {
        self.model_name = Some(name.into());
    }

    /// Compiles `plan` against `weights` (quantization/packing happens
    /// here, once) and registers the result.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        plan: &ExecutionPlan,
        weights: WeightSource<'_>,
    ) -> OpId {
        self.register_op(name, Arc::new(compile(plan, weights)))
    }

    /// Registers an already-compiled op, sharing its packed weights.
    pub fn register_op(&mut self, name: impl Into<String>, op: Arc<CompiledOp>) -> OpId {
        let id = OpId(self.ops.len());
        self.ops.push(RegisteredOp { name: name.into(), op });
        id
    }

    /// Registers the compiled op behind an `nn` layer, so a model's linear
    /// layers route their matmuls through the server's batched path while
    /// sharing the layer's packed weights. The server computes `W·X` only;
    /// a layer bias (and activation) stays the caller's job, exactly as
    /// with [`biq_runtime::Executor::run`].
    pub fn register_linear(&mut self, name: impl Into<String>, layer: &biq_nn::Linear) -> OpId {
        self.register_op(name, layer.compiled_op())
    }

    /// Boots the registry straight from a compiled-model artifact: every
    /// linear layer is registered under its canonical artifact name
    /// (`enc0.attn.wq`, `lstm.w_ih`, …), with packed weights **borrowed
    /// from the artifact buffer** — no fp32 weights and no re-quantization
    /// in the serving process. Returns the restored model (whose layers
    /// share the registered ops) and the `(name, id)` pairs in
    /// registration order.
    pub fn load_artifact(
        &mut self,
        artifact: &biq_artifact::Artifact,
    ) -> Result<(biq_nn::CompiledModel, Vec<(String, OpId)>), biq_artifact::ArtifactError> {
        let model = biq_nn::CompiledModel::from_artifact(artifact)?;
        let ids = model
            .named_linears()
            .into_iter()
            .map(|(name, layer)| {
                let id = self.register_linear(name.clone(), layer);
                (name, id)
            })
            .collect();
        Ok((model, ids))
    }

    /// The op registered under `id`.
    ///
    /// # Panics
    /// Panics when `id` did not come from this registry.
    pub fn get(&self, id: OpId) -> &RegisteredOp {
        &self.ops[id.0]
    }

    /// Finds an op id by registration name (first match).
    pub fn lookup(&self, name: &str) -> Option<OpId> {
        self.ops.iter().position(|o| o.name == name).map(OpId)
    }

    /// Number of registered ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterates over `(id, op)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (OpId, &RegisteredOp)> {
        self.ops.iter().enumerate().map(|(i, o)| (OpId(i), o))
    }
}

/// Why a fleet operation ([`LiveRegistry::load_model`] /
/// [`LiveRegistry::unload_model`]) was refused.
#[derive(Debug)]
pub enum ModelError {
    /// No live model matches the requested name (and version).
    UnknownModel(String),
    /// An op name in the incoming artifact is already owned by a
    /// different live model, which would make `op@v` ambiguous.
    OpCollision {
        /// The colliding op name.
        op: String,
        /// The live model that owns it.
        owner: String,
    },
    /// Loading would exceed `--mem-budget` even after evicting every
    /// cold model. Nothing was evicted.
    BudgetExceeded {
        /// Bytes the incoming model needs.
        needed: u64,
        /// The configured ceiling.
        budget: u64,
        /// Resident bytes that cannot be evicted (in-flight or the model
        /// being swapped).
        resident: u64,
    },
    /// The registry already tracks [`MAX_MODELS`] models (live + retired).
    TooManyModels(usize),
    /// The artifact failed to decode/restore.
    Artifact(biq_artifact::ArtifactError),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::UnknownModel(name) => write!(f, "no live model {name:?}"),
            ModelError::OpCollision { op, owner } => {
                write!(f, "op {op:?} is already owned by live model {owner:?}")
            }
            ModelError::BudgetExceeded { needed, budget, resident } => write!(
                f,
                "model needs {needed} bytes but only {} of the {budget} byte budget \
                 can be freed ({resident} bytes are pinned by live/in-flight models)",
                budget.saturating_sub(*resident),
            ),
            ModelError::TooManyModels(n) => write!(f, "registry already tracks {n} models"),
            ModelError::Artifact(e) => write!(f, "artifact: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<biq_artifact::ArtifactError> for ModelError {
    fn from(e: biq_artifact::ArtifactError) -> Self {
        ModelError::Artifact(e)
    }
}

/// Per-model live counters: what eviction and the fleet views read.
#[derive(Debug, Default)]
pub(crate) struct ModelStats {
    /// Requests admitted but not yet answered (each [`InflightGuard`]
    /// holds one). Eviction refuses a model while this is nonzero.
    pub(crate) inflight: AtomicU64,
    /// The registry clock tick of the last admission — the LRU key.
    pub(crate) last_used: AtomicU64,
}

/// Held by every admitted request; drops (decrementing the model's
/// in-flight count) only after the reply has landed on the ticket channel.
#[derive(Debug)]
pub(crate) struct InflightGuard(Arc<ModelStats>);

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// One slot of the live table — everything the serving path needs about
/// an op, clonable as a handful of `Arc`s. `op` is `None` once the slot's
/// version is retired (the payload itself lives on in any in-flight
/// request's `Arc` until the drain completes).
#[derive(Clone, Debug)]
pub(crate) struct SlotView {
    /// Identity under the **versioned display name** (`linear@1`) — what
    /// metrics, snapshots, and `biq top` report.
    pub(crate) meta: Arc<OpMeta>,
    pub(crate) op: Option<Arc<CompiledOp>>,
    pub(crate) stats: Arc<OpStats>,
    pub(crate) model: Arc<ModelStats>,
    /// Owning model name (metric label).
    pub(crate) model_name: Arc<str>,
    /// Owning model version (metric label).
    pub(crate) version: u32,
}

/// An immutable point-in-time view of the live table. Cheap to hold: the
/// serving path resolves against one snapshot per admission, so a
/// concurrent swap can never show a request a torn table.
#[derive(Debug, Default)]
pub(crate) struct Snapshot {
    /// Index-aligned with [`OpId`]; append-only across snapshots.
    pub(crate) slots: Vec<SlotView>,
    by_name: HashMap<String, usize>,
}

impl Snapshot {
    /// Resolves `op` or `op@v` to a slot id (live versions only).
    pub(crate) fn resolve(&self, name: &str) -> Option<OpId> {
        self.by_name.get(name).copied().map(OpId)
    }

    pub(crate) fn slot(&self, id: OpId) -> Option<&SlotView> {
        self.slots.get(id.0)
    }

    /// Iterates live slots (retired ones keep stats but serve nothing).
    pub(crate) fn live(&self) -> impl Iterator<Item = (OpId, &SlotView)> {
        self.slots.iter().enumerate().filter(|(_, s)| s.op.is_some()).map(|(i, s)| (OpId(i), s))
    }
}

/// Fleet bookkeeping for one loaded model version.
#[derive(Debug)]
struct Model {
    name: String,
    version: u32,
    live: bool,
    /// Slot indices owned by this version.
    ops: Vec<usize>,
    /// Estimated resident bytes while live (0 once retired).
    mem_bytes: u64,
    stats: Arc<ModelStats>,
    /// Bare op names, index-aligned with `ops` (name resolution keys).
    op_bases: Vec<String>,
}

#[derive(Debug, Default)]
struct State {
    slots: Vec<SlotView>,
    models: Vec<Model>,
    loads: u64,
    unloads: u64,
    evictions: u64,
}

impl State {
    fn rebuild_snapshot(&self) -> Snapshot {
        let mut by_name = HashMap::new();
        for model in self.models.iter().filter(|m| m.live) {
            for (&slot, base) in model.ops.iter().zip(&model.op_bases) {
                by_name.insert(format!("{base}@{}", model.version), slot);
                // One live version per model name and one owning model per
                // op name, so the bare name is unambiguous.
                by_name.insert(base.clone(), slot);
            }
        }
        Snapshot { slots: self.slots.clone(), by_name }
    }

    fn live_bytes(&self) -> u64 {
        self.models.iter().filter(|m| m.live).map(|m| m.mem_bytes).sum()
    }

    /// Retires one model version: drops the registry's op `Arc`s (payloads
    /// stay alive inside any in-flight request until the drain completes)
    /// and removes it from name resolution on the next snapshot rebuild.
    fn retire(&mut self, model_idx: usize) {
        let m = &mut self.models[model_idx];
        m.live = false;
        m.mem_bytes = 0;
        for &slot in &m.ops {
            self.slots[slot].op = None;
        }
    }
}

/// The result of a successful [`LiveRegistry::load_model`].
#[derive(Debug)]
pub struct LoadedModel {
    /// The version this load was assigned (1 for a new name, previous+1
    /// for a swap).
    pub version: u32,
    /// Estimated resident bytes of the new version.
    pub mem_bytes: u64,
    /// Cold models evicted to make room, as `(name, version)`.
    pub evicted: Vec<(String, u32)>,
    /// The new version's ops under their versioned display names.
    pub ops: Vec<(String, OpId)>,
}

/// The result of a successful [`LiveRegistry::unload_model`].
#[derive(Debug)]
pub struct UnloadedModel {
    /// The version that was retired.
    pub version: u32,
    /// How many ops it retired.
    pub ops_retired: usize,
}

/// One row of the fleet view ([`LiveRegistry::models`]).
#[derive(Clone, Debug)]
pub struct ModelInfo {
    /// Model name.
    pub name: String,
    /// Version number.
    pub version: u32,
    /// `true` while serving; retired versions keep their traffic counters.
    pub live: bool,
    /// Estimated resident bytes (0 once retired).
    pub mem_bytes: u64,
    /// Ops this version owns.
    pub ops: usize,
    /// Requests admitted but not yet answered.
    pub inflight: u64,
    /// Requests answered over this version's lifetime.
    pub completed: u64,
}

/// The living, versioned op table of a running server. See the module
/// docs for the resolution and drain-on-retire contracts.
#[derive(Debug)]
pub struct LiveRegistry {
    state: Mutex<State>,
    /// Hand-rolled `ArcSwap`: readers lock briefly and clone the `Arc`;
    /// writers rebuild under `state` and store a fresh snapshot here.
    snap: Mutex<Arc<Snapshot>>,
    /// Admission counter driving per-model LRU age.
    clock: AtomicU64,
    budget: Option<u64>,
}

impl LiveRegistry {
    /// Consumes the boot-time builder into a live store: every registered
    /// op becomes version 1 of the boot model.
    pub(crate) fn from_builder(builder: ModelRegistry, budget: Option<u64>) -> Self {
        let model_name = builder.model_name.unwrap_or_else(|| "default".to_string());
        let mut state = State::default();
        let stats = Arc::new(ModelStats::default());
        let name_arc: Arc<str> = model_name.as_str().into();
        let mut mem = 0u64;
        let mut ops = Vec::new();
        let mut bases = Vec::new();
        for reg in builder.ops {
            mem += op_mem_bytes(&reg.op);
            ops.push(state.slots.len());
            bases.push(reg.name.clone());
            state.slots.push(SlotView {
                meta: Arc::new(OpMeta {
                    name: format!("{}@1", reg.name),
                    kernel: reg.op.plan().kernel.level(),
                    m: reg.op.output_size(),
                    n: reg.op.input_size(),
                }),
                op: Some(reg.op),
                stats: Arc::new(OpStats::default()),
                model: Arc::clone(&stats),
                model_name: Arc::clone(&name_arc),
                version: 1,
            });
        }
        state.models.push(Model {
            name: model_name,
            version: 1,
            live: true,
            ops,
            mem_bytes: mem,
            stats,
            op_bases: bases,
        });
        state.loads = 1;
        let snap = Arc::new(state.rebuild_snapshot());
        LiveRegistry {
            state: Mutex::new(state),
            snap: Mutex::new(snap),
            clock: AtomicU64::new(0),
            budget,
        }
    }

    /// The current table. One brief lock, one `Arc` clone.
    pub(crate) fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snap.lock().expect("registry snapshot poisoned"))
    }

    fn publish(&self, state: &State) {
        *self.snap.lock().expect("registry snapshot poisoned") = Arc::new(state.rebuild_snapshot());
    }

    /// Marks an admission against `slot`'s model: bumps the LRU clock and
    /// the in-flight count; the returned guard releases the latter.
    pub(crate) fn begin(&self, slot: &SlotView) -> InflightGuard {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        slot.model.last_used.store(tick, Ordering::Relaxed);
        slot.model.inflight.fetch_add(1, Ordering::AcqRel);
        InflightGuard(Arc::clone(&slot.model))
    }

    /// Resolves `op` or `op@v` to the live slot serving it.
    pub fn lookup(&self, name: &str) -> Option<OpId> {
        self.snapshot().resolve(name)
    }

    /// The compiled op behind `id` (`None` for retired slots and foreign
    /// ids).
    pub fn op(&self, id: OpId) -> Option<Arc<CompiledOp>> {
        self.snapshot().slot(id).and_then(|s| s.op.clone())
    }

    /// The versioned display name of slot `index` (`op42` for foreign
    /// indices — slow-log rows never panic on a stale id).
    pub(crate) fn op_name(&self, index: usize) -> String {
        self.snapshot()
            .slots
            .get(index)
            .map(|s| s.meta.name.clone())
            .unwrap_or_else(|| format!("op{index}"))
    }

    /// Loads `artifact` as model `name`: version 1 for a new name, or an
    /// atomic swap to `previous + 1` when `name` is already live (the old
    /// version retires with drain semantics). Enforces the memory budget,
    /// evicting cold models (live, zero in-flight, least-recently
    /// admitted first) when needed.
    pub fn load_model(
        &self,
        name: &str,
        artifact: &biq_artifact::Artifact,
    ) -> Result<LoadedModel, ModelError> {
        // Decode and compile outside the lock: restoring packed payloads is
        // the expensive part and must not stall concurrent admissions.
        let model = biq_nn::CompiledModel::from_artifact(artifact)?;
        let new_ops: Vec<(String, Arc<CompiledOp>)> = model
            .named_linears()
            .into_iter()
            .map(|(op_name, layer)| (op_name, layer.compiled_op()))
            .collect();
        let mem: u64 = new_ops.iter().map(|(_, op)| op_mem_bytes(op)).sum();

        let mut st = self.state.lock().expect("registry state poisoned");
        if st.models.len() >= MAX_MODELS {
            return Err(ModelError::TooManyModels(st.models.len()));
        }
        // Op names may only be owned by one model name at a time.
        for m in st.models.iter().filter(|m| m.live && m.name != name) {
            for base in &m.op_bases {
                if new_ops.iter().any(|(n, _)| n == base) {
                    return Err(ModelError::OpCollision {
                        op: base.clone(),
                        owner: format!("{}@{}", m.name, m.version),
                    });
                }
            }
        }
        let prev = st.models.iter().position(|m| m.live && m.name == name);
        let version =
            st.models.iter().filter(|m| m.name == name).map(|m| m.version).max().unwrap_or(0) + 1;

        // Budget check before touching anything: the swapped-out version's
        // bytes free as part of this load, evictable cold models can free
        // theirs, and anything else is pinned.
        let mut evicted = Vec::new();
        if let Some(budget) = self.budget {
            let prev_bytes = prev.map(|i| st.models[i].mem_bytes).unwrap_or(0);
            let after = st.live_bytes() - prev_bytes + mem;
            if after > budget {
                let mut need = after - budget;
                let mut candidates: Vec<usize> = (0..st.models.len())
                    .filter(|&i| {
                        let m = &st.models[i];
                        m.live && m.name != name && m.stats.inflight.load(Ordering::Acquire) == 0
                    })
                    .collect();
                candidates.sort_by_key(|&i| st.models[i].stats.last_used.load(Ordering::Relaxed));
                let mut to_evict = Vec::new();
                for i in candidates {
                    if need == 0 {
                        break;
                    }
                    need = need.saturating_sub(st.models[i].mem_bytes);
                    to_evict.push(i);
                }
                if need > 0 {
                    return Err(ModelError::BudgetExceeded {
                        needed: mem,
                        budget,
                        resident: st.live_bytes()
                            - prev_bytes
                            - to_evict.iter().map(|&i| st.models[i].mem_bytes).sum::<u64>(),
                    });
                }
                for i in to_evict {
                    evicted.push((st.models[i].name.clone(), st.models[i].version));
                    st.retire(i);
                    st.evictions += 1;
                }
            }
        }
        // Swap: the outgoing version retires now; its in-flight work
        // drains on the `Arc`s each request holds.
        if let Some(i) = prev {
            st.retire(i);
        }
        let stats = Arc::new(ModelStats::default());
        // A freshly loaded model is the most recently used by definition.
        stats.last_used.store(self.clock.fetch_add(1, Ordering::Relaxed) + 1, Ordering::Relaxed);
        let name_arc: Arc<str> = name.into();
        let mut ops = Vec::new();
        let mut op_bases = Vec::new();
        let mut out_ops = Vec::new();
        for (base, op) in new_ops {
            let id = st.slots.len();
            let display = format!("{base}@{version}");
            ops.push(id);
            op_bases.push(base);
            out_ops.push((display.clone(), OpId(id)));
            st.slots.push(SlotView {
                meta: Arc::new(OpMeta {
                    name: display,
                    kernel: op.plan().kernel.level(),
                    m: op.output_size(),
                    n: op.input_size(),
                }),
                op: Some(op),
                stats: Arc::new(OpStats::default()),
                model: Arc::clone(&stats),
                model_name: Arc::clone(&name_arc),
                version,
            });
        }
        st.models.push(Model {
            name: name.to_string(),
            version,
            live: true,
            ops,
            mem_bytes: mem,
            stats,
            op_bases,
        });
        st.loads += 1;
        self.publish(&st);
        Ok(LoadedModel { version, mem_bytes: mem, evicted, ops: out_ops })
    }

    /// Retires model `name` (`version == 0` targets the live version).
    /// Always allowed — in-flight requests drain on their own `Arc`s —
    /// but the version's names stop resolving immediately.
    pub fn unload_model(&self, name: &str, version: u32) -> Result<UnloadedModel, ModelError> {
        let mut st = self.state.lock().expect("registry state poisoned");
        let idx = st
            .models
            .iter()
            .position(|m| m.live && m.name == name && (version == 0 || m.version == version))
            .ok_or_else(|| match version {
                0 => ModelError::UnknownModel(name.to_string()),
                v => ModelError::UnknownModel(format!("{name}@{v}")),
            })?;
        let retired_version = st.models[idx].version;
        let ops_retired = st.models[idx].ops.len();
        st.retire(idx);
        st.unloads += 1;
        self.publish(&st);
        Ok(UnloadedModel { version: retired_version, ops_retired })
    }

    /// The fleet view: every tracked model version, live first, newest
    /// first within each state.
    pub fn models(&self) -> Vec<ModelInfo> {
        let st = self.state.lock().expect("registry state poisoned");
        let mut out: Vec<ModelInfo> = st
            .models
            .iter()
            .map(|m| ModelInfo {
                name: m.name.clone(),
                version: m.version,
                live: m.live,
                mem_bytes: m.mem_bytes,
                ops: m.ops.len(),
                inflight: m.stats.inflight.load(Ordering::Acquire),
                completed: m
                    .ops
                    .iter()
                    .map(|&i| st.slots[i].stats.completed.load(Ordering::Relaxed))
                    .sum(),
            })
            .collect();
        out.sort_by(|a, b| b.live.cmp(&a.live).then(b.version.cmp(&a.version)));
        out
    }

    /// Estimated resident bytes across live models.
    pub fn live_bytes(&self) -> u64 {
        self.state.lock().expect("registry state poisoned").live_bytes()
    }

    /// The configured memory ceiling, if any.
    pub fn mem_budget(&self) -> Option<u64> {
        self.budget
    }

    /// Appends the registry's metric samples: per-op serving counters
    /// (labeled with the versioned display name), per-model
    /// `biq_model_memory_bytes{model,version}` / in-flight gauges, and
    /// fleet load/unload/eviction counters (plus the
    /// `biq_mem_budget_bytes` ceiling gauge when a budget is set).
    pub(crate) fn metric_samples(&self, samples: &mut Vec<Sample>) {
        let snap = self.snapshot();
        for slot in &snap.slots {
            crate::stats::push_op_samples(samples, slot);
        }
        let st = self.state.lock().expect("registry state poisoned");
        let mut live_models = 0i64;
        for m in st.models.iter().filter(|m| m.live) {
            live_models += 1;
            let labels = vec![
                ("model".to_string(), m.name.clone()),
                ("version".to_string(), m.version.to_string()),
            ];
            samples.push(Sample {
                name: "biq_model_memory_bytes".to_string(),
                labels: labels.clone(),
                value: MetricValue::Gauge(m.mem_bytes as i64),
            });
            samples.push(Sample {
                name: "biq_model_inflight".to_string(),
                labels,
                value: MetricValue::Gauge(m.stats.inflight.load(Ordering::Acquire) as i64),
            });
        }
        samples.push(Sample {
            name: "biq_models_loaded".to_string(),
            labels: Vec::new(),
            value: MetricValue::Gauge(live_models),
        });
        if let Some(budget) = self.budget {
            samples.push(Sample {
                name: "biq_mem_budget_bytes".to_string(),
                labels: Vec::new(),
                value: MetricValue::Gauge(budget as i64),
            });
        }
        for (name, v) in [
            ("biq_model_loads_total", st.loads),
            ("biq_model_unloads_total", st.unloads),
            ("biq_model_evictions_total", st.evictions),
        ] {
            samples.push(Sample {
                name: name.to_string(),
                labels: Vec::new(),
                value: MetricValue::Counter(v),
            });
        }
    }
}

/// Estimated resident bytes of one compiled op: packed payload (from the
/// plan's backend family and dims) plus the per-worker serial scratch the
/// plan records. An estimate, not an allocator audit — it tracks the
/// dominant terms (key matrices, scales, LUT banks) and is stable across
/// hosts, which is what a budget needs.
fn op_mem_bytes(op: &CompiledOp) -> u64 {
    let p = op.plan();
    let (m, n) = (p.m, p.n);
    let payload = match p.spec {
        BackendSpec::Fp32Naive | BackendSpec::Fp32Blocked => 4 * m * n,
        BackendSpec::Int8 => m * n + 4 * m,
        BackendSpec::Xnor { bits } => bits * (m * n.div_ceil(64) * 8 + 4 * m),
        BackendSpec::Biq { bits, .. } => bits * (m * n.div_ceil(8) + 4 * m),
    };
    (payload + p.scratch.total_bytes()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use biq_matrix::MatrixRng;
    use biq_runtime::{PlanBuilder, QuantMethod};

    #[test]
    fn register_and_lookup() {
        let mut g = MatrixRng::seed_from(1);
        let signs = g.signs(8, 16);
        let plan = PlanBuilder::new(8, 16)
            .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
            .build();
        let mut reg = ModelRegistry::new();
        let id = reg.register("enc.q", &plan, WeightSource::Signs(&signs));
        assert_eq!(reg.lookup("enc.q"), Some(id));
        assert_eq!(reg.get(id).name(), "enc.q");
        assert_eq!(reg.get(id).op().output_size(), 8);
        assert_eq!(reg.len(), 1);
        assert!(reg.lookup("missing").is_none());
    }

    #[test]
    fn register_linear_shares_the_compiled_op() {
        let mut g = MatrixRng::seed_from(2);
        let w = g.gaussian(8, 8, 0.0, 1.0);
        let layer = biq_nn::Linear::fp32(w, None);
        let mut reg = ModelRegistry::new();
        let id = reg.register_linear("fc", &layer);
        assert!(Arc::ptr_eq(reg.get(id).op(), &layer.compiled_op()));
    }

    #[test]
    fn load_artifact_registers_every_linear_without_fp32_weights() {
        use biq_nn::model::CompiledModel;
        use biq_nn::transformer::LayerBackend;
        let mut g = MatrixRng::seed_from(3);
        let enc = biq_nn::transformer::Encoder::random(
            &mut g,
            1,
            16,
            32,
            2,
            LayerBackend::Biq {
                bits: 2,
                method: QuantMethod::Greedy,
                cfg: biqgemm_core::BiqConfig::default(),
                parallel: false,
            },
        );
        let bytes = CompiledModel::Transformer(enc).snapshot();
        let artifact = biq_artifact::Artifact::from_bytes(bytes).unwrap();
        let mut reg = ModelRegistry::new();
        let (model, ids) = reg.load_artifact(&artifact).unwrap();
        assert_eq!(reg.len(), 6, "six projections per encoder layer");
        assert_eq!(ids[0].0, "enc0.attn.wq");
        assert_eq!(reg.lookup("enc0.ff1"), Some(ids[4].1));
        // The registered op IS the restored model's op (shared weights).
        let (_, layer) = &model.named_linears()[0];
        assert!(Arc::ptr_eq(reg.get(ids[0].1).op(), &layer.compiled_op()));
        // Loaded ops serve the same results as the in-memory layer.
        let x = g.gaussian_col(16, 2, 0.0, 1.0);
        let mut exec = biq_runtime::Executor::new();
        let y = exec.run(reg.get(ids[0].1).op(), &x);
        assert_eq!(
            y.to_col_major().as_slice(),
            layer.forward(&x).as_slice(),
            "wq has no bias, so the op output is the layer output"
        );
    }

    fn linear_artifact(seed: u64, m: usize, n: usize) -> biq_artifact::Artifact {
        let mut g = MatrixRng::seed_from(seed);
        let w = g.gaussian(m, n, 0.0, 1.0);
        let layer = biq_nn::Linear::quantized(
            &w,
            2,
            QuantMethod::Greedy,
            biqgemm_core::BiqConfig::default(),
            None,
        );
        let bytes = biq_nn::model::CompiledModel::Linear(layer).snapshot();
        biq_artifact::Artifact::from_bytes(bytes).unwrap()
    }

    fn boot(seed: u64, budget: Option<u64>) -> LiveRegistry {
        let mut reg = ModelRegistry::new();
        reg.set_model_name("boot");
        reg.load_artifact(&linear_artifact(seed, 8, 16)).unwrap();
        LiveRegistry::from_builder(reg, budget)
    }

    #[test]
    fn versioned_resolution_follows_the_latest_live_version() {
        let live = boot(11, None);
        let v1 = live.lookup("linear").expect("boot op resolves");
        assert_eq!(live.lookup("linear@1"), Some(v1), "pinned name resolves too");
        let loaded = live.load_model("boot", &linear_artifact(12, 8, 16)).unwrap();
        assert_eq!(loaded.version, 2, "swap takes the next version");
        let v2 = live.lookup("linear").expect("bare name repoints");
        assert_ne!(v1, v2);
        assert_eq!(live.lookup("linear@2"), Some(v2));
        assert_eq!(live.lookup("linear@1"), None, "retired version stops resolving");
        assert!(live.op(v1).is_none(), "retired slot dropped its payload arc");
        assert!(live.op(v2).is_some());
        let models = live.models();
        assert_eq!(models.len(), 2);
        assert!(models[0].live && models[0].version == 2);
        assert!(!models[1].live && models[1].version == 1);
    }

    #[test]
    fn in_flight_arcs_survive_a_swap() {
        let live = boot(21, None);
        let v1 = live.lookup("linear").unwrap();
        let held = live.op(v1).expect("live op");
        live.load_model("boot", &linear_artifact(22, 8, 16)).unwrap();
        // The registry dropped its arc; the in-flight holder still runs.
        let mut exec = biq_runtime::Executor::new();
        let x = MatrixRng::seed_from(23).gaussian_col(16, 1, 0.0, 1.0);
        let y = exec.run(&held, &x);
        assert_eq!(y.shape(), (8, 1));
    }

    #[test]
    fn op_collisions_across_model_names_are_refused() {
        let live = boot(31, None);
        let err = live.load_model("other", &linear_artifact(32, 8, 16)).unwrap_err();
        match err {
            ModelError::OpCollision { op, owner } => {
                assert_eq!(op, "linear");
                assert_eq!(owner, "boot@1");
            }
            other => panic!("expected collision, got {other}"),
        }
    }

    #[test]
    fn budget_refuses_oversized_loads_without_evicting() {
        let incoming = linear_artifact(42, 256, 512);
        // One byte short of what the incoming model needs, so the load is
        // refused even though the swap would retire v1's bytes.
        let live = boot(41, Some(artifact_mem(&incoming) - 1));
        let v1 = live.lookup("linear").unwrap();
        let err = live.load_model("boot", &incoming).unwrap_err();
        match err {
            ModelError::BudgetExceeded { needed, budget, .. } => {
                assert!(needed > budget, "needed {needed} fits {budget}?");
            }
            other => panic!("expected budget refusal, got {other}"),
        }
        // A refused load changes nothing: v1 still serves.
        assert_eq!(live.lookup("linear"), Some(v1));
        assert!(live.op(v1).is_some());
        assert_eq!(live.models().len(), 1);
    }

    /// What the registry will account `artifact` at, via the same
    /// estimator the budget uses — keeps the eviction tests exact instead
    /// of guessing byte counts.
    fn artifact_mem(artifact: &biq_artifact::Artifact) -> u64 {
        let model = biq_nn::CompiledModel::from_artifact(artifact).unwrap();
        model.named_linears().iter().map(|(_, l)| op_mem_bytes(&l.compiled_op())).sum()
    }

    fn encoder_artifact(seed: u64) -> biq_artifact::Artifact {
        use biq_nn::transformer::LayerBackend;
        let mut g = MatrixRng::seed_from(seed);
        let enc = biq_nn::transformer::Encoder::random(
            &mut g,
            1,
            64,
            128,
            2,
            LayerBackend::Biq {
                bits: 2,
                method: QuantMethod::Greedy,
                cfg: biqgemm_core::BiqConfig::default(),
                parallel: false,
            },
        );
        let bytes = biq_nn::model::CompiledModel::Transformer(enc).snapshot();
        biq_artifact::Artifact::from_bytes(bytes).unwrap()
    }

    #[test]
    fn eviction_frees_cold_models_lru_first_and_skips_in_flight_ones() {
        // A Linear artifact always names its op "linear", so the second
        // tenant is a multi-op transformer under another model name. The
        // budget is derived from the estimator itself: boot + enc fit,
        // swapping boot to the bigger v2 does not — unless enc is evicted.
        let boot_a = linear_artifact(45, 8, 16);
        let enc_a = encoder_artifact(47);
        let big_a = linear_artifact(46, 512, 512);
        let (m_boot, m_enc, m_big) =
            (artifact_mem(&boot_a), artifact_mem(&enc_a), artifact_mem(&big_a));
        assert!(m_big / 2 > m_boot && m_big / 2 <= m_boot + m_enc, "test geometry");
        let budget = m_boot + m_enc + m_big / 2;

        let mut reg = ModelRegistry::new();
        reg.set_model_name("boot");
        reg.load_artifact(&boot_a).unwrap();
        let live = LiveRegistry::from_builder(reg, Some(budget));
        live.load_model("enc", &enc_a).unwrap();
        assert_eq!(live.models().iter().filter(|m| m.live).count(), 2);

        // While "enc" has in-flight work, a load that would need its bytes
        // is refused rather than evicting it.
        let enc_id = live.lookup("enc0.attn.wq").unwrap();
        let enc_slot = live.snapshot().slot(enc_id).unwrap().clone();
        let guard = live.begin(&enc_slot);
        let err = live.load_model("boot", &big_a).unwrap_err();
        assert!(
            matches!(err, ModelError::BudgetExceeded { .. }),
            "in-flight model must not be evicted: {err}"
        );
        assert!(live.lookup("enc0.attn.wq").is_some(), "enc survived");

        // Once the in-flight work drains, the same load evicts "enc".
        drop(guard);
        let loaded = live.load_model("boot", &big_a).unwrap();
        assert_eq!(loaded.evicted, vec![("enc".to_string(), 1)]);
        assert!(live.lookup("enc0.attn.wq").is_none(), "evicted model stopped resolving");
        assert!(live.live_bytes() <= budget);
    }

    #[test]
    fn unload_retires_and_keeps_retention_stats() {
        let live = boot(51, None);
        let id = live.lookup("linear").unwrap();
        let slot = live.snapshot().slot(id).unwrap().clone();
        slot.stats.completed.fetch_add(7, Ordering::Relaxed);
        let out = live.unload_model("boot", 0).unwrap();
        assert_eq!(out.version, 1);
        assert_eq!(out.ops_retired, 1);
        assert!(live.lookup("linear").is_none());
        let models = live.models();
        assert_eq!(models.len(), 1);
        assert!(!models[0].live);
        assert_eq!(models[0].completed, 7, "retired versions keep traffic counters");
        assert!(matches!(live.unload_model("boot", 0), Err(ModelError::UnknownModel(_)),));
    }

    #[test]
    fn metric_samples_carry_model_gauges() {
        let live = boot(61, Some(4 << 20));
        let mut samples = Vec::new();
        live.metric_samples(&mut samples);
        let mem = samples
            .iter()
            .find(|s| s.name == "biq_model_memory_bytes")
            .expect("memory gauge present");
        assert_eq!(mem.label("model"), Some("boot"));
        assert_eq!(mem.label("version"), Some("1"));
        assert!(matches!(mem.value, MetricValue::Gauge(v) if v > 0));
        let loaded = samples.iter().find(|s| s.name == "biq_models_loaded").unwrap();
        assert!(matches!(loaded.value, MetricValue::Gauge(1)));
        let budget = samples.iter().find(|s| s.name == "biq_mem_budget_bytes").unwrap();
        assert!(matches!(budget.value, MetricValue::Gauge(v) if v == 4 << 20));
        let submitted = samples
            .iter()
            .find(|s| s.name == "biq_serve_submitted_total")
            .expect("per-op samples ride along");
        assert_eq!(submitted.label("op"), Some("linear@1"), "versioned display name");
    }
}
