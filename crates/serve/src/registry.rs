//! The catalogue of operators a server can run.
//!
//! Registration happens before [`crate::Server::start`]; every worker warms
//! its private executor for every registered op at startup, so the first
//! request against any op already finds provisioned arenas. Compiled ops
//! are reference-counted — registering a layer that already exists (e.g.
//! via [`ModelRegistry::register_linear`]) shares the packed weights
//! instead of re-quantizing them.

use biq_runtime::{compile, CompiledOp, ExecutionPlan, WeightSource};
use std::sync::Arc;

/// Stable identifier of a registered op (an index into the registry).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OpId(pub(crate) usize);

impl OpId {
    /// The registry index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One registered operator: a name for reporting plus the compiled op.
#[derive(Debug)]
pub struct RegisteredOp {
    name: String,
    op: Arc<CompiledOp>,
}

impl RegisteredOp {
    /// The name given at registration.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The compiled op (shared with every worker).
    pub fn op(&self) -> &Arc<CompiledOp> {
        &self.op
    }
}

/// The set of [`CompiledOp`]s a [`crate::Server`] serves.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    ops: Vec<RegisteredOp>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiles `plan` against `weights` (quantization/packing happens
    /// here, once) and registers the result.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        plan: &ExecutionPlan,
        weights: WeightSource<'_>,
    ) -> OpId {
        self.register_op(name, Arc::new(compile(plan, weights)))
    }

    /// Registers an already-compiled op, sharing its packed weights.
    pub fn register_op(&mut self, name: impl Into<String>, op: Arc<CompiledOp>) -> OpId {
        let id = OpId(self.ops.len());
        self.ops.push(RegisteredOp { name: name.into(), op });
        id
    }

    /// Registers the compiled op behind an `nn` layer, so a model's linear
    /// layers route their matmuls through the server's batched path while
    /// sharing the layer's packed weights. The server computes `W·X` only;
    /// a layer bias (and activation) stays the caller's job, exactly as
    /// with [`biq_runtime::Executor::run`].
    pub fn register_linear(&mut self, name: impl Into<String>, layer: &biq_nn::Linear) -> OpId {
        self.register_op(name, layer.compiled_op())
    }

    /// Boots the registry straight from a compiled-model artifact: every
    /// linear layer is registered under its canonical artifact name
    /// (`enc0.attn.wq`, `lstm.w_ih`, …), with packed weights **borrowed
    /// from the artifact buffer** — no fp32 weights and no re-quantization
    /// in the serving process. Returns the restored model (whose layers
    /// share the registered ops) and the `(name, id)` pairs in
    /// registration order.
    pub fn load_artifact(
        &mut self,
        artifact: &biq_artifact::Artifact,
    ) -> Result<(biq_nn::CompiledModel, Vec<(String, OpId)>), biq_artifact::ArtifactError> {
        let model = biq_nn::CompiledModel::from_artifact(artifact)?;
        let ids = model
            .named_linears()
            .into_iter()
            .map(|(name, layer)| {
                let id = self.register_linear(name.clone(), layer);
                (name, id)
            })
            .collect();
        Ok((model, ids))
    }

    /// The op registered under `id`.
    ///
    /// # Panics
    /// Panics when `id` did not come from this registry.
    pub fn get(&self, id: OpId) -> &RegisteredOp {
        &self.ops[id.0]
    }

    /// Finds an op id by registration name (first match).
    pub fn lookup(&self, name: &str) -> Option<OpId> {
        self.ops.iter().position(|o| o.name == name).map(OpId)
    }

    /// Number of registered ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterates over `(id, op)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (OpId, &RegisteredOp)> {
        self.ops.iter().enumerate().map(|(i, o)| (OpId(i), o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biq_matrix::MatrixRng;
    use biq_runtime::{BackendSpec, PlanBuilder, QuantMethod};

    #[test]
    fn register_and_lookup() {
        let mut g = MatrixRng::seed_from(1);
        let signs = g.signs(8, 16);
        let plan = PlanBuilder::new(8, 16)
            .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
            .build();
        let mut reg = ModelRegistry::new();
        let id = reg.register("enc.q", &plan, WeightSource::Signs(&signs));
        assert_eq!(reg.lookup("enc.q"), Some(id));
        assert_eq!(reg.get(id).name(), "enc.q");
        assert_eq!(reg.get(id).op().output_size(), 8);
        assert_eq!(reg.len(), 1);
        assert!(reg.lookup("missing").is_none());
    }

    #[test]
    fn register_linear_shares_the_compiled_op() {
        let mut g = MatrixRng::seed_from(2);
        let w = g.gaussian(8, 8, 0.0, 1.0);
        let layer = biq_nn::Linear::fp32(w, None);
        let mut reg = ModelRegistry::new();
        let id = reg.register_linear("fc", &layer);
        assert!(Arc::ptr_eq(reg.get(id).op(), &layer.compiled_op()));
    }

    #[test]
    fn load_artifact_registers_every_linear_without_fp32_weights() {
        use biq_nn::model::CompiledModel;
        use biq_nn::transformer::LayerBackend;
        let mut g = MatrixRng::seed_from(3);
        let enc = biq_nn::transformer::Encoder::random(
            &mut g,
            1,
            16,
            32,
            2,
            LayerBackend::Biq {
                bits: 2,
                method: QuantMethod::Greedy,
                cfg: biqgemm_core::BiqConfig::default(),
                parallel: false,
            },
        );
        let bytes = CompiledModel::Transformer(enc).snapshot();
        let artifact = biq_artifact::Artifact::from_bytes(bytes).unwrap();
        let mut reg = ModelRegistry::new();
        let (model, ids) = reg.load_artifact(&artifact).unwrap();
        assert_eq!(reg.len(), 6, "six projections per encoder layer");
        assert_eq!(ids[0].0, "enc0.attn.wq");
        assert_eq!(reg.lookup("enc0.ff1"), Some(ids[4].1));
        // The registered op IS the restored model's op (shared weights).
        let (_, layer) = &model.named_linears()[0];
        assert!(Arc::ptr_eq(reg.get(ids[0].1).op(), &layer.compiled_op()));
        // Loaded ops serve the same results as the in-memory layer.
        let x = g.gaussian_col(16, 2, 0.0, 1.0);
        let mut exec = biq_runtime::Executor::new();
        let y = exec.run(reg.get(ids[0].1).op(), &x);
        assert_eq!(
            y.to_col_major().as_slice(),
            layer.forward(&x).as_slice(),
            "wq has no bias, so the op output is the layer output"
        );
    }
}
