//! Lock-free serving statistics: queue depth, batch-size distribution, and
//! request latency quantiles per op, plus the merged kernel
//! [`PhaseProfile`] across every worker.
//!
//! Latency and batch-size distributions are power-of-two histograms on
//! atomics — recording from the hot path is a single `fetch_add`, and
//! quantiles are answered from bucket counts (a p99 read as the upper edge
//! of its bucket, i.e. within 2× of the true value, which is plenty for a
//! serving dashboard).

use biqgemm_core::{KernelLevel, PhaseProfile};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Number of power-of-two buckets (covers 1 µs .. ~2400 s).
const BUCKETS: usize = 32;

/// A power-of-two histogram over `u64` samples.
#[derive(Debug, Default)]
struct Pow2Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Pow2Histogram {
    fn record(&self, value: u64) {
        let b = (64 - value.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Upper edge of the bucket holding quantile `p` (0 when empty).
    fn quantile(&self, p: f64) -> u64 {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (b + 1);
            }
        }
        1u64 << BUCKETS
    }

    fn mean(&self) -> f64 {
        let c = self.count.load(Ordering::Relaxed);
        if c == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / c as f64
        }
    }

    #[cfg(test)]
    fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

/// Live counters for one registered op.
#[derive(Debug, Default)]
pub(crate) struct OpStats {
    pub(crate) submitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) completed: AtomicU64,
    /// Requests accepted but not yet dispatched to a worker.
    pub(crate) queue_depth: AtomicUsize,
    pub(crate) batches: AtomicU64,
    batch_cols: Pow2Histogram,
    latency_us: Pow2Histogram,
}

impl OpStats {
    pub(crate) fn record_batch(&self, cols: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_cols.record(cols as u64);
    }

    pub(crate) fn record_latency(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency_us.record(latency.as_micros() as u64);
    }
}

/// The shared mutable statistics block (one per server).
#[derive(Debug, Default)]
pub(crate) struct ServerStats {
    pub(crate) ops: Vec<OpStats>,
    /// Kernel phase profile merged from every worker executor.
    pub(crate) profile: Mutex<PhaseProfile>,
}

impl ServerStats {
    pub(crate) fn with_ops(n: usize) -> Self {
        Self { ops: (0..n).map(|_| OpStats::default()).collect(), profile: Mutex::default() }
    }
}

/// Point-in-time statistics for one op.
#[derive(Clone, Debug)]
pub struct OpStatsSnapshot {
    /// Registration name.
    pub name: String,
    /// The kernel level the op's plan pinned — what every batch of this op
    /// executes at on this host.
    pub kernel: KernelLevel,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests refused by backpressure ([`crate::Client::try_submit`]).
    pub rejected: u64,
    /// Requests answered.
    pub completed: u64,
    /// Requests accepted but not yet dispatched to a worker.
    pub queue_depth: usize,
    /// Batches executed.
    pub batches: u64,
    /// Mean packed batch width (columns).
    pub mean_batch_cols: f64,
    /// Median request latency (submit → reply), bucket upper edge.
    pub latency_p50: Duration,
    /// 99th-percentile request latency, bucket upper edge.
    pub latency_p99: Duration,
}

/// Point-in-time statistics for a whole server.
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Per-op statistics, in registration order.
    pub ops: Vec<OpStatsSnapshot>,
    /// Kernel build/query/replace time merged across every worker.
    pub profile: PhaseProfile,
}

impl StatsSnapshot {
    pub(crate) fn capture(stats: &ServerStats, meta: &[(String, KernelLevel)]) -> Self {
        let ops = stats
            .ops
            .iter()
            .zip(meta)
            .map(|(s, (name, kernel))| OpStatsSnapshot {
                name: name.clone(),
                kernel: *kernel,
                submitted: s.submitted.load(Ordering::Relaxed),
                rejected: s.rejected.load(Ordering::Relaxed),
                completed: s.completed.load(Ordering::Relaxed),
                queue_depth: s.queue_depth.load(Ordering::Relaxed),
                batches: s.batches.load(Ordering::Relaxed),
                mean_batch_cols: s.batch_cols.mean(),
                latency_p50: Duration::from_micros(s.latency_us.quantile(0.50)),
                latency_p99: Duration::from_micros(s.latency_us.quantile(0.99)),
            })
            .collect();
        Self { ops, profile: *stats.profile.lock().expect("stats profile poisoned") }
    }

    /// Total completed requests across every op.
    pub fn completed(&self) -> u64 {
        self.ops.iter().map(|o| o.completed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Pow2Histogram::default();
        for v in [3u64, 3, 3, 3, 3, 3, 3, 3, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile(0.5);
        assert!((3..=8).contains(&p50), "p50 bucket edge {p50}");
        let p99 = h.quantile(0.99);
        assert!((1000..=2048).contains(&p99), "p99 bucket edge {p99}");
        assert!((h.mean() - 102.7).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Pow2Histogram::default();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn snapshot_captures_counters() {
        let stats = ServerStats::with_ops(2);
        stats.ops[1].submitted.fetch_add(5, Ordering::Relaxed);
        stats.ops[1].record_batch(4);
        stats.ops[1].record_latency(Duration::from_micros(100));
        let meta =
            vec![("a".into(), KernelLevel::Scalar), ("b".into(), biqgemm_core::simd::host_best())];
        let snap = StatsSnapshot::capture(&stats, &meta);
        assert_eq!(snap.ops[0].submitted, 0);
        assert_eq!(snap.ops[0].kernel, KernelLevel::Scalar);
        assert_eq!(snap.ops[1].kernel, biqgemm_core::simd::host_best());
        assert_eq!(snap.ops[1].submitted, 5);
        assert_eq!(snap.ops[1].batches, 1);
        assert_eq!(snap.ops[1].mean_batch_cols, 4.0);
        assert!(snap.ops[1].latency_p50 >= Duration::from_micros(100));
        assert_eq!(snap.completed(), 1);
    }
}
