//! Lock-free serving statistics: queue depth, batch-size distribution, and
//! request latency quantiles per op, plus the merged kernel
//! [`PhaseProfile`] across every worker.
//!
//! Latency and batch-size distributions are [`biq_obs::Pow2Histogram`]s —
//! recording from the hot path is two relaxed `fetch_add`s, and quantiles
//! are answered from bucket counts as the geometric midpoint of the
//! holding bucket (within √2 of exact, see `biq_obs::metrics`).
//!
//! Two read paths share these atomics: `StatsSnapshot::capture` (the
//! daemon's JSON report, `--stats-every` lines) and
//! `ServerStats::metrics` (the sample list behind the `BIQP` `Stats`
//! admin verb and the Prometheus renderer). Neither touches a worker.

use biq_obs::{MetricValue, MetricsSnapshot, Pow2Histogram, RecordSink, Sample};
use biqgemm_core::{KernelLevel, PhaseProfile};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Per-op identity captured at server startup: everything a snapshot
/// reports that isn't a live counter.
#[derive(Clone, Debug)]
pub struct OpMeta {
    /// Registration name.
    pub name: String,
    /// The kernel level the op's plan pinned.
    pub kernel: KernelLevel,
    /// Output rows `m`.
    pub m: usize,
    /// Input rows `n`.
    pub n: usize,
}

/// Live counters for one registered op.
#[derive(Debug, Default)]
pub(crate) struct OpStats {
    pub(crate) submitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) completed: AtomicU64,
    /// Requests accepted but not yet dispatched to a worker.
    pub(crate) queue_depth: AtomicUsize,
    pub(crate) batches: AtomicU64,
    batch_cols: Pow2Histogram,
    latency_us: Pow2Histogram,
}

impl OpStats {
    pub(crate) fn record_batch(&self, cols: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_cols.record(cols as u64);
    }

    pub(crate) fn record_latency(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency_us.record(latency.as_micros() as u64);
    }
}

/// The shared mutable statistics block (one per server).
#[derive(Debug, Default)]
pub(crate) struct ServerStats {
    pub(crate) ops: Vec<OpStats>,
    /// Kernel phase profile merged from every worker executor.
    pub(crate) profile: Mutex<PhaseProfile>,
    /// Per-request lifecycle records: recent-traffic ring + slowest-N
    /// reservoir (the `SlowLog` verb's store).
    pub(crate) sink: RecordSink,
}

fn counter(name: &str, op: &str, v: u64) -> Sample {
    Sample {
        name: name.to_string(),
        labels: vec![("op".to_string(), op.to_string())],
        value: MetricValue::Counter(v),
    }
}

impl ServerStats {
    pub(crate) fn with_ops(n: usize) -> Self {
        Self {
            ops: (0..n).map(|_| OpStats::default()).collect(),
            profile: Mutex::default(),
            sink: RecordSink::default(),
        }
    }

    /// The serving layer's sample list — per-op counters/gauges, batch and
    /// latency histograms, an identity `biq_op_info` gauge carrying the
    /// pinned kernel level and dims as labels, and the merged kernel phase
    /// profile as nanosecond counters. Reads only atomics (plus the
    /// profile mutex no worker holds across a batch) — never a worker.
    pub(crate) fn metrics(&self, meta: &[OpMeta]) -> MetricsSnapshot {
        let mut samples = Vec::with_capacity(self.ops.len() * 8 + 3);
        for (s, m) in self.ops.iter().zip(meta) {
            let op = m.name.as_str();
            samples.push(counter(
                "biq_serve_submitted_total",
                op,
                s.submitted.load(Ordering::Relaxed),
            ));
            samples.push(counter(
                "biq_serve_rejected_total",
                op,
                s.rejected.load(Ordering::Relaxed),
            ));
            samples.push(counter(
                "biq_serve_completed_total",
                op,
                s.completed.load(Ordering::Relaxed),
            ));
            samples.push(Sample {
                name: "biq_serve_queue_depth".to_string(),
                labels: vec![("op".to_string(), op.to_string())],
                value: MetricValue::Gauge(s.queue_depth.load(Ordering::Relaxed) as i64),
            });
            samples.push(counter("biq_serve_batches_total", op, s.batches.load(Ordering::Relaxed)));
            samples.push(Sample {
                name: "biq_serve_batch_cols".to_string(),
                labels: vec![("op".to_string(), op.to_string())],
                value: MetricValue::Histogram(s.batch_cols.snapshot()),
            });
            samples.push(Sample {
                name: "biq_serve_latency_us".to_string(),
                labels: vec![("op".to_string(), op.to_string())],
                value: MetricValue::Histogram(s.latency_us.snapshot()),
            });
            samples.push(Sample {
                name: "biq_op_info".to_string(),
                labels: vec![
                    ("op".to_string(), op.to_string()),
                    ("kernel".to_string(), m.kernel.name().to_string()),
                    ("m".to_string(), m.m.to_string()),
                    ("n".to_string(), m.n.to_string()),
                ],
                value: MetricValue::Gauge(1),
            });
        }
        let profile = *self.profile.lock().expect("stats profile poisoned");
        for (phase, d) in
            [("build", profile.build), ("query", profile.query), ("replace", profile.replace)]
        {
            samples.push(Sample {
                name: format!("biq_kernel_{phase}_ns_total"),
                labels: Vec::new(),
                value: MetricValue::Counter(d.as_nanos() as u64),
            });
        }
        MetricsSnapshot { samples }
    }
}

/// Point-in-time statistics for one op.
#[derive(Clone, Debug)]
pub struct OpStatsSnapshot {
    /// Registration name.
    pub name: String,
    /// The kernel level the op's plan pinned — what every batch of this op
    /// executes at on this host.
    pub kernel: KernelLevel,
    /// Output rows `m`.
    pub m: usize,
    /// Input rows `n`.
    pub n: usize,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests refused by backpressure ([`crate::Client::try_submit`]).
    pub rejected: u64,
    /// Requests answered.
    pub completed: u64,
    /// Requests accepted but not yet dispatched to a worker.
    pub queue_depth: usize,
    /// Batches executed.
    pub batches: u64,
    /// Mean packed batch width (columns).
    pub mean_batch_cols: f64,
    /// Median request latency (submit → reply), geometric bucket midpoint
    /// (within √2 of exact).
    pub latency_p50: Duration,
    /// 99th-percentile request latency, geometric bucket midpoint.
    pub latency_p99: Duration,
}

/// Point-in-time statistics for a whole server.
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Per-op statistics, in registration order.
    pub ops: Vec<OpStatsSnapshot>,
    /// Kernel build/query/replace time merged across every worker.
    pub profile: PhaseProfile,
}

impl StatsSnapshot {
    pub(crate) fn capture(stats: &ServerStats, meta: &[OpMeta]) -> Self {
        let ops = stats
            .ops
            .iter()
            .zip(meta)
            .map(|(s, meta)| OpStatsSnapshot {
                name: meta.name.clone(),
                kernel: meta.kernel,
                m: meta.m,
                n: meta.n,
                submitted: s.submitted.load(Ordering::Relaxed),
                rejected: s.rejected.load(Ordering::Relaxed),
                completed: s.completed.load(Ordering::Relaxed),
                queue_depth: s.queue_depth.load(Ordering::Relaxed),
                batches: s.batches.load(Ordering::Relaxed),
                mean_batch_cols: s.batch_cols.mean(),
                latency_p50: Duration::from_micros(s.latency_us.quantile(0.50)),
                latency_p99: Duration::from_micros(s.latency_us.quantile(0.99)),
            })
            .collect();
        Self { ops, profile: *stats.profile.lock().expect("stats profile poisoned") }
    }

    /// Total completed requests across every op.
    pub fn completed(&self) -> u64 {
        self.ops.iter().map(|o| o.completed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_meta() -> Vec<OpMeta> {
        vec![
            OpMeta { name: "a".into(), kernel: KernelLevel::Scalar, m: 4, n: 8 },
            OpMeta { name: "b".into(), kernel: biqgemm_core::simd::host_best(), m: 16, n: 32 },
        ]
    }

    #[test]
    fn snapshot_captures_counters() {
        let stats = ServerStats::with_ops(2);
        stats.ops[1].submitted.fetch_add(5, Ordering::Relaxed);
        stats.ops[1].record_batch(4);
        stats.ops[1].record_latency(Duration::from_micros(100));
        let snap = StatsSnapshot::capture(&stats, &test_meta());
        assert_eq!(snap.ops[0].submitted, 0);
        assert_eq!(snap.ops[0].kernel, KernelLevel::Scalar);
        assert_eq!(snap.ops[1].kernel, biqgemm_core::simd::host_best());
        assert_eq!((snap.ops[1].m, snap.ops[1].n), (16, 32));
        assert_eq!(snap.ops[1].submitted, 5);
        assert_eq!(snap.ops[1].batches, 1);
        assert_eq!(snap.ops[1].mean_batch_cols, 4.0);
        // 100µs lands in bucket [64,128); the geometric midpoint estimate
        // is within √2 of the exact sample.
        let p50 = snap.ops[1].latency_p50.as_micros() as u64;
        assert!((71..=142).contains(&p50), "p50 midpoint {p50}");
        assert_eq!(snap.completed(), 1);
    }

    #[test]
    fn metrics_mirror_the_snapshot_and_carry_identity() {
        let stats = ServerStats::with_ops(2);
        stats.ops[0].submitted.fetch_add(3, Ordering::Relaxed);
        stats.ops[0].record_latency(Duration::from_micros(50));
        stats.ops[1].rejected.fetch_add(2, Ordering::Relaxed);
        stats.profile.lock().unwrap().build = Duration::from_nanos(1234);
        let meta = test_meta();
        let metrics = stats.metrics(&meta);
        assert_eq!(metrics.counter_total("biq_serve_submitted_total"), 3);
        assert_eq!(metrics.counter_total("biq_serve_rejected_total"), 2);
        assert_eq!(metrics.counter_total("biq_serve_completed_total"), 1);
        assert_eq!(metrics.counter_total("biq_kernel_build_ns_total"), 1234);
        let info = metrics.find("biq_op_info", "op", "b").expect("op b identity");
        assert_eq!(info.label("kernel"), Some(biqgemm_core::simd::host_best().name()));
        assert_eq!(info.label("m"), Some("16"));
        assert_eq!(info.label("n"), Some("32"));
        // The sample list renders to parseable Prometheus text.
        let text = metrics.render_prometheus();
        assert!(text.contains("biq_serve_completed_total{op=\"a\"} 1\n"), "{text}");
        assert!(text.contains("# TYPE biq_serve_latency_us histogram\n"), "{text}");
        // Counter totals agree between the two read paths.
        let snap = StatsSnapshot::capture(&stats, &meta);
        assert_eq!(snap.completed(), metrics.counter_total("biq_serve_completed_total"));
    }
}
