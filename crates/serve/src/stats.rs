//! Lock-free serving statistics: queue depth, batch-size distribution, and
//! request latency quantiles per op, plus the merged kernel
//! [`PhaseProfile`] across every worker.
//!
//! Per-op counters live inside the [`crate::registry::LiveRegistry`]'s
//! slots (an op's counters follow it through load/swap/retire and survive
//! retirement as retention stats); this module owns the counter type, the
//! sample rendering, and the server-wide blocks (kernel profile, record
//! sink).
//!
//! Latency and batch-size distributions are [`biq_obs::Pow2Histogram`]s —
//! recording from the hot path is two relaxed `fetch_add`s, and quantiles
//! are answered from bucket counts as the geometric midpoint of the
//! holding bucket (within √2 of exact, see `biq_obs::metrics`).
//!
//! Two read paths share these atomics: `StatsSnapshot::capture` (the
//! daemon's JSON report, `--stats-every` lines) and the sample list behind
//! the `BIQP` `Stats` admin verb / Prometheus renderer. Neither touches a
//! worker. Per-op samples are labeled with the **versioned display name**
//! (`op="linear@1"`), so a swap shows up as a new series instead of
//! silently splicing two versions' histograms together.

use crate::registry::{LiveRegistry, SlotView};
use biq_obs::{MetricValue, MetricsSnapshot, Pow2Histogram, RecordSink, Sample};
use biqgemm_core::{KernelLevel, PhaseProfile};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Per-op identity captured at registration: everything a snapshot
/// reports that isn't a live counter. `name` is the versioned display
/// name (`linear@1`).
#[derive(Clone, Debug)]
pub struct OpMeta {
    /// Versioned display name.
    pub name: String,
    /// The kernel level the op's plan pinned.
    pub kernel: KernelLevel,
    /// Output rows `m`.
    pub m: usize,
    /// Input rows `n`.
    pub n: usize,
}

/// Live counters for one registered op.
#[derive(Debug, Default)]
pub(crate) struct OpStats {
    pub(crate) submitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) completed: AtomicU64,
    /// Requests accepted but not yet dispatched to a worker.
    pub(crate) queue_depth: AtomicUsize,
    pub(crate) batches: AtomicU64,
    batch_cols: Pow2Histogram,
    latency_us: Pow2Histogram,
}

impl OpStats {
    pub(crate) fn record_batch(&self, cols: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_cols.record(cols as u64);
    }

    pub(crate) fn record_latency(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency_us.record(latency.as_micros() as u64);
    }
}

/// The shared mutable statistics block (one per server): everything that
/// is server-wide rather than per-op.
#[derive(Debug, Default)]
pub(crate) struct ServerStats {
    /// Kernel phase profile merged from every worker executor.
    pub(crate) profile: Mutex<PhaseProfile>,
    /// Per-request lifecycle records: recent-traffic ring + slowest-N
    /// reservoir (the `SlowLog` verb's store).
    pub(crate) sink: RecordSink,
}

fn counter(name: &str, op: &str, v: u64) -> Sample {
    Sample {
        name: name.to_string(),
        labels: vec![("op".to_string(), op.to_string())],
        value: MetricValue::Counter(v),
    }
}

/// Appends one slot's serving samples — per-op counters/gauges, batch and
/// latency histograms, and an identity `biq_op_info` gauge carrying the
/// pinned kernel level, dims, and owning model/version as labels.
pub(crate) fn push_op_samples(samples: &mut Vec<Sample>, slot: &SlotView) {
    let s = &slot.stats;
    let m = &slot.meta;
    let op = m.name.as_str();
    samples.push(counter("biq_serve_submitted_total", op, s.submitted.load(Ordering::Relaxed)));
    samples.push(counter("biq_serve_rejected_total", op, s.rejected.load(Ordering::Relaxed)));
    samples.push(counter("biq_serve_completed_total", op, s.completed.load(Ordering::Relaxed)));
    samples.push(Sample {
        name: "biq_serve_queue_depth".to_string(),
        labels: vec![("op".to_string(), op.to_string())],
        value: MetricValue::Gauge(s.queue_depth.load(Ordering::Relaxed) as i64),
    });
    samples.push(counter("biq_serve_batches_total", op, s.batches.load(Ordering::Relaxed)));
    samples.push(Sample {
        name: "biq_serve_batch_cols".to_string(),
        labels: vec![("op".to_string(), op.to_string())],
        value: MetricValue::Histogram(s.batch_cols.snapshot()),
    });
    samples.push(Sample {
        name: "biq_serve_latency_us".to_string(),
        labels: vec![("op".to_string(), op.to_string())],
        value: MetricValue::Histogram(s.latency_us.snapshot()),
    });
    samples.push(Sample {
        name: "biq_op_info".to_string(),
        labels: vec![
            ("op".to_string(), op.to_string()),
            ("kernel".to_string(), m.kernel.name().to_string()),
            ("m".to_string(), m.m.to_string()),
            ("n".to_string(), m.n.to_string()),
            ("model".to_string(), slot.model_name.to_string()),
            ("version".to_string(), slot.version.to_string()),
        ],
        value: MetricValue::Gauge(1),
    });
}

impl ServerStats {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Appends the merged kernel phase profile as nanosecond counters.
    pub(crate) fn kernel_samples(&self, samples: &mut Vec<Sample>) {
        let profile = *self.profile.lock().expect("stats profile poisoned");
        for (phase, d) in
            [("build", profile.build), ("query", profile.query), ("replace", profile.replace)]
        {
            samples.push(Sample {
                name: format!("biq_kernel_{phase}_ns_total"),
                labels: Vec::new(),
                value: MetricValue::Counter(d.as_nanos() as u64),
            });
        }
    }
}

/// The full serving sample list: per-op slots (live and retired), fleet
/// gauges, and the kernel profile. Reads only atomics plus two brief
/// mutexes — never a worker.
pub(crate) fn metrics(registry: &LiveRegistry, stats: &ServerStats) -> MetricsSnapshot {
    let mut samples = Vec::new();
    registry.metric_samples(&mut samples);
    stats.kernel_samples(&mut samples);
    MetricsSnapshot { samples }
}

/// Point-in-time statistics for one op.
#[derive(Clone, Debug)]
pub struct OpStatsSnapshot {
    /// Versioned display name (`linear@1`).
    pub name: String,
    /// The kernel level the op's plan pinned — what every batch of this op
    /// executes at on this host.
    pub kernel: KernelLevel,
    /// Output rows `m`.
    pub m: usize,
    /// Input rows `n`.
    pub n: usize,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests refused by backpressure ([`crate::Client::try_submit`]).
    pub rejected: u64,
    /// Requests answered.
    pub completed: u64,
    /// Requests accepted but not yet dispatched to a worker.
    pub queue_depth: usize,
    /// Batches executed.
    pub batches: u64,
    /// Mean packed batch width (columns).
    pub mean_batch_cols: f64,
    /// Median request latency (submit → reply), geometric bucket midpoint
    /// (within √2 of exact).
    pub latency_p50: Duration,
    /// 99th-percentile request latency, geometric bucket midpoint.
    pub latency_p99: Duration,
}

/// Point-in-time statistics for a whole server.
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Per-op statistics, in registration order — retired versions keep
    /// their rows, so totals stay monotone across swaps.
    pub ops: Vec<OpStatsSnapshot>,
    /// Kernel build/query/replace time merged across every worker.
    pub profile: PhaseProfile,
}

impl StatsSnapshot {
    pub(crate) fn capture(registry: &LiveRegistry, stats: &ServerStats) -> Self {
        let snap = registry.snapshot();
        let ops = snap
            .slots
            .iter()
            .map(|slot| {
                let s = &slot.stats;
                OpStatsSnapshot {
                    name: slot.meta.name.clone(),
                    kernel: slot.meta.kernel,
                    m: slot.meta.m,
                    n: slot.meta.n,
                    submitted: s.submitted.load(Ordering::Relaxed),
                    rejected: s.rejected.load(Ordering::Relaxed),
                    completed: s.completed.load(Ordering::Relaxed),
                    queue_depth: s.queue_depth.load(Ordering::Relaxed),
                    batches: s.batches.load(Ordering::Relaxed),
                    mean_batch_cols: s.batch_cols.mean(),
                    latency_p50: Duration::from_micros(s.latency_us.quantile(0.50)),
                    latency_p99: Duration::from_micros(s.latency_us.quantile(0.99)),
                }
            })
            .collect();
        Self { ops, profile: *stats.profile.lock().expect("stats profile poisoned") }
    }

    /// Total completed requests across every op.
    pub fn completed(&self) -> u64 {
        self.ops.iter().map(|o| o.completed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelRegistry;
    use biq_matrix::MatrixRng;
    use biq_runtime::{BackendSpec, PlanBuilder, QuantMethod, WeightSource};

    fn live_two_ops() -> (LiveRegistry, crate::registry::OpId, crate::registry::OpId) {
        let mut g = MatrixRng::seed_from(4);
        let mut reg = ModelRegistry::new();
        reg.set_model_name("m");
        let signs_a = g.signs(4, 8);
        let plan_a = PlanBuilder::new(4, 8)
            .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
            .build();
        let a = reg.register("a", &plan_a, WeightSource::Signs(&signs_a));
        let signs_b = g.signs(16, 32);
        let plan_b = PlanBuilder::new(16, 32)
            .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
            .build();
        let b = reg.register("b", &plan_b, WeightSource::Signs(&signs_b));
        (LiveRegistry::from_builder(reg, None), a, b)
    }

    #[test]
    fn snapshot_captures_counters() {
        let (live, _a, b) = live_two_ops();
        let stats = ServerStats::new();
        let slot_b = live.snapshot().slot(b).unwrap().clone();
        slot_b.stats.submitted.fetch_add(5, Ordering::Relaxed);
        slot_b.stats.record_batch(4);
        slot_b.stats.record_latency(Duration::from_micros(100));
        let snap = StatsSnapshot::capture(&live, &stats);
        assert_eq!(snap.ops[0].submitted, 0);
        assert_eq!(snap.ops[0].name, "a@1", "versioned display name");
        assert_eq!((snap.ops[1].m, snap.ops[1].n), (16, 32));
        assert_eq!(snap.ops[1].submitted, 5);
        assert_eq!(snap.ops[1].batches, 1);
        assert_eq!(snap.ops[1].mean_batch_cols, 4.0);
        // 100µs lands in bucket [64,128); the geometric midpoint estimate
        // is within √2 of the exact sample.
        let p50 = snap.ops[1].latency_p50.as_micros() as u64;
        assert!((71..=142).contains(&p50), "p50 midpoint {p50}");
        assert_eq!(snap.completed(), 1);
    }

    #[test]
    fn metrics_mirror_the_snapshot_and_carry_identity() {
        let (live, a, b) = live_two_ops();
        let stats = ServerStats::new();
        let snap = live.snapshot();
        let (slot_a, slot_b) = (snap.slot(a).unwrap(), snap.slot(b).unwrap());
        slot_a.stats.submitted.fetch_add(3, Ordering::Relaxed);
        slot_a.stats.record_latency(Duration::from_micros(50));
        slot_b.stats.rejected.fetch_add(2, Ordering::Relaxed);
        stats.profile.lock().unwrap().build = Duration::from_nanos(1234);
        let m = metrics(&live, &stats);
        assert_eq!(m.counter_total("biq_serve_submitted_total"), 3);
        assert_eq!(m.counter_total("biq_serve_rejected_total"), 2);
        assert_eq!(m.counter_total("biq_serve_completed_total"), 1);
        assert_eq!(m.counter_total("biq_kernel_build_ns_total"), 1234);
        let info = m.find("biq_op_info", "op", "b@1").expect("op b identity");
        assert_eq!(info.label("m"), Some("16"));
        assert_eq!(info.label("n"), Some("32"));
        assert_eq!(info.label("model"), Some("m"));
        assert_eq!(info.label("version"), Some("1"));
        // Fleet gauges ride along with the serve samples.
        assert!(m.find("biq_model_memory_bytes", "model", "m").is_some());
        // The sample list renders to parseable Prometheus text.
        let text = m.render_prometheus();
        assert!(text.contains("biq_serve_completed_total{op=\"a@1\"} 1\n"), "{text}");
        assert!(text.contains("# TYPE biq_serve_latency_us histogram\n"), "{text}");
        // Counter totals agree between the two read paths.
        let snap = StatsSnapshot::capture(&live, &stats);
        assert_eq!(snap.completed(), m.counter_total("biq_serve_completed_total"));
    }
}
