//! Opt-in CPU affinity for serve workers (`--pin-workers`).
//!
//! Pinning each worker thread to a fixed core keeps its warmed
//! [`biq_runtime::Executor`] arenas node-local: the first-touch pages the
//! warm-up faults in stay on the pinned core's NUMA node and in its private
//! cache slices, instead of migrating with the thread on every scheduler
//! decision. On the b=1 latency path — where one LUT build plus one gather
//! is only tens of microseconds — a single cross-core migration costs more
//! than the query itself.
//!
//! Linux-only, via raw `sched_setaffinity(2)` through the same std-only
//! `extern "C"` pattern the CLI uses for SIGINT handling (no libc crate in
//! the offline container). Other platforms get a stub that reports failure,
//! so callers degrade to unpinned workers instead of failing to start.

/// Pins the calling thread to `cpu` (best effort). Returns `true` when the
/// kernel accepted the mask, `false` on failure or unsupported platforms —
/// callers treat `false` as "run unpinned", never as fatal.
#[cfg(target_os = "linux")]
pub fn pin_current_thread(cpu: usize) -> bool {
    // 16 × u64 = 1024 CPU bits, the kernel's default CPU_SETSIZE. We only
    // ever set one bit; cores ≥ 1024 simply decline the pin.
    const MASK_WORDS: usize = 16;
    if cpu >= MASK_WORDS * 64 {
        return false;
    }
    extern "C" {
        // pid 0 = the calling thread. `cpusetsize` is in bytes.
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    let mut mask = [0u64; MASK_WORDS];
    mask[cpu / 64] = 1u64 << (cpu % 64);
    // SAFETY: the mask buffer outlives the call and its length matches
    // `cpusetsize`; sched_setaffinity reads, never writes, the mask.
    unsafe { sched_setaffinity(0, MASK_WORDS * 8, mask.as_ptr()) == 0 }
}

/// Non-Linux stub: affinity is not wired up, report failure so workers run
/// unpinned.
#[cfg(not(target_os = "linux"))]
pub fn pin_current_thread(_cpu: usize) -> bool {
    false
}

/// The number of CPUs workers may be pinned across: worker `i` targets core
/// `i % cpu_count()`. Falls back to 1 if the parallelism query fails.
pub fn cpu_count() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn pinning_to_core_zero_succeeds() {
        // Core 0 exists on every Linux host this runs on; pin a scratch
        // thread (not the test harness thread) so the mask change is
        // contained.
        let ok = std::thread::spawn(|| pin_current_thread(0)).join().unwrap();
        assert!(ok, "sched_setaffinity to core 0 should succeed");
    }

    #[test]
    fn out_of_range_cpu_is_refused_not_fatal() {
        assert!(!pin_current_thread(1 << 20));
    }

    #[test]
    fn cpu_count_is_positive() {
        assert!(cpu_count() >= 1);
    }
}
