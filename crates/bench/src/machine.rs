//! Host introspection — regenerates Table III ("Machine configurations used
//! in Section IV") for the machine the harness actually runs on.

use std::fs;

/// What we can learn about the host.
#[derive(Clone, Debug, Default)]
pub struct MachineInfo {
    /// CPU model string (from /proc/cpuinfo when available).
    pub cpu_model: String,
    /// Logical CPUs visible to the process.
    pub logical_cpus: usize,
    /// L1d cache size string, if readable.
    pub l1d: Option<String>,
    /// L2 cache size string, if readable.
    pub l2: Option<String>,
    /// L3 cache size string, if readable.
    pub l3: Option<String>,
    /// Total RAM in GiB, if readable.
    pub ram_gib: Option<f64>,
    /// OS description.
    pub os: String,
}

fn read_trimmed(path: &str) -> Option<String> {
    fs::read_to_string(path).ok().map(|s| s.trim().to_string()).filter(|s| !s.is_empty())
}

/// Collects host information (gracefully degrading on non-Linux).
pub fn detect() -> MachineInfo {
    let cpu_model = fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .unwrap_or_else(|| std::env::consts::ARCH.to_string());
    let logical_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let cache = |index: usize| -> Option<String> {
        read_trimmed(&format!("/sys/devices/system/cpu/cpu0/cache/index{index}/size"))
    };
    // index0 = L1d, index2 = L2, index3 = L3 on typical x86 topologies; check
    // the level file to be safe.
    let cache_by_level = |level: &str, want_data: bool| -> Option<String> {
        for i in 0..5 {
            let lv = read_trimmed(&format!("/sys/devices/system/cpu/cpu0/cache/index{i}/level"));
            let ty = read_trimmed(&format!("/sys/devices/system/cpu/cpu0/cache/index{i}/type"));
            if lv.as_deref() == Some(level) {
                if want_data && ty.as_deref() == Some("Instruction") {
                    continue;
                }
                return cache(i);
            }
        }
        None
    };
    let ram_gib = fs::read_to_string("/proc/meminfo").ok().and_then(|s| {
        s.lines().find(|l| l.starts_with("MemTotal")).and_then(|l| {
            l.split_whitespace()
                .nth(1)
                .and_then(|kb| kb.parse::<f64>().ok())
                .map(|kb| kb / (1024.0 * 1024.0))
        })
    });
    let os = format!("{} {}", std::env::consts::OS, std::env::consts::ARCH);
    MachineInfo {
        cpu_model,
        logical_cpus,
        l1d: cache_by_level("1", true),
        l2: cache_by_level("2", false),
        l3: cache_by_level("3", false),
        ram_gib,
        os,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_reports_positive_cpus() {
        let m = detect();
        assert!(m.logical_cpus >= 1);
        assert!(!m.cpu_model.is_empty());
        assert!(!m.os.is_empty());
    }
}
