//! Wall-clock measurement: warmup + median of k repetitions.

use std::time::{Duration, Instant};

/// Summary of repeated measurements of one operation.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Median repetition time.
    pub median: Duration,
    /// Fastest repetition.
    pub min: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Number of repetitions measured.
    pub reps: usize,
}

impl Measurement {
    /// Median in microseconds.
    pub fn median_us(&self) -> f64 {
        self.median.as_secs_f64() * 1e6
    }

    /// Median in milliseconds.
    pub fn median_ms(&self) -> f64 {
        self.median.as_secs_f64() * 1e3
    }
}

/// Times one execution of `f`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed(), out)
}

/// Runs `warmup` unmeasured iterations then `reps` measured ones, returning
/// the distribution summary. The closure's result is passed through
/// `std::hint::black_box` so the optimiser cannot elide the work.
pub fn measure<T>(warmup: usize, reps: usize, mut f: impl FnMut() -> T) -> Measurement {
    assert!(reps >= 1, "need at least one repetition");
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed());
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    let min = times[0];
    let total: Duration = times.iter().sum();
    Measurement { median, min, mean: total / reps as u32, reps }
}

/// Picks a repetition count so one measurement takes roughly
/// `target_total`, bounded to `[min_reps, max_reps]`, based on a single
/// probe run of `f`.
pub fn auto_reps<T>(
    target_total: Duration,
    min_reps: usize,
    max_reps: usize,
    mut f: impl FnMut() -> T,
) -> usize {
    let (probe, _) = time_once(&mut f);
    if probe.is_zero() {
        return max_reps;
    }
    let n = (target_total.as_secs_f64() / probe.as_secs_f64()).round() as usize;
    n.clamp(min_reps, max_reps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_ordered_stats() {
        let m = measure(1, 5, || std::thread::sleep(Duration::from_micros(200)));
        assert_eq!(m.reps, 5);
        assert!(m.min <= m.median);
        assert!(m.median >= Duration::from_micros(150));
    }

    #[test]
    fn auto_reps_clamps() {
        let n = auto_reps(Duration::from_millis(1), 3, 11, || {
            std::thread::sleep(Duration::from_millis(10))
        });
        assert_eq!(n, 3);
    }

    #[test]
    fn unit_helpers() {
        let m = Measurement {
            median: Duration::from_micros(1500),
            min: Duration::from_micros(1000),
            mean: Duration::from_micros(1600),
            reps: 3,
        };
        assert!((m.median_us() - 1500.0).abs() < 1e-9);
        assert!((m.median_ms() - 1.5).abs() < 1e-9);
    }
}
