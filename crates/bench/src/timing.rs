//! Wall-clock measurement: warmup + median of k repetitions.

use std::time::{Duration, Instant};

/// Summary of repeated measurements of one operation.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Median repetition time.
    pub median: Duration,
    /// Fastest repetition.
    pub min: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Number of repetitions measured.
    pub reps: usize,
}

impl Measurement {
    /// Median in microseconds.
    pub fn median_us(&self) -> f64 {
        self.median.as_secs_f64() * 1e6
    }

    /// Median in milliseconds.
    pub fn median_ms(&self) -> f64 {
        self.median.as_secs_f64() * 1e3
    }
}

/// Times one execution of `f`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed(), out)
}

/// Runs `warmup` unmeasured iterations then `reps` measured ones, returning
/// the distribution summary. The closure's result is passed through
/// `std::hint::black_box` so the optimiser cannot elide the work.
pub fn measure<T>(warmup: usize, reps: usize, mut f: impl FnMut() -> T) -> Measurement {
    assert!(reps >= 1, "need at least one repetition");
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed());
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    let min = times[0];
    let total: Duration = times.iter().sum();
    Measurement { median, min, mean: total / reps as u32, reps }
}

/// Picks a repetition count so one measurement takes roughly
/// `target_total`, bounded to `[min_reps, max_reps]`, based on a single
/// probe run of `f`.
pub fn auto_reps<T>(
    target_total: Duration,
    min_reps: usize,
    max_reps: usize,
    mut f: impl FnMut() -> T,
) -> usize {
    let (probe, _) = time_once(&mut f);
    if probe.is_zero() {
        return max_reps;
    }
    let n = (target_total.as_secs_f64() / probe.as_secs_f64()).round() as usize;
    n.clamp(min_reps, max_reps)
}

/// Median time of a fixed host-speed canary: a serially-dependent scalar
/// multiply–add chain whose work never changes across commits. Because the
/// workload is a latency-bound dependency chain, it cannot vectorise or
/// reorder, so its runtime tracks only the host's current effective speed
/// (frequency, steal time, co-tenant load). The ratio of the value measured
/// at gate time to the value recorded next to the committed baselines is
/// pure machine drift — `biq bench check` divides it out so a loaded or
/// throttled host does not read as a code regression.
///
/// Median of several short passes (a few ms total): representative of the
/// window, not of the single quietest instant.
pub fn host_canary_ns() -> u128 {
    canary_median(7)
}

/// A quicker [`host_canary_ns`] (median of 3 passes, a few ms): for
/// bracketing individual gate measurements, where the canary must sample
/// the *same moment* as the measurement it excuses — a burst of co-tenant
/// load lasts seconds, so a nearby sample correlates and a run-level
/// sample does not.
pub fn host_canary_quick_ns() -> u128 {
    canary_median(3)
}

fn canary_median(passes: usize) -> u128 {
    fn pass() -> u128 {
        // ~400k serial f32 mul+add pairs: bounded (growth factor over the
        // whole chain is < 1.05), never denormal, and the loop-carried
        // dependency defeats both vectorisation and reassociation.
        let mut acc = 0.618_034_f32;
        let t0 = Instant::now();
        for _ in 0..400_000 {
            acc = std::hint::black_box(acc) * 1.000_000_1 + 0.000_000_07;
        }
        std::hint::black_box(acc);
        t0.elapsed().as_nanos()
    }
    pass(); // warmup
    let mut times: Vec<u128> = (0..passes.max(1)).map(|_| pass()).collect();
    times.sort_unstable();
    times[times.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_ordered_stats() {
        let m = measure(1, 5, || std::thread::sleep(Duration::from_micros(200)));
        assert_eq!(m.reps, 5);
        assert!(m.min <= m.median);
        assert!(m.median >= Duration::from_micros(150));
    }

    #[test]
    fn auto_reps_clamps() {
        let n = auto_reps(Duration::from_millis(1), 3, 11, || {
            std::thread::sleep(Duration::from_millis(10))
        });
        assert_eq!(n, 3);
    }

    #[test]
    fn host_canary_is_positive() {
        assert!(host_canary_ns() > 0);
    }

    #[test]
    fn unit_helpers() {
        let m = Measurement {
            median: Duration::from_micros(1500),
            min: Duration::from_micros(1000),
            mean: Duration::from_micros(1600),
            reps: 3,
        };
        assert!((m.median_us() - 1500.0).abs() < 1e-9);
        assert!((m.median_ms() - 1.5).abs() < 1e-9);
    }
}
