//! Aligned markdown-ish table rendering for experiment output.

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut r: Vec<String> = cells.to_vec();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Convenience for `&str` rows.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment and a separator line.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate().take(cols) {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push(' ');
                line.push_str(c);
                line.push_str(&" ".repeat(w - c.len() + 1));
                line.push('|');
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (no alignment).
    pub fn render_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimal places.
pub fn fmt_f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row_str(&["a", "1"]);
        t.row_str(&["long-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal length (aligned).
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[1].starts_with("|--"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row_str(&["x"]);
        assert!(t.render().contains("| x"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(&["a", "b"]);
        t.row_str(&["1", "2"]);
        assert_eq!(t.render_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn fmt_f_digits() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(2.0, 3), "2.000");
    }
}
