//! Shared harness for regenerating every table and figure of the BiQGEMM
//! paper.
//!
//! Each experiment is a binary under `src/bin/` (see DESIGN.md §4 for the
//! experiment index); this library provides the common pieces:
//!
//! * [`timing`] — median-of-k wall-clock measurement with warmup;
//! * [`table`] — aligned markdown table rendering for stdout;
//! * [`machine`] — host introspection (Table III);
//! * [`workloads`] — seeded synthetic matrices ("synthetic matrices filled by
//!   random numbers", paper Section IV-A);
//! * [`args`] — the tiny flag parser shared by all binaries (`--quick`
//!   shrinks sweeps for smoke testing).

pub mod args;
pub mod machine;
pub mod table;
pub mod timing;
pub mod workloads;
