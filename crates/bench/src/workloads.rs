//! Seeded synthetic workloads (paper Section IV-A: "synthetic matrices
//! filled by random numbers").

use biq_matrix::{ColMatrix, MatrixRng, SignMatrix};

/// Deterministic seed derived from a workload shape, so every experiment
/// binary regenerates identical data for identical parameters.
pub fn shape_seed(m: usize, n: usize, b: usize) -> u64 {
    // Small FNV-style mix; collisions are harmless (different data, same
    // distribution) but determinism per shape matters.
    let mut h: u64 = 0xcbf29ce484222325;
    for v in [m as u64, n as u64, b as u64] {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A binary weight matrix and fp32 activations for one runtime experiment.
pub struct BinaryWorkload {
    /// `m × n` signs.
    pub signs: SignMatrix,
    /// `n × b` activations.
    pub x: ColMatrix,
}

/// Generates the standard workload for shape `(m, n, b)`.
pub fn binary_workload(m: usize, n: usize, b: usize) -> BinaryWorkload {
    let mut g = MatrixRng::seed_from(shape_seed(m, n, b));
    BinaryWorkload { signs: g.signs(m, n), x: g.gaussian_col(n, b, 0.0, 1.0) }
}

/// Gaussian fp32 weights for quantization-quality experiments.
pub fn gaussian_weights(m: usize, n: usize, seed: u64) -> biq_matrix::Matrix {
    MatrixRng::seed_from(seed).gaussian(m, n, 0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_shape_sensitive() {
        assert_ne!(shape_seed(1, 2, 3), shape_seed(3, 2, 1));
        assert_eq!(shape_seed(512, 1024, 32), shape_seed(512, 1024, 32));
    }

    #[test]
    fn workload_shapes() {
        let w = binary_workload(8, 16, 4);
        assert_eq!(w.signs.shape(), (8, 16));
        assert_eq!(w.x.shape(), (16, 4));
    }

    #[test]
    fn workload_is_deterministic() {
        let a = binary_workload(4, 8, 2);
        let b = binary_workload(4, 8, 2);
        assert_eq!(a.signs, b.signs);
        assert_eq!(a.x, b.x);
    }
}
