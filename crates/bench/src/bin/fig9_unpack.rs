//! Fig. 9 reproduction: the cost of unpacking bit-packed weights for
//! conventional GEMM (1-bit quantized weights, square matrices, batch
//! 32/64/128).
//!
//! Three scenarios, exactly as the paper defines them:
//!
//! * `w/o unpack` — multiply the packed 32-bit containers directly
//!   (intentionally wrong results): isolates the bandwidth benefit;
//! * `sGEMM`     — one weight per 32-bit container (= fp32 GEMM speed);
//! * `w/ unpack` — Algorithm-3 unpack inside the kernel, then multiply.
//!
//! Expected shape: `w/o unpack` fastest, `sGEMM` in between, `w/ unpack`
//! slowest — i.e. decompression overhead outweighs the bandwidth gain, which
//! is the motivation for BiQGEMM's key-as-index design.

use biq_bench::args;
use biq_bench::table::{fmt_f, Table};
use biq_bench::timing::{auto_reps, measure};
use biq_bench::workloads::binary_workload;
use biq_gemm::packed_sgemm::DenseBinaryWeights;
use biq_gemm::unpack_gemm::{gemm_with_unpack, gemm_with_unpack_amortized, gemm_without_unpack};
use biq_quant::packing::PackedRowsU32;
use std::time::Duration;

fn main() {
    let a = args::parse();
    let sizes: Vec<usize> = if a.quick { vec![512, 1024] } else { vec![1024, 2048] };
    let batches: Vec<usize> = if a.quick { vec![32] } else { vec![32, 64, 128] };
    println!("Fig. 9: unpacking overhead for GEMM on 1-bit packed weights (1 thread)\n");
    let mut t = Table::new(&[
        "matrix",
        "batch",
        "w/o unpack ms",
        "sGEMM ms",
        "w/ unpack ms",
        "w/ unpack (amortized) ms",
        "unpack overhead x",
    ]);
    for &n in &sizes {
        for &b in &batches {
            let w = binary_workload(n, n, b);
            let packed = PackedRowsU32::pack(&w.signs);
            let dense = DenseBinaryWeights::unscaled(&w.signs);
            let reps =
                auto_reps(Duration::from_millis(400), 3, 20, || gemm_with_unpack(&packed, &w.x));
            let m_wo = measure(1, reps, || gemm_without_unpack(&packed, &w.x));
            let m_sg = measure(1, reps, || dense.sgemm_naive(&w.x));
            let m_wi = measure(1, reps, || gemm_with_unpack(&packed, &w.x));
            let m_am = measure(1, reps, || gemm_with_unpack_amortized(&packed, &w.x));
            t.row(&[
                format!("{n}x{n}"),
                b.to_string(),
                fmt_f(m_wo.median_ms(), 2),
                fmt_f(m_sg.median_ms(), 2),
                fmt_f(m_wi.median_ms(), 2),
                fmt_f(m_am.median_ms(), 2),
                fmt_f(m_wi.median_ms() / m_sg.median_ms(), 2),
            ]);
        }
    }
    println!("{}", if a.csv { t.render_csv() } else { t.render() });
    println!("Expected shape (paper Fig. 9(a)): w/o unpack < sGEMM < w/ unpack; quantized weights");
    println!("run *slower* than full precision through a conventional GEMM.");
}
