//! Fig. 10 reproduction: single-thread speedup over the `eigen`-role
//! baseline for m-by-1K matrices.
//!
//! Series, as in the paper: `eigen` (our blocked GEMM, the 1.0 reference),
//! `mkl` (our blocked GEMM with the GEMV fast path — a second tuned-library
//! stand-in), and BiQGEMM at 3/2/1-bit weights. Sweep: output size
//! m ∈ {1K, 2K, 4K}, batch ∈ {1, 8, 16, 32, 128, 256}, n = 1K.
//!
//! Fig. 10(b)'s mobile CPU is approximated by re-running with `--threads 1`
//! on this host (the paper's point there is only that a lower
//! compute:bandwidth ratio favours BiQGEMM at larger batches).
//!
//! Expected shape: BiQGEMM 1-bit fastest everywhere; BiQGEMM wins by a large
//! factor at batch ≤ 32 and larger m; the blocked fp32 baseline catches up
//! (and passes 3-bit BiQGEMM) at batch ≥ 128.

use biq_bench::args;
use biq_bench::table::{fmt_f, Table};
use biq_bench::timing::{auto_reps, measure};
use biq_bench::workloads::binary_workload;
use biq_gemm::{gemm_blocked, gemm_naive};
use biq_quant::greedy_quantize_matrix_rowwise;
use biqgemm_core::{BiqConfig, BiqGemm};
use std::time::Duration;

fn main() {
    let a = args::parse();
    let ms: Vec<usize> = if a.quick { vec![1024] } else { vec![1024, 2048, 4096] };
    let batches: Vec<usize> = if a.quick { vec![1, 32] } else { vec![1, 8, 16, 32, 128, 256] };
    let n = 1024;
    println!("Fig. 10: speedup over blocked fp32 GEMM ('eigen' role), n = {n}, 1 thread\n");
    let mut t = Table::new(&[
        "batch",
        "m",
        "eigen ms",
        "kCpu x",
        "BiQ 3-bit x",
        "BiQ 2-bit x",
        "BiQ 1-bit x",
    ]);
    for &b in &batches {
        for &m in &ms {
            let w = binary_workload(m, n, b);
            let dense = w.signs.to_f32();
            // fp32 weights for the baselines: use the sign matrix widened —
            // sGEMM semantics (quantization gives them no speed benefit).
            let reps = auto_reps(Duration::from_millis(300), 3, 15, || gemm_blocked(&dense, &w.x));
            let eigen = measure(1, reps, || gemm_blocked(&dense, &w.x));
            // kCpu role: the textbook kernel [51], a second (weaker) fp32
            // baseline; the paper's MKL/Eigen pair is collapsed into the
            // blocked kernel above.
            let mkl = measure(1, reps, || gemm_naive(&dense, &w.x));
            // BiQGEMM at 1/2/3 bits. Weight quantization happens offline;
            // only matmul is timed.
            let wf = biq_bench::workloads::gaussian_weights(m, n, 0xf19 + m as u64);
            let mut biq_cols = Vec::new();
            for bits in [3usize, 2, 1] {
                let q = greedy_quantize_matrix_rowwise(&wf, bits);
                let engine = BiqGemm::new(&q, BiqConfig::default());
                let meas = measure(1, reps, || engine.matmul(&w.x));
                biq_cols.push(eigen.median.as_secs_f64() / meas.median.as_secs_f64());
            }
            t.row(&[
                b.to_string(),
                m.to_string(),
                fmt_f(eigen.median_ms(), 2),
                fmt_f(eigen.median.as_secs_f64() / mkl.median.as_secs_f64(), 2),
                fmt_f(biq_cols[0], 2),
                fmt_f(biq_cols[1], 2),
                fmt_f(biq_cols[2], 2),
            ]);
        }
    }
    println!("{}", if a.csv { t.render_csv() } else { t.render() });
    println!("Expected shape (paper Fig. 10(a)): BiQGEMM 1-bit > 2-bit > 3-bit; big wins at small");
    println!("batch / large m; fp32 baseline overtakes 3-bit BiQGEMM once batch >= 128.");
}
