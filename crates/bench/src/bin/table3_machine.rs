//! Table III counterpart: the machine configuration the experiments actually
//! run on (the paper lists its Mobile/PC/GPGPU hosts; we print ours and note
//! the substitution).

use biq_bench::machine::detect;
use biq_bench::table::Table;

fn main() {
    let m = detect();
    println!("Table III: machine configuration used by this reproduction\n");
    let mut t = Table::new(&["field", "value"]);
    t.row(&["Processor".into(), m.cpu_model.clone()]);
    t.row(&["Logical CPUs".into(), m.logical_cpus.to_string()]);
    t.row(&["L1D cache".into(), m.l1d.clone().unwrap_or_else(|| "unknown".into())]);
    t.row(&["L2 cache".into(), m.l2.clone().unwrap_or_else(|| "unknown".into())]);
    t.row(&["L3 cache".into(), m.l3.clone().unwrap_or_else(|| "unknown".into())]);
    t.row(&[
        "DRAM".into(),
        m.ram_gib.map(|g| format!("{g:.1} GiB")).unwrap_or_else(|| "unknown".into()),
    ]);
    t.row(&["OS/arch".into(), m.os.clone()]);
    println!("{}", t.render());
    println!("Substitutions vs the paper's Table III: the Tesla V100 GPGPU column is replaced");
    println!("by multi-threaded CPU analogs (see DESIGN.md §3); the Cortex-A76 mobile column");
    println!("by a thread/SIMD-constrained configuration of this host.");
}
