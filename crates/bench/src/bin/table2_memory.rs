//! Table II reproduction: memory usage (MB) of a 512×512 multiplication at
//! batch 18 under different weight/activation bit widths. This is an exact
//! analytic reproduction — the model in `biq_quant::memory` matches the
//! paper's numbers to the printed precision (asserted by that module's unit
//! tests).

use biq_bench::args;
use biq_bench::table::{fmt_f, Table};
use biq_quant::memory::{key_matrix_mb, lut_working_set_mb, table_ii};

fn main() {
    let a = args::parse();
    println!("Table II: memory usage, 512x512 weights, batch 18\n");
    let mut t = Table::new(&["W bits", "A bits", "O bits", "W MB", "I MB", "O MB", "total MB"]);
    for row in table_ii() {
        t.row(&[
            row.w_bits.to_string(),
            row.a_bits.to_string(),
            row.o_bits.to_string(),
            fmt_f(row.usage.weights_mb, 3),
            fmt_f(row.usage.inputs_mb, 3),
            fmt_f(row.usage.outputs_mb, 3),
            fmt_f(row.usage.total_mb(), 3),
        ]);
    }
    println!("{}", if a.csv { t.render_csv() } else { t.render() });

    println!("BiQGEMM-side storage at the same shape (µ = 8):");
    let mut t2 = Table::new(&["quantity", "MB"]);
    for bits in [1usize, 2, 3] {
        t2.row(&[
            format!("key matrix K ({bits}-bit weights)"),
            fmt_f(key_matrix_mb(512, 512, 8, bits), 3),
        ]);
    }
    t2.row(&[
        "live LUT bank (64 chunks x 2^8 x b=18)".into(),
        fmt_f(lut_working_set_mb(64, 8, 18), 3),
    ]);
    println!("{}", if a.csv { t2.render_csv() } else { t2.render() });
}
