//! Table I reproduction (substituted): quantization quality vs bit width.
//!
//! The paper reports BLEU of a WMT-trained Transformer under uniform and
//! binary-coding quantization. Training data/GPUs are unavailable here, so —
//! as documented in DESIGN.md §3 — we keep the table's *structure* and
//! substitute the quality metric:
//!
//! * weight-domain SQNR (dB) of each scheme on Transformer-base-shaped
//!   Gaussian weights, and
//! * end-to-end output fidelity (cosine similarity / relative L2) of one
//!   randomly initialised Transformer-base encoder layer run with quantized
//!   vs fp32 weights.
//!
//! The paper's qualitative shape should reproduce: binary-coding degrades
//! gracefully down to 2–3 bits and collapses at 1 bit; uniform 8-bit is
//! near-lossless while uniform 4-bit falls off sharply.

use biq_bench::args;
use biq_bench::table::{fmt_f, Table};
use biq_matrix::MatrixRng;
use biq_nn::linear::QuantMethod;
use biq_nn::transformer::{EncoderLayer, LayerBackend};
use biq_quant::alternating::alternating_quantize_matrix_rowwise;
use biq_quant::error_metrics::{matrix_sqnr_db, relative_l2};
use biq_quant::greedy_quantize_matrix_rowwise;
use biq_quant::uniform::fake_quantize_matrix_per_row;
use biqgemm_core::BiqConfig;

fn main() {
    let a = args::parse();
    let d_model = if a.quick { 128 } else { 512 };
    let d_ff = 4 * d_model;
    let heads = 8;
    let seq = 18; // average sub-words per sentence, as in Table II
    println!("Table I (substituted): quantization quality on a Transformer-base encoder layer");
    println!("(d_model = {d_model}, d_ff = {d_ff}, heads = {heads}, seq = {seq}; metric substitution per DESIGN.md §3)\n");

    // --- Part A: weight-domain SQNR on one attention matrix. ---
    let mut g = MatrixRng::seed_from(0xb1b0);
    let w = g.gaussian(d_model, d_model, 0.0, 0.05);
    let mut part_a = Table::new(&["scheme", "W bits", "weight SQNR (dB)"]);
    for bits in [8u32, 6, 4] {
        let fq = fake_quantize_matrix_per_row(&w, bits);
        part_a.row(&["Uniform".into(), bits.to_string(), fmt_f(matrix_sqnr_db(&w, &fq), 2)]);
    }
    for bits in [4usize, 3, 2, 1] {
        let q = greedy_quantize_matrix_rowwise(&w, bits);
        part_a.row(&[
            "Binary-Coding (Greedy)".into(),
            bits.to_string(),
            fmt_f(matrix_sqnr_db(&w, &q.dequantize()), 2),
        ]);
    }
    for bits in [4usize, 3, 2, 1] {
        let q = alternating_quantize_matrix_rowwise(&w, bits, 10);
        part_a.row(&[
            "Binary-Coding (Alternating)".into(),
            bits.to_string(),
            fmt_f(matrix_sqnr_db(&w, &q.dequantize()), 2),
        ]);
    }
    println!("{}", if a.csv { part_a.render_csv() } else { part_a.render() });

    // --- Part B: end-to-end encoder-layer fidelity. ---
    let x = MatrixRng::seed_from(0xac7).gaussian_col(d_model, seq, 0.0, 1.0);
    let fp_layer = {
        let mut g = MatrixRng::seed_from(0x5eed);
        EncoderLayer::random(&mut g, d_model, d_ff, heads, LayerBackend::Fp32 { parallel: false })
    };
    let y_fp = fp_layer.forward(&x);
    let mut part_b = Table::new(&["scheme", "W bits", "cosine sim", "relative L2"]);
    part_b.row(&["Baseline fp32".into(), "32".into(), "1.0000".into(), "0.0000".into()]);
    for bits in [4usize, 3, 2, 1] {
        let q_layer = {
            let mut g = MatrixRng::seed_from(0x5eed);
            EncoderLayer::random(
                &mut g,
                d_model,
                d_ff,
                heads,
                LayerBackend::Biq {
                    bits,
                    method: QuantMethod::Greedy,
                    cfg: BiqConfig::default(),
                    parallel: false,
                },
            )
        };
        let y_q = q_layer.forward(&x);
        let cs = biq_quant::error_metrics::cosine_similarity(y_q.as_slice(), y_fp.as_slice());
        let rl = relative_l2(y_q.as_slice(), y_fp.as_slice());
        part_b.row(&[
            "Binary-Coding (Greedy)".into(),
            bits.to_string(),
            fmt_f(cs, 4),
            fmt_f(rl, 4),
        ]);
    }
    println!("{}", if a.csv { part_b.render_csv() } else { part_b.render() });
    println!("Expected shape (paper Table I): uniform 8-bit near-lossless; binary-coding ~fine at");
    println!("3-4 bits, noticeably worse at 2, collapsed at 1 bit.");
}
