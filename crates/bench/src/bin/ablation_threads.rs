//! Ablation: thread scaling of BiQGEMM (both schedules) vs blocked GEMM.
//!
//! The paper (Section IV-D): "multithreading linearly improves performance
//! of both BiQGEMM and GEMM that can be parallelized by tiling techniques."
//! This sweep verifies that claim on the host, and contrasts the two
//! parallel schedules (RowParallel replicates LUT builds per thread;
//! SharedLut builds once with a barrier).

use biq_bench::args::{self, with_pool};
use biq_bench::table::{fmt_f, Table};
use biq_bench::timing::{auto_reps, measure, Measurement};
use biq_bench::workloads::binary_workload;
use biq_gemm::par_gemm_blocked;
use biqgemm_core::config::Schedule;
use biqgemm_core::{BiqConfig, BiqGemm};
use std::time::Duration;

fn main() {
    let a = args::parse();
    let (m, n, b) = if a.quick { (1024, 1024, 32) } else { (4096, 4096, 32) };
    let max_threads = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(4);
    let mut threads = vec![1usize, 2, 4, 8, 16];
    threads.retain(|&t| t <= max_threads);
    println!("Thread-scaling ablation: {m}x{n} 1-bit weights, batch {b}\n");
    let w = binary_workload(m, n, b);
    let dense = w.signs.to_f32();
    let row_engine = BiqGemm::from_signs(
        &w.signs,
        BiqConfig { schedule: Schedule::RowParallel, ..BiqConfig::default() },
    );
    let shared_engine = BiqGemm::from_signs(
        &w.signs,
        BiqConfig { schedule: Schedule::SharedLut, ..BiqConfig::default() },
    );
    let mut t = Table::new(&[
        "threads",
        "BiQ row-par ms",
        "BiQ shared-LUT ms",
        "blocked GEMM ms",
        "BiQ speedup vs 1T",
        "GEMM speedup vs 1T",
    ]);
    let mut base: Option<(f64, f64)> = None;
    for &nt in &threads {
        let (m_row, m_shared, m_gemm): (Measurement, Measurement, Measurement) =
            with_pool(Some(nt), || {
                let reps = auto_reps(Duration::from_millis(400), 3, 15, || {
                    row_engine.matmul_parallel(&w.x)
                });
                (
                    measure(1, reps, || row_engine.matmul_parallel(&w.x)),
                    measure(1, reps, || shared_engine.matmul_parallel(&w.x)),
                    measure(1, reps, || par_gemm_blocked(&dense, &w.x)),
                )
            });
        let (b_biq, b_gemm) = *base.get_or_insert((m_row.median_ms(), m_gemm.median_ms()));
        t.row(&[
            nt.to_string(),
            fmt_f(m_row.median_ms(), 2),
            fmt_f(m_shared.median_ms(), 2),
            fmt_f(m_gemm.median_ms(), 2),
            fmt_f(b_biq / m_row.median_ms(), 2),
            fmt_f(b_gemm / m_gemm.median_ms(), 2),
        ]);
    }
    println!("{}", if a.csv { t.render_csv() } else { t.render() });
    println!("Expected shape: both kernels scale near-linearly until memory bandwidth saturates;");
    println!("SharedLut tracks RowParallel (build is a small fraction at this m).");
}
