//! Convenience driver: regenerates every table/figure/ablation in sequence,
//! teeing each experiment's output into `results/<name>.txt`.
//!
//! `cargo run --release -p biq-bench --bin run_all [-- --quick]`

use std::io::Write as _;
use std::path::Path;
use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "table1_quant_quality",
    "table2_memory",
    "table3_machine",
    "table4_runtime",
    "fig8_profiling",
    "fig9_unpack",
    "fig10_speedup",
    "mu_sweep",
    "ablation_threads",
    "ablation_int8",
];

fn main() {
    let pass_args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(Path::to_path_buf))
        .expect("cannot locate binary directory");
    std::fs::create_dir_all("results").expect("create results/");
    let mut failures = 0;
    for name in EXPERIMENTS {
        print!("running {name} ... ");
        std::io::stdout().flush().ok();
        let bin = exe_dir.join(name);
        let out = Command::new(&bin).args(&pass_args).output();
        match out {
            Ok(o) if o.status.success() => {
                let path = format!("results/{name}.txt");
                std::fs::write(&path, &o.stdout).expect("write result");
                println!("ok -> {path}");
            }
            Ok(o) => {
                failures += 1;
                println!("FAILED (exit {:?})", o.status.code());
                eprintln!("{}", String::from_utf8_lossy(&o.stderr));
            }
            Err(e) => {
                failures += 1;
                println!("FAILED to launch: {e} (build with `cargo build --release -p biq-bench` first)");
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!("\nall experiments regenerated under results/");
}
