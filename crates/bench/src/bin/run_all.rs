//! Convenience driver: regenerates every table/figure/ablation in sequence,
//! teeing each experiment's output into `results/<name>.txt`, then runs the
//! runtime-driven perf suite and writes `results/BENCH_biqgemm.json` — the
//! machine-readable trajectory record future changes are compared against.
//!
//! `cargo run --release -p biq-bench --bin run_all [-- --quick]`

use biq_bench::args::{self, with_pool};
use biq_bench::timing::{auto_reps, measure};
use biq_bench::workloads::binary_workload;
use biq_runtime::{
    compile, BackendSpec, Executor, KernelLevel, KernelRequest, PlanBuilder, QuantMethod,
    Threading, WeightSource,
};
use biqgemm_core::layout::LutBank;
use biqgemm_core::{BiqConfig, LutBuildMethod, LutLayout, PhaseProfile};
use std::io::Write as _;
use std::path::Path;
use std::process::Command;
use std::time::Duration;

const EXPERIMENTS: &[&str] = &[
    "table1_quant_quality",
    "table2_memory",
    "table3_machine",
    "table4_runtime",
    "fig8_profiling",
    "fig9_unpack",
    "fig10_speedup",
    "mu_sweep",
    "ablation_threads",
    "ablation_int8",
    // Writes results/BENCH_artifact.json itself (cold-start artifact load
    // vs re-quantize+pack from fp32).
    "load_bench",
];

/// One row of the JSON perf record.
struct BenchRow {
    m: usize,
    n: usize,
    b: usize,
    backend: &'static str,
    biqgemm_ns: u128,
    blocked_fp32_ns: u128,
}

impl BenchRow {
    fn speedup(&self) -> f64 {
        if self.biqgemm_ns == 0 {
            // 0 would only happen on timer-granularity underflow; emit a
            // finite value so the JSON stays parseable (NaN is not JSON).
            return 0.0;
        }
        self.blocked_fp32_ns as f64 / self.biqgemm_ns as f64
    }
}

/// Times BiQGEMM (runtime-planned, 1-bit weights) and blocked fp32 (same
/// runtime, same executor kind) on one workload; both paths go through the
/// plan/executor so the numbers include exactly the serving-path overheads.
fn bench_workload(m: usize, n: usize, b: usize, threads: Option<usize>) -> BenchRow {
    let w = binary_workload(m, n, b);
    let dense = w.signs.to_f32();

    let mut biq_builder = PlanBuilder::new(m, n)
        .batch_hint(b)
        .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy });
    if let Some(t) = threads {
        biq_builder = biq_builder.threads(t);
    }
    let biq_plan = biq_builder.build();
    let biq_op = compile(&biq_plan, WeightSource::Signs(&w.signs));
    let mut biq_exec = Executor::warmed_for(&biq_op);
    let mut y = vec![0.0f32; m * b];

    let mut fp_builder = PlanBuilder::new(m, n).batch_hint(b).backend(BackendSpec::Fp32Blocked);
    if let Some(t) = threads {
        fp_builder = fp_builder.threads(t);
    }
    let fp_plan = fp_builder.build();
    let fp_op = compile(&fp_plan, WeightSource::Dense(&dense));
    let mut fp_exec = Executor::warmed_for(&fp_op);

    let reps =
        auto_reps(Duration::from_millis(200), 3, 20, || biq_exec.run_into(&biq_op, &w.x, &mut y));
    // Best of two passes per side: the record is a regression baseline, so
    // the robust statistic is the min-of-medians — scheduler noise is
    // one-sided (it only ever slows a pass down) and a noisy-low baseline
    // would make every future `biq bench check` brittle.
    let biq_ns = (0..2)
        .map(|_| measure(1, reps, || biq_exec.run_into(&biq_op, &w.x, &mut y)).median.as_nanos())
        .min()
        .expect("two passes");
    let fp_ns = (0..2)
        .map(|_| measure(1, reps, || fp_exec.run_into(&fp_op, &w.x, &mut y)).median.as_nanos())
        .min()
        .expect("two passes");

    BenchRow { m, n, b, backend: biq_op.backend_name(), biqgemm_ns: biq_ns, blocked_fp32_ns: fp_ns }
}

/// One row of the per-kernel-level record (`BENCH_simd.json`).
struct SimdRow {
    m: usize,
    n: usize,
    b: usize,
    level: KernelLevel,
    /// What a plan-time `Auto` request resolves to **for this workload's
    /// shape** — since the width-1 clamp, Auto is batch-hint-aware, so the
    /// pick can differ between the b = 1 and b = 8 rows of one sweep.
    auto: KernelLevel,
    /// Median of the full serial BiQGEMM pass (query-dominated — the fused
    /// lookup-accumulate kernel under test).
    query_ns: u128,
    /// Median of one KeyMajor DP bank build at the config's tile shape.
    lut_build_ns: u128,
}

/// Times the fused query kernel and the LUT build at every kernel level
/// the host supports, identical `BiqConfig::default()` tiles throughout —
/// the only variable is the pinned level.
fn bench_simd_levels() -> (Vec<SimdRow>, KernelLevel) {
    let host_best = KernelRequest::Auto.resolve().expect("auto always resolves").level();
    let mut rows = Vec::new();
    for &(m, n, b) in &[(512usize, 512usize, 1usize), (512, 512, 8), (2048, 1024, 1)] {
        let w = binary_workload(m, n, b);
        // The shape-aware Auto pick: build a plan without pinning a level
        // and read back what the planner chose for this batch hint.
        let auto_level = PlanBuilder::new(m, n)
            .batch_hint(b)
            .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
            .threading(Threading::Serial)
            .build()
            .kernel
            .level();
        for level in biqgemm_core::simd::supported_levels() {
            let cfg = BiqConfig { kernel: KernelRequest::Exact(level), ..BiqConfig::default() };
            let plan = PlanBuilder::new(m, n)
                .batch_hint(b)
                .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
                .threading(Threading::Serial)
                .config(cfg)
                .build();
            let op = compile(&plan, WeightSource::Signs(&w.signs));
            let mut exec = Executor::warmed_for(&op);
            let mut y = vec![0.0f32; m * b];
            let reps =
                auto_reps(Duration::from_millis(120), 3, 20, || exec.run_into(&op, &w.x, &mut y));
            // Min of two median passes — same one-sided-noise rationale as
            // `bench_workload`.
            let query_ns = (0..2)
                .map(|_| measure(1, reps, || exec.run_into(&op, &w.x, &mut y)).median.as_nanos())
                .min()
                .expect("two passes");

            let kernel = plan.kernel;
            let input = biq_matrix::reshape::ChunkedInput::new(&w.x, cfg.mu);
            let nc = cfg.tile_chunks.min(input.num_chunks());
            let nb = cfg.tile_batch.min(b);
            let mut bank = LutBank::new(cfg.mu, LutLayout::KeyMajor);
            bank.reserve(nc, nb);
            let mut prof = PhaseProfile::new();
            let m_build = measure(1, reps.max(20), || {
                bank.build(
                    &input,
                    0,
                    nc,
                    0,
                    nb,
                    LutBuildMethod::DynamicProgramming,
                    &mut prof,
                    kernel,
                )
            });
            rows.push(SimdRow {
                m,
                n,
                b,
                level,
                auto: auto_level,
                query_ns,
                lut_build_ns: m_build.median.as_nanos(),
            });
        }
    }
    (rows, host_best)
}

fn write_simd_json(rows: &[SimdRow], path: &str) -> std::io::Result<()> {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "  {{\"workload\": \"m={m} n={n} b={b}\", \"m\": {m}, \"n\": {n}, \"b\": {b}, ",
                "\"level\": \"{level}\", \"auto_picked\": \"{auto}\", \"is_auto_level\": {is_auto}, ",
                "\"query_median_ns\": {query}, \"lut_build_median_ns\": {build}}}{comma}\n"
            ),
            m = r.m,
            n = r.n,
            b = r.b,
            level = r.level.name(),
            auto = r.auto.name(),
            is_auto = r.level == r.auto,
            query = r.query_ns,
            build = r.lut_build_ns,
            comma = if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("]\n");
    std::fs::write(path, out)
}

fn write_bench_json(rows: &[BenchRow], path: &str) -> std::io::Result<()> {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "  {{\"workload\": \"m={m} n={n} b={b}\", \"m\": {m}, \"n\": {n}, ",
                "\"b\": {b}, \"backend\": \"{backend}\", \"biqgemm_median_ns\": {biq}, ",
                "\"blocked_fp32_median_ns\": {fp}, \"speedup_vs_blocked_fp32\": {speedup:.3}}}{comma}\n"
            ),
            m = r.m,
            n = r.n,
            b = r.b,
            backend = r.backend,
            biq = r.biqgemm_ns,
            fp = r.blocked_fp32_ns,
            speedup = r.speedup(),
            comma = if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("]\n");
    std::fs::write(path, out)
}

fn main() {
    let a = args::parse();
    let pass_args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(Path::to_path_buf))
        .expect("cannot locate binary directory");
    std::fs::create_dir_all("results").expect("create results/");
    let mut failures = 0;
    for name in EXPERIMENTS {
        print!("running {name} ... ");
        std::io::stdout().flush().ok();
        let bin = exe_dir.join(name);
        let out = Command::new(&bin).args(&pass_args).output();
        match out {
            Ok(o) if o.status.success() => {
                let path = format!("results/{name}.txt");
                std::fs::write(&path, &o.stdout).expect("write result");
                println!("ok -> {path}");
            }
            Ok(o) => {
                failures += 1;
                println!("FAILED (exit {:?})", o.status.code());
                eprintln!("{}", String::from_utf8_lossy(&o.stderr));
            }
            Err(e) => {
                failures += 1;
                println!(
                    "FAILED to launch: {e} (build with `cargo build --release -p biq-bench` first)"
                );
            }
        }
    }

    // Host-speed canary: a fixed serial multiply–add chain recorded next
    // to the perf baselines. `biq bench check` re-measures the identical
    // chain and divides out the ratio, so the gate compares code, not the
    // host's mood (co-tenant load, frequency, steal time) at baseline time
    // vs gate time.
    print!("running host canary ... ");
    std::io::stdout().flush().ok();
    let canary_ns = biq_bench::timing::host_canary_ns();
    let host_path = "results/BENCH_host.json";
    std::fs::write(
        host_path,
        format!(
            "[\n  {{\"what\": \"serial mul-add chain, 400k links — host speed reference \
             for drift normalization in `biq bench check`\", \"canary_ns\": {canary_ns}}}\n]\n"
        ),
    )
    .expect("write BENCH_host.json");
    println!("ok -> {host_path} (canary {canary_ns} ns)");

    // Runtime-driven perf record: small-batch serving shapes first (the
    // paper's target regime and the arena-reuse fast path), then the
    // larger-batch parallel shapes.
    print!("running runtime perf suite ... ");
    std::io::stdout().flush().ok();
    let shapes: &[(usize, usize, usize)] = if a.quick {
        &[(512, 512, 1), (512, 512, 8)]
    } else {
        &[(1024, 1024, 1), (1024, 1024, 8), (1024, 1024, 32), (2048, 2048, 1), (2048, 2048, 32)]
    };
    // Honor --threads for the runtime suite too: it pins both the planner's
    // serial/parallel decision and the rayon pool the parallel drivers use.
    let rows: Vec<BenchRow> = with_pool(a.threads, || {
        shapes.iter().map(|&(m, n, b)| bench_workload(m, n, b, a.threads)).collect()
    });
    let json_path = "results/BENCH_biqgemm.json";
    write_bench_json(&rows, json_path).expect("write BENCH_biqgemm.json");
    println!("ok -> {json_path}");
    for r in &rows {
        println!(
            "  m={} n={} b={} [{}]: biqgemm {} ns vs blocked fp32 {} ns ({:.2}x)",
            r.m,
            r.n,
            r.b,
            r.backend,
            r.biqgemm_ns,
            r.blocked_fp32_ns,
            r.speedup()
        );
    }

    // Per-kernel-level record: the fused query kernel and the DP LUT build
    // at every level the host supports (scalar vs avx2 vs avx512 / neon),
    // plus which level a plan-time Auto picks for each workload's shape
    // (batch-hint-aware since the width-1 clamp) — results are
    // bit-identical across levels, so this sweep is pure speed.
    print!("running simd level sweep ... ");
    std::io::stdout().flush().ok();
    let (simd_rows, host_best) = bench_simd_levels();
    let simd_path = "results/BENCH_simd.json";
    write_simd_json(&simd_rows, simd_path).expect("write BENCH_simd.json");
    println!("ok -> {simd_path} (host best = {host_best})");
    for r in &simd_rows {
        println!(
            "  m={} n={} b={} [{}{}]: query {} ns, lut build {} ns",
            r.m,
            r.n,
            r.b,
            r.level.name(),
            if r.level == r.auto { " = auto" } else { "" },
            r.query_ns,
            r.lut_build_ns
        );
    }

    // Serving-layer record: the `biq` binary's serve-bench replays
    // open-loop single-column traffic through `biq_serve`, unbatched vs
    // batched, and writes results/BENCH_serve.json next to the kernel
    // record above.
    print!("running serve-bench ... ");
    std::io::stdout().flush().ok();
    let mut serve_args: Vec<String> =
        vec!["serve-bench".into(), "--out".into(), "results/BENCH_serve.json".into()];
    if a.quick {
        serve_args.push("--quick".into());
    }
    match Command::new(exe_dir.join("biq")).args(&serve_args).output() {
        Ok(o) if o.status.success() => {
            println!("ok -> results/BENCH_serve.json");
            print!("{}", String::from_utf8_lossy(&o.stdout));
        }
        Ok(o) => {
            failures += 1;
            println!("FAILED (exit {:?})", o.status.code());
            eprintln!("{}", String::from_utf8_lossy(&o.stderr));
        }
        Err(e) => {
            failures += 1;
            println!("FAILED to launch: {e} (build with `cargo build --release -p biq_cli` first)");
        }
    }

    // Network record: the `biq` binary's net-bench replays the same
    // single-column traffic in-process and through a loopback TCP round
    // trip (`serve::net`), so the wire tax is measured, not guessed.
    print!("running net-bench ... ");
    std::io::stdout().flush().ok();
    let mut net_args: Vec<String> =
        vec!["net-bench".into(), "--out".into(), "results/BENCH_net.json".into()];
    if a.quick {
        net_args.push("--quick".into());
    }
    match Command::new(exe_dir.join("biq")).args(&net_args).output() {
        Ok(o) if o.status.success() => {
            println!("ok -> results/BENCH_net.json");
            print!("{}", String::from_utf8_lossy(&o.stdout));
        }
        Ok(o) => {
            failures += 1;
            println!("FAILED (exit {:?})", o.status.code());
            eprintln!("{}", String::from_utf8_lossy(&o.stderr));
        }
        Err(e) => {
            failures += 1;
            println!("FAILED to launch: {e} (build with `cargo build --release -p biq_cli` first)");
        }
    }

    if failures > 0 {
        std::process::exit(1);
    }
    println!("\nall experiments regenerated under results/");
}
