//! Ablation: INT8 fixed-point GEMM vs BiQGEMM — the Section II-A contrast.
//!
//! Measures (a) the INT8 pipeline's conversion share (dynamic activation
//! quantization + output rescale; the paper quotes 15–30% overhead around
//! float-demanding ops) and (b) end-to-end runtime against BiQGEMM at 1–3
//! weight bits and the fp32 blocked baseline.

use biq_bench::args;
use biq_bench::table::{fmt_f, Table};
use biq_bench::timing::{auto_reps, measure};
use biq_bench::workloads::{binary_workload, gaussian_weights};
use biq_gemm::gemm_blocked;
use biq_gemm::int8::{Int8Gemm, Int8Phases};
use biq_quant::greedy_quantize_matrix_rowwise;
use biqgemm_core::{BiqConfig, BiqGemm};
use std::time::Duration;

fn main() {
    let a = args::parse();
    let sizes: Vec<usize> = if a.quick { vec![512] } else { vec![1024, 2048] };
    let batches: Vec<usize> = if a.quick { vec![32] } else { vec![1, 32] };
    println!("INT8 vs BiQGEMM ablation (1 thread)\n");
    let mut t = Table::new(&[
        "matrix",
        "batch",
        "fp32 ms",
        "INT8 ms",
        "INT8 conv %",
        "BiQ 2-bit ms",
        "BiQ 1-bit ms",
    ]);
    for &n in &sizes {
        for &b in &batches {
            let wload = binary_workload(n, n, b);
            let wf = gaussian_weights(n, n, 0x148 + n as u64);
            let int8 = Int8Gemm::new(&wf);
            let reps = auto_reps(Duration::from_millis(300), 3, 12, || gemm_blocked(&wf, &wload.x));
            let m_fp = measure(1, reps, || gemm_blocked(&wf, &wload.x));
            let mut phases = Int8Phases::default();
            let m_int8 = measure(1, reps, || int8.forward(&wload.x, &mut phases));
            let mut biq_ms = Vec::new();
            for bits in [2usize, 1] {
                let q = greedy_quantize_matrix_rowwise(&wf, bits);
                let engine = BiqGemm::new(&q, BiqConfig::default());
                biq_ms.push(measure(1, reps, || engine.matmul(&wload.x)).median_ms());
            }
            t.row(&[
                format!("{n}x{n}"),
                b.to_string(),
                fmt_f(m_fp.median_ms(), 2),
                fmt_f(m_int8.median_ms(), 2),
                fmt_f(phases.conversion_fraction() * 100.0, 1),
                fmt_f(biq_ms[0], 2),
                fmt_f(biq_ms[1], 2),
            ]);
        }
    }
    println!("{}", if a.csv { t.render_csv() } else { t.render() });
    println!("Expected shape: INT8's conversion share is material at small batch (the paper's");
    println!("15-30% claim is about float ops interleaved with INT8 blocks); BiQGEMM needs no");
    println!("activation conversion at all and wins at 1-2 bits.");
}
