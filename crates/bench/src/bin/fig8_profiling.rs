//! Fig. 8 reproduction: runtime share of BiQGEMM's build / query / replace
//! phases as the output size `m` grows (n ∈ {1K, 2K}, b = 32, 1-bit
//! weights, µ = 8, single thread).
//!
//! Expected shape: the *query* share grows with `m` and dominates at every
//! size plotted (the paper's point — most arithmetic becomes cheap
//! retrievals once `m ≫ 2^µ`).

use biq_bench::args;
use biq_bench::table::{fmt_f, Table};
use biq_bench::timing::auto_reps;
use biq_bench::workloads::binary_workload;
use biqgemm_core::{BiqConfig, BiqGemm, PhaseProfile};
use std::time::Duration;

fn main() {
    let a = args::parse();
    let (sizes, ns): (Vec<usize>, Vec<usize>) = if a.quick {
        (vec![512, 1024, 2048], vec![1024])
    } else {
        (vec![512, 1024, 2048, 4096, 8192], vec![1024, 2048])
    };
    let b = 32;
    println!("Fig. 8: BiQGEMM phase profile (1-bit weights, b = {b}, µ = 8, 1 thread)\n");
    for n in ns {
        let mut t = Table::new(&["m", "build %", "query %", "replace %", "total ms"]);
        for &m in &sizes {
            let w = binary_workload(m, n, b);
            let engine = BiqGemm::from_signs(&w.signs, BiqConfig::default());
            let reps = auto_reps(Duration::from_millis(300), 3, 30, || {
                let mut p = PhaseProfile::new();
                engine.matmul_profiled(&w.x, &mut p)
            });
            let mut profile = PhaseProfile::new();
            for _ in 0..reps {
                std::hint::black_box(engine.matmul_profiled(&w.x, &mut profile));
            }
            let (build, query, replace) = profile.fractions();
            t.row(&[
                m.to_string(),
                fmt_f(build * 100.0, 1),
                fmt_f(query * 100.0, 1),
                fmt_f(replace * 100.0, 1),
                fmt_f(profile.total().as_secs_f64() * 1e3 / reps as f64, 3),
            ]);
        }
        println!("n = {n}:");
        println!("{}", if a.csv { t.render_csv() } else { t.render() });
    }
    println!("Expected shape (paper Fig. 8): query share rises with m and dominates throughout.");
}
