//! `load_bench`: artifact cold-start vs re-quantizing from fp32.
//!
//! The deployment claim behind `crates/artifact` (paper footnote 3: packed
//! matrices are "loaded in advance into the system") is only worth a file
//! format if loading the packed form is much cheaper than redoing the
//! quantize + key-pack work from dense fp32 on every process start. This
//! experiment pins that down on a Transformer-shaped encoder stack:
//!
//! * **cold start** — read the `BIQM` file from disk, validate checksums,
//!   rebuild plans and compile every layer with zero-copy payload views
//!   (`CompiledModel::load`, the `biq run-model` path);
//! * **re-quantize** — greedy binary-coding quantization + key packing of
//!   the same weight matrices from fp32 (what a process without the
//!   artifact must do, before it can even build the same compiled ops).
//!
//! Writes `results/BENCH_artifact.json` (invoked by `run_all`).
//!
//! `cargo run --release -p biq-bench --bin load_bench [-- --quick]`

use biq_bench::args;
use biq_bench::timing::measure;
use biq_matrix::MatrixRng;
use biq_nn::model::CompiledModel;
use biq_nn::transformer::{Encoder, LayerBackend};
use biq_nn::QuantMethod;
use biqgemm_core::{BiqConfig, BiqWeights};

struct Case {
    label: &'static str,
    d_model: usize,
    d_ff: usize,
    heads: usize,
    layers: usize,
    bits: usize,
}

fn main() {
    let a = args::parse();
    let cases: &[Case] = if a.quick {
        &[Case { label: "tiny", d_model: 64, d_ff: 128, heads: 4, layers: 1, bits: 2 }]
    } else {
        &[
            Case { label: "small", d_model: 128, d_ff: 512, heads: 4, layers: 2, bits: 2 },
            // Transformer-base-shaped layer (paper Section II-C: four n×n
            // plus n×4n / 4n×n matrices per encoder layer).
            Case { label: "base-ish", d_model: 512, d_ff: 2048, heads: 8, layers: 2, bits: 2 },
        ]
    };
    let reps = if a.quick { 5 } else { 10 };

    std::fs::create_dir_all("results").expect("create results/");
    let mut json_rows = Vec::new();
    println!(
        "{:<9} {:>10} {:>12} {:>14} {:>16} {:>9}",
        "case", "fp32 KB", "artifact KB", "cold start ms", "re-quantize ms", "speedup"
    );
    for c in cases {
        let mut g = MatrixRng::seed_from(0x10ad ^ c.d_model as u64);
        let backend = LayerBackend::Biq {
            bits: c.bits,
            method: QuantMethod::Greedy,
            cfg: BiqConfig::default(),
            parallel: false,
        };
        let model = CompiledModel::Transformer(Encoder::random(
            &mut g, c.layers, c.d_model, c.d_ff, c.heads, backend,
        ));
        let path = std::env::temp_dir().join(format!("biq_load_bench_{}.biqmod", c.label));
        model.save(&path).expect("write artifact");
        let artifact_bytes = std::fs::metadata(&path).expect("stat artifact").len() as usize;

        // Cold start: file read + checksum validation + plan rebuild +
        // zero-copy compile of every layer.
        let m_load = measure(1, reps, || CompiledModel::load(&path).expect("load artifact"));

        // Re-quantize: the same weight matrices from fp32 through greedy
        // binary coding + key packing (weight generation excluded — a real
        // process would read dense fp32 from its own checkpoint).
        let shapes: Vec<(usize, usize)> = {
            let mut v = Vec::new();
            for _ in 0..c.layers {
                v.extend([
                    (c.d_model, c.d_model),
                    (c.d_model, c.d_model),
                    (c.d_model, c.d_model),
                    (c.d_model, c.d_model),
                    (c.d_ff, c.d_model),
                    (c.d_model, c.d_ff),
                ]);
            }
            v
        };
        let dense: Vec<biq_matrix::Matrix> =
            shapes.iter().map(|&(m, n)| g.gaussian(m, n, 0.0, 1.0)).collect();
        let mu = BiqConfig::default().mu;
        let m_quant = measure(1, reps, || {
            dense
                .iter()
                .map(|w| {
                    let q = biq_quant::greedy_quantize_matrix_rowwise(w, c.bits);
                    BiqWeights::from_multibit(&q, mu)
                })
                .collect::<Vec<_>>()
        });

        let fp32_bytes: usize = shapes.iter().map(|&(m, n)| m * n * 4).sum();
        let speedup = m_quant.median.as_secs_f64() / m_load.median.as_secs_f64().max(1e-12);
        println!(
            "{:<9} {:>10.1} {:>12.1} {:>14.3} {:>16.3} {:>8.1}x",
            c.label,
            fp32_bytes as f64 / 1e3,
            artifact_bytes as f64 / 1e3,
            m_load.median_ms(),
            m_quant.median_ms(),
            speedup
        );
        json_rows.push(format!(
            concat!(
                "  {{\"case\": \"{}\", \"d_model\": {}, \"d_ff\": {}, \"layers\": {}, ",
                "\"bits\": {}, \"fp32_bytes\": {}, \"artifact_bytes\": {}, ",
                "\"cold_start_load_ns\": {}, \"requantize_pack_ns\": {}, ",
                "\"load_speedup_vs_requantize\": {:.1}}}"
            ),
            c.label,
            c.d_model,
            c.d_ff,
            c.layers,
            c.bits,
            fp32_bytes,
            artifact_bytes,
            m_load.median.as_nanos(),
            m_quant.median.as_nanos(),
            speedup
        ));
        let _ = std::fs::remove_file(&path);

        assert!(speedup > 1.0, "artifact cold start must beat re-quantization ({speedup:.2}x)");
    }

    let json = format!("[\n{}\n]\n", json_rows.join(",\n"));
    std::fs::write("results/BENCH_artifact.json", json).expect("write BENCH_artifact.json");
    println!("-> results/BENCH_artifact.json");
}
