//! Table IV reproduction (GPU substituted by multi-threaded CPU analogs —
//! DESIGN.md §3): runtime of BiQGEMM vs the `kGpu`, `cublas` and `xnor`
//! roles on square 1-bit-quantized weight matrices.
//!
//! Role mapping:
//!
//! * `BiQGEMM` — our parallel LUT kernel;
//! * `kGpu`    — parallel naive GEMM (unbatched textbook kernel, the paper's
//!   modified CUDA-samples baseline);
//! * `cublas`  — parallel blocked GEMM (vendor-library role);
//! * `xnor`    — parallel-free XNOR-popcount (weights *and* activations
//!   1-bit) — the only scheme allowed to quantize activations.
//!
//! Expected shape: BiQGEMM beats `kGpu` everywhere (by more at large n /
//! small b); `xnor` is strong at large batch; BiQGEMM is best at small
//! batch.

use biq_bench::args::{self, with_pool};
use biq_bench::table::{fmt_f, Table};
use biq_bench::timing::{auto_reps, measure};
use biq_bench::workloads::binary_workload;
use biq_gemm::xnor::{xnor_gemm, XnorWeights};
use biq_gemm::{par_gemm_blocked, par_gemm_naive};
use biq_quant::packing::PackedRowsU64;
use biqgemm_core::{BiqConfig, BiqGemm};
use std::time::Duration;

fn main() {
    let a = args::parse();
    let sizes: Vec<usize> = if a.quick { vec![512, 1024] } else { vec![512, 1024, 2048, 4096] };
    let batches: Vec<usize> = if a.quick { vec![1, 32] } else { vec![1, 32, 128, 256] };
    with_pool(a.threads, || run(&a, &sizes, &batches));
}

fn run(a: &biq_bench::args::CommonArgs, sizes: &[usize], batches: &[usize]) {
    println!(
        "Table IV (GPU roles substituted by CPU analogs, {} threads): runtime in µs, 1-bit weights\n",
        rayon::current_num_threads()
    );
    let mut t = Table::new(&[
        "weights",
        "batch",
        "BiQGEMM us",
        "kGpu us",
        "cublas us",
        "xnor us",
        "BiQ/kGpu speedup",
    ]);
    for &n in sizes {
        let xnor_kernel = biqgemm_core::KernelRequest::Auto.resolve().expect("auto resolves");
        for &b in batches {
            let w = binary_workload(n, n, b);
            let dense = w.signs.to_f32();
            let engine = BiqGemm::from_signs(&w.signs, BiqConfig::default());
            let xw = XnorWeights::new(vec![(vec![1.0f32; n], PackedRowsU64::pack(&w.signs))]);
            let reps =
                auto_reps(Duration::from_millis(300), 3, 20, || engine.matmul_parallel(&w.x));
            let m_biq = measure(1, reps, || engine.matmul_parallel(&w.x));
            let m_kgpu = measure(1, reps, || par_gemm_naive(&dense, &w.x));
            let m_cublas = measure(1, reps, || par_gemm_blocked(&dense, &w.x));
            let m_xnor = measure(1, reps, || xnor_gemm(&xw, &w.x, xnor_kernel));
            t.row(&[
                format!("{n}x{n}"),
                b.to_string(),
                fmt_f(m_biq.median_us(), 0),
                fmt_f(m_kgpu.median_us(), 0),
                fmt_f(m_cublas.median_us(), 0),
                fmt_f(m_xnor.median_us(), 0),
                fmt_f(m_kgpu.median.as_secs_f64() / m_biq.median.as_secs_f64(), 2),
            ]);
        }
    }
    println!("{}", if a.csv { t.render_csv() } else { t.render() });
    println!("Expected shape (paper Table IV): BiQGEMM fastest at batch 1 for every size; its");
    println!("advantage over kGpu grows with matrix size and shrinks with batch.");
}
