//! Ablation: empirical runtime vs LUT-unit µ, against the Eq. 9 model.
//!
//! The paper optimises µ analytically (`argmin_µ (2^µ + m)/(m·µ)`, ≈ 8 for
//! its sizes) and confirms empirically. This sweep reproduces that check:
//! for each µ we re-pack the weights, re-plan tiles so the LUT bank stays in
//! cache, and time the serial kernel; the model column is Eq. 9's factor
//! normalised to µ = 8.

use biq_bench::args;
use biq_bench::table::{fmt_f, Table};
use biq_bench::timing::{auto_reps, measure};
use biq_bench::workloads::binary_workload;
use biqgemm_core::complexity::{eq9_factor, optimal_mu};
use biqgemm_core::planner::{plan, DEFAULT_LUT_BUDGET_BYTES};
use biqgemm_core::{BiqConfig, BiqGemm};
use std::time::Duration;

fn main() {
    let a = args::parse();
    let (m, n, b) = if a.quick { (1024, 1024, 32) } else { (4096, 1024, 32) };
    let mus: Vec<usize> = if a.quick { vec![4, 6, 8, 10] } else { vec![2, 4, 6, 8, 10, 12] };
    println!("µ sweep ablation: m = {m}, n = {n}, b = {b}, 1-bit weights, 1 thread");
    println!("(model optimum for m = {m}: µ* = {})\n", optimal_mu(m));
    let w = binary_workload(m, n, b);
    let mut t = Table::new(&["µ", "runtime ms", "speedup vs µ=8", "Eq.9 model (rel)"]);
    let mut baseline_ms = None;
    let mut rows = Vec::new();
    for &mu in &mus {
        let planned = plan(m, n, b, DEFAULT_LUT_BUDGET_BYTES);
        let cfg = BiqConfig { mu, ..planned };
        let engine = BiqGemm::from_signs(&w.signs, cfg);
        let reps = auto_reps(Duration::from_millis(250), 3, 15, || engine.matmul(&w.x));
        let meas = measure(1, reps, || engine.matmul(&w.x));
        if mu == 8 {
            baseline_ms = Some(meas.median_ms());
        }
        rows.push((mu, meas.median_ms()));
    }
    let base = baseline_ms.unwrap_or(rows[rows.len() / 2].1);
    let model_base = eq9_factor(m, 8);
    for (mu, ms) in rows {
        t.row(&[
            mu.to_string(),
            fmt_f(ms, 3),
            fmt_f(base / ms, 2),
            fmt_f(eq9_factor(m, mu) / model_base, 2),
        ]);
    }
    println!("{}", if a.csv { t.render_csv() } else { t.render() });
    println!("Expected shape: runtime falls steeply from µ=2 to µ≈8 and flattens/regresses past");
    println!("the model optimum as the table build (2^µ) and cache pressure take over.");
}
