//! Minimal flag parsing shared by the experiment binaries.
//!
//! Every binary accepts:
//!
//! * `--quick` — shrink sweeps/repetitions for smoke testing;
//! * `--csv` — emit CSV instead of an aligned table;
//! * `--threads N` — pin the rayon pool size (default: all cores).

/// Parsed common flags.
#[derive(Clone, Copy, Debug, Default)]
pub struct CommonArgs {
    /// Reduced problem sizes / repetitions.
    pub quick: bool,
    /// CSV output.
    pub csv: bool,
    /// Requested rayon threads (`None` = library default).
    pub threads: Option<usize>,
}

/// Parses `std::env::args`, ignoring unknown flags (binaries may add their
/// own on top).
pub fn parse() -> CommonArgs {
    parse_from(std::env::args().skip(1))
}

/// Parses from an explicit iterator (testable).
pub fn parse_from(args: impl IntoIterator<Item = String>) -> CommonArgs {
    let mut out = CommonArgs::default();
    let mut iter = args.into_iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--quick" => out.quick = true,
            "--csv" => out.csv = true,
            "--threads" => {
                out.threads = iter.next().and_then(|v| v.parse().ok());
            }
            _ => {}
        }
    }
    out
}

/// Builds a rayon pool of the requested size (or the default pool) and runs
/// `f` inside it.
pub fn with_pool<T: Send>(threads: Option<usize>, f: impl FnOnce() -> T + Send) -> T {
    match threads {
        Some(n) => rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("failed to build rayon pool")
            .install(f),
        None => f(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags() {
        let a = parse_from(v(&["--quick", "--threads", "4", "--csv"]));
        assert!(a.quick && a.csv);
        assert_eq!(a.threads, Some(4));
    }

    #[test]
    fn ignores_unknown() {
        let a = parse_from(v(&["--whatever"]));
        assert!(!a.quick && !a.csv && a.threads.is_none());
    }

    #[test]
    fn missing_thread_count_is_none() {
        let a = parse_from(v(&["--threads", "x"]));
        assert_eq!(a.threads, None);
    }

    #[test]
    fn with_pool_pins_thread_count() {
        let n = with_pool(Some(2), rayon::current_num_threads);
        assert_eq!(n, 2);
    }
}
