//! Criterion bench: offline quantization cost (greedy vs alternating) and
//! key-matrix packing throughput.

use biq_matrix::MatrixRng;
use biq_quant::alternating::alternating_quantize_matrix_rowwise;
use biq_quant::greedy_quantize_matrix_rowwise;
use biq_quant::packing::KeyMatrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_quantizers(c: &mut Criterion) {
    let mut g = MatrixRng::seed_from(0x9a7);
    let w = g.gaussian(512, 512, 0.0, 1.0);
    let mut group = c.benchmark_group("quantize_512x512");
    group.sample_size(10);
    for bits in [1usize, 3] {
        group.bench_with_input(BenchmarkId::new("greedy", bits), &bits, |b, &bits| {
            b.iter(|| black_box(greedy_quantize_matrix_rowwise(black_box(&w), bits)));
        });
        group.bench_with_input(BenchmarkId::new("alternating", bits), &bits, |b, &bits| {
            b.iter(|| black_box(alternating_quantize_matrix_rowwise(black_box(&w), bits, 5)));
        });
    }
    group.finish();

    let signs = g.signs(2048, 2048);
    let mut group = c.benchmark_group("pack_keys_2kx2k");
    group.sample_size(20);
    for mu in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("mu", mu), &mu, |b, &mu| {
            b.iter(|| black_box(KeyMatrix::pack(black_box(&signs), mu)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quantizers);
criterion_main!(benches);
