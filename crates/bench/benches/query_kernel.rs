//! Criterion microbench: the query/accumulate kernel under the two LUT
//! layouts (Fig. 6 ablation — KeyMajor should win for batched inputs), plus
//! the arena-reuse ablation (one-shot legacy facade vs warmed executor).

use biq_bench::workloads::binary_workload;
use biq_runtime::{compile, BackendSpec, Executor, PlanBuilder, QuantMethod, WeightSource};
use biqgemm_core::config::{BiqConfig, LutLayout};
use biqgemm_core::BiqGemm;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_query_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_layout");
    group.sample_size(20);
    let (m, n) = (2048, 1024);
    for b in [1usize, 32] {
        let w = binary_workload(m, n, b);
        for (name, layout) in
            [("key_major", LutLayout::KeyMajor), ("batch_major", LutLayout::BatchMajor)]
        {
            let engine =
                BiqGemm::from_signs(&w.signs, BiqConfig { layout, ..BiqConfig::default() });
            group.bench_with_input(BenchmarkId::new(name, b), &b, |bch, _| {
                bch.iter(|| black_box(engine.matmul(black_box(&w.x))));
            });
        }
    }
    group.finish();
}

fn bench_kernel_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_kernel_level");
    group.sample_size(20);
    let (m, n, b) = (2048, 1024, 32);
    let w = binary_workload(m, n, b);
    for level in biqgemm_core::simd::supported_levels() {
        let cfg =
            BiqConfig { kernel: biqgemm_core::KernelRequest::Exact(level), ..BiqConfig::default() };
        let engine = BiqGemm::from_signs(&w.signs, cfg);
        group.bench_function(level.name(), |bch| {
            bch.iter(|| black_box(engine.matmul(black_box(&w.x))));
        });
    }
    group.finish();
}

/// The refactor's headline: per-call allocation (legacy one-shot facade)
/// vs the executor's warmed arena, in the paper's small-batch regime. Both
/// sides run the identical `BiqConfig::default()` tile shapes so the only
/// difference is scratch reuse.
fn bench_arena_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("arena_reuse");
    group.sample_size(20);
    for (m, n, b) in [(512usize, 512usize, 1usize), (512, 512, 8), (2048, 1024, 1)] {
        let w = binary_workload(m, n, b);
        let engine = BiqGemm::from_signs(&w.signs, BiqConfig::default());
        let id = format!("{m}x{n}_b{b}");
        group.bench_with_input(BenchmarkId::new("one_shot", &id), &b, |bch, _| {
            bch.iter(|| black_box(engine.matmul(black_box(&w.x))));
        });
        let plan = PlanBuilder::new(m, n)
            .batch_hint(b)
            .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
            .config(BiqConfig::default())
            .build();
        let op = compile(&plan, WeightSource::Signs(&w.signs));
        let mut exec = Executor::warmed_for(&op);
        let mut y = vec![0.0f32; m * b];
        group.bench_with_input(BenchmarkId::new("executor_arena", &id), &b, |bch, _| {
            bch.iter(|| exec.run_into(&op, black_box(&w.x), black_box(&mut y)));
        });
    }
    group.finish();
}

/// The b = 1 serving path in isolation: `lut_gather` — the vectorized
/// width-1 query realising the canonical 8-partial accumulation tree —
/// per kernel level, over a full output column's worth of key rows
/// (m rows × n/µ chunks, the inner loop `layout.rs` runs for width-1
/// tiles). The end-to-end b = 1 numbers live in `arena_reuse` and
/// `BENCH_simd.json`; this group isolates the gather body itself.
fn bench_width1_gather(c: &mut Criterion) {
    use biqgemm_core::simd::{lut_gather, supported_levels};
    let mut group = c.benchmark_group("width1_gather");
    group.sample_size(20);
    let (m, n, mu) = (512usize, 512usize, 8usize);
    let chunks = n / mu;
    let table = 1usize << mu;
    // One width-1 bank (chunk c's table at bank[c*table..][..table]) and a
    // deterministic key row per output row — no Criterion-visible setup in
    // the timed body.
    let bank: Vec<f32> = (0..chunks * table)
        .map(|i| ((i as u32).wrapping_mul(2654435761) >> 8) as f32 / 1e7 - 0.8)
        .collect();
    let keys: Vec<u16> = (0..m * chunks)
        .map(|i| ((i as u32).wrapping_mul(40503) as usize >> 4) as u16 % table as u16)
        .collect();
    for level in supported_levels() {
        let k = biqgemm_core::KernelRequest::Exact(level).resolve().expect("supported");
        group.bench_function(level.name(), |bch| {
            bch.iter(|| {
                let mut acc = 0.0f32;
                for row in keys.chunks_exact(chunks) {
                    acc += lut_gather(black_box(&bank), table, row, k);
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_query_layouts,
    bench_kernel_levels,
    bench_arena_reuse,
    bench_width1_gather
);
criterion_main!(benches);
