//! Criterion microbench: the query/accumulate kernel under the two LUT
//! layouts (Fig. 6 ablation — KeyMajor should win for batched inputs), plus
//! the arena-reuse ablation (one-shot legacy facade vs warmed executor).

use biq_bench::workloads::binary_workload;
use biq_runtime::{compile, BackendSpec, Executor, PlanBuilder, QuantMethod, WeightSource};
use biqgemm_core::config::{BiqConfig, LutLayout};
use biqgemm_core::BiqGemm;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_query_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_layout");
    group.sample_size(20);
    let (m, n) = (2048, 1024);
    for b in [1usize, 32] {
        let w = binary_workload(m, n, b);
        for (name, layout) in
            [("key_major", LutLayout::KeyMajor), ("batch_major", LutLayout::BatchMajor)]
        {
            let engine =
                BiqGemm::from_signs(&w.signs, BiqConfig { layout, ..BiqConfig::default() });
            group.bench_with_input(BenchmarkId::new(name, b), &b, |bch, _| {
                bch.iter(|| black_box(engine.matmul(black_box(&w.x))));
            });
        }
    }
    group.finish();
}

fn bench_kernel_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_kernel_level");
    group.sample_size(20);
    let (m, n, b) = (2048, 1024, 32);
    let w = binary_workload(m, n, b);
    for level in biqgemm_core::simd::supported_levels() {
        let cfg =
            BiqConfig { kernel: biqgemm_core::KernelRequest::Exact(level), ..BiqConfig::default() };
        let engine = BiqGemm::from_signs(&w.signs, cfg);
        group.bench_function(level.name(), |bch| {
            bch.iter(|| black_box(engine.matmul(black_box(&w.x))));
        });
    }
    group.finish();
}

/// The refactor's headline: per-call allocation (legacy one-shot facade)
/// vs the executor's warmed arena, in the paper's small-batch regime. Both
/// sides run the identical `BiqConfig::default()` tile shapes so the only
/// difference is scratch reuse.
fn bench_arena_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("arena_reuse");
    group.sample_size(20);
    for (m, n, b) in [(512usize, 512usize, 1usize), (512, 512, 8), (2048, 1024, 1)] {
        let w = binary_workload(m, n, b);
        let engine = BiqGemm::from_signs(&w.signs, BiqConfig::default());
        let id = format!("{m}x{n}_b{b}");
        group.bench_with_input(BenchmarkId::new("one_shot", &id), &b, |bch, _| {
            bch.iter(|| black_box(engine.matmul(black_box(&w.x))));
        });
        let plan = PlanBuilder::new(m, n)
            .batch_hint(b)
            .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
            .config(BiqConfig::default())
            .build();
        let op = compile(&plan, WeightSource::Signs(&w.signs));
        let mut exec = Executor::warmed_for(&op);
        let mut y = vec![0.0f32; m * b];
        group.bench_with_input(BenchmarkId::new("executor_arena", &id), &b, |bch, _| {
            bch.iter(|| exec.run_into(&op, black_box(&w.x), black_box(&mut y)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_layouts, bench_kernel_levels, bench_arena_reuse);
criterion_main!(benches);
