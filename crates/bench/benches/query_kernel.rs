//! Criterion microbench: the query/accumulate kernel under the two LUT
//! layouts (Fig. 6 ablation — KeyMajor should win for batched inputs).

use biq_bench::workloads::binary_workload;
use biqgemm_core::config::{BiqConfig, LutLayout};
use biqgemm_core::BiqGemm;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_query_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_layout");
    group.sample_size(20);
    let (m, n) = (2048, 1024);
    for b in [1usize, 32] {
        let w = binary_workload(m, n, b);
        for (name, layout) in
            [("key_major", LutLayout::KeyMajor), ("batch_major", LutLayout::BatchMajor)]
        {
            let engine =
                BiqGemm::from_signs(&w.signs, BiqConfig { layout, ..BiqConfig::default() });
            group.bench_with_input(BenchmarkId::new(name, b), &b, |bch, _| {
                bch.iter(|| black_box(engine.matmul(black_box(&w.x))));
            });
        }
    }
    group.finish();
}

fn bench_simd_toggle(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_simd");
    group.sample_size(20);
    let (m, n, b) = (2048, 1024, 32);
    let w = binary_workload(m, n, b);
    for (name, simd) in [("avx2_dispatch", true), ("forced_scalar", false)] {
        let engine = BiqGemm::from_signs(&w.signs, BiqConfig { simd, ..BiqConfig::default() });
        group.bench_function(name, |bch| {
            bch.iter(|| black_box(engine.matmul(black_box(&w.x))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_layouts, bench_simd_toggle);
criterion_main!(benches);
