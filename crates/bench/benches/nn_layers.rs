//! Criterion bench: end-to-end Transformer-base encoder-layer inference,
//! fp32 vs BiQGEMM-quantized backends (the deployment-level payoff).

use biq_matrix::MatrixRng;
use biq_nn::linear::QuantMethod;
use biq_nn::transformer::{EncoderLayer, LayerBackend};
use biqgemm_core::BiqConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_encoder_layer(c: &mut Criterion) {
    let d_model = 512;
    let d_ff = 2048;
    let heads = 8;
    let seq = 18; // average sub-words per sentence (paper Table II)
    let x = MatrixRng::seed_from(0xd0c).gaussian_col(d_model, seq, 0.0, 1.0);
    let mut group = c.benchmark_group("encoder_layer_base_seq18");
    group.sample_size(10);

    let fp = {
        let mut g = MatrixRng::seed_from(0xbe1);
        EncoderLayer::random(&mut g, d_model, d_ff, heads, LayerBackend::Fp32 { parallel: false })
    };
    group.bench_function("fp32", |b| b.iter(|| black_box(fp.forward(black_box(&x)))));

    for bits in [1usize, 2, 3] {
        let layer = {
            let mut g = MatrixRng::seed_from(0xbe1);
            EncoderLayer::random(
                &mut g,
                d_model,
                d_ff,
                heads,
                LayerBackend::Biq {
                    bits,
                    method: QuantMethod::Greedy,
                    cfg: BiqConfig::default(),
                    parallel: false,
                },
            )
        };
        group.bench_function(format!("biqgemm_{bits}bit"), |b| {
            b.iter(|| black_box(layer.forward(black_box(&x))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encoder_layer);
criterion_main!(benches);
