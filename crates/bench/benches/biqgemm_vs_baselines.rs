//! Criterion bench: BiQGEMM against every baseline kernel at a paper-typical
//! shape (2K×2K weights, batch 32, 1-bit) plus the parallel schedules
//! ablation (RowParallel vs SharedLut).

use biq_bench::workloads::binary_workload;
use biq_gemm::packed_sgemm::DenseBinaryWeights;
use biq_gemm::unpack_gemm::gemm_with_unpack;
use biq_gemm::xnor::{xnor_gemm, XnorWeights};
use biq_gemm::{gemm_blocked, gemm_naive};
use biq_quant::packing::{PackedRowsU32, PackedRowsU64};
use biqgemm_core::config::Schedule;
use biqgemm_core::{BiqConfig, BiqGemm};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let (m, n, b) = (2048, 2048, 32);
    let w = binary_workload(m, n, b);
    let dense = w.signs.to_f32();
    let dense_bin = DenseBinaryWeights::unscaled(&w.signs);
    let packed32 = PackedRowsU32::pack(&w.signs);
    let xw = XnorWeights::new(vec![(vec![1.0; m], PackedRowsU64::pack(&w.signs))]);
    let engine = BiqGemm::from_signs(&w.signs, BiqConfig::default());

    let mut group = c.benchmark_group("kernels_2kx2k_b32");
    group.sample_size(12);
    group.bench_function("biqgemm_serial", |bch| {
        bch.iter(|| black_box(engine.matmul(black_box(&w.x))))
    });
    group.bench_function("biqgemm_parallel", |bch| {
        bch.iter(|| black_box(engine.matmul_parallel(black_box(&w.x))))
    });
    group.bench_function("gemm_naive", |bch| {
        bch.iter(|| black_box(gemm_naive(black_box(&dense), black_box(&w.x))))
    });
    group.bench_function("gemm_blocked", |bch| {
        bch.iter(|| black_box(gemm_blocked(black_box(&dense), black_box(&w.x))))
    });
    group.bench_function("sgemm", |bch| {
        bch.iter(|| black_box(dense_bin.sgemm_blocked(black_box(&w.x))))
    });
    group.bench_function("unpack_gemm", |bch| {
        bch.iter(|| black_box(gemm_with_unpack(black_box(&packed32), black_box(&w.x))))
    });
    group.bench_function("xnor", |bch| {
        bch.iter(|| {
            let k = biqgemm_core::KernelRequest::Auto.resolve().expect("auto resolves");
            black_box(xnor_gemm(black_box(&xw), black_box(&w.x), k))
        })
    });
    group.finish();

    let mut group = c.benchmark_group("schedule_ablation_2kx2k_b32");
    group.sample_size(12);
    for (name, schedule) in
        [("row_parallel", Schedule::RowParallel), ("shared_lut", Schedule::SharedLut)]
    {
        let engine = BiqGemm::from_signs(&w.signs, BiqConfig { schedule, ..BiqConfig::default() });
        group.bench_function(name, |bch| {
            bch.iter(|| black_box(engine.matmul_parallel(black_box(&w.x))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
