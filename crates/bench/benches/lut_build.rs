//! Criterion microbench: lookup-table construction — Algorithm 1 dynamic
//! programming vs brute-force `M_µ · x` (the Eq. 6 `T_c,dp` vs `T_c,mm`
//! ablation). Expected: DP wins by ≈µ× at every µ.

use biq_matrix::MatrixRng;
use biqgemm_core::lut::{build_lut_bruteforce, build_lut_dp};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_lut_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("lut_build");
    let mut g = MatrixRng::seed_from(0x10f);
    for mu in [4usize, 8, 12] {
        let x = g.gaussian_vec(mu);
        let mut out = vec![0.0f32; 1 << mu];
        group.bench_with_input(BenchmarkId::new("dp", mu), &mu, |b, _| {
            b.iter(|| build_lut_dp(black_box(&x), black_box(&mut out)));
        });
        group.bench_with_input(BenchmarkId::new("bruteforce", mu), &mu, |b, _| {
            b.iter(|| build_lut_bruteforce(black_box(&x), black_box(&mut out)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lut_build);
criterion_main!(benches);
