//! Property tests for the matrix substrate: layout conversions, reshape
//! coverage, and container round-trips over arbitrary data.

use biq_matrix::io::{
    decode_col_matrix, decode_matrix, decode_sign_matrix, encode_col_matrix, encode_matrix,
    encode_sign_matrix,
};
use biq_matrix::reshape::{chunk_len, num_chunks, ChunkedInput};
use biq_matrix::{ColMatrix, Matrix};
use proptest::prelude::*;

fn arb_matrix(max_r: usize, max_c: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_r, 1..=max_c).prop_flat_map(|(r, c)| {
        proptest::collection::vec(any::<f32>(), r * c).prop_map(move |v| Matrix::from_vec(r, c, v))
    })
}

fn arb_col_matrix(max_r: usize, max_c: usize) -> impl Strategy<Value = ColMatrix> {
    (1..=max_r, 1..=max_c).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-1e6f32..1e6, r * c)
            .prop_map(move |v| ColMatrix::from_vec(r, c, v))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Transpose is an involution.
    #[test]
    fn transpose_involution(m in arb_matrix(12, 12)) {
        // Skip NaN inequality noise by comparing bit patterns.
        let t2 = m.transpose().transpose();
        let bits = |x: &Matrix| -> Vec<u32> { x.as_slice().iter().map(|v| v.to_bits()).collect() };
        prop_assert_eq!(bits(&t2), bits(&m));
    }

    /// Row-major → col-major → row-major is the identity.
    #[test]
    fn layout_round_trip(m in arb_matrix(10, 14)) {
        let back = m.to_col_major().to_row_major();
        let bits = |x: &Matrix| -> Vec<u32> { x.as_slice().iter().map(|v| v.to_bits()).collect() };
        prop_assert_eq!(bits(&back), bits(&m));
    }

    /// Zero-copy transposed reinterpretation agrees with the copying
    /// transpose.
    #[test]
    fn zero_copy_transpose_agrees(m in arb_matrix(9, 9)) {
        let view = m.clone().into_col_major_transposed();
        let copy = m.transpose();
        for i in 0..copy.rows() {
            for j in 0..copy.cols() {
                prop_assert_eq!(view.get(i, j).to_bits(), copy.get(i, j).to_bits());
            }
        }
    }

    /// Chunks partition every column exactly, for every µ.
    #[test]
    fn chunks_partition_columns(x in arb_col_matrix(40, 4), mu in 1usize..=16) {
        let ci = ChunkedInput::new(&x, mu);
        let n = x.rows();
        prop_assert_eq!(ci.num_chunks(), num_chunks(n, mu));
        for alpha in 0..x.cols() {
            let mut total = 0;
            for beta in 0..ci.num_chunks() {
                let c = ci.chunk(alpha, beta);
                prop_assert_eq!(c.len(), chunk_len(n, mu, beta));
                prop_assert_eq!(c, &x.col(alpha)[total..total + c.len()]);
                total += c.len();
            }
            prop_assert_eq!(total, n);
        }
    }

    /// I/O containers round-trip bit-exactly (including NaN payloads).
    #[test]
    fn matrix_io_round_trip(m in arb_matrix(8, 8)) {
        let d = decode_matrix(encode_matrix(&m)).unwrap();
        let bits = |x: &Matrix| -> Vec<u32> { x.as_slice().iter().map(|v| v.to_bits()).collect() };
        prop_assert_eq!(bits(&d), bits(&m));
    }

    /// Column-major container round-trips.
    #[test]
    fn col_matrix_io_round_trip(m in arb_col_matrix(8, 8)) {
        let d = decode_col_matrix(encode_col_matrix(&m)).unwrap();
        prop_assert_eq!(d, m);
    }

    /// Sign container round-trips.
    #[test]
    fn sign_io_round_trip(
        (r, c) in (1usize..=8, 1usize..=20),
        seed in any::<u64>(),
    ) {
        let s = biq_matrix::MatrixRng::seed_from(seed).signs(r, c);
        prop_assert_eq!(decode_sign_matrix(encode_sign_matrix(&s)).unwrap(), s);
    }
}
