//! Row-major and column-major dense `f32` matrices.
//!
//! Both types are thin, allocation-owning wrappers around a `Vec<f32>`; they
//! deliberately expose their backing slice so kernels can work on raw data
//! without bounds checks in inner loops (see the Bounds Checks chapter of the
//! Rust Performance Book: hoist a slice, then iterate).

/// A dense row-major `rows × cols` matrix of `f32`.
///
/// Element `(i, j)` lives at `data[i * cols + j]`; row `i` is the contiguous
/// slice `data[i*cols .. (i+1)*cols]`. Used for weights (`m × n`) and outputs
/// (`m × b`).
///
/// Storage is a [`PodStore`](crate::store::PodStore): normally an owned
/// `Vec<f32>`, but a matrix
/// deserialized from a model artifact borrows the artifact's byte buffer
/// instead ([`Matrix::from_shared`]). Mutation copies-on-write, so the
/// read-only kernel paths never pay for the distinction.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: crate::store::PodStore<f32>,
}

impl Matrix {
    /// Creates a zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols].into() }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols].into() }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data: data.into() }
    }

    /// Wraps a zero-copy view over a loaded artifact buffer — the
    /// deserialization path for dense fp32 payloads.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_shared(rows: usize, cols: usize, data: crate::store::PodView<f32>) -> Self {
        assert_eq!(
            data.as_slice().len(),
            rows * cols,
            "shared buffer length {} does not match {rows}x{cols}",
            data.as_slice().len()
        );
        Self { rows, cols, data: data.into() }
    }

    /// True when the backing storage is a shared artifact view (no owned
    /// allocation was made for the payload).
    pub fn is_shared(&self) -> bool {
        self.data.is_shared()
    }

    /// Builds a matrix by evaluating `f(i, j)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data: data.into() }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        let idx = i * self.cols + j;
        self.data.as_mut_slice()[idx] = v;
    }

    /// Contiguous row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable contiguous row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let range = i * self.cols..(i + 1) * self.cols;
        &mut self.data.as_mut_slice()[range]
    }

    /// The backing row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The backing row-major slice, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.data.as_mut_slice()
    }

    /// Consumes the matrix and returns its buffer (copies only when the
    /// matrix was a shared artifact view).
    pub fn into_vec(self) -> Vec<f32> {
        self.data.into_vec()
    }

    /// Gathers column `j` into a fresh vector (strided read).
    pub fn col_to_vec(&self, j: usize) -> Vec<f32> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Returns the transpose as a new row-major matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Reinterprets the same data as a column-major matrix of the transposed
    /// shape without copying: a row-major `r × c` buffer is bit-identical to a
    /// column-major `c × r` buffer.
    pub fn into_col_major_transposed(self) -> ColMatrix {
        ColMatrix { rows: self.cols, cols: self.rows, data: self.data.into_vec() }
    }

    /// Copies this matrix into column-major layout (same logical shape).
    pub fn to_col_major(&self) -> ColMatrix {
        let mut out = ColMatrix::zeros(self.rows, self.cols);
        for j in 0..self.cols {
            for i in 0..self.rows {
                out.set(i, j, self.get(i, j));
            }
        }
        out
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch in add_assign");
        for (a, b) in self.data.as_mut_slice().iter_mut().zip(rhs.data.iter()) {
            *a += *b;
        }
    }

    /// Scales every element in place.
    pub fn scale(&mut self, s: f32) {
        for a in self.data.as_mut_slice() {
            *a *= s;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| (*v as f64).powi(2)).sum::<f64>().sqrt() as f32
    }
}

/// A dense column-major `rows × cols` matrix of `f32`.
///
/// Element `(i, j)` lives at `data[j * rows + i]`; column `j` is the
/// contiguous slice `data[j*rows .. (j+1)*rows]`. Used for inputs (`n × b`)
/// where lookup-table construction slices each batch column into LUT-unit
/// sub-vectors.
#[derive(Clone, Debug, PartialEq)]
pub struct ColMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl ColMatrix {
    /// Creates a zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Wraps an existing column-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(i, j)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// A single-column matrix (a vector).
    pub fn from_column(v: Vec<f32>) -> Self {
        let rows = v.len();
        Self { rows, cols: 1, data: v }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.rows + i]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.rows + i] = v;
    }

    /// Contiguous column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> &[f32] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutable contiguous column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f32] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// The backing column-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The backing column-major slice, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Copies into row-major layout (same logical shape).
    pub fn to_row_major(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| self.get(i, j))
    }

    /// Reinterprets the same data as a row-major matrix of the transposed
    /// shape without copying.
    pub fn into_row_major_transposed(self) -> Matrix {
        Matrix { rows: self.cols, cols: self.rows, data: self.data.into() }
    }

    /// Consumes the matrix, returning the backing column-major buffer
    /// (batching layers reclaim pack buffers this way instead of
    /// reallocating per batch).
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_contents() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        assert!(!m.is_empty());
        assert!(Matrix::zeros(0, 5).is_empty());
    }

    #[test]
    fn row_major_indexing() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn col_major_indexing() {
        let m = ColMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        // column-major: columns are [1,2], [3,4], [5,6]
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 0), 2.0);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.col(2), &[5.0, 6.0]);
    }

    #[test]
    fn from_fn_matches_get() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 10 + j) as f32);
        let c = ColMatrix::from_fn(3, 5, |i, j| (i * 10 + j) as f32);
        for i in 0..3 {
            for j in 0..5 {
                assert_eq!(m.get(i, j), (i * 10 + j) as f32);
                assert_eq!(c.get(i, j), (i * 10 + j) as f32);
            }
        }
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(4, 7, |i, j| (i * 100 + j) as f32);
        let t = m.transpose();
        assert_eq!(t.shape(), (7, 4));
        for i in 0..4 {
            for j in 0..7 {
                assert_eq!(t.get(j, i), m.get(i, j));
            }
        }
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn layout_conversions_agree() {
        let m = Matrix::from_fn(5, 3, |i, j| (i as f32) - (j as f32) * 0.5);
        let c = m.to_col_major();
        assert_eq!(c.to_row_major(), m);
        // zero-copy transposed reinterpretation
        let ct = m.clone().into_col_major_transposed();
        assert_eq!(ct.shape(), (3, 5));
        for i in 0..5 {
            for j in 0..3 {
                assert_eq!(ct.get(j, i), m.get(i, j));
            }
        }
        let back = ct.into_row_major_transposed();
        assert_eq!(back, m);
    }

    #[test]
    fn identity_works() {
        let id = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(id.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Matrix::filled(2, 2, 1.5);
        let b = Matrix::filled(2, 2, 0.5);
        a.add_assign(&b);
        assert!(a.as_slice().iter().all(|&v| v == 2.0));
        a.scale(2.0);
        assert!(a.as_slice().iter().all(|&v| v == 4.0));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_assign_shape_mismatch_panics() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        a.add_assign(&b);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_wrong_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 5]);
    }

    #[test]
    fn frobenius_norm() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn col_to_vec_gathers() {
        let m = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f32);
        assert_eq!(m.col_to_vec(1), vec![1.0, 3.0, 5.0]);
    }
}
