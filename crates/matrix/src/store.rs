//! Shared typed storage over byte buffers — the substrate of zero-copy
//! artifact loading.
//!
//! A compiled-model artifact is one owned byte buffer ([`bytes::Bytes`]);
//! every packed payload inside it (keys, scales, sign planes, dense
//! weights) is a *view* into that buffer, not a fresh allocation. Two types
//! carry that through the workspace's data structures:
//!
//! * [`PodView<T>`] — an immutable `&[T]` reinterpretation of a `Bytes`
//!   range. Construction validates alignment, element-size divisibility and
//!   byte order at runtime, so the cast is sound; the view keeps the owner
//!   alive.
//! * [`PodStore<T>`] — what container types actually hold: either an owned
//!   `Vec<T>` (the historical representation, used by every constructor
//!   that computes its data) or a shared [`PodView<T>`] (the deserialized
//!   representation). Mutation copies-on-write, so read-only consumers —
//!   all the kernels — never pay a copy.

use bytes::Bytes;
use std::fmt;
use std::ops::Deref;

/// Element types that may be reinterpreted from little-endian bytes.
///
/// # Safety
/// Implementors must be plain-old-data: any bit pattern of `size_of::<T>()`
/// bytes is a valid value (true for the integer and IEEE float primitives
/// this is implemented for).
pub unsafe trait Pod: Copy + PartialEq + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for i8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for f32 {}

/// Why a byte range could not be viewed as `&[T]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PodCastError {
    /// The buffer's base pointer is not aligned for `T`.
    Misaligned,
    /// The buffer length is not a multiple of `size_of::<T>()`.
    BadLength,
    /// The host is big-endian; stored payloads are little-endian.
    BigEndianHost,
}

impl fmt::Display for PodCastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PodCastError::Misaligned => write!(f, "buffer misaligned for element type"),
            PodCastError::BadLength => write!(f, "buffer length not a multiple of element size"),
            PodCastError::BigEndianHost => {
                write!(f, "little-endian payload cannot be viewed on a big-endian host")
            }
        }
    }
}

impl std::error::Error for PodCastError {}

/// An immutable `&[T]` view over a [`Bytes`] buffer (which it keeps alive).
pub struct PodView<T> {
    owner: Bytes,
    ptr: *const T,
    len: usize,
}

// SAFETY: the view is immutable and the owner is an `Arc`-backed buffer;
// `&[T]` of a `Pod` type is freely shareable across threads.
unsafe impl<T: Pod> Send for PodView<T> {}
unsafe impl<T: Pod> Sync for PodView<T> {}

impl<T: Pod> PodView<T> {
    /// Views the unconsumed bytes of `owner` as `&[T]`.
    ///
    /// Fails (rather than copying or panicking) when the base pointer is
    /// misaligned for `T`, the length is ragged, or the host is big-endian.
    /// There is no silent copy fallback: callers propagate the error (an
    /// artifact that cannot be viewed zero-copy fails to load), keeping
    /// "loading never copies payloads" an invariant rather than a fast
    /// path.
    pub fn new(owner: Bytes) -> Result<Self, PodCastError> {
        if cfg!(target_endian = "big") && std::mem::size_of::<T>() > 1 {
            return Err(PodCastError::BigEndianHost);
        }
        let bytes: &[u8] = owner.as_ref();
        let size = std::mem::size_of::<T>();
        if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<T>()) {
            return Err(PodCastError::Misaligned);
        }
        if size == 0 || !bytes.len().is_multiple_of(size) {
            return Err(PodCastError::BadLength);
        }
        let ptr = bytes.as_ptr() as *const T;
        let len = bytes.len() / size;
        Ok(Self { owner, ptr, len })
    }

    /// The viewed elements.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: `new` checked alignment and length; `owner` pins the
        // allocation for the lifetime of `self`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// The byte buffer backing this view.
    pub fn owner(&self) -> &Bytes {
        &self.owner
    }
}

impl<T: Pod> Clone for PodView<T> {
    fn clone(&self) -> Self {
        Self { owner: self.owner.clone(), ptr: self.ptr, len: self.len }
    }
}

impl<T: Pod + fmt::Debug> fmt::Debug for PodView<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PodView").field("len", &self.len).finish()
    }
}

impl<T: Pod> Deref for PodView<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

/// Owned-or-shared element storage with copy-on-write mutation.
#[derive(Clone, Debug)]
pub enum PodStore<T: Pod> {
    /// A plain owned buffer.
    Owned(Vec<T>),
    /// A zero-copy view into a shared byte buffer (a loaded artifact).
    Shared(PodView<T>),
}

impl<T: Pod + fmt::Debug> PodStore<T> {
    /// The elements, whichever representation backs them.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            PodStore::Owned(v) => v,
            PodStore::Shared(view) => view.as_slice(),
        }
    }

    /// Mutable access; a shared store is first materialised into an owned
    /// copy (copy-on-write).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if let PodStore::Shared(view) = self {
            *self = PodStore::Owned(view.as_slice().to_vec());
        }
        match self {
            PodStore::Owned(v) => v,
            PodStore::Shared(_) => unreachable!("just materialised"),
        }
    }

    /// Consumes the store into an owned `Vec` (copies only if shared).
    pub fn into_vec(self) -> Vec<T> {
        match self {
            PodStore::Owned(v) => v,
            PodStore::Shared(view) => view.as_slice().to_vec(),
        }
    }

    /// True when backed by a shared byte buffer (no owned allocation).
    pub fn is_shared(&self) -> bool {
        matches!(self, PodStore::Shared(_))
    }

    /// Element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl<T: Pod> From<Vec<T>> for PodStore<T> {
    fn from(v: Vec<T>) -> Self {
        PodStore::Owned(v)
    }
}

impl<T: Pod> From<PodView<T>> for PodStore<T> {
    fn from(v: PodView<T>) -> Self {
        PodStore::Shared(v)
    }
}

impl<T: Pod + fmt::Debug> Deref for PodStore<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod + fmt::Debug> PartialEq for PodStore<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod + Eq + fmt::Debug> Eq for PodStore<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn le_bytes_u16(vals: &[u16]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn view_reinterprets_without_copying() {
        let vals = [1u16, 2, 0xBEEF, 65535];
        let owner = Bytes::from(le_bytes_u16(&vals));
        let base = owner.as_ref().as_ptr() as usize;
        let view = PodView::<u16>::new(owner).unwrap();
        assert_eq!(view.as_slice(), &vals);
        assert_eq!(view.as_slice().as_ptr() as usize, base, "no copy");
    }

    #[test]
    fn ragged_length_rejected() {
        let owner = Bytes::from(vec![0u8; 7]);
        assert_eq!(PodView::<u16>::new(owner).unwrap_err(), PodCastError::BadLength);
    }

    #[test]
    fn misaligned_offset_rejected_or_viewed_consistently() {
        // An odd offset into an even-aligned allocation must fail for u16.
        let owner = Bytes::from(vec![0u8; 64]);
        let base = owner.as_ref().as_ptr() as usize;
        let odd = owner.slice(1..9);
        if base.is_multiple_of(2) {
            assert_eq!(PodView::<u16>::new(odd).unwrap_err(), PodCastError::Misaligned);
        }
    }

    #[test]
    fn store_copy_on_write_preserves_reads() {
        let owner = Bytes::from(le_bytes_u16(&[10, 20, 30]));
        let mut store: PodStore<u16> = PodView::new(owner).unwrap().into();
        assert!(store.is_shared());
        assert_eq!(&store[..], &[10, 20, 30]);
        store.as_mut_slice()[1] = 99;
        assert!(!store.is_shared(), "mutation materialises an owned copy");
        assert_eq!(&store[..], &[10, 99, 30]);
    }

    #[test]
    fn stores_compare_by_contents_across_representations() {
        let owned: PodStore<u16> = vec![7u16, 8].into();
        let shared: PodStore<u16> =
            PodView::new(Bytes::from(le_bytes_u16(&[7, 8]))).unwrap().into();
        assert_eq!(owned, shared);
    }
}
