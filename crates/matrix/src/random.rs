//! Seeded workload generators.
//!
//! The paper evaluates on "synthetic matrices filled by random numbers"
//! (Section IV-A). Everything here is deterministic given a seed so that
//! benchmarks and tests are reproducible run to run.
//!
//! Gaussian sampling is implemented with the Box–Muller transform rather than
//! pulling in `rand_distr`, keeping the dependency set to the approved list.

use crate::dense::{ColMatrix, Matrix};
use crate::sign::SignMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded generator of random matrices and vectors.
///
/// ```
/// use biq_matrix::MatrixRng;
/// let mut g = MatrixRng::seed_from(42);
/// let w = g.gaussian(8, 16, 0.0, 1.0);
/// assert_eq!(w.shape(), (8, 16));
/// ```
pub struct MatrixRng {
    rng: StdRng,
    /// Spare Gaussian sample cached by Box–Muller (it produces pairs).
    spare: Option<f32>,
}

impl MatrixRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), spare: None }
    }

    /// One `f32` uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.rng.random::<f32>()
    }

    /// One standard-normal sample via Box–Muller.
    pub fn standard_normal(&mut self) -> f32 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        // Draw u1 in (0, 1] to keep ln() finite.
        let u1: f64 = 1.0 - self.rng.random::<f64>();
        let u2: f64 = self.rng.random::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some((r * theta.sin()) as f32);
        (r * theta.cos()) as f32
    }

    /// One Gaussian sample with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.standard_normal()
    }

    /// Row-major `rows × cols` matrix of `N(mean, std²)` samples.
    pub fn gaussian(&mut self, rows: usize, cols: usize, mean: f32, std: f32) -> Matrix {
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| self.normal(mean, std)).collect())
    }

    /// Column-major `rows × cols` matrix of `N(mean, std²)` samples.
    pub fn gaussian_col(&mut self, rows: usize, cols: usize, mean: f32, std: f32) -> ColMatrix {
        ColMatrix::from_vec(rows, cols, (0..rows * cols).map(|_| self.normal(mean, std)).collect())
    }

    /// Row-major matrix of uniform samples in `[lo, hi)`.
    pub fn uniform(&mut self, rows: usize, cols: usize, lo: f32, hi: f32) -> Matrix {
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| self.uniform_f32(lo, hi)).collect())
    }

    /// Column-major matrix of uniform samples in `[lo, hi)`.
    pub fn uniform_col(&mut self, rows: usize, cols: usize, lo: f32, hi: f32) -> ColMatrix {
        ColMatrix::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|_| self.uniform_f32(lo, hi)).collect(),
        )
    }

    /// Random `{−1,+1}` matrix with fair coin flips.
    pub fn signs(&mut self, rows: usize, cols: usize) -> SignMatrix {
        let mut flips = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            flips.push(if self.rng.random::<bool>() { 1i8 } else { -1i8 });
        }
        SignMatrix::from_vec(rows, cols, flips)
    }

    /// Row-major matrix of *small integers* in `[-range, range]`, stored as
    /// `f32`. Sums of a few thousand such values stay exactly representable,
    /// so kernels with different accumulation orders can be compared
    /// bit-exactly.
    pub fn small_int_matrix(&mut self, rows: usize, cols: usize, range: i32) -> Matrix {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|_| self.rng.random_range(-range..=range) as f32).collect(),
        )
    }

    /// Column-major variant of [`Self::small_int_matrix`].
    pub fn small_int_col(&mut self, rows: usize, cols: usize, range: i32) -> ColMatrix {
        ColMatrix::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|_| self.rng.random_range(-range..=range) as f32).collect(),
        )
    }

    /// Random vector of `N(0,1)` samples.
    pub fn gaussian_vec(&mut self, len: usize) -> Vec<f32> {
        (0..len).map(|_| self.standard_normal()).collect()
    }

    /// Access the underlying RNG for ad-hoc draws.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = MatrixRng::seed_from(7).gaussian(4, 4, 0.0, 1.0);
        let b = MatrixRng::seed_from(7).gaussian(4, 4, 0.0, 1.0);
        assert_eq!(a, b);
        let c = MatrixRng::seed_from(8).gaussian(4, 4, 0.0, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut g = MatrixRng::seed_from(123);
        let m = g.gaussian(100, 100, 2.0, 3.0);
        let n = m.len() as f64;
        let mean: f64 = m.as_slice().iter().map(|&v| v as f64).sum::<f64>() / n;
        let var: f64 =
            m.as_slice().iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut g = MatrixRng::seed_from(5);
        let m = g.uniform(32, 32, -1.5, 2.5);
        assert!(m.as_slice().iter().all(|&v| (-1.5..2.5).contains(&v)));
    }

    #[test]
    fn signs_are_all_pm_one_and_roughly_balanced() {
        let mut g = MatrixRng::seed_from(99);
        let s = g.signs(64, 64);
        let plus = s.as_slice().iter().filter(|&&v| v == 1).count();
        assert!(s.as_slice().iter().all(|&v| v == 1 || v == -1));
        let frac = plus as f64 / (64.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.05, "plus fraction {frac}");
    }

    #[test]
    fn small_int_matrix_contains_integers_in_range() {
        let mut g = MatrixRng::seed_from(17);
        let m = g.small_int_matrix(16, 16, 4);
        for &v in m.as_slice() {
            assert_eq!(v, v.trunc());
            assert!((-4.0..=4.0).contains(&v));
        }
    }

    #[test]
    fn col_and_row_generators_share_distribution_shape() {
        let mut g = MatrixRng::seed_from(3);
        let c = g.gaussian_col(10, 3, 0.0, 1.0);
        assert_eq!(c.shape(), (10, 3));
        let u = g.uniform_col(4, 4, 0.0, 1.0);
        assert!(u.as_slice().iter().all(|&v| (0.0..1.0).contains(&v)));
    }
}
