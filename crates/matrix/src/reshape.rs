//! The paper's Definition 2 reshape and LUT-unit sub-vector accessors.
//!
//! Definition 2: given an `m × n` matrix `A`, `A^r_µ` is the `µ × (m·n/µ)`
//! matrix reshaped from `A` *while maintaining column-wise traversal*. For a
//! column-major input `X ∈ R^{n×b}` this means each batch column is cut into
//! `n/µ` consecutive sub-vectors of length `µ` (Definition 4:
//! `x^β_α = x_α[µβ .. µβ+µ−1]`, Eq. 4 of the paper). Because [`ColMatrix`]
//! stores columns contiguously, a sub-vector is a plain slice — no copy.
//!
//! When `µ` does not divide `n`, the final sub-vector of each column is
//! *ragged* (shorter than `µ`). All consumers in this workspace handle the
//! ragged tail explicitly; [`ChunkedInput::chunk`] exposes it as a short
//! slice.

use crate::dense::ColMatrix;

/// Number of LUT-unit chunks a length-`n` column splits into, including a
/// ragged tail when `µ ∤ n`.
#[inline]
pub fn num_chunks(n: usize, mu: usize) -> usize {
    assert!(mu > 0, "LUT-unit µ must be positive");
    n.div_ceil(mu)
}

/// Length of chunk `beta` of a length-`n` column under LUT-unit `mu`
/// (equal to `mu` except possibly for the last chunk).
#[inline]
pub fn chunk_len(n: usize, mu: usize, beta: usize) -> usize {
    let start = beta * mu;
    debug_assert!(start < n, "chunk index out of range");
    mu.min(n - start)
}

/// A view of a column-major input matrix as the 3-D tensor
/// `X̂ ∈ R^{(n/µ) × b × µ}` used by Algorithm 2 of the paper: indexing is
/// `(chunk β, batch α) ↦ x^β_α`.
#[derive(Clone, Copy, Debug)]
pub struct ChunkedInput<'a> {
    x: &'a ColMatrix,
    mu: usize,
}

impl<'a> ChunkedInput<'a> {
    /// Wraps `x` (shape `n × b`) with LUT-unit `mu`.
    ///
    /// # Panics
    /// Panics if `mu == 0` or `x` has zero rows.
    pub fn new(x: &'a ColMatrix, mu: usize) -> Self {
        assert!(mu > 0, "LUT-unit µ must be positive");
        assert!(x.rows() > 0, "input must have at least one row");
        Self { x, mu }
    }

    /// The LUT-unit.
    #[inline]
    pub fn mu(&self) -> usize {
        self.mu
    }

    /// Input size `n`.
    #[inline]
    pub fn input_size(&self) -> usize {
        self.x.rows()
    }

    /// Batch size `b`.
    #[inline]
    pub fn batch(&self) -> usize {
        self.x.cols()
    }

    /// Number of chunks per column (`⌈n/µ⌉`).
    #[inline]
    pub fn num_chunks(&self) -> usize {
        num_chunks(self.x.rows(), self.mu)
    }

    /// The sub-vector `x^β_α` (Definition 4). The returned slice has length
    /// `µ`, or less for the ragged final chunk.
    #[inline]
    pub fn chunk(&self, alpha: usize, beta: usize) -> &'a [f32] {
        let n = self.x.rows();
        let start = beta * self.mu;
        let end = (start + self.mu).min(n);
        &self.x.col(alpha)[start..end]
    }

    /// The underlying matrix.
    #[inline]
    pub fn matrix(&self) -> &'a ColMatrix {
        self.x
    }
}

/// Materialises the Definition 2 reshape `X ↦ X^r_µ` as a new column-major
/// `µ × (n·b/µ)` matrix (requires `µ | n`). Mostly useful for documentation
/// and tests — kernels use [`ChunkedInput`] which is zero-copy.
pub fn reshape_r_mu(x: &ColMatrix, mu: usize) -> ColMatrix {
    let (n, b) = x.shape();
    assert!(mu > 0 && n % mu == 0, "reshape_r_mu requires µ | n (n={n}, µ={mu})");
    let chunks_per_col = n / mu;
    let mut out = ColMatrix::zeros(mu, chunks_per_col * b);
    for alpha in 0..b {
        let col = x.col(alpha);
        for beta in 0..chunks_per_col {
            let dst = out.col_mut(alpha * chunks_per_col + beta);
            dst.copy_from_slice(&col[beta * mu..(beta + 1) * mu]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, b: usize) -> ColMatrix {
        ColMatrix::from_fn(n, b, |i, j| (j * 1000 + i) as f32)
    }

    #[test]
    fn num_chunks_rounds_up() {
        assert_eq!(num_chunks(12, 4), 3);
        assert_eq!(num_chunks(13, 4), 4);
        assert_eq!(num_chunks(1, 8), 1);
    }

    #[test]
    fn chunk_len_handles_ragged_tail() {
        assert_eq!(chunk_len(10, 4, 0), 4);
        assert_eq!(chunk_len(10, 4, 1), 4);
        assert_eq!(chunk_len(10, 4, 2), 2);
    }

    #[test]
    fn chunks_cover_column_exactly() {
        let x = sample(10, 2);
        let ci = ChunkedInput::new(&x, 4);
        assert_eq!(ci.num_chunks(), 3);
        let mut rebuilt = Vec::new();
        for beta in 0..ci.num_chunks() {
            rebuilt.extend_from_slice(ci.chunk(1, beta));
        }
        assert_eq!(rebuilt, x.col(1));
    }

    #[test]
    fn chunk_matches_definition_4() {
        let x = sample(12, 3);
        let ci = ChunkedInput::new(&x, 4);
        // x^1_2 = x_2[4..8]
        assert_eq!(ci.chunk(2, 1), &x.col(2)[4..8]);
        assert_eq!(ci.chunk(2, 1).len(), 4);
    }

    #[test]
    fn reshape_r_mu_matches_definition_2() {
        // Column-wise traversal: X^r_µ column (α * n/µ + β) equals x^β_α.
        let x = sample(8, 2);
        let r = reshape_r_mu(&x, 4);
        assert_eq!(r.shape(), (4, 4));
        let ci = ChunkedInput::new(&x, 4);
        for alpha in 0..2 {
            for beta in 0..2 {
                assert_eq!(r.col(alpha * 2 + beta), ci.chunk(alpha, beta));
            }
        }
    }

    #[test]
    #[should_panic(expected = "requires µ | n")]
    fn reshape_rejects_ragged() {
        let x = sample(10, 1);
        let _ = reshape_r_mu(&x, 4);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_mu_rejected() {
        let x = sample(4, 1);
        let _ = ChunkedInput::new(&x, 0);
    }
}
