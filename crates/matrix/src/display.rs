//! Compact pretty-printing for small matrices (examples and debugging).

use crate::dense::{ColMatrix, Matrix};
use crate::sign::SignMatrix;
use std::fmt::Write as _;

/// Formats at most `max_rows × max_cols` of a row-major matrix, eliding the
/// rest with ellipses.
pub fn format_matrix(m: &Matrix, max_rows: usize, max_cols: usize) -> String {
    let mut s = String::new();
    let rows = m.rows().min(max_rows);
    let cols = m.cols().min(max_cols);
    let _ = writeln!(s, "Matrix {}x{} [", m.rows(), m.cols());
    for i in 0..rows {
        s.push_str("  ");
        for j in 0..cols {
            let _ = write!(s, "{:>9.4} ", m.get(i, j));
        }
        if m.cols() > cols {
            s.push_str("...");
        }
        s.push('\n');
    }
    if m.rows() > rows {
        s.push_str("  ...\n");
    }
    s.push(']');
    s
}

/// Formats a column-major matrix the same way.
pub fn format_col_matrix(m: &ColMatrix, max_rows: usize, max_cols: usize) -> String {
    format_matrix(&m.to_row_major(), max_rows, max_cols)
}

/// Formats a sign matrix with `+`/`-` glyphs.
pub fn format_sign_matrix(m: &SignMatrix, max_rows: usize, max_cols: usize) -> String {
    let mut s = String::new();
    let rows = m.rows().min(max_rows);
    let cols = m.cols().min(max_cols);
    let _ = writeln!(s, "SignMatrix {}x{} [", m.rows(), m.cols());
    for i in 0..rows {
        s.push_str("  ");
        for j in 0..cols {
            s.push(if m.get(i, j) > 0 { '+' } else { '-' });
        }
        if m.cols() > cols {
            s.push_str(" ...");
        }
        s.push('\n');
    }
    if m.rows() > rows {
        s.push_str("  ...\n");
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_matrix_elides() {
        let m = Matrix::from_fn(10, 10, |i, j| (i + j) as f32);
        let s = format_matrix(&m, 2, 3);
        assert!(s.contains("Matrix 10x10"));
        assert!(s.contains("..."));
        // 2 shown rows only
        assert_eq!(s.lines().count(), 5); // header + 2 rows + "..." + "]"
    }

    #[test]
    fn format_sign_matrix_uses_glyphs() {
        let s = SignMatrix::from_fn(2, 2, |i, j| (i + j) % 2 == 0);
        let out = format_sign_matrix(&s, 4, 4);
        assert!(out.contains("+-"));
        assert!(out.contains("-+"));
    }

    #[test]
    fn format_col_matrix_matches_row_major_rendering() {
        let c = ColMatrix::from_fn(2, 2, |i, j| (i * 2 + j) as f32);
        let r = c.to_row_major();
        assert_eq!(format_col_matrix(&c, 4, 4), format_matrix(&r, 4, 4));
    }
}
