//! Dense matrix substrate for the BiQGEMM reproduction.
//!
//! The paper (Jeon et al., SC 2020) fixes a small set of conventions that the
//! whole workspace builds on:
//!
//! * a weight matrix `W` (or its binary factor `B`) is `m × n` — `m` is the
//!   *output size*, `n` the *input size*;
//! * an input (activation) matrix `X` is `n × b` — `b` is the *batch size*;
//! * the output `Y = B · X` is `m × b`.
//!
//! Kernels in this workspace want different physical layouts for each role:
//! weights and outputs are **row-major** ([`Matrix`]) so that one output row
//! spans the batch contiguously, while inputs are **column-major**
//! ([`ColMatrix`]) so that one batch column — the vector that gets sliced into
//! LUT-unit-`µ` sub-vectors (Definition 4 of the paper) — is contiguous.
//!
//! ```
//! use biq_matrix::{ColMatrix, Matrix, MatrixRng};
//! let mut rng = MatrixRng::seed_from(1);
//! let w: Matrix = rng.gaussian(4, 8, 0.0, 1.0);       // weights, row-major
//! let x: ColMatrix = rng.gaussian_col(8, 2, 0.0, 1.0); // inputs, col-major
//! assert_eq!(w.row(0).len(), 8);   // one weight row is contiguous
//! assert_eq!(x.col(1).len(), 8);   // one batch column is contiguous
//! ```
//!
//! The crate also provides:
//!
//! * [`SignMatrix`] — a dense `{−1,+1}` matrix, the logical form of a binary
//!   weight factor before bit packing;
//! * [`reshape`] — the paper's Definition 2 reshape `A ↦ A^r_µ` plus the
//!   sub-vector accessors used by lookup-table construction;
//! * [`random`] — seeded workload generators (Gaussian via Box–Muller,
//!   uniform, signs, small-integer matrices for bit-exact testing);
//! * [`approx`] — tolerant comparison helpers shared by tests and the bench
//!   harness;
//! * [`store`] — owned-or-shared typed storage ([`PodStore`]/[`PodView`])
//!   so deserialized weights can borrow a loaded artifact buffer instead of
//!   re-allocating (zero-copy model loading);
//! * [`io`] — versioned binary containers for every matrix type;
//! * [`view`] / [`display`] — tile-range helpers and debug pretty-printing.

pub mod approx;
pub mod dense;
pub mod display;
pub mod io;
pub mod random;
pub mod reshape;
pub mod sign;
pub mod store;
pub mod view;

pub use approx::{allclose, assert_allclose, max_abs_diff, max_rel_diff};
pub use dense::{ColMatrix, Matrix};
pub use random::MatrixRng;
pub use reshape::ChunkedInput;
pub use sign::SignMatrix;
pub use store::{Pod, PodCastError, PodStore, PodView};
pub use view::{ColsView, RowsView};
