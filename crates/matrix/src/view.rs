//! Lightweight row-range and column-range views used by tiled kernels.
//!
//! Tiling (Algorithm 2 of the paper) walks rectangular tiles of the key
//! matrix and the output. These views carry `(offset, len)` pairs so tile
//! loops can hand out disjoint mutable output row-blocks without `unsafe`.

use crate::dense::{ColMatrix, Matrix};

/// A contiguous range of rows `[start, start+len)` of a row-major [`Matrix`].
#[derive(Clone, Copy, Debug)]
pub struct RowsView<'a> {
    mat: &'a Matrix,
    start: usize,
    len: usize,
}

impl<'a> RowsView<'a> {
    /// Borrows rows `[start, start+len)`.
    ///
    /// # Panics
    /// Panics when the range exceeds the matrix.
    pub fn new(mat: &'a Matrix, start: usize, len: usize) -> Self {
        assert!(start + len <= mat.rows(), "row range out of bounds");
        Self { mat, start, len }
    }

    /// First row index of the view in the parent matrix.
    #[inline]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of rows in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row `i` *of the view* (i.e. parent row `start + i`).
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.len);
        self.mat.row(self.start + i)
    }
}

/// A contiguous range of columns `[start, start+len)` of a column-major
/// [`ColMatrix`].
#[derive(Clone, Copy, Debug)]
pub struct ColsView<'a> {
    mat: &'a ColMatrix,
    start: usize,
    len: usize,
}

impl<'a> ColsView<'a> {
    /// Borrows columns `[start, start+len)`.
    ///
    /// # Panics
    /// Panics when the range exceeds the matrix.
    pub fn new(mat: &'a ColMatrix, start: usize, len: usize) -> Self {
        assert!(start + len <= mat.cols(), "column range out of bounds");
        Self { mat, start, len }
    }

    /// First column index of the view in the parent matrix.
    #[inline]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of columns in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Column `j` *of the view* (parent column `start + j`).
    #[inline]
    pub fn col(&self, j: usize) -> &[f32] {
        debug_assert!(j < self.len);
        self.mat.col(self.start + j)
    }
}

/// Splits `total` into `ceil(total/size)` contiguous `(start, len)` tiles.
///
/// Returns a lazy iterator: tile loops in the hot kernels run it on every
/// call, so it must not allocate (the executor's zero-allocation
/// steady-state guarantee counts on it).
///
/// # Panics
/// Panics if `size == 0`.
pub fn tile_ranges(total: usize, size: usize) -> TileRanges {
    assert!(size > 0, "tile size must be positive");
    TileRanges { total, size, start: 0 }
}

/// Iterator over the `(start, len)` tiles of [`tile_ranges`].
#[derive(Clone, Copy, Debug)]
pub struct TileRanges {
    total: usize,
    size: usize,
    start: usize,
}

impl Iterator for TileRanges {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        if self.start >= self.total {
            return None;
        }
        let len = self.size.min(self.total - self.start);
        let item = (self.start, len);
        self.start += len;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.total - self.start).div_ceil(self.size);
        (left, Some(left))
    }
}

impl ExactSizeIterator for TileRanges {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_view_indexes_into_parent() {
        let m = Matrix::from_fn(6, 2, |i, j| (i * 10 + j) as f32);
        let v = RowsView::new(&m, 2, 3);
        assert_eq!(v.len(), 3);
        assert_eq!(v.row(0), m.row(2));
        assert_eq!(v.row(2), m.row(4));
        assert!(!v.is_empty());
    }

    #[test]
    fn cols_view_indexes_into_parent() {
        let m = ColMatrix::from_fn(3, 5, |i, j| (i + j * 100) as f32);
        let v = ColsView::new(&m, 1, 2);
        assert_eq!(v.col(1), m.col(2));
        assert_eq!(v.start(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rows_view_rejects_overflow() {
        let m = Matrix::zeros(4, 1);
        let _ = RowsView::new(&m, 3, 2);
    }

    #[test]
    fn tile_ranges_cover_exactly() {
        let collect = |total, size| tile_ranges(total, size).collect::<Vec<_>>();
        assert_eq!(collect(10, 4), vec![(0, 4), (4, 4), (8, 2)]);
        assert_eq!(collect(8, 4), vec![(0, 4), (4, 4)]);
        assert_eq!(collect(3, 8), vec![(0, 3)]);
        assert_eq!(collect(0, 8), Vec::<(usize, usize)>::new());
        assert_eq!(tile_ranges(10, 4).len(), 3, "ExactSizeIterator hint");
    }

    #[test]
    fn tile_ranges_partition_is_disjoint_and_total() {
        for total in [1usize, 7, 16, 33] {
            for size in [1usize, 2, 5, 16] {
                let tiles: Vec<_> = tile_ranges(total, size).collect();
                let sum: usize = tiles.iter().map(|&(_, l)| l).sum();
                assert_eq!(sum, total);
                for w in tiles.windows(2) {
                    assert_eq!(w[0].0 + w[0].1, w[1].0);
                }
            }
        }
    }
}
