//! Binary (de)serialization of the dense matrix types.
//!
//! A deliberately simple, versioned, little-endian container format — the
//! deployment path where a quantized model is packed offline and the key
//! matrix (not the dense weights) ships to the device:
//!
//! ```text
//! magic   [4]  b"BIQ1"
//! kind    u8   0 = row-major f32, 1 = col-major f32, 2 = sign i8
//! rows    u64
//! cols    u64
//! payload rows·cols elements (f32 LE or i8)
//! ```
//!
//! All readers validate magic, kind and length before touching the payload
//! and fail with a descriptive [`IoFormatError`].

use crate::dense::{ColMatrix, Matrix};
use crate::sign::SignMatrix;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::io::{Read, Write};

/// Container magic (version 1).
pub const MAGIC: &[u8; 4] = b"BIQ1";

/// Element/layout kind tags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Kind {
    /// Row-major `f32` ([`Matrix`]).
    RowMajorF32 = 0,
    /// Column-major `f32` ([`ColMatrix`]).
    ColMajorF32 = 1,
    /// Row-major `{−1,+1}` signs ([`SignMatrix`]).
    SignI8 = 2,
}

impl Kind {
    fn from_u8(v: u8) -> Result<Self, IoFormatError> {
        match v {
            0 => Ok(Kind::RowMajorF32),
            1 => Ok(Kind::ColMajorF32),
            2 => Ok(Kind::SignI8),
            other => Err(IoFormatError::BadKind(other)),
        }
    }
}

/// Errors raised while decoding a container.
#[derive(Debug)]
pub enum IoFormatError {
    /// Wrong magic bytes.
    BadMagic([u8; 4]),
    /// Unknown kind tag.
    BadKind(u8),
    /// Kind in the file differs from the requested type.
    KindMismatch {
        /// Kind found in the header.
        found: Kind,
        /// Kind the caller asked to decode.
        expected: Kind,
    },
    /// Payload shorter than the header promises.
    Truncated,
    /// Sign payload contained a byte other than ±1.
    BadSign(i8),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for IoFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoFormatError::BadMagic(m) => write!(f, "bad magic {m:?} (expected BIQ1)"),
            IoFormatError::BadKind(k) => write!(f, "unknown kind tag {k}"),
            IoFormatError::KindMismatch { found, expected } => {
                write!(f, "kind mismatch: file holds {found:?}, expected {expected:?}")
            }
            IoFormatError::Truncated => write!(f, "payload shorter than header promises"),
            IoFormatError::BadSign(v) => write!(f, "sign payload byte {v} is not ±1"),
            IoFormatError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for IoFormatError {}

impl From<std::io::Error> for IoFormatError {
    fn from(e: std::io::Error) -> Self {
        IoFormatError::Io(e)
    }
}

fn put_header(buf: &mut BytesMut, kind: Kind, rows: usize, cols: usize) {
    buf.put_slice(MAGIC);
    buf.put_u8(kind as u8);
    buf.put_u64_le(rows as u64);
    buf.put_u64_le(cols as u64);
}

fn take_header(buf: &mut Bytes, expected: Kind) -> Result<(usize, usize), IoFormatError> {
    if buf.remaining() < 4 + 1 + 16 {
        return Err(IoFormatError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(IoFormatError::BadMagic(magic));
    }
    let kind = Kind::from_u8(buf.get_u8())?;
    if kind != expected {
        return Err(IoFormatError::KindMismatch { found: kind, expected });
    }
    let rows = buf.get_u64_le() as usize;
    let cols = buf.get_u64_le() as usize;
    Ok((rows, cols))
}

/// Encodes a row-major matrix.
pub fn encode_matrix(m: &Matrix) -> Bytes {
    let mut buf = BytesMut::with_capacity(21 + m.len() * 4);
    put_header(&mut buf, Kind::RowMajorF32, m.rows(), m.cols());
    for &v in m.as_slice() {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Decodes a row-major matrix.
pub fn decode_matrix(mut data: Bytes) -> Result<Matrix, IoFormatError> {
    let (rows, cols) = take_header(&mut data, Kind::RowMajorF32)?;
    decode_f32_payload(&mut data, rows, cols).map(|v| Matrix::from_vec(rows, cols, v))
}

/// Encodes a column-major matrix.
pub fn encode_col_matrix(m: &ColMatrix) -> Bytes {
    let mut buf = BytesMut::with_capacity(21 + m.as_slice().len() * 4);
    put_header(&mut buf, Kind::ColMajorF32, m.rows(), m.cols());
    for &v in m.as_slice() {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Decodes a column-major matrix.
pub fn decode_col_matrix(mut data: Bytes) -> Result<ColMatrix, IoFormatError> {
    let (rows, cols) = take_header(&mut data, Kind::ColMajorF32)?;
    decode_f32_payload(&mut data, rows, cols).map(|v| ColMatrix::from_vec(rows, cols, v))
}

/// Encodes a sign matrix (1 byte per sign; a packed form ships via
/// `biq-quant`'s key matrix instead).
pub fn encode_sign_matrix(m: &SignMatrix) -> Bytes {
    let mut buf = BytesMut::with_capacity(21 + m.as_slice().len());
    put_header(&mut buf, Kind::SignI8, m.rows(), m.cols());
    for &v in m.as_slice() {
        buf.put_i8(v);
    }
    buf.freeze()
}

/// Checked element count; corrupted headers promising more elements than any
/// real buffer could hold surface as `Truncated` rather than overflowing.
fn checked_count(rows: usize, cols: usize) -> Result<usize, IoFormatError> {
    rows.checked_mul(cols).ok_or(IoFormatError::Truncated)
}

/// Decodes a sign matrix, validating every byte is ±1.
pub fn decode_sign_matrix(mut data: Bytes) -> Result<SignMatrix, IoFormatError> {
    let (rows, cols) = take_header(&mut data, Kind::SignI8)?;
    let count = checked_count(rows, cols)?;
    if data.remaining() < count {
        return Err(IoFormatError::Truncated);
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let v = data.get_i8();
        if v != 1 && v != -1 {
            return Err(IoFormatError::BadSign(v));
        }
        out.push(v);
    }
    Ok(SignMatrix::from_vec(rows, cols, out))
}

fn decode_f32_payload(
    data: &mut Bytes,
    rows: usize,
    cols: usize,
) -> Result<Vec<f32>, IoFormatError> {
    let count = checked_count(rows, cols)?;
    if data.remaining() < count.checked_mul(4).ok_or(IoFormatError::Truncated)? {
        return Err(IoFormatError::Truncated);
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(data.get_f32_le());
    }
    Ok(out)
}

/// Writes an encoded container to a writer.
pub fn write_to<W: Write>(mut w: W, data: &Bytes) -> Result<(), IoFormatError> {
    w.write_all(data)?;
    Ok(())
}

/// Reads a whole container from a reader.
pub fn read_from<R: Read>(mut r: R) -> Result<Bytes, IoFormatError> {
    let mut v = Vec::new();
    r.read_to_end(&mut v)?;
    Ok(Bytes::from(v))
}

/// Peeks at the kind tag of an encoded container.
pub fn peek_kind(data: &Bytes) -> Result<(Kind, usize, usize), IoFormatError> {
    let mut b = data.clone();
    if b.remaining() < 21 {
        return Err(IoFormatError::Truncated);
    }
    let mut magic = [0u8; 4];
    b.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(IoFormatError::BadMagic(magic));
    }
    let kind = Kind::from_u8(b.get_u8())?;
    Ok((kind, b.get_u64_le() as usize, b.get_u64_le() as usize))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::MatrixRng;

    #[test]
    fn matrix_round_trip() {
        let mut g = MatrixRng::seed_from(500);
        let m = g.gaussian(7, 11, 0.0, 3.0);
        let decoded = decode_matrix(encode_matrix(&m)).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn col_matrix_round_trip() {
        let mut g = MatrixRng::seed_from(501);
        let m = g.gaussian_col(5, 4, -1.0, 2.0);
        let decoded = decode_col_matrix(encode_col_matrix(&m)).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn sign_matrix_round_trip() {
        let mut g = MatrixRng::seed_from(502);
        let m = g.signs(9, 13);
        let decoded = decode_sign_matrix(encode_sign_matrix(&m)).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn special_float_values_survive() {
        let m = Matrix::from_vec(1, 4, vec![f32::NAN, f32::INFINITY, -0.0, f32::MIN_POSITIVE]);
        let d = decode_matrix(encode_matrix(&m)).unwrap();
        assert!(d.get(0, 0).is_nan());
        assert_eq!(d.get(0, 1), f32::INFINITY);
        assert_eq!(d.get(0, 2).to_bits(), (-0.0f32).to_bits());
        assert_eq!(d.get(0, 3), f32::MIN_POSITIVE);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut g = MatrixRng::seed_from(503);
        let mut raw = encode_matrix(&g.gaussian(2, 2, 0.0, 1.0)).to_vec();
        raw[0] = b'X';
        assert!(matches!(decode_matrix(Bytes::from(raw)), Err(IoFormatError::BadMagic(_))));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let mut g = MatrixRng::seed_from(504);
        let enc = encode_matrix(&g.gaussian(2, 2, 0.0, 1.0));
        assert!(matches!(decode_col_matrix(enc), Err(IoFormatError::KindMismatch { .. })));
    }

    #[test]
    fn truncated_payload_rejected() {
        let mut g = MatrixRng::seed_from(505);
        let enc = encode_matrix(&g.gaussian(4, 4, 0.0, 1.0));
        let cut = enc.slice(0..enc.len() - 5);
        assert!(matches!(decode_matrix(cut), Err(IoFormatError::Truncated)));
    }

    #[test]
    fn bad_sign_byte_rejected() {
        let s = SignMatrix::ones(1, 2);
        let mut raw = encode_sign_matrix(&s).to_vec();
        let last = raw.len() - 1;
        raw[last] = 0;
        assert!(matches!(decode_sign_matrix(Bytes::from(raw)), Err(IoFormatError::BadSign(0))));
    }

    #[test]
    fn peek_reports_kind_and_shape() {
        let mut g = MatrixRng::seed_from(506);
        let enc = encode_sign_matrix(&g.signs(3, 8));
        let (kind, rows, cols) = peek_kind(&enc).unwrap();
        assert_eq!(kind, Kind::SignI8);
        assert_eq!((rows, cols), (3, 8));
    }

    #[test]
    fn write_read_file_round_trip() {
        let mut g = MatrixRng::seed_from(507);
        let m = g.gaussian(6, 6, 0.0, 1.0);
        let path = std::env::temp_dir().join("biq_io_test.biqm");
        write_to(std::fs::File::create(&path).unwrap(), &encode_matrix(&m)).unwrap();
        let data = read_from(std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(decode_matrix(data).unwrap(), m);
        let _ = std::fs::remove_file(path);
    }
}
