//! Dense `{−1,+1}` sign matrices — the logical form of one binary-coding
//! weight factor `B_i ∈ {−1,+1}^{m×n}` before bit packing.

use crate::dense::{ColMatrix, Matrix};

/// A dense row-major `rows × cols` matrix whose elements are `−1` or `+1`,
/// stored one `i8` per element.
///
/// This is the *reference* representation: baselines multiply it directly
/// (after widening to `f32`), and the packers in `biq-quant` compress it into
/// key matrices (µ-bit row chunks) or XNOR words (32/64-bit column chunks).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
}

impl SignMatrix {
    /// All-(+1) matrix.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![1; rows * cols] }
    }

    /// Wraps an existing row-major sign buffer.
    ///
    /// # Panics
    /// Panics if the length mismatches or any element is not ±1.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<i8>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        assert!(data.iter().all(|&v| v == 1 || v == -1), "SignMatrix elements must be -1 or +1");
        Self { rows, cols, data }
    }

    /// Builds from a predicate: `true ↦ +1`, `false ↦ −1`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(if f(i, j) { 1 } else { -1 });
            }
        }
        Self { rows, cols, data }
    }

    /// Takes the element-wise sign of a real matrix (`>= 0 ↦ +1`), the
    /// convention used by binary-coding quantizers.
    pub fn signum_of(m: &Matrix) -> Self {
        Self::from_fn(m.rows(), m.cols(), |i, j| m.get(i, j) >= 0.0)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable element access; always ±1.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> i8 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Mutable element write.
    ///
    /// # Panics
    /// Panics (in debug) if `v` is not ±1.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: i8) {
        debug_assert!(v == 1 || v == -1, "sign must be ±1");
        self.data[i * self.cols + j] = v;
    }

    /// Contiguous row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[i8] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The backing row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[i8] {
        &self.data
    }

    /// Widens to a dense `f32` matrix (for reference GEMM).
    pub fn to_f32(&self) -> Matrix {
        Matrix::from_vec(self.rows, self.cols, self.data.iter().map(|&v| v as f32).collect())
    }

    /// Vertically stacks `parts` (used for multi-bit weights, Fig. 2 of the
    /// paper: `B_1 .. B_β` concatenated along the output dimension).
    ///
    /// # Panics
    /// Panics if `parts` is empty or column counts differ.
    pub fn vstack(parts: &[&SignMatrix]) -> SignMatrix {
        assert!(!parts.is_empty(), "vstack of zero matrices");
        let cols = parts[0].cols;
        assert!(parts.iter().all(|p| p.cols == cols), "vstack column mismatch");
        let rows = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        SignMatrix { rows, cols, data }
    }

    /// Reference product `self · x` for a contiguous vector `x` of length
    /// `cols` — the exact sum the LUT query must reproduce.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec length mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(&s, &v)| s as f32 * v).sum())
            .collect()
    }

    /// Reference product `self · X` with a column-major input, producing a
    /// row-major `rows × b` output.
    pub fn matmul(&self, x: &ColMatrix) -> Matrix {
        assert_eq!(x.rows(), self.cols, "inner dimension mismatch");
        let mut y = Matrix::zeros(self.rows, x.cols());
        for (alpha, xcol) in (0..x.cols()).map(|a| (a, x.col(a))) {
            for i in 0..self.rows {
                let mut acc = 0.0f32;
                for (s, v) in self.row(i).iter().zip(xcol) {
                    acc += *s as f32 * *v;
                }
                y.set(i, alpha, acc);
            }
        }
        y
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-style loops read clearer in reference checks
mod tests {
    use super::*;

    #[test]
    fn ones_and_from_fn() {
        let s = SignMatrix::ones(2, 3);
        assert!(s.as_slice().iter().all(|&v| v == 1));
        let s = SignMatrix::from_fn(2, 2, |i, j| (i + j) % 2 == 0);
        assert_eq!(s.get(0, 0), 1);
        assert_eq!(s.get(0, 1), -1);
        assert_eq!(s.get(1, 0), -1);
        assert_eq!(s.get(1, 1), 1);
    }

    #[test]
    #[should_panic(expected = "must be -1 or +1")]
    fn rejects_non_sign_values() {
        let _ = SignMatrix::from_vec(1, 2, vec![1, 0]);
    }

    #[test]
    fn signum_of_maps_zero_to_plus_one() {
        let m = Matrix::from_vec(1, 3, vec![-0.5, 0.0, 2.0]);
        let s = SignMatrix::signum_of(&m);
        assert_eq!(s.as_slice(), &[-1, 1, 1]);
    }

    #[test]
    fn to_f32_round_trip() {
        let s = SignMatrix::from_fn(3, 4, |i, j| i * j % 3 == 0);
        let f = s.to_f32();
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(f.get(i, j), s.get(i, j) as f32);
            }
        }
    }

    #[test]
    fn vstack_concatenates_rows() {
        let a = SignMatrix::ones(2, 3);
        let b = SignMatrix::from_fn(1, 3, |_, _| false);
        let v = SignMatrix::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (3, 3));
        assert_eq!(v.row(0), &[1, 1, 1]);
        assert_eq!(v.row(2), &[-1, -1, -1]);
    }

    #[test]
    #[should_panic(expected = "column mismatch")]
    fn vstack_rejects_mismatched_cols() {
        let a = SignMatrix::ones(1, 2);
        let b = SignMatrix::ones(1, 3);
        let _ = SignMatrix::vstack(&[&a, &b]);
    }

    #[test]
    fn matvec_matches_manual_sum() {
        // B = [[+1, -1], [-1, +1]], x = [2, 3] -> y = [-1, 1]
        let s = SignMatrix::from_vec(2, 2, vec![1, -1, -1, 1]);
        assert_eq!(s.matvec(&[2.0, 3.0]), vec![-1.0, 1.0]);
    }

    #[test]
    fn matmul_matches_matvec_per_column() {
        let s = SignMatrix::from_fn(4, 6, |i, j| (i * 7 + j * 3) % 2 == 0);
        let x = ColMatrix::from_fn(6, 3, |i, j| (i as f32) * 0.25 - j as f32);
        let y = s.matmul(&x);
        for a in 0..3 {
            let yv = s.matvec(x.col(a));
            for i in 0..4 {
                assert_eq!(y.get(i, a), yv[i]);
            }
        }
    }
}
