//! Tolerant floating-point comparison helpers shared by tests, examples and
//! the bench harness.
//!
//! Different kernels accumulate in different orders, so outputs generally
//! agree only to within a relative tolerance proportional to the reduction
//! length. [`allclose`] mirrors NumPy's semantics:
//! `|a − b| <= atol + rtol * |b|` element-wise.

use crate::dense::Matrix;

/// Largest absolute element-wise difference between two equal-length slices.
///
/// # Panics
/// Panics on length mismatch.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}

/// Largest relative element-wise difference `|a−b| / max(|b|, 1e-12)`.
pub fn max_rel_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs() / y.abs().max(1e-12)).fold(0.0, f32::max)
}

/// NumPy-style closeness: `|a − b| <= atol + rtol * |b|` for every element.
/// Non-finite values must match exactly (same NaN-ness / same infinity).
pub fn allclose(a: &[f32], b: &[f32], rtol: f32, atol: f32) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).all(|(&x, &y)| {
        if !x.is_finite() || !y.is_finite() {
            (x.is_nan() && y.is_nan()) || x == y
        } else {
            (x - y).abs() <= atol + rtol * y.abs()
        }
    })
}

/// Asserts [`allclose`] over two matrices, printing the offending element on
/// failure.
///
/// # Panics
/// Panics when shapes differ or any element is out of tolerance.
pub fn assert_allclose(actual: &Matrix, expected: &Matrix, rtol: f32, atol: f32) {
    assert_eq!(actual.shape(), expected.shape(), "shape mismatch");
    let (rows, cols) = actual.shape();
    for i in 0..rows {
        for j in 0..cols {
            let x = actual.get(i, j);
            let y = expected.get(i, j);
            let ok = if !x.is_finite() || !y.is_finite() {
                (x.is_nan() && y.is_nan()) || x == y
            } else {
                (x - y).abs() <= atol + rtol * y.abs()
            };
            assert!(
                ok,
                "mismatch at ({i}, {j}): actual {x} vs expected {y} \
                 (|diff| = {}, rtol = {rtol}, atol = {atol})",
                (x - y).abs()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_abs_diff_basic() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 2.0]), 0.5);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }

    #[test]
    fn max_rel_diff_basic() {
        let d = max_rel_diff(&[110.0], &[100.0]);
        assert!((d - 0.1).abs() < 1e-6);
    }

    #[test]
    fn allclose_respects_tolerances() {
        assert!(allclose(&[1.0], &[1.0 + 1e-7], 1e-6, 0.0));
        assert!(!allclose(&[1.0], &[1.1], 1e-6, 0.0));
        assert!(allclose(&[0.0], &[1e-9], 0.0, 1e-8));
        assert!(!allclose(&[1.0, 2.0], &[1.0], 1e-6, 1e-6));
    }

    #[test]
    fn allclose_handles_non_finite() {
        assert!(allclose(&[f32::NAN], &[f32::NAN], 1e-6, 1e-6));
        assert!(allclose(&[f32::INFINITY], &[f32::INFINITY], 0.0, 0.0));
        assert!(!allclose(&[f32::INFINITY], &[f32::NEG_INFINITY], 0.0, 0.0));
        assert!(!allclose(&[f32::NAN], &[0.0], 1.0, 1.0));
    }

    #[test]
    fn assert_allclose_passes_within_tolerance() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![1.0 + 1e-7, 2.0 - 1e-7]);
        assert_allclose(&a, &b, 1e-5, 1e-6);
    }

    #[test]
    #[should_panic(expected = "mismatch at (0, 1)")]
    fn assert_allclose_reports_location() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 5.0]);
        let b = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        assert_allclose(&a, &b, 1e-5, 1e-6);
    }
}
