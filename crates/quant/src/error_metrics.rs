//! Fidelity metrics for quantized tensors, used by the Table I proxy
//! experiment and by tests asserting quantizer quality.

use biq_matrix::Matrix;

/// Mean squared error between two equal-length slices.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn mse(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(!a.is_empty(), "empty input");
    a.iter().zip(b).map(|(&x, &y)| ((x - y) as f64).powi(2)).sum::<f64>() / a.len() as f64
}

/// Root mean squared error.
pub fn rmse(a: &[f32], b: &[f32]) -> f64 {
    mse(a, b).sqrt()
}

/// Signal-to-quantization-noise ratio in dB:
/// `10·log10(‖signal‖² / ‖signal − approx‖²)`. Returns `f64::INFINITY` for an
/// exact match.
pub fn sqnr_db(signal: &[f32], approx: &[f32]) -> f64 {
    assert_eq!(signal.len(), approx.len(), "length mismatch");
    let sig: f64 = signal.iter().map(|&v| (v as f64).powi(2)).sum();
    let noise: f64 = signal.iter().zip(approx).map(|(&x, &y)| ((x - y) as f64).powi(2)).sum();
    if noise == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (sig / noise).log10()
    }
}

/// Cosine similarity of two vectors (1.0 = identical direction).
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let dot: f64 = a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum();
    let na: f64 = a.iter().map(|&v| (v as f64).powi(2)).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|&v| (v as f64).powi(2)).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        if na == nb {
            1.0
        } else {
            0.0
        }
    } else {
        dot / (na * nb)
    }
}

/// Relative L2 error `‖a − b‖ / ‖b‖` (with `b` the reference).
pub fn relative_l2(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let diff: f64 = a.iter().zip(b).map(|(&x, &y)| ((x - y) as f64).powi(2)).sum::<f64>().sqrt();
    let norm: f64 = b.iter().map(|&v| (v as f64).powi(2)).sum::<f64>().sqrt();
    if norm == 0.0 {
        if diff == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        diff / norm
    }
}

/// Matrix wrappers around the slice metrics.
pub fn matrix_mse(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.shape(), b.shape(), "shape mismatch");
    mse(a.as_slice(), b.as_slice())
}

/// SQNR (dB) between a reference matrix and its approximation.
pub fn matrix_sqnr_db(signal: &Matrix, approx: &Matrix) -> f64 {
    assert_eq!(signal.shape(), approx.shape(), "shape mismatch");
    sqnr_db(signal.as_slice(), approx.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_identical_is_zero() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn mse_known_value() {
        // diffs = [1, -1] -> mse = 1
        assert_eq!(mse(&[1.0, 1.0], &[0.0, 2.0]), 1.0);
        assert_eq!(rmse(&[1.0, 1.0], &[0.0, 2.0]), 1.0);
    }

    #[test]
    fn sqnr_infinite_for_exact_match() {
        assert_eq!(sqnr_db(&[1.0, -1.0], &[1.0, -1.0]), f64::INFINITY);
    }

    #[test]
    fn sqnr_known_value() {
        // signal power 4, noise power 1 -> 10log10(4) ≈ 6.02 dB
        let db = sqnr_db(&[2.0], &[1.0]);
        assert!((db - 10.0 * 4.0f64.log10()).abs() < 1e-9);
    }

    #[test]
    fn cosine_similarity_cases() {
        assert!((cosine_similarity(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0], &[-1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0], &[0.0]), 1.0);
        assert_eq!(cosine_similarity(&[0.0], &[1.0]), 0.0);
    }

    #[test]
    fn relative_l2_cases() {
        assert_eq!(relative_l2(&[1.0], &[1.0]), 0.0);
        assert!((relative_l2(&[1.1], &[1.0]) - 0.1).abs() < 1e-6);
        assert_eq!(relative_l2(&[0.0], &[0.0]), 0.0);
        assert_eq!(relative_l2(&[1.0], &[0.0]), f64::INFINITY);
    }

    #[test]
    fn matrix_metrics_match_slice_metrics() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.5, 3.0, 3.5]);
        assert_eq!(matrix_mse(&a, &b), mse(a.as_slice(), b.as_slice()));
        assert_eq!(matrix_sqnr_db(&a, &b), sqnr_db(a.as_slice(), b.as_slice()));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mse_length_mismatch_panics() {
        let _ = mse(&[1.0], &[1.0, 2.0]);
    }
}
