//! Uniform (fixed-point) quantization — the INT8-style scheme BiQGEMM is
//! contrasted against in Tables I and II.
//!
//! Two flavours:
//!
//! * **symmetric** (weights): `q = clamp(round(w / s), −Q, Q)` with
//!   `s = max|w| / Q`, `Q = 2^{bits−1} − 1`;
//! * **asymmetric** (activations): affine with a zero point, covering
//!   `[min, max]` with `2^bits − 1` steps.
//!
//! `fake_quantize_*` run quantize→dequantize in one step, which is how the
//! Table I fidelity proxy perturbs a model's weights/activations.

use biq_matrix::Matrix;

/// Symmetric per-tensor uniform quantizer.
#[derive(Clone, Copy, Debug)]
pub struct SymmetricQuantizer {
    /// Bit width (2..=16).
    pub bits: u32,
    /// Step size.
    pub scale: f32,
}

impl SymmetricQuantizer {
    /// Fits the scale to cover `max |w|` of `data`.
    ///
    /// # Panics
    /// Panics if `bits < 2` (symmetric needs a sign bit plus magnitude) or
    /// `bits > 16`.
    pub fn fit(data: &[f32], bits: u32) -> Self {
        assert!((2..=16).contains(&bits), "bits must be in 2..=16");
        let qmax = ((1i32 << (bits - 1)) - 1) as f32;
        let max_abs = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = if max_abs > 0.0 { max_abs / qmax } else { 1.0 };
        Self { bits, scale }
    }

    /// Largest representable integer level.
    #[inline]
    pub fn qmax(&self) -> i32 {
        (1i32 << (self.bits - 1)) - 1
    }

    /// Quantizes one value to an integer level.
    #[inline]
    pub fn quantize(&self, v: f32) -> i32 {
        let q = (v / self.scale).round() as i32;
        q.clamp(-self.qmax(), self.qmax())
    }

    /// Dequantizes an integer level.
    #[inline]
    pub fn dequantize(&self, q: i32) -> f32 {
        q as f32 * self.scale
    }

    /// Quantize→dequantize in one step.
    #[inline]
    pub fn fake_quantize(&self, v: f32) -> f32 {
        self.dequantize(self.quantize(v))
    }
}

/// Asymmetric (affine) per-tensor quantizer with a zero point.
#[derive(Clone, Copy, Debug)]
pub struct AsymmetricQuantizer {
    /// Bit width (2..=16).
    pub bits: u32,
    /// Step size.
    pub scale: f32,
    /// Integer level that represents real 0.0.
    pub zero_point: i32,
}

impl AsymmetricQuantizer {
    /// Fits scale/zero-point to cover `[min, max]` of `data` (always
    /// including 0 in the range, as inference quantizers do).
    pub fn fit(data: &[f32], bits: u32) -> Self {
        assert!((2..=16).contains(&bits), "bits must be in 2..=16");
        let levels = ((1u32 << bits) - 1) as f32;
        let mut lo = 0.0f32;
        let mut hi = 0.0f32;
        for &v in data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let scale = if hi > lo { (hi - lo) / levels } else { 1.0 };
        let zero_point = (-lo / scale).round() as i32;
        Self { bits, scale, zero_point }
    }

    /// Quantizes one value to an unsigned level in `[0, 2^bits)`.
    #[inline]
    pub fn quantize(&self, v: f32) -> i32 {
        let q = (v / self.scale).round() as i32 + self.zero_point;
        q.clamp(0, (1i32 << self.bits) - 1)
    }

    /// Dequantizes a level.
    #[inline]
    pub fn dequantize(&self, q: i32) -> f32 {
        (q - self.zero_point) as f32 * self.scale
    }

    /// Quantize→dequantize in one step.
    #[inline]
    pub fn fake_quantize(&self, v: f32) -> f32 {
        self.dequantize(self.quantize(v))
    }
}

/// Fake-quantizes a whole matrix with a per-tensor symmetric quantizer.
pub fn fake_quantize_matrix(w: &Matrix, bits: u32) -> Matrix {
    let q = SymmetricQuantizer::fit(w.as_slice(), bits);
    Matrix::from_vec(w.rows(), w.cols(), w.as_slice().iter().map(|&v| q.fake_quantize(v)).collect())
}

/// Fake-quantizes each row with its own symmetric quantizer (per-channel
/// weight quantization, the stronger baseline).
pub fn fake_quantize_matrix_per_row(w: &Matrix, bits: u32) -> Matrix {
    let mut out = Matrix::zeros(w.rows(), w.cols());
    for i in 0..w.rows() {
        let q = SymmetricQuantizer::fit(w.row(i), bits);
        let dst = out.row_mut(i);
        for (d, &v) in dst.iter_mut().zip(w.row(i)) {
            *d = q.fake_quantize(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use biq_matrix::MatrixRng;

    #[test]
    fn symmetric_round_trips_extremes() {
        let data = [-4.0f32, 0.0, 4.0];
        let q = SymmetricQuantizer::fit(&data, 8);
        assert!((q.fake_quantize(4.0) - 4.0).abs() < 1e-5);
        assert!((q.fake_quantize(-4.0) + 4.0).abs() < 1e-5);
        assert_eq!(q.quantize(0.0), 0);
    }

    #[test]
    fn symmetric_clamps_out_of_range() {
        let q = SymmetricQuantizer { bits: 8, scale: 0.1 };
        assert_eq!(q.quantize(1e9), q.qmax());
        assert_eq!(q.quantize(-1e9), -q.qmax());
    }

    #[test]
    fn symmetric_error_bounded_by_half_step() {
        let mut g = MatrixRng::seed_from(4);
        let w = g.uniform(1, 1000, -2.0, 2.0);
        let q = SymmetricQuantizer::fit(w.as_slice(), 8);
        for &v in w.as_slice() {
            assert!((q.fake_quantize(v) - v).abs() <= q.scale / 2.0 + 1e-6);
        }
    }

    #[test]
    fn more_bits_less_error() {
        let mut g = MatrixRng::seed_from(6);
        let w = g.gaussian(16, 64, 0.0, 1.0);
        let mut prev = f64::INFINITY;
        for bits in [2u32, 4, 6, 8, 12] {
            let fq = fake_quantize_matrix(&w, bits);
            let err: f64 = w
                .as_slice()
                .iter()
                .zip(fq.as_slice())
                .map(|(&a, &b)| ((a - b) as f64).powi(2))
                .sum();
            assert!(err <= prev, "error grew at {bits} bits");
            prev = err;
        }
    }

    #[test]
    fn asymmetric_represents_zero_exactly() {
        let data = [-1.0f32, 0.0, 3.0];
        let q = AsymmetricQuantizer::fit(&data, 8);
        assert_eq!(q.fake_quantize(0.0), 0.0);
    }

    #[test]
    fn asymmetric_covers_skewed_range_better_than_symmetric() {
        // Data in [0, 1]: asymmetric uses all levels, symmetric wastes half.
        let mut g = MatrixRng::seed_from(8);
        let w = g.uniform(1, 512, 0.0, 1.0);
        let qa = AsymmetricQuantizer::fit(w.as_slice(), 4);
        let qs = SymmetricQuantizer::fit(w.as_slice(), 4);
        let ea: f64 =
            w.as_slice().iter().map(|&v| ((v - qa.fake_quantize(v)) as f64).powi(2)).sum();
        let es: f64 =
            w.as_slice().iter().map(|&v| ((v - qs.fake_quantize(v)) as f64).powi(2)).sum();
        assert!(ea < es, "asymmetric {ea} should beat symmetric {es} on skewed data");
    }

    #[test]
    fn per_row_no_worse_than_per_tensor() {
        let mut g = MatrixRng::seed_from(10);
        // Rows with very different ranges.
        let mut w = g.gaussian(4, 64, 0.0, 1.0);
        for j in 0..64 {
            let v = w.get(3, j) * 10.0;
            w.set(3, j, v);
        }
        let pt = fake_quantize_matrix(&w, 4);
        let pr = fake_quantize_matrix_per_row(&w, 4);
        let err = |a: &Matrix| -> f64 {
            w.as_slice().iter().zip(a.as_slice()).map(|(&x, &y)| ((x - y) as f64).powi(2)).sum()
        };
        assert!(err(&pr) <= err(&pt));
    }

    #[test]
    fn constant_zero_data_is_stable() {
        let q = SymmetricQuantizer::fit(&[0.0; 8], 8);
        assert_eq!(q.fake_quantize(0.0), 0.0);
        let qa = AsymmetricQuantizer::fit(&[0.0; 8], 8);
        assert_eq!(qa.fake_quantize(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "bits must be in 2..=16")]
    fn rejects_one_bit_symmetric() {
        let _ = SymmetricQuantizer::fit(&[1.0], 1);
    }
}
