//! Binary containers for quantized artifacts — what actually ships in a
//! BiQGEMM deployment (the dense fp32 weights never leave the build host).
//!
//! Formats (little-endian, magic-tagged like `biq-matrix::io`):
//!
//! ```text
//! BIQQ: multi-bit quantized matrix
//!   magic[4] bits:u8 rows:u64 cols:u64
//!   per plane: scales (rows × f32) then signs bit-packed
//!              (rows × ⌈cols/8⌉ bytes, LSB-first, 1 = +1)
//! BIQK: key matrix
//!   magic[4] mu:u8 rows:u64 cols:u64 keys (rows·⌈cols/µ⌉ × u16)
//! ```

use crate::binary_coding::{MultiBitMatrix, QuantPlane};
use crate::packing::KeyMatrix;
use biq_matrix::SignMatrix;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Magic for multi-bit quantized matrices.
pub const MAGIC_QUANT: &[u8; 4] = b"BIQQ";
/// Magic for key matrices.
pub const MAGIC_KEYS: &[u8; 4] = b"BIQK";

/// Decoding failures.
#[derive(Debug)]
pub enum SerializeError {
    /// Wrong magic bytes.
    BadMagic([u8; 4]),
    /// Payload shorter than the header promises.
    Truncated,
    /// Header field out of range (bits/µ zero or too large).
    BadHeader(String),
    /// A key exceeds its chunk's bit width.
    BadKey {
        /// Offending key value.
        key: u16,
        /// Bits available in that chunk.
        bits: usize,
    },
}

impl fmt::Display for SerializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerializeError::BadMagic(m) => write!(f, "bad magic {m:?}"),
            SerializeError::Truncated => write!(f, "truncated payload"),
            SerializeError::BadHeader(s) => write!(f, "bad header: {s}"),
            SerializeError::BadKey { key, bits } => {
                write!(f, "key {key} does not fit in {bits} bits")
            }
        }
    }
}

impl std::error::Error for SerializeError {}

/// Encodes a multi-bit quantized matrix (signs bit-packed 8-per-byte).
pub fn encode_multibit(q: &MultiBitMatrix) -> Bytes {
    let (rows, cols) = q.shape();
    let row_bytes = cols.div_ceil(8);
    let mut buf = BytesMut::with_capacity(21 + q.bits() * (rows * 4 + rows * row_bytes));
    buf.put_slice(MAGIC_QUANT);
    buf.put_u8(q.bits() as u8);
    buf.put_u64_le(rows as u64);
    buf.put_u64_le(cols as u64);
    for plane in q.planes() {
        for &s in &plane.scales {
            buf.put_f32_le(s);
        }
        for i in 0..rows {
            let row = plane.signs.row(i);
            for chunk in row.chunks(8) {
                let mut byte = 0u8;
                for (t, &s) in chunk.iter().enumerate() {
                    if s > 0 {
                        byte |= 1 << t;
                    }
                }
                buf.put_u8(byte);
            }
        }
    }
    buf.freeze()
}

/// Decodes a multi-bit quantized matrix.
pub fn decode_multibit(mut data: Bytes) -> Result<MultiBitMatrix, SerializeError> {
    if data.remaining() < 21 {
        return Err(SerializeError::Truncated);
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC_QUANT {
        return Err(SerializeError::BadMagic(magic));
    }
    let bits = data.get_u8() as usize;
    let rows = data.get_u64_le() as usize;
    let cols = data.get_u64_le() as usize;
    if bits == 0 || bits > 32 {
        return Err(SerializeError::BadHeader(format!("bits = {bits}")));
    }
    if rows == 0 || cols == 0 {
        return Err(SerializeError::BadHeader(format!("shape {rows}x{cols}")));
    }
    let row_bytes = cols.div_ceil(8);
    // Checked sizes: corrupted headers must not overflow or over-allocate.
    let scale_bytes = rows.checked_mul(4).ok_or(SerializeError::Truncated)?;
    let plane_bytes = rows.checked_mul(row_bytes).ok_or(SerializeError::Truncated)?;
    let elems = rows.checked_mul(cols).ok_or(SerializeError::Truncated)?;
    let mut planes = Vec::with_capacity(bits);
    for _ in 0..bits {
        if data.remaining() < scale_bytes {
            return Err(SerializeError::Truncated);
        }
        let mut scales = Vec::with_capacity(rows);
        for _ in 0..rows {
            scales.push(data.get_f32_le());
        }
        if data.remaining() < plane_bytes {
            return Err(SerializeError::Truncated);
        }
        let mut signs = Vec::with_capacity(elems);
        for _ in 0..rows {
            let mut produced = 0;
            for _ in 0..row_bytes {
                let byte = data.get_u8();
                for t in 0..8 {
                    if produced == cols {
                        break;
                    }
                    signs.push(if (byte >> t) & 1 == 1 { 1i8 } else { -1i8 });
                    produced += 1;
                }
            }
        }
        planes.push(QuantPlane { signs: SignMatrix::from_vec(rows, cols, signs), scales });
    }
    Ok(MultiBitMatrix::new(planes))
}

/// Encodes a key matrix.
pub fn encode_key_matrix(k: &KeyMatrix) -> Bytes {
    let mut buf = BytesMut::with_capacity(21 + k.as_slice().len() * 2);
    buf.put_slice(MAGIC_KEYS);
    buf.put_u8(k.mu() as u8);
    buf.put_u64_le(k.rows() as u64);
    buf.put_u64_le(k.cols() as u64);
    for &key in k.as_slice() {
        buf.put_u16_le(key);
    }
    buf.freeze()
}

/// Decodes a key matrix, validating every key against its chunk width.
pub fn decode_key_matrix(mut data: Bytes) -> Result<KeyMatrix, SerializeError> {
    if data.remaining() < 21 {
        return Err(SerializeError::Truncated);
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC_KEYS {
        return Err(SerializeError::BadMagic(magic));
    }
    let mu = data.get_u8() as usize;
    let rows = data.get_u64_le() as usize;
    let cols = data.get_u64_le() as usize;
    if !(1..=16).contains(&mu) {
        return Err(SerializeError::BadHeader(format!("µ = {mu}")));
    }
    if rows == 0 || cols == 0 {
        return Err(SerializeError::BadHeader(format!("shape {rows}x{cols}")));
    }
    let chunks = cols.div_ceil(mu);
    let key_bytes =
        rows.checked_mul(chunks).and_then(|v| v.checked_mul(2)).ok_or(SerializeError::Truncated)?;
    if data.remaining() < key_bytes {
        return Err(SerializeError::Truncated);
    }
    let mut keys = Vec::with_capacity(rows * chunks);
    for _ in 0..rows {
        for beta in 0..chunks {
            let key = data.get_u16_le();
            let len = mu.min(cols - beta * mu);
            if len < 16 && key >= (1u16 << len) {
                return Err(SerializeError::BadKey { key, bits: len });
            }
            keys.push(key);
        }
    }
    Ok(KeyMatrix::from_raw(rows, cols, mu, keys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary_coding::greedy_quantize_matrix_rowwise;
    use biq_matrix::MatrixRng;

    #[test]
    fn multibit_round_trip() {
        let mut g = MatrixRng::seed_from(600);
        for (rows, cols, bits) in [(5usize, 16usize, 1usize), (7, 13, 3), (1, 1, 2)] {
            let w = g.gaussian(rows, cols, 0.0, 1.0);
            let q = greedy_quantize_matrix_rowwise(&w, bits);
            let rt = decode_multibit(encode_multibit(&q)).unwrap();
            assert_eq!(rt.bits(), q.bits());
            assert_eq!(rt.shape(), q.shape());
            for (a, b) in rt.planes().iter().zip(q.planes()) {
                assert_eq!(a.scales, b.scales);
                assert_eq!(a.signs, b.signs);
            }
        }
    }

    #[test]
    fn key_matrix_round_trip() {
        let mut g = MatrixRng::seed_from(601);
        for (rows, cols, mu) in [(4usize, 24usize, 8usize), (3, 10, 4), (2, 5, 16)] {
            let k = KeyMatrix::pack(&g.signs(rows, cols), mu);
            let rt = decode_key_matrix(encode_key_matrix(&k)).unwrap();
            assert_eq!(rt, k);
        }
    }

    #[test]
    fn multibit_bad_magic() {
        let mut g = MatrixRng::seed_from(602);
        let q = greedy_quantize_matrix_rowwise(&g.gaussian(2, 4, 0.0, 1.0), 1);
        let mut raw = encode_multibit(&q).to_vec();
        raw[1] = b'X';
        assert!(matches!(decode_multibit(Bytes::from(raw)), Err(SerializeError::BadMagic(_))));
    }

    #[test]
    fn key_matrix_rejects_oversized_key() {
        let mut g = MatrixRng::seed_from(603);
        let k = KeyMatrix::pack(&g.signs(1, 6), 4); // chunks of 4 and 2 bits
        let mut raw = encode_key_matrix(&k).to_vec();
        // Overwrite the second (2-bit) chunk's key with 7 (needs 3 bits).
        let off = raw.len() - 2;
        raw[off] = 7;
        raw[off + 1] = 0;
        assert!(matches!(
            decode_key_matrix(Bytes::from(raw)),
            Err(SerializeError::BadKey { key: 7, bits: 2 })
        ));
    }

    #[test]
    fn truncation_detected() {
        let mut g = MatrixRng::seed_from(604);
        let q = greedy_quantize_matrix_rowwise(&g.gaussian(3, 9, 0.0, 1.0), 2);
        let enc = encode_multibit(&q);
        for cut in [5usize, 20, enc.len() - 1] {
            assert!(matches!(decode_multibit(enc.slice(0..cut)), Err(SerializeError::Truncated)));
        }
    }

    #[test]
    fn compression_ratio_is_real() {
        // 3-bit quantized 256x256: 3·(256·4 + 256·32) bytes ≈ 27.6 KB vs
        // 256 KB dense fp32.
        let mut g = MatrixRng::seed_from(605);
        let q = greedy_quantize_matrix_rowwise(&g.gaussian(256, 256, 0.0, 1.0), 3);
        let enc = encode_multibit(&q);
        assert!(enc.len() < 256 * 256 * 4 / 8, "encoded {} bytes", enc.len());
    }
}
