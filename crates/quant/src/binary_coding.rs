//! Greedy binary-coding quantization (Guo et al. \[21\], as used in the
//! paper's Table I "Binary-Coding (Greedy)" rows).
//!
//! Greedy approximation peels one binary plane at a time off the residual:
//!
//! ```text
//! r ← w
//! for i in 1..=q:
//!     b_i = sign(r)
//!     α_i = ⟨b_i, r⟩ / p = mean(|r|)     (least-squares optimal given b_i)
//!     r  ← r − α_i b_i
//! ```
//!
//! Each step is the 1-bit least-squares optimum for the current residual, so
//! residual norms are monotonically non-increasing in `q` — a property the
//! tests pin down.
//!
//! For matrices the paper quantizes **per row** (Section II-B: "quantization
//! can be independently performed for each row or column"): every output row
//! gets its own scale per plane, giving scale *vectors* `α_i ∈ R^m` that are
//! Hadamard-multiplied with partial outputs (Eq. 2).

use biq_matrix::{Matrix, SignMatrix};

/// One binary plane of a row-wise quantized matrix: a sign matrix plus one
/// scale per row.
#[derive(Clone, Debug)]
pub struct QuantPlane {
    /// Sign factor `B_i ∈ {−1,+1}^{m×n}`.
    pub signs: SignMatrix,
    /// Per-row scales `α_i ∈ R^m` (length = number of rows).
    pub scales: Vec<f32>,
}

impl QuantPlane {
    /// Dequantizes this plane alone: `α_i ∘ B_i` (row `r` scaled by
    /// `scales[r]`).
    pub fn dequantize(&self) -> Matrix {
        let (m, n) = self.signs.shape();
        Matrix::from_fn(m, n, |i, j| self.scales[i] * self.signs.get(i, j) as f32)
    }
}

/// A multi-bit binary-coding quantized matrix: `W ≈ Σ_i α_i ∘ B_i`.
#[derive(Clone, Debug)]
pub struct MultiBitMatrix {
    planes: Vec<QuantPlane>,
    rows: usize,
    cols: usize,
}

impl MultiBitMatrix {
    /// Builds from planes.
    ///
    /// # Panics
    /// Panics if `planes` is empty or shapes/scale lengths disagree.
    pub fn new(planes: Vec<QuantPlane>) -> Self {
        assert!(!planes.is_empty(), "at least one plane required");
        let (rows, cols) = planes[0].signs.shape();
        for p in &planes {
            assert_eq!(p.signs.shape(), (rows, cols), "plane shape mismatch");
            assert_eq!(p.scales.len(), rows, "scale length mismatch");
        }
        Self { planes, rows, cols }
    }

    /// Number of quantization bits `β_w` (= number of planes).
    #[inline]
    pub fn bits(&self) -> usize {
        self.planes.len()
    }

    /// `(rows, cols)` of the logical weight matrix.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The planes, most-significant first.
    #[inline]
    pub fn planes(&self) -> &[QuantPlane] {
        &self.planes
    }

    /// Reconstructs the dense approximation `Σ_i α_i ∘ B_i`.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for p in &self.planes {
            for i in 0..self.rows {
                let s = p.scales[i];
                let row = out.row_mut(i);
                for (o, &b) in row.iter_mut().zip(p.signs.row(i)) {
                    *o += s * b as f32;
                }
            }
        }
        out
    }

    /// The sign matrices vertically stacked (`B_1; B_2; …; B_β`), the layout
    /// BiQGEMM and Fig. 2 of the paper use for multi-bit weights.
    pub fn stacked_signs(&self) -> SignMatrix {
        let refs: Vec<&SignMatrix> = self.planes.iter().map(|p| &p.signs).collect();
        SignMatrix::vstack(&refs)
    }

    /// All per-row scales concatenated in plane order (length `β·m`),
    /// matching the row order of [`Self::stacked_signs`].
    pub fn stacked_scales(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.bits() * self.rows);
        for p in &self.planes {
            out.extend_from_slice(&p.scales);
        }
        out
    }

    /// Truncates to the first `bits` planes (coarser approximation).
    ///
    /// # Panics
    /// Panics if `bits` is zero or exceeds the available planes.
    pub fn truncated(&self, bits: usize) -> MultiBitMatrix {
        assert!(bits >= 1 && bits <= self.bits(), "invalid bit count");
        MultiBitMatrix::new(self.planes[..bits].to_vec())
    }
}

/// Greedily quantizes a single vector into `q` (scale, signs) pairs.
/// Returns `(alphas, sign_planes)`; `sign_planes[i][j] ∈ {−1,+1}`.
///
/// # Panics
/// Panics if `q == 0` or `w` is empty.
pub fn greedy_quantize_vector(w: &[f32], q: usize) -> (Vec<f32>, Vec<Vec<i8>>) {
    assert!(q >= 1, "need at least one bit");
    assert!(!w.is_empty(), "empty vector");
    let p = w.len() as f32;
    let mut residual: Vec<f32> = w.to_vec();
    let mut alphas = Vec::with_capacity(q);
    let mut planes = Vec::with_capacity(q);
    for _ in 0..q {
        let signs: Vec<i8> = residual.iter().map(|&r| if r >= 0.0 { 1 } else { -1 }).collect();
        // α = ⟨b, r⟩ / p = mean |r| (since b = sign(r))
        let alpha = residual.iter().map(|r| r.abs()).sum::<f32>() / p;
        for (r, &s) in residual.iter_mut().zip(&signs) {
            *r -= alpha * s as f32;
        }
        alphas.push(alpha);
        planes.push(signs);
    }
    (alphas, planes)
}

/// Row-wise greedy quantization of `w` into `bits` planes.
///
/// Every row of `w` is quantized independently, so plane `i` consists of a
/// sign matrix and a per-row scale vector `α_i ∈ R^m` (Eq. 2 of the paper).
pub fn greedy_quantize_matrix_rowwise(w: &Matrix, bits: usize) -> MultiBitMatrix {
    assert!(bits >= 1, "need at least one bit");
    let (m, n) = w.shape();
    assert!(m > 0 && n > 0, "empty matrix");
    let mut plane_scales = vec![vec![0.0f32; m]; bits];
    let mut plane_signs = vec![vec![0i8; m * n]; bits];
    let mut residual = vec![0.0f32; n];
    for i in 0..m {
        residual.copy_from_slice(w.row(i));
        for q in 0..bits {
            let alpha = residual.iter().map(|r| r.abs()).sum::<f32>() / n as f32;
            let dst = &mut plane_signs[q][i * n..(i + 1) * n];
            for ((r, d), _) in residual.iter_mut().zip(dst.iter_mut()).zip(0..n) {
                let s = if *r >= 0.0 { 1i8 } else { -1i8 };
                *d = s;
                *r -= alpha * s as f32;
            }
            plane_scales[q][i] = alpha;
        }
    }
    let planes = plane_scales
        .into_iter()
        .zip(plane_signs)
        .map(|(scales, signs)| QuantPlane { signs: SignMatrix::from_vec(m, n, signs), scales })
        .collect();
    MultiBitMatrix::new(planes)
}

/// Sum of squared residuals `‖w − dequant‖²` for a quantized matrix.
pub fn quantization_sse(w: &Matrix, q: &MultiBitMatrix) -> f64 {
    assert_eq!(w.shape(), q.shape(), "shape mismatch");
    let deq = q.dequantize();
    w.as_slice().iter().zip(deq.as_slice()).map(|(&a, &b)| ((a - b) as f64).powi(2)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use biq_matrix::MatrixRng;

    #[test]
    fn one_bit_vector_recovers_mean_abs() {
        let w = [1.0, -2.0, 3.0, -4.0];
        let (alphas, planes) = greedy_quantize_vector(&w, 1);
        assert_eq!(alphas.len(), 1);
        assert!((alphas[0] - 2.5).abs() < 1e-6);
        assert_eq!(planes[0], vec![1, -1, 1, -1]);
    }

    #[test]
    fn constant_vector_is_exact_with_one_bit() {
        let w = [0.7f32; 16];
        let (alphas, planes) = greedy_quantize_vector(&w, 1);
        assert!((alphas[0] - 0.7).abs() < 1e-6);
        assert!(planes[0].iter().all(|&s| s == 1));
    }

    #[test]
    fn residual_norm_non_increasing_in_bits() {
        let mut g = MatrixRng::seed_from(11);
        let w = g.gaussian(1, 256, 0.0, 1.0);
        let mut prev = f64::INFINITY;
        for bits in 1..=6 {
            let q = greedy_quantize_matrix_rowwise(&w, bits);
            let sse = quantization_sse(&w, &q);
            assert!(sse <= prev + 1e-9, "sse grew at {bits} bits: {sse} > {prev}");
            prev = sse;
        }
        // 6 greedy bits on a Gaussian should capture most of the energy.
        let total: f64 = w.as_slice().iter().map(|&v| (v as f64).powi(2)).sum();
        assert!(prev / total < 0.05, "relative sse {}", prev / total);
    }

    #[test]
    fn rowwise_matches_per_vector_quantization() {
        let mut g = MatrixRng::seed_from(42);
        let w = g.gaussian(5, 32, 0.0, 2.0);
        let q = greedy_quantize_matrix_rowwise(&w, 3);
        for i in 0..5 {
            let (alphas, planes) = greedy_quantize_vector(w.row(i), 3);
            for (bit, plane) in q.planes().iter().enumerate() {
                assert!((plane.scales[i] - alphas[bit]).abs() < 1e-6);
                assert_eq!(plane.signs.row(i), &planes[bit][..]);
            }
        }
    }

    #[test]
    fn scales_are_non_negative_and_decreasing_typically() {
        let mut g = MatrixRng::seed_from(1);
        let w = g.gaussian(8, 64, 0.0, 1.0);
        let q = greedy_quantize_matrix_rowwise(&w, 4);
        for i in 0..8 {
            let mut prev = f32::INFINITY;
            for plane in q.planes() {
                assert!(plane.scales[i] >= 0.0);
                assert!(plane.scales[i] <= prev);
                prev = plane.scales[i];
            }
        }
    }

    #[test]
    fn dequantize_matches_manual_sum() {
        let w = Matrix::from_vec(2, 2, vec![1.0, -1.0, 0.5, -0.25]);
        let q = greedy_quantize_matrix_rowwise(&w, 2);
        let deq = q.dequantize();
        for i in 0..2 {
            for j in 0..2 {
                let mut acc = 0.0;
                for p in q.planes() {
                    acc += p.scales[i] * p.signs.get(i, j) as f32;
                }
                assert!((deq.get(i, j) - acc).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn stacked_layout_matches_planes() {
        let mut g = MatrixRng::seed_from(2);
        let w = g.gaussian(3, 8, 0.0, 1.0);
        let q = greedy_quantize_matrix_rowwise(&w, 2);
        let stacked = q.stacked_signs();
        assert_eq!(stacked.shape(), (6, 8));
        assert_eq!(stacked.row(0), q.planes()[0].signs.row(0));
        assert_eq!(stacked.row(3), q.planes()[1].signs.row(0));
        let scales = q.stacked_scales();
        assert_eq!(scales.len(), 6);
        assert_eq!(scales[4], q.planes()[1].scales[1]);
    }

    #[test]
    fn truncated_keeps_prefix_planes() {
        let mut g = MatrixRng::seed_from(3);
        let w = g.gaussian(4, 16, 0.0, 1.0);
        let q3 = greedy_quantize_matrix_rowwise(&w, 3);
        let q1 = q3.truncated(1);
        assert_eq!(q1.bits(), 1);
        assert_eq!(q1.planes()[0].scales, q3.planes()[0].scales);
        // Greedy is a prefix procedure: quantizing directly to 1 bit matches.
        let direct = greedy_quantize_matrix_rowwise(&w, 1);
        assert_eq!(direct.planes()[0].scales, q1.planes()[0].scales);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bits_rejected() {
        let w = Matrix::zeros(1, 4);
        let _ = greedy_quantize_matrix_rowwise(&w, 0);
    }

    #[test]
    fn plane_dequantize_single() {
        let w = Matrix::from_vec(1, 2, vec![2.0, -2.0]);
        let q = greedy_quantize_matrix_rowwise(&w, 1);
        let d = q.planes()[0].dequantize();
        assert_eq!(d.as_slice(), &[2.0, -2.0]);
    }
}
