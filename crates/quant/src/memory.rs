//! The Table II memory-usage model.
//!
//! Table II of the paper reports the storage footprint of one matrix
//! multiplication (`512 × 512` weights, batch 18) as the bit widths of
//! weights (W), activations/inputs (A/I) and outputs (O) vary. Footprints are
//! in **decimal megabytes** (10⁶ bytes): `512·512·32/8 = 1.048576 MB` is
//! printed as `1.049`, matching the paper.
//!
//! Also modelled: BiQGEMM's extra working-state (key matrix + live lookup
//! tables) so the harness can reason about tile-size limits (Section III-C).

/// Memory footprint of one `m × n` GEMM with batch `b`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoryUsage {
    /// Weight storage, MB.
    pub weights_mb: f64,
    /// Input (activation) storage, MB.
    pub inputs_mb: f64,
    /// Output storage, MB.
    pub outputs_mb: f64,
}

impl MemoryUsage {
    /// Total MB.
    pub fn total_mb(&self) -> f64 {
        self.weights_mb + self.inputs_mb + self.outputs_mb
    }
}

const MB: f64 = 1e6;

/// Bytes for `count` values of `bits` width (bit-packed, rounded to bytes).
fn bytes(count: usize, bits: u32) -> f64 {
    (count as f64 * bits as f64 / 8.0).ceil()
}

/// Memory usage of a `m × n` weight matrix, `n × b` input and `m × b` output
/// at the given bit widths (Table II's model).
pub fn gemm_memory(
    m: usize,
    n: usize,
    b: usize,
    w_bits: u32,
    a_bits: u32,
    o_bits: u32,
) -> MemoryUsage {
    MemoryUsage {
        weights_mb: bytes(m * n, w_bits) / MB,
        inputs_mb: bytes(n * b, a_bits) / MB,
        outputs_mb: bytes(m * b, o_bits) / MB,
    }
}

/// Storage of BiQGEMM's key matrix for an `m × n` binary matrix at LUT-unit
/// `µ` and `beta` quantization bits, assuming keys are stored µ bits each
/// (densely packed, as a deployment would).
pub fn key_matrix_mb(m: usize, n: usize, mu: usize, beta: usize) -> f64 {
    let chunks = n.div_ceil(mu);
    bytes(beta * m * chunks, mu as u32) / MB
}

/// Live lookup-table bytes for `num_chunks` chunks at LUT-unit `µ` and batch
/// `b` (each table has `2^µ` f32 entries per batch column). This is the
/// quantity that must fit in cache/scratchpad and constrains tile size
/// (Section III-C of the paper).
pub fn lut_working_set_mb(num_chunks: usize, mu: usize, b: usize) -> f64 {
    (num_chunks as f64) * (1u64 << mu) as f64 * b as f64 * 4.0 / MB
}

/// One row of the Table II reproduction.
#[derive(Clone, Copy, Debug)]
pub struct TableIIRow {
    /// Weight bits.
    pub w_bits: u32,
    /// Activation bits.
    pub a_bits: u32,
    /// Output bits.
    pub o_bits: u32,
    /// Footprint under the model.
    pub usage: MemoryUsage,
}

/// Regenerates the full Table II (512×512 weights, batch 18).
pub fn table_ii() -> Vec<TableIIRow> {
    let configs: [(u32, u32, u32); 7] =
        [(32, 32, 32), (8, 8, 32), (6, 6, 32), (4, 4, 32), (4, 32, 32), (3, 32, 32), (2, 32, 32)];
    configs
        .iter()
        .map(|&(w, a, o)| TableIIRow {
            w_bits: w,
            a_bits: a,
            o_bits: o,
            usage: gemm_memory(512, 512, 18, w, a, o),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 5e-4
    }

    #[test]
    fn full_precision_row_matches_paper() {
        // Paper: W 1.049, I 0.037, O 0.037, total 1.122.
        let u = gemm_memory(512, 512, 18, 32, 32, 32);
        assert!(close(u.weights_mb, 1.049), "W = {}", u.weights_mb);
        assert!(close(u.inputs_mb, 0.037), "I = {}", u.inputs_mb);
        assert!(close(u.outputs_mb, 0.037), "O = {}", u.outputs_mb);
        assert!(close(u.total_mb(), 1.122), "total = {}", u.total_mb());
    }

    #[test]
    fn int8_row_matches_paper() {
        // Paper: 8/8/32 -> W 0.262, I 0.009, total 0.308.
        let u = gemm_memory(512, 512, 18, 8, 8, 32);
        assert!(close(u.weights_mb, 0.262));
        assert!(close(u.inputs_mb, 0.009));
        assert!(close(u.total_mb(), 0.308));
    }

    #[test]
    fn binary_coding_rows_match_paper() {
        // 4/32/32 -> 0.205 ; 3/32/32 -> 0.172 ; 2/32/32 -> 0.139.
        assert!(close(gemm_memory(512, 512, 18, 4, 32, 32).total_mb(), 0.205));
        assert!(close(gemm_memory(512, 512, 18, 3, 32, 32).total_mb(), 0.172));
        assert!(close(gemm_memory(512, 512, 18, 2, 32, 32).total_mb(), 0.139));
    }

    #[test]
    fn table_ii_has_all_seven_rows_in_order() {
        let t = table_ii();
        assert_eq!(t.len(), 7);
        assert_eq!(t[0].w_bits, 32);
        assert_eq!(t[6].w_bits, 2);
        // Totals strictly decrease down the uniform block and the
        // binary-coding block.
        assert!(t[1].usage.total_mb() > t[2].usage.total_mb());
        assert!(t[4].usage.total_mb() > t[5].usage.total_mb());
        assert!(t[5].usage.total_mb() > t[6].usage.total_mb());
    }

    #[test]
    fn key_matrix_is_as_small_as_packed_binary() {
        // µ-bit keys over n/µ chunks cost exactly n bits per row: the key
        // matrix is the same size as the packed binary matrix (paper
        // Section III: "K instead of B can be loaded").
        let kb = key_matrix_mb(512, 512, 8, 1);
        let packed_b = bytes(512 * 512, 1) / 1e6;
        assert!((kb - packed_b).abs() < 1e-9);
    }

    #[test]
    fn lut_working_set_grows_exponentially_in_mu() {
        let a = lut_working_set_mb(64, 8, 32);
        let b = lut_working_set_mb(64, 10, 32);
        assert!((b / a - 4.0).abs() < 1e-9);
    }
}
