//! Bit-packing of sign matrices.
//!
//! Three packed formats, one per consumer:
//!
//! * [`KeyMatrix`] — the paper's key matrix `K ∈ Z^{m×⌈n/µ⌉}` (Fig. 5): each
//!   run of µ consecutive signs *within a row* becomes one integer key,
//!   **MSB-first** with `+1 ↦ 1` (`{−1,+1,+1,−1} ↦ 0b0110 = 6`). Keys index
//!   directly into BiQGEMM's lookup tables. A ragged final chunk of length
//!   `L < µ` packs into the low `L` bits (its LUT has `2^L` entries).
//! * [`PackedRowsU32`] / [`PackedRowsU64`] — 32/64 consecutive signs per row
//!   packed **LSB-first** (`bit i ↦ element 32·w + i`), matching the paper's
//!   Algorithm 3 unpack loop `w_i = (((x >> i) & 1) · 2) − 1`. Used by the
//!   unpack-GEMM baseline (Fig. 9) and the XNOR-popcount kernel (Table IV).
//!
//! All packers round-trip exactly against [`crate::unpack`]; property tests
//! cover ragged widths.

use biq_matrix::store::{PodStore, PodView};
use biq_matrix::SignMatrix;

/// The paper's key matrix: µ-bit row chunks of a binary weight matrix,
/// stored one `u16` per key (µ ≤ 16).
///
/// Key storage is a [`PodStore`], so a key matrix deserialized from a model
/// artifact borrows the artifact's byte buffer ([`KeyMatrix::from_shared`])
/// instead of re-allocating — loading a packed model is a validation pass,
/// not a copy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyMatrix {
    rows: usize,
    /// Logical width of the source sign matrix (may be ragged w.r.t. µ).
    cols: usize,
    mu: usize,
    chunks: usize,
    keys: PodStore<u16>,
}

impl KeyMatrix {
    /// Packs a `{−1,+1}` matrix into µ-bit keys.
    ///
    /// # Panics
    /// Panics unless `1 ≤ µ ≤ 16`.
    pub fn pack(signs: &SignMatrix, mu: usize) -> Self {
        assert!((1..=16).contains(&mu), "LUT-unit µ must be in 1..=16, got {mu}");
        let (rows, cols) = signs.shape();
        assert!(cols > 0, "cannot pack an empty matrix");
        let chunks = cols.div_ceil(mu);
        let mut keys = Vec::with_capacity(rows * chunks);
        for i in 0..rows {
            let row = signs.row(i);
            for beta in 0..chunks {
                let start = beta * mu;
                let end = (start + mu).min(cols);
                let mut key: u16 = 0;
                for &s in &row[start..end] {
                    key = (key << 1) | u16::from(s > 0);
                }
                keys.push(key);
            }
        }
        Self { rows, cols, mu, chunks, keys: keys.into() }
    }

    /// Rebuilds a key matrix from raw parts (deserialization path).
    ///
    /// # Panics
    /// Panics if the buffer length mismatches or any key exceeds its chunk's
    /// bit width — callers performing untrusted decoding should validate
    /// first (see `serialize::decode_key_matrix`).
    pub fn from_raw(rows: usize, cols: usize, mu: usize, keys: Vec<u16>) -> Self {
        Self::from_store(rows, cols, mu, keys.into())
    }

    /// Rebuilds a key matrix over a zero-copy artifact view — same
    /// validation as [`KeyMatrix::from_raw`], but the keys stay borrowed
    /// from the loaded buffer.
    ///
    /// # Panics
    /// Panics under the same conditions as [`KeyMatrix::from_raw`].
    pub fn from_shared(rows: usize, cols: usize, mu: usize, keys: PodView<u16>) -> Self {
        Self::from_store(rows, cols, mu, keys.into())
    }

    /// Non-panicking [`KeyMatrix::from_shared`] for untrusted input
    /// (artifact loaders): every key is range-checked in one linear scan,
    /// and violations come back as errors.
    pub fn try_from_shared(
        rows: usize,
        cols: usize,
        mu: usize,
        keys: PodView<u16>,
    ) -> Result<Self, String> {
        Self::try_from_store(rows, cols, mu, keys.into())
    }

    fn from_store(rows: usize, cols: usize, mu: usize, keys: PodStore<u16>) -> Self {
        Self::try_from_store(rows, cols, mu, keys).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_from_store(
        rows: usize,
        cols: usize,
        mu: usize,
        keys: PodStore<u16>,
    ) -> Result<Self, String> {
        if !(1..=16).contains(&mu) {
            return Err(format!("LUT-unit µ must be in 1..=16, got {mu}"));
        }
        if cols == 0 {
            return Err("key matrix must have columns".into());
        }
        let chunks = cols.div_ceil(mu);
        if keys.len() != rows * chunks {
            return Err(format!(
                "key buffer length mismatch: {} keys for {rows} rows x {chunks} chunks",
                keys.len()
            ));
        }
        // One linear scan: full chunks are `µ` bits wide, only the final
        // chunk of each row may be ragged.
        let last_len = cols - (chunks - 1) * mu;
        let full_cap = if mu == 16 { u32::MAX } else { 1u32 << mu };
        let last_cap = if last_len == 16 { u32::MAX } else { 1u32 << last_len };
        let ks = keys.as_slice();
        for r in 0..rows {
            let row = &ks[r * chunks..(r + 1) * chunks];
            for (beta, &key) in row[..chunks - 1].iter().enumerate() {
                if (key as u32) >= full_cap {
                    return Err(format!("key {key} at chunk {beta} exceeds {mu} bits"));
                }
            }
            let key = row[chunks - 1];
            if (key as u32) >= last_cap {
                return Err(format!("key {key} at chunk {} exceeds {last_len} bits", chunks - 1));
            }
        }
        Ok(Self { rows, cols, mu, chunks, keys })
    }

    /// True when the keys are a borrowed artifact view.
    pub fn is_shared(&self) -> bool {
        self.keys.is_shared()
    }

    /// Number of key rows (`m`, or `β·m` for stacked multi-bit weights).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count `n` of the source sign matrix.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The LUT-unit µ this matrix was packed with.
    #[inline]
    pub fn mu(&self) -> usize {
        self.mu
    }

    /// Number of key columns `⌈n/µ⌉`.
    #[inline]
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// Length (in signs) of chunk `beta` — `µ` except possibly the last.
    #[inline]
    pub fn chunk_len(&self, beta: usize) -> usize {
        debug_assert!(beta < self.chunks);
        self.mu.min(self.cols - beta * self.mu)
    }

    /// Key at `(row, chunk)`.
    #[inline]
    pub fn key(&self, row: usize, beta: usize) -> u16 {
        debug_assert!(row < self.rows && beta < self.chunks);
        self.keys[row * self.chunks + beta]
    }

    /// The contiguous key row for `row`.
    #[inline]
    pub fn key_row(&self, row: usize) -> &[u16] {
        &self.keys[row * self.chunks..(row + 1) * self.chunks]
    }

    /// The raw key buffer (row-major `rows × chunks`).
    #[inline]
    pub fn as_slice(&self) -> &[u16] {
        self.keys.as_slice()
    }

    /// Unpacks back to a dense sign matrix (inverse of [`Self::pack`]).
    pub fn unpack(&self) -> SignMatrix {
        SignMatrix::from_fn(self.rows, self.cols, |i, j| {
            let beta = j / self.mu;
            let within = j % self.mu;
            let len = self.chunk_len(beta);
            let key = self.key(i, beta);
            (key >> (len - 1 - within)) & 1 == 1
        })
    }

    /// Bytes used by the key storage (2 bytes per key as stored here).
    pub fn storage_bytes(&self) -> usize {
        self.keys.len() * std::mem::size_of::<u16>()
    }
}

/// Macro-free generic row packer for LSB-first word packing.
macro_rules! packed_rows {
    ($name:ident, $word:ty, $bits:expr) => {
        /// Sign rows packed LSB-first into machine words (bit `i` of word `w`
        /// holds element `w·WORD_BITS + i`; `+1 ↦ 1`). Tail bits of the final
        /// word are zero.
        ///
        /// Word storage is a [`PodStore`], so planes deserialized from a
        /// model artifact borrow the artifact's buffer
        /// (`from_shared`) instead of re-allocating.
        #[derive(Clone, Debug, PartialEq, Eq)]
        pub struct $name {
            rows: usize,
            cols: usize,
            words_per_row: usize,
            words: PodStore<$word>,
        }

        impl $name {
            /// Number of bits per storage word.
            pub const WORD_BITS: usize = $bits;

            /// Packs a sign matrix row by row.
            pub fn pack(signs: &SignMatrix) -> Self {
                let (rows, cols) = signs.shape();
                let words_per_row = cols.div_ceil(Self::WORD_BITS);
                let mut words = vec![0 as $word; rows * words_per_row];
                for i in 0..rows {
                    let row = signs.row(i);
                    let dst = &mut words[i * words_per_row..(i + 1) * words_per_row];
                    for (j, &s) in row.iter().enumerate() {
                        if s > 0 {
                            dst[j / Self::WORD_BITS] |= (1 as $word) << (j % Self::WORD_BITS);
                        }
                    }
                }
                Self { rows, cols, words_per_row, words: words.into() }
            }

            /// Rebuilds packed rows from raw parts (deserialization path).
            ///
            /// # Panics
            /// Panics when the buffer length disagrees with
            /// `rows · ⌈cols/WORD_BITS⌉` or a final-word tail bit is set
            /// (tail bits must be zero so XNOR tail masks stay exact).
            pub fn from_raw(rows: usize, cols: usize, words: Vec<$word>) -> Self {
                Self::from_store(rows, cols, words.into())
            }

            /// Rebuilds packed rows over a zero-copy artifact view — same
            /// validation as `from_raw`, words stay borrowed.
            ///
            /// # Panics
            /// Panics under the same conditions as `from_raw`.
            pub fn from_shared(rows: usize, cols: usize, words: PodView<$word>) -> Self {
                Self::from_store(rows, cols, words.into())
            }

            /// Non-panicking `from_shared` for untrusted input (artifact
            /// loaders).
            pub fn try_from_shared(
                rows: usize,
                cols: usize,
                words: PodView<$word>,
            ) -> Result<Self, String> {
                Self::try_from_store(rows, cols, words.into())
            }

            fn from_store(rows: usize, cols: usize, words: PodStore<$word>) -> Self {
                Self::try_from_store(rows, cols, words).unwrap_or_else(|e| panic!("{e}"))
            }

            fn try_from_store(
                rows: usize,
                cols: usize,
                words: PodStore<$word>,
            ) -> Result<Self, String> {
                if cols == 0 {
                    return Err("packed rows must have columns".into());
                }
                let words_per_row = cols.div_ceil(Self::WORD_BITS);
                if words.len() != rows * words_per_row {
                    return Err(format!(
                        "word buffer length mismatch: {} words for {rows} rows",
                        words.len()
                    ));
                }
                let out = Self { rows, cols, words_per_row, words };
                let tail = out.tail_mask();
                for i in 0..rows {
                    let last = out.row(i)[words_per_row - 1];
                    if last & !tail != 0 {
                        return Err(format!("tail bits of row {i} must be zero"));
                    }
                }
                Ok(out)
            }

            /// The raw packed words (row-major, `words_per_row` per row).
            #[inline]
            pub fn as_words(&self) -> &[$word] {
                self.words.as_slice()
            }

            /// Number of rows.
            #[inline]
            pub fn rows(&self) -> usize {
                self.rows
            }

            /// Logical column count (signs per row).
            #[inline]
            pub fn cols(&self) -> usize {
                self.cols
            }

            /// Words per packed row.
            #[inline]
            pub fn words_per_row(&self) -> usize {
                self.words_per_row
            }

            /// The packed words of row `i`.
            #[inline]
            pub fn row(&self, i: usize) -> &[$word] {
                &self.words[i * self.words_per_row..(i + 1) * self.words_per_row]
            }

            /// Mask selecting the valid bits of the final word of a row
            /// (all-ones when the width divides the word size).
            #[inline]
            pub fn tail_mask(&self) -> $word {
                let rem = self.cols % Self::WORD_BITS;
                if rem == 0 {
                    <$word>::MAX
                } else {
                    ((1 as $word) << rem) - 1
                }
            }

            /// Sign at `(i, j)` recovered from the packed form.
            #[inline]
            pub fn get(&self, i: usize, j: usize) -> i8 {
                debug_assert!(i < self.rows && j < self.cols);
                let w = self.row(i)[j / Self::WORD_BITS];
                if (w >> (j % Self::WORD_BITS)) & 1 == 1 {
                    1
                } else {
                    -1
                }
            }

            /// Unpacks back to a dense sign matrix.
            pub fn unpack(&self) -> SignMatrix {
                SignMatrix::from_fn(self.rows, self.cols, |i, j| self.get(i, j) == 1)
            }

            /// Bytes used by the packed storage.
            pub fn storage_bytes(&self) -> usize {
                self.words.len() * std::mem::size_of::<$word>()
            }
        }
    };
}

packed_rows!(PackedRowsU32, u32, 32);
packed_rows!(PackedRowsU64, u64, 64);

/// Packs a sign *vector* LSB-first into `u64` words (for XNOR activations).
pub fn pack_signs_u64(signs: &[i8]) -> Vec<u64> {
    let words = signs.len().div_ceil(64);
    let mut out = vec![0u64; words];
    for (j, &s) in signs.iter().enumerate() {
        debug_assert!(s == 1 || s == -1);
        if s > 0 {
            out[j / 64] |= 1u64 << (j % 64);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use biq_matrix::MatrixRng;

    #[test]
    fn key_matches_paper_example() {
        // Fig. 5: {−1, 1, 1, −1} -> 0110₂ = 6 with µ = 4.
        let s = SignMatrix::from_vec(1, 4, vec![-1, 1, 1, -1]);
        let k = KeyMatrix::pack(&s, 4);
        assert_eq!(k.key(0, 0), 6);
    }

    #[test]
    fn keys_are_msb_first() {
        // {+1, −1, −1, −1} -> 1000₂ = 8.
        let s = SignMatrix::from_vec(1, 4, vec![1, -1, -1, -1]);
        assert_eq!(KeyMatrix::pack(&s, 4).key(0, 0), 8);
        // {−1, −1, −1, +1} -> 0001₂ = 1.
        let s = SignMatrix::from_vec(1, 4, vec![-1, -1, -1, 1]);
        assert_eq!(KeyMatrix::pack(&s, 4).key(0, 0), 1);
    }

    #[test]
    fn key_pack_unpack_round_trip() {
        let mut g = MatrixRng::seed_from(31);
        for (rows, cols, mu) in [(3, 12, 4), (2, 10, 4), (5, 7, 3), (1, 16, 16), (4, 9, 8)] {
            let s = g.signs(rows, cols);
            let k = KeyMatrix::pack(&s, mu);
            assert_eq!(k.unpack(), s, "round trip failed rows={rows} cols={cols} mu={mu}");
        }
    }

    #[test]
    fn ragged_tail_chunk_lengths() {
        let mut g = MatrixRng::seed_from(32);
        let s = g.signs(2, 10);
        let k = KeyMatrix::pack(&s, 4);
        assert_eq!(k.chunks(), 3);
        assert_eq!(k.chunk_len(0), 4);
        assert_eq!(k.chunk_len(2), 2);
        // Ragged key fits in 2 bits.
        assert!(k.key(0, 2) < 4);
    }

    #[test]
    fn key_row_slice_is_contiguous() {
        let mut g = MatrixRng::seed_from(33);
        let s = g.signs(3, 8);
        let k = KeyMatrix::pack(&s, 4);
        assert_eq!(k.key_row(1), &[k.key(1, 0), k.key(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "µ must be in 1..=16")]
    fn mu_over_16_rejected() {
        let s = SignMatrix::ones(1, 32);
        let _ = KeyMatrix::pack(&s, 17);
    }

    #[test]
    fn packed_u32_round_trip_with_ragged_width() {
        let mut g = MatrixRng::seed_from(34);
        for cols in [1usize, 31, 32, 33, 70] {
            let s = g.signs(3, cols);
            let p = PackedRowsU32::pack(&s);
            assert_eq!(p.unpack(), s, "u32 round trip failed cols={cols}");
            assert_eq!(p.words_per_row(), cols.div_ceil(32));
        }
    }

    #[test]
    fn packed_u64_round_trip() {
        let mut g = MatrixRng::seed_from(35);
        for cols in [1usize, 63, 64, 65, 130] {
            let s = g.signs(2, cols);
            let p = PackedRowsU64::pack(&s);
            assert_eq!(p.unpack(), s, "u64 round trip failed cols={cols}");
        }
    }

    #[test]
    fn packed_is_lsb_first() {
        // Element 0 = +1, rest −1 -> word 0 has only bit 0 set.
        let mut signs = vec![-1i8; 40];
        signs[0] = 1;
        signs[33] = 1;
        let s = SignMatrix::from_vec(1, 40, signs);
        let p = PackedRowsU32::pack(&s);
        assert_eq!(p.row(0)[0], 1);
        assert_eq!(p.row(0)[1], 1 << 1); // element 33 = word 1, bit 1
    }

    #[test]
    fn tail_mask_selects_valid_bits() {
        let s = SignMatrix::ones(1, 40);
        let p = PackedRowsU32::pack(&s);
        assert_eq!(p.tail_mask(), (1u32 << 8) - 1);
        let s = SignMatrix::ones(1, 64);
        let p = PackedRowsU64::pack(&s);
        assert_eq!(p.tail_mask(), u64::MAX);
    }

    #[test]
    fn pack_signs_u64_matches_matrix_packer() {
        let mut g = MatrixRng::seed_from(36);
        let s = g.signs(1, 100);
        let v = pack_signs_u64(s.row(0));
        let p = PackedRowsU64::pack(&s);
        assert_eq!(v, p.row(0));
    }

    #[test]
    fn storage_bytes_reflect_compression() {
        let s = SignMatrix::ones(128, 1024);
        let k = KeyMatrix::pack(&s, 8);
        // 128 rows * 128 chunks * 2 bytes.
        assert_eq!(k.storage_bytes(), 128 * 128 * 2);
        let p = PackedRowsU32::pack(&s);
        assert_eq!(p.storage_bytes(), 128 * 32 * 4);
    }
}
