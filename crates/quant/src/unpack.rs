//! Algorithm 3 of the paper: "Unpacking for GEMM".
//!
//! Conventional GEMM cannot consume bit-packed binary weights directly; it
//! must first expand each 32-bit container back into 32 `{−1,+1}` values:
//!
//! ```text
//! procedure unpacking(x):
//!     for i ← 0 to 31: w_i ← (((x >> i) & 1) · 2) − 1
//! ```
//!
//! This module implements that loop (and a 64-bit variant) exactly as
//! written; `biq-gemm`'s unpack-GEMM baseline calls it in its inner loop so
//! the Fig. 9 experiment measures the true decompression overhead.

/// Unpacks one 32-bit container into 32 signs (`bit i ↦ element i`,
/// `1 ↦ +1.0`, `0 ↦ −1.0`) — Algorithm 3 verbatim.
#[inline]
pub fn unpack_word_u32(x: u32) -> [f32; 32] {
    let mut w = [0.0f32; 32];
    for (i, wi) in w.iter_mut().enumerate() {
        *wi = (((x >> i) & 1) as i32 * 2 - 1) as f32;
    }
    w
}

/// 64-bit variant of [`unpack_word_u32`].
#[inline]
pub fn unpack_word_u64(x: u64) -> [f32; 64] {
    let mut w = [0.0f32; 64];
    for (i, wi) in w.iter_mut().enumerate() {
        *wi = (((x >> i) & 1) as i64 * 2 - 1) as f32;
    }
    w
}

/// Unpacks a packed row (`words`, LSB-first) into `out` (`out.len()` = the
/// logical width `n`; tail bits beyond `n` are ignored).
pub fn unpack_row_u32(words: &[u32], out: &mut [f32]) {
    let n = out.len();
    debug_assert!(words.len() * 32 >= n, "not enough packed words");
    let mut j = 0;
    for &word in words {
        if j >= n {
            break;
        }
        let take = 32.min(n - j);
        let expanded = unpack_word_u32(word);
        out[j..j + take].copy_from_slice(&expanded[..take]);
        j += take;
    }
}

/// Unpacks into `i8` signs instead of `f32`.
pub fn unpack_row_u32_i8(words: &[u32], out: &mut [i8]) {
    let n = out.len();
    debug_assert!(words.len() * 32 >= n, "not enough packed words");
    for (j, o) in out.iter_mut().enumerate() {
        let w = words[j / 32];
        *o = (((w >> (j % 32)) & 1) as i8) * 2 - 1;
    }
    let _ = n;
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-style loops read clearer in reference checks
mod tests {
    use super::*;
    use crate::packing::{PackedRowsU32, PackedRowsU64};
    use biq_matrix::MatrixRng;

    #[test]
    fn unpack_word_all_zeros_and_ones() {
        assert!(unpack_word_u32(0).iter().all(|&v| v == -1.0));
        assert!(unpack_word_u32(u32::MAX).iter().all(|&v| v == 1.0));
        assert!(unpack_word_u64(u64::MAX).iter().all(|&v| v == 1.0));
    }

    #[test]
    fn unpack_word_single_bits() {
        for i in 0..32 {
            let w = unpack_word_u32(1u32 << i);
            for (j, &v) in w.iter().enumerate() {
                assert_eq!(v, if j == i { 1.0 } else { -1.0 });
            }
        }
    }

    #[test]
    fn unpack_inverts_pack_u32() {
        let mut g = MatrixRng::seed_from(44);
        for cols in [5usize, 32, 45, 96] {
            let s = g.signs(3, cols);
            let p = PackedRowsU32::pack(&s);
            let mut out = vec![0.0f32; cols];
            for i in 0..3 {
                unpack_row_u32(p.row(i), &mut out);
                for (j, &v) in out.iter().enumerate() {
                    assert_eq!(v, s.get(i, j) as f32, "mismatch at ({i}, {j}), cols={cols}");
                }
            }
        }
    }

    #[test]
    fn unpack_i8_matches_f32() {
        let mut g = MatrixRng::seed_from(45);
        let s = g.signs(1, 50);
        let p = PackedRowsU32::pack(&s);
        let mut f = vec![0.0f32; 50];
        let mut i = vec![0i8; 50];
        unpack_row_u32(p.row(0), &mut f);
        unpack_row_u32_i8(p.row(0), &mut i);
        for (a, b) in f.iter().zip(&i) {
            assert_eq!(*a, *b as f32);
        }
    }

    #[test]
    fn unpack_word_u64_round_trip() {
        let mut g = MatrixRng::seed_from(46);
        let s = g.signs(1, 64);
        let p = PackedRowsU64::pack(&s);
        let w = unpack_word_u64(p.row(0)[0]);
        for j in 0..64 {
            assert_eq!(w[j], s.get(0, j) as f32);
        }
    }
}
