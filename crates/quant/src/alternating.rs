//! Alternating multi-bit quantization (Xu et al. \[15\]).
//!
//! Starting from the greedy solution, alternate two exact sub-problems until
//! convergence:
//!
//! 1. **Scale refit** — with the sign planes `B` fixed, the optimal scales
//!    solve the `q × q` normal equations `(BᵀB) α = Bᵀ w` (least squares).
//! 2. **Re-binarisation** — with the scales fixed, each weight independently
//!    picks the sign combination `s ∈ {−1,+1}^q` minimising
//!    `|w − Σ_i s_i α_i|`; for small `q` all `2^q` candidate reconstruction
//!    values are enumerated once per row and reused for every element.
//!
//! Both steps can only decrease the squared error, so the alternating
//! objective is monotonically non-increasing and always at least as good as
//! greedy — an invariant the tests assert.

use crate::binary_coding::{greedy_quantize_vector, MultiBitMatrix, QuantPlane};
use biq_matrix::{Matrix, SignMatrix};

/// Solves the small symmetric system `G α = c` (`G = BᵀB`, `c = Bᵀw`) by
/// Gaussian elimination with partial pivoting, in `f64`.
///
/// Returns `None` when the system is numerically singular (e.g. duplicate
/// sign planes) — callers keep the previous scales in that case.
fn solve_normal_equations(mut g: Vec<f64>, mut c: Vec<f64>) -> Option<Vec<f64>> {
    let q = c.len();
    debug_assert_eq!(g.len(), q * q);
    for col in 0..q {
        // Partial pivot.
        let mut pivot = col;
        for r in col + 1..q {
            if g[r * q + col].abs() > g[pivot * q + col].abs() {
                pivot = r;
            }
        }
        if g[pivot * q + col].abs() < 1e-10 {
            return None;
        }
        if pivot != col {
            for k in 0..q {
                g.swap(col * q + k, pivot * q + k);
            }
            c.swap(col, pivot);
        }
        let diag = g[col * q + col];
        for r in col + 1..q {
            let f = g[r * q + col] / diag;
            if f == 0.0 {
                continue;
            }
            for k in col..q {
                g[r * q + k] -= f * g[col * q + k];
            }
            c[r] -= f * c[col];
        }
    }
    // Back substitution.
    let mut alpha = vec![0.0f64; q];
    for row in (0..q).rev() {
        let mut acc = c[row];
        for k in row + 1..q {
            acc -= g[row * q + k] * alpha[k];
        }
        alpha[row] = acc / g[row * q + row];
    }
    Some(alpha)
}

/// Least-squares optimal scales for fixed sign planes of one row.
///
/// `planes[i][j]` is the sign of plane `i` at element `j`.
pub fn refit_scales(w: &[f32], planes: &[Vec<i8>]) -> Option<Vec<f32>> {
    let q = planes.len();
    let mut gram = vec![0.0f64; q * q];
    let mut rhs = vec![0.0f64; q];

    for i in 0..q {
        for j in i..q {
            let mut acc = 0.0f64;
            for (&a, &b) in planes[i].iter().zip(&planes[j]) {
                acc += (a as i32 * b as i32) as f64;
            }
            gram[i * q + j] = acc;
            gram[j * q + i] = acc;
        }
        let mut acc = 0.0f64;
        for (&s, &wv) in planes[i].iter().zip(w) {
            acc += s as f64 * wv as f64;
        }
        rhs[i] = acc;
    }
    solve_normal_equations(gram, rhs).map(|a| a.into_iter().map(|v| v as f32).collect())
}

/// For fixed scales, re-binarises every element to the nearest of the `2^q`
/// reconstruction values `Σ_i s_i α_i`. Returns the new planes.
pub fn rebinarize(w: &[f32], alphas: &[f32]) -> Vec<Vec<i8>> {
    let q = alphas.len();
    assert!(q <= 16, "rebinarize enumerates 2^q combos; q > 16 is unreasonable");
    let combos = 1usize << q;
    // candidate[k] = Σ_i s_i α_i where s_i = +1 if bit (q-1-i) of k is set.
    let mut candidate = vec![0.0f32; combos];
    for (k, cand) in candidate.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for (i, &a) in alphas.iter().enumerate() {
            let s = if (k >> (q - 1 - i)) & 1 == 1 { 1.0 } else { -1.0 };
            acc += s * a;
        }
        *cand = acc;
    }
    let mut planes = vec![vec![0i8; w.len()]; q];
    for (j, &wj) in w.iter().enumerate() {
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (k, &cand) in candidate.iter().enumerate() {
            let d = (wj - cand).abs();
            if d < best_d {
                best_d = d;
                best = k;
            }
        }
        for (i, plane) in planes.iter_mut().enumerate() {
            plane[j] = if (best >> (q - 1 - i)) & 1 == 1 { 1 } else { -1 };
        }
    }
    planes
}

/// Squared reconstruction error of `(alphas, planes)` against `w`.
fn sse(w: &[f32], alphas: &[f32], planes: &[Vec<i8>]) -> f64 {
    let mut acc = 0.0f64;
    for (j, &wj) in w.iter().enumerate() {
        let mut rec = 0.0f32;
        for (i, &a) in alphas.iter().enumerate() {
            rec += a * planes[i][j] as f32;
        }
        acc += ((wj - rec) as f64).powi(2);
    }
    acc
}

/// Alternating quantization of one vector: greedy init, then up to
/// `max_iters` refit/re-binarise rounds (early exit when the error stops
/// improving).
pub fn alternating_quantize_vector(
    w: &[f32],
    q: usize,
    max_iters: usize,
) -> (Vec<f32>, Vec<Vec<i8>>) {
    let (mut alphas, mut planes) = greedy_quantize_vector(w, q);
    let mut err = sse(w, &alphas, &planes);
    for _ in 0..max_iters {
        if let Some(new_alphas) = refit_scales(w, &planes) {
            let new_planes = rebinarize(w, &new_alphas);
            let new_err = sse(w, &new_alphas, &new_planes);
            if new_err + 1e-12 >= err {
                break;
            }
            alphas = new_alphas;
            planes = new_planes;
            err = new_err;
        } else {
            break;
        }
    }
    (alphas, planes)
}

/// Row-wise alternating quantization of a matrix (the "Binary-Coding"
/// quantizer of Table I at its best-effort setting).
pub fn alternating_quantize_matrix_rowwise(
    w: &Matrix,
    bits: usize,
    max_iters: usize,
) -> MultiBitMatrix {
    assert!(bits >= 1, "need at least one bit");
    let (m, n) = w.shape();
    let mut plane_scales = vec![vec![0.0f32; m]; bits];
    let mut plane_signs = vec![vec![0i8; m * n]; bits];
    for i in 0..m {
        let (alphas, planes) = alternating_quantize_vector(w.row(i), bits, max_iters);
        for q in 0..bits {
            plane_scales[q][i] = alphas[q].abs();
            // Keep scales non-negative by folding signs into the plane, so
            // downstream kernels may assume α ≥ 0.
            let flip = if alphas[q] < 0.0 { -1 } else { 1 };
            let dst = &mut plane_signs[q][i * n..(i + 1) * n];
            for (d, &s) in dst.iter_mut().zip(&planes[q]) {
                *d = s * flip;
            }
        }
    }
    let planes = plane_scales
        .into_iter()
        .zip(plane_signs)
        .map(|(scales, signs)| QuantPlane { signs: SignMatrix::from_vec(m, n, signs), scales })
        .collect();
    MultiBitMatrix::new(planes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary_coding::{greedy_quantize_matrix_rowwise, quantization_sse};
    use biq_matrix::MatrixRng;

    #[test]
    fn normal_equations_solve_identity() {
        // G = I2, c = [3, -2] -> alpha = c
        let a = solve_normal_equations(vec![1.0, 0.0, 0.0, 1.0], vec![3.0, -2.0]).unwrap();
        assert!((a[0] - 3.0).abs() < 1e-12 && (a[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn normal_equations_detect_singular() {
        // Duplicate planes -> rank-1 Gram matrix.
        assert!(solve_normal_equations(vec![4.0, 4.0, 4.0, 4.0], vec![1.0, 1.0]).is_none());
    }

    #[test]
    fn refit_scales_exactly_recovers_representable_vector() {
        // w is exactly 0.75*b1 + 0.25*b2.
        let b1 = vec![1i8, -1, 1, -1];
        let b2 = vec![1i8, 1, -1, -1];
        let w: Vec<f32> = (0..4).map(|j| 0.75 * b1[j] as f32 + 0.25 * b2[j] as f32).collect();
        let alphas = refit_scales(&w, &[b1, b2]).unwrap();
        assert!((alphas[0] - 0.75).abs() < 1e-6);
        assert!((alphas[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn rebinarize_picks_nearest_candidate() {
        // alphas = [1.0, 0.25] -> candidates {-1.25, -0.75, 0.75, 1.25}
        let planes = rebinarize(&[1.3, 0.8, -0.7, -1.4], &[1.0, 0.25]);
        // 1.3 -> 1.25 = +1,+1 ; 0.8 -> 0.75 = +1,-1 ; -0.7 -> -0.75 ; -1.4 -> -1.25
        assert_eq!(planes[0], vec![1, 1, -1, -1]);
        assert_eq!(planes[1], vec![1, -1, 1, -1]);
    }

    #[test]
    fn alternating_never_worse_than_greedy() {
        let mut g = MatrixRng::seed_from(77);
        for bits in 1..=4 {
            let w = g.gaussian(6, 128, 0.0, 1.0);
            let greedy = greedy_quantize_matrix_rowwise(&w, bits);
            let alt = alternating_quantize_matrix_rowwise(&w, bits, 10);
            let e_g = quantization_sse(&w, &greedy);
            let e_a = quantization_sse(&w, &alt);
            assert!(
                e_a <= e_g + 1e-6,
                "alternating worse than greedy at {bits} bits: {e_a} > {e_g}"
            );
        }
    }

    #[test]
    fn alternating_strictly_improves_on_gaussian_multibit() {
        let mut g = MatrixRng::seed_from(5);
        let w = g.gaussian(4, 256, 0.0, 1.0);
        let greedy = greedy_quantize_matrix_rowwise(&w, 3);
        let alt = alternating_quantize_matrix_rowwise(&w, 3, 15);
        let e_g = quantization_sse(&w, &greedy);
        let e_a = quantization_sse(&w, &alt);
        // On Gaussian data with ≥2 bits, alternating reliably improves.
        assert!(e_a < e_g, "expected strict improvement: {e_a} vs {e_g}");
    }

    #[test]
    fn alternating_scales_are_non_negative() {
        let mut g = MatrixRng::seed_from(9);
        let w = g.gaussian(8, 64, 0.0, 1.0);
        let alt = alternating_quantize_matrix_rowwise(&w, 3, 10);
        for p in alt.planes() {
            assert!(p.scales.iter().all(|&s| s >= 0.0));
        }
    }

    #[test]
    fn one_bit_alternating_matches_optimal_one_bit() {
        // For 1 bit, greedy is already least-squares optimal (sign + mean
        // |w|); alternating must not change the error.
        let mut g = MatrixRng::seed_from(21);
        let w = g.gaussian(1, 512, 0.0, 1.0);
        let greedy = greedy_quantize_matrix_rowwise(&w, 1);
        let alt = alternating_quantize_matrix_rowwise(&w, 1, 10);
        let e_g = quantization_sse(&w, &greedy);
        let e_a = quantization_sse(&w, &alt);
        assert!((e_a - e_g).abs() < 1e-6 * e_g.max(1.0));
    }
}
