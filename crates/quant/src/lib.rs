//! Quantization substrate for the BiQGEMM reproduction.
//!
//! The paper assumes weights are compressed with **binary-coding
//! quantization** (Section II-B): a real vector `w ∈ R^p` is approximated as
//! `w ≈ Σ_{i=1..q} α_i b_i` with scale factors `α_i ∈ R` and sign vectors
//! `b_i ∈ {−1,+1}^p`, chosen to minimise `‖w − Σ α_i b_i‖²` (Eq. 1). There is
//! no closed-form minimiser, so this crate implements the two standard
//! heuristics the paper cites:
//!
//! * [`binary_coding`] — the **greedy** method of Guo et al. \[21\]: peel off
//!   `sign(residual)` planes with the residual's mean absolute value as scale;
//! * [`alternating`] — the **alternating** refinement of Xu et al. \[15\]:
//!   alternate a least-squares solve for the scales with an exhaustive
//!   re-binarisation given the scales.
//!
//! On top of the quantizers sit the bit-level tools the kernels need:
//!
//! * [`packing`] — µ-bit row keys (the paper's key matrix `K`, Fig. 5),
//!   32-bit row words for the unpack baseline, and XNOR-style packing;
//! * [`unpack`] — Algorithm 3 ("Unpacking for GEMM"), the decompression step
//!   whose cost motivates BiQGEMM (Fig. 9);
//! * [`uniform`] — INT8-style uniform quantization for the Table I/II
//!   comparisons;
//! * [`error_metrics`] — MSE / SQNR / cosine fidelity measures;
//! * [`memory`] — the Table II memory-usage model.

pub mod alternating;
pub mod binary_coding;
pub mod error_metrics;
pub mod memory;
pub mod packing;
pub mod serialize;
pub mod uniform;
pub mod unpack;

pub use binary_coding::{
    greedy_quantize_matrix_rowwise, greedy_quantize_vector, MultiBitMatrix, QuantPlane,
};
pub use packing::KeyMatrix;
