//! Hostile-input hardening for the `BIQQ`/`BIQK` binary decoders: any
//! truncation must return an error, and arbitrary bit flips must never
//! panic or over-read — a flipped byte either fails validation or decodes
//! to a different-but-well-formed value (these legacy per-matrix containers
//! carry no checksum; the `BIQM` model container does).

use biq_matrix::MatrixRng;
use biq_quant::greedy_quantize_matrix_rowwise;
use biq_quant::packing::KeyMatrix;
use biq_quant::serialize::{
    decode_key_matrix, decode_multibit, encode_key_matrix, encode_multibit,
};
use bytes::Bytes;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncated_multibit_always_errors(
        rows in 1usize..8,
        cols in 1usize..24,
        bits in 1usize..4,
        cut_frac in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let mut g = MatrixRng::seed_from(seed);
        let q = greedy_quantize_matrix_rowwise(&g.gaussian(rows, cols, 0.0, 1.0), bits);
        let enc = encode_multibit(&q);
        let cut = ((enc.len() as f64 * cut_frac) as usize).min(enc.len() - 1);
        prop_assert!(decode_multibit(enc.slice(0..cut)).is_err(), "cut {} decoded", cut);
    }

    #[test]
    fn flipped_multibit_never_panics(
        rows in 1usize..8,
        cols in 1usize..24,
        bits in 1usize..4,
        flip_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
        seed in 0u64..1000,
    ) {
        let mut g = MatrixRng::seed_from(seed);
        let q = greedy_quantize_matrix_rowwise(&g.gaussian(rows, cols, 0.0, 1.0), bits);
        let mut raw = encode_multibit(&q).to_vec();
        let at = ((raw.len() as f64 * flip_frac) as usize).min(raw.len() - 1);
        raw[at] ^= 1 << flip_bit;
        // Must terminate with Ok or Err — never panic, never over-read.
        let _ = decode_multibit(Bytes::from(raw));
    }

    #[test]
    fn truncated_key_matrix_always_errors(
        rows in 1usize..8,
        cols in 1usize..32,
        mu in 1usize..=16,
        cut_frac in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let mut g = MatrixRng::seed_from(seed);
        let k = KeyMatrix::pack(&g.signs(rows, cols), mu);
        let enc = encode_key_matrix(&k);
        let cut = ((enc.len() as f64 * cut_frac) as usize).min(enc.len() - 1);
        prop_assert!(decode_key_matrix(enc.slice(0..cut)).is_err(), "cut {} decoded", cut);
    }

    #[test]
    fn flipped_key_matrix_never_panics_and_keys_stay_in_range(
        rows in 1usize..8,
        cols in 1usize..32,
        mu in 1usize..=16,
        flip_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
        seed in 0u64..1000,
    ) {
        let mut g = MatrixRng::seed_from(seed);
        let k = KeyMatrix::pack(&g.signs(rows, cols), mu);
        let mut raw = encode_key_matrix(&k).to_vec();
        let at = ((raw.len() as f64 * flip_frac) as usize).min(raw.len() - 1);
        raw[at] ^= 1 << flip_bit;
        if let Ok(decoded) = decode_key_matrix(Bytes::from(raw)) {
            // Anything that decodes must still satisfy the key invariant.
            for r in 0..decoded.rows() {
                for beta in 0..decoded.chunks() {
                    let len = decoded.chunk_len(beta);
                    if len < 16 {
                        prop_assert!(decoded.key(r, beta) < (1u16 << len));
                    }
                }
            }
        }
    }
}
