//! Property tests for the quantizers and packers.

use biq_matrix::{Matrix, MatrixRng};
use biq_quant::alternating::alternating_quantize_matrix_rowwise;
use biq_quant::binary_coding::quantization_sse;
use biq_quant::greedy_quantize_matrix_rowwise;
use biq_quant::packing::{PackedRowsU32, PackedRowsU64};
use biq_quant::serialize::{decode_multibit, encode_multibit};
use biq_quant::uniform::{AsymmetricQuantizer, SymmetricQuantizer};
use biq_quant::unpack::unpack_row_u32;
use proptest::prelude::*;

fn arb_weights(max_r: usize, max_c: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_r, 2..=max_c).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |v| Matrix::from_vec(r, c, v))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Greedy error is non-increasing in bits; alternating never loses to
    /// greedy at the same bit count.
    #[test]
    fn quantizer_quality_ordering(w in arb_weights(6, 48), bits in 1usize..=4) {
        let g = greedy_quantize_matrix_rowwise(&w, bits);
        let a = alternating_quantize_matrix_rowwise(&w, bits, 6);
        let eg = quantization_sse(&w, &g);
        let ea = quantization_sse(&w, &a);
        prop_assert!(ea <= eg + 1e-4 * (1.0 + eg), "alt {} vs greedy {}", ea, eg);
        if bits > 1 {
            let g_fewer = greedy_quantize_matrix_rowwise(&w, bits - 1);
            prop_assert!(eg <= quantization_sse(&w, &g_fewer) + 1e-6);
        }
    }

    /// Dequantize(quantize(w)) has per-element error ≤ Σ remaining scales
    /// is hard to state tightly, but the 1-bit case has a closed form:
    /// error per row element ≤ max|w_row| + mean|w_row|.
    #[test]
    fn one_bit_error_bound(w in arb_weights(4, 32)) {
        let q = greedy_quantize_matrix_rowwise(&w, 1);
        let deq = q.dequantize();
        for i in 0..w.rows() {
            let alpha = q.planes()[0].scales[i];
            for (a, b) in w.row(i).iter().zip(deq.row(i)) {
                // |w − α·sign(w)| ≤ max(|w| − α, α) ≤ |w| + α
                prop_assert!((a - b).abs() <= a.abs() + alpha + 1e-5);
            }
        }
    }

    /// Symmetric uniform fake-quantization error ≤ half a step for
    /// in-range values.
    #[test]
    fn uniform_half_step_bound(
        data in proptest::collection::vec(-100.0f32..100.0, 1..64),
        bits in 2u32..=10,
    ) {
        let q = SymmetricQuantizer::fit(&data, bits);
        for &v in &data {
            prop_assert!((q.fake_quantize(v) - v).abs() <= q.scale / 2.0 + 1e-4);
        }
    }

    /// Asymmetric quantizer maps all fitted data within one step.
    #[test]
    fn asymmetric_bound(
        data in proptest::collection::vec(-50.0f32..150.0, 2..64),
        bits in 2u32..=10,
    ) {
        let q = AsymmetricQuantizer::fit(&data, bits);
        for &v in &data {
            prop_assert!((q.fake_quantize(v) - v).abs() <= q.scale + 1e-4);
        }
    }

    /// u32 packing + Algorithm 3 unpack is the identity for every width.
    #[test]
    fn pack_unpack_identity(
        (rows, cols) in (1usize..=6, 1usize..=100),
        seed in any::<u64>(),
    ) {
        let s = MatrixRng::seed_from(seed).signs(rows, cols);
        let p32 = PackedRowsU32::pack(&s);
        let mut buf = vec![0.0f32; cols];
        for i in 0..rows {
            unpack_row_u32(p32.row(i), &mut buf);
            for (j, &v) in buf.iter().enumerate() {
                prop_assert_eq!(v, s.get(i, j) as f32);
            }
        }
        prop_assert_eq!(PackedRowsU64::pack(&s).unpack(), s);
    }

    /// Serialization round-trips arbitrary quantizations.
    #[test]
    fn multibit_serialize_round_trip(w in arb_weights(5, 24), bits in 1usize..=3) {
        let q = greedy_quantize_matrix_rowwise(&w, bits);
        let rt = decode_multibit(encode_multibit(&q)).unwrap();
        prop_assert_eq!(rt.shape(), q.shape());
        for (a, b) in rt.planes().iter().zip(q.planes()) {
            prop_assert_eq!(&a.scales, &b.scales);
            prop_assert_eq!(&a.signs, &b.signs);
        }
    }
}
