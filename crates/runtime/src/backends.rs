//! The [`GemmBackend`] trait and its implementations — every kernel family
//! in the workspace behind one dispatchable interface.
//!
//! `compile` binds an [`ExecutionPlan`] to weights, performing all one-time
//! work (quantization, key packing, int8/xnor packing) so that
//! [`GemmBackend::execute`] on the resulting [`CompiledOp`] is pure
//! compute. Backends write into caller-provided row-major `m × b` buffers
//! and draw scratch from the executor's [`Arena`]; the serial BiQGEMM and
//! dense paths are allocation-free once the arena has warmed.

use crate::arena::Arena;
use crate::plan::{BackendSpec, ExecutionPlan, QuantMethod};
use biq_gemm::int8::{Int8Gemm, Int8Phases, Int8Weights};
use biq_gemm::xnor::{xnor_gemm, XnorWeights};
use biq_gemm::{gemm_blocked_into, gemm_naive_into, par_gemm_blocked_into};
use biq_matrix::{ColMatrix, Matrix, SignMatrix};
use biq_quant::alternating::alternating_quantize_matrix_rowwise;
use biq_quant::{greedy_quantize_matrix_rowwise, MultiBitMatrix};
use biqgemm_core::parallel::biqgemm_parallel_arena_into;
use biqgemm_core::tiled::biqgemm_serial_into;
use biqgemm_core::{BiqConfig, BiqWeights, PhaseProfile, ResolvedKernel};

/// A matmul kernel family bound to one weight operand.
///
/// Implementations hold the packed weights (dense, int8, xnor planes, or a
/// BiQGEMM key matrix); `execute` multiplies against `x` into `y`
/// (row-major `m × b`, overwritten), drawing every scratch buffer from
/// `arena`.
pub trait GemmBackend: Send + Sync {
    /// Stable kernel-family name (reporting / benchmarks).
    fn name(&self) -> &'static str;

    /// Output size `m`.
    fn output_size(&self) -> usize;

    /// Input size `n`.
    fn input_size(&self) -> usize;

    /// `Y = W · X` into `y`.
    ///
    /// # Panics
    /// Panics if `x.rows() != input_size()` or `y.len() != m · x.cols()`.
    fn execute(&self, x: &ColMatrix, arena: &mut Arena, profile: &mut PhaseProfile, y: &mut [f32]);

    /// The packed weight operand this backend computes against — the export
    /// hook a model artifact serializes. Round trip: feeding the returned
    /// payload back through [`compile`] (via the matching packed
    /// [`WeightSource`]) reproduces a bit-identical op without
    /// re-quantizing.
    fn payload(&self) -> PackedPayload<'_>;
}

/// A borrowed view of a backend's packed weights, one variant per kernel
/// family's storage format.
pub enum PackedPayload<'a> {
    /// Dense fp32 weights (fp32 naive/blocked backends).
    Dense(&'a Matrix),
    /// Offline-quantized int8 weights.
    Int8(&'a Int8Weights),
    /// Per-bit-plane packed XNOR weights.
    Xnor(&'a XnorWeights),
    /// BiQGEMM key matrix + stacked scales.
    Biq(&'a BiqWeights),
}

struct NaiveBackend {
    w: Matrix,
}

impl GemmBackend for NaiveBackend {
    fn name(&self) -> &'static str {
        "fp32_naive"
    }

    fn output_size(&self) -> usize {
        self.w.rows()
    }

    fn input_size(&self) -> usize {
        self.w.cols()
    }

    fn execute(
        &self,
        x: &ColMatrix,
        _arena: &mut Arena,
        profile: &mut PhaseProfile,
        y: &mut [f32],
    ) {
        profile.time_query(|| gemm_naive_into(&self.w, x, y));
    }

    fn payload(&self) -> PackedPayload<'_> {
        PackedPayload::Dense(&self.w)
    }
}

struct BlockedBackend {
    w: Matrix,
    parallel: bool,
}

impl GemmBackend for BlockedBackend {
    fn name(&self) -> &'static str {
        if self.parallel {
            "fp32_blocked_parallel"
        } else {
            "fp32_blocked"
        }
    }

    fn output_size(&self) -> usize {
        self.w.rows()
    }

    fn input_size(&self) -> usize {
        self.w.cols()
    }

    fn execute(&self, x: &ColMatrix, arena: &mut Arena, profile: &mut PhaseProfile, y: &mut [f32]) {
        profile.time_query(|| {
            if self.parallel {
                par_gemm_blocked_into(&self.w, x, &mut arena.pack, y);
            } else {
                gemm_blocked_into(&self.w, x, &mut arena.pack, y);
            }
        });
    }

    fn payload(&self) -> PackedPayload<'_> {
        PackedPayload::Dense(&self.w)
    }
}

struct Int8Backend {
    engine: Int8Gemm,
    kernel: ResolvedKernel,
}

impl GemmBackend for Int8Backend {
    fn name(&self) -> &'static str {
        "int8"
    }

    fn output_size(&self) -> usize {
        self.engine.weights().rows()
    }

    fn input_size(&self) -> usize {
        self.engine.weights().cols()
    }

    fn execute(
        &self,
        x: &ColMatrix,
        _arena: &mut Arena,
        profile: &mut PhaseProfile,
        y: &mut [f32],
    ) {
        // The int8 pipeline allocates its integer staging internally — it is
        // a comparison baseline, not a serving path; its conversion phase is
        // charged to `replace` (data-movement), the kernel to `query`.
        let mut phases = Int8Phases::default();
        let out = self.engine.forward_level(x, &mut phases, self.kernel);
        profile.replace += std::time::Duration::from_secs_f64(phases.conversion_s);
        profile.query += std::time::Duration::from_secs_f64(phases.kernel_s);
        y.copy_from_slice(out.as_slice());
    }

    fn payload(&self) -> PackedPayload<'_> {
        PackedPayload::Int8(self.engine.weights())
    }
}

struct XnorBackend {
    w: XnorWeights,
    kernel: ResolvedKernel,
}

impl GemmBackend for XnorBackend {
    fn name(&self) -> &'static str {
        "xnor"
    }

    fn output_size(&self) -> usize {
        self.w.rows()
    }

    fn input_size(&self) -> usize {
        self.w.cols()
    }

    fn execute(
        &self,
        x: &ColMatrix,
        _arena: &mut Arena,
        profile: &mut PhaseProfile,
        y: &mut [f32],
    ) {
        // Dynamic activation binarisation allocates internally (baseline
        // path, like int8 above).
        let out = profile.time_query(|| xnor_gemm(&self.w, x, self.kernel));
        y.copy_from_slice(out.as_slice());
    }

    fn payload(&self) -> PackedPayload<'_> {
        PackedPayload::Xnor(&self.w)
    }
}

struct BiqBackend {
    w: BiqWeights,
    cfg: BiqConfig,
    kernel: ResolvedKernel,
    parallel: bool,
}

impl GemmBackend for BiqBackend {
    fn name(&self) -> &'static str {
        if self.parallel {
            "biqgemm_parallel"
        } else {
            "biqgemm"
        }
    }

    fn output_size(&self) -> usize {
        self.w.output_size()
    }

    fn input_size(&self) -> usize {
        self.w.input_size()
    }

    fn execute(&self, x: &ColMatrix, arena: &mut Arena, profile: &mut PhaseProfile, y: &mut [f32]) {
        if self.parallel {
            let pool = arena.par_pool();
            profile.time_query(|| {
                biqgemm_parallel_arena_into(&self.w, x, &self.cfg, self.kernel, pool, y)
            });
        } else {
            biqgemm_serial_into(&self.w, x, &self.cfg, self.kernel, profile, &mut arena.biq, y);
        }
    }

    fn payload(&self) -> PackedPayload<'_> {
        PackedPayload::Biq(&self.w)
    }
}

/// Where a backend's weights come from at compile time.
pub enum WeightSource<'a> {
    /// Dense fp32 weights (quantized by `compile` when the spec needs it).
    Dense(&'a Matrix),
    /// Pre-quantized binary-coding planes.
    Quantized(&'a MultiBitMatrix),
    /// A raw sign matrix with unit scales (1-bit, the paper's runtime
    /// experiments).
    Signs(&'a SignMatrix),
    /// Pre-packed BiQGEMM weights (deserialized deployments). Only valid
    /// for [`BackendSpec::Biq`]; the plan's µ must match the packing.
    Packed(BiqWeights),
    /// Pre-packed XNOR planes (deserialized deployments). Only valid for
    /// [`BackendSpec::Xnor`]; the plane count must match the spec's bits.
    PackedXnor(XnorWeights),
    /// Pre-quantized int8 weights (deserialized deployments). Only valid
    /// for [`BackendSpec::Int8`].
    PackedInt8(Int8Weights),
}

/// An [`ExecutionPlan`] bound to packed weights — ready for any
/// [`crate::Executor`].
pub struct CompiledOp {
    plan: ExecutionPlan,
    backend: Box<dyn GemmBackend>,
}

impl CompiledOp {
    /// The plan this op was compiled from.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// The packed weight payload of the bound backend (artifact export
    /// hook; see [`GemmBackend::payload`]).
    pub fn payload(&self) -> PackedPayload<'_> {
        self.backend.payload()
    }

    /// Kernel-family name of the bound backend.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Output size `m`.
    pub fn output_size(&self) -> usize {
        self.backend.output_size()
    }

    /// Input size `n`.
    pub fn input_size(&self) -> usize {
        self.backend.input_size()
    }

    /// The bound backend.
    pub fn backend(&self) -> &dyn GemmBackend {
        self.backend.as_ref()
    }
}

impl std::fmt::Debug for CompiledOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledOp")
            .field("backend", &self.backend.name())
            .field("plan", &self.plan)
            .finish()
    }
}

fn quantize_dense(w: &Matrix, bits: usize, method: QuantMethod) -> MultiBitMatrix {
    match method {
        QuantMethod::Greedy => greedy_quantize_matrix_rowwise(w, bits),
        QuantMethod::Alternating { iters } => alternating_quantize_matrix_rowwise(w, bits, iters),
    }
}

/// Binds a plan to weights, performing all one-time quantization and
/// packing. This is the only place dispatch from [`BackendSpec`] to a
/// concrete kernel family happens.
///
/// # Panics
/// Panics when the weight shape disagrees with the plan, when a packed
/// source's µ disagrees with the plan's, or when a dense-only spec
/// ([`BackendSpec::Int8`], fp32) is given non-dense weights that cannot be
/// dequantized losslessly enough to stand in (int8/fp32 accept `Quantized`
/// and `Signs` by dequantizing).
pub fn compile(plan: &ExecutionPlan, weights: WeightSource<'_>) -> CompiledOp {
    let check = |m: usize, n: usize| {
        assert_eq!((m, n), (plan.m, plan.n), "weight shape {m}x{n} disagrees with plan");
    };
    let dense = |w: &WeightSource<'_>| -> Matrix {
        match w {
            WeightSource::Dense(m) => (*m).clone(),
            WeightSource::Quantized(q) => q.dequantize(),
            WeightSource::Signs(s) => s.to_f32(),
            WeightSource::Packed(_) | WeightSource::PackedXnor(_) | WeightSource::PackedInt8(_) => {
                panic!("packed weights cannot feed a dense backend")
            }
        }
    };
    let backend: Box<dyn GemmBackend> = match plan.spec {
        BackendSpec::Fp32Naive => {
            let w = dense(&weights);
            check(w.rows(), w.cols());
            Box::new(NaiveBackend { w })
        }
        BackendSpec::Fp32Blocked => {
            let w = dense(&weights);
            check(w.rows(), w.cols());
            Box::new(BlockedBackend { w, parallel: plan.parallel })
        }
        BackendSpec::Int8 => {
            let engine = match weights {
                WeightSource::PackedInt8(w) => {
                    check(w.rows(), w.cols());
                    Int8Gemm::from_weights(w)
                }
                other => {
                    let w = dense(&other);
                    check(w.rows(), w.cols());
                    Int8Gemm::new(&w)
                }
            };
            Box::new(Int8Backend { engine, kernel: plan.kernel })
        }
        BackendSpec::Xnor { bits } => {
            let w = match weights {
                WeightSource::PackedXnor(w) => {
                    assert_eq!(
                        w.bits(),
                        bits,
                        "packed XNOR planes carry {} bits, plan expects {bits}",
                        w.bits()
                    );
                    check(w.rows(), w.cols());
                    w
                }
                WeightSource::Quantized(q) => {
                    assert_eq!(
                        q.bits(),
                        bits,
                        "quantized weights carry {} planes, plan expects {bits} \
                         (a snapshot of this op would not restore)",
                        q.bits()
                    );
                    check(q.shape().0, q.shape().1);
                    XnorWeights::from_multibit(q)
                }
                other => {
                    let q = quantize_dense(&dense(&other), bits, QuantMethod::Greedy);
                    check(q.shape().0, q.shape().1);
                    XnorWeights::from_multibit(&q)
                }
            };
            Box::new(XnorBackend { w, kernel: plan.kernel })
        }
        BackendSpec::Biq { bits, method } => {
            // The spec's bit count must agree with what the source actually
            // carries: an op whose plan disagreed with its payload would
            // snapshot to an artifact that can never be restored.
            let w = match weights {
                WeightSource::Packed(w) => {
                    assert_eq!(
                        w.mu(),
                        plan.cfg.mu,
                        "packed weights use µ = {}, plan expects µ = {}",
                        w.mu(),
                        plan.cfg.mu
                    );
                    assert_eq!(
                        w.bits(),
                        bits,
                        "packed weights carry {} bits, plan expects {bits}",
                        w.bits()
                    );
                    w
                }
                WeightSource::Quantized(q) => {
                    assert_eq!(
                        q.bits(),
                        bits,
                        "quantized weights carry {} planes, plan expects {bits}",
                        q.bits()
                    );
                    BiqWeights::from_multibit(q, plan.cfg.mu)
                }
                WeightSource::Signs(s) => {
                    assert_eq!(bits, 1, "sign weights are 1-bit, plan expects {bits}");
                    BiqWeights::from_signs_unscaled(s, plan.cfg.mu)
                }
                WeightSource::Dense(d) => {
                    BiqWeights::from_multibit(&quantize_dense(d, bits, method), plan.cfg.mu)
                }
                WeightSource::PackedXnor(_) | WeightSource::PackedInt8(_) => {
                    panic!("foreign packed weights cannot feed a BiQGEMM backend")
                }
            };
            check(w.output_size(), w.input_size());
            Box::new(BiqBackend { w, cfg: plan.cfg, kernel: plan.kernel, parallel: plan.parallel })
        }
    };
    CompiledOp { plan: *plan, backend }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanBuilder;
    use biq_matrix::MatrixRng;

    fn run(op: &CompiledOp, x: &ColMatrix) -> Vec<f32> {
        let mut arena = Arena::new();
        let mut profile = PhaseProfile::new();
        let mut y = vec![0.0f32; op.output_size() * x.cols()];
        op.backend().execute(x, &mut arena, &mut profile, &mut y);
        y
    }

    #[test]
    fn every_backend_family_compiles_and_runs() {
        let mut g = MatrixRng::seed_from(90);
        let w = g.gaussian(32, 48, 0.0, 1.0);
        let x = g.gaussian_col(48, 3, 0.0, 1.0);
        for spec in [
            BackendSpec::Fp32Naive,
            BackendSpec::Fp32Blocked,
            BackendSpec::Int8,
            BackendSpec::Xnor { bits: 2 },
            BackendSpec::Biq { bits: 2, method: QuantMethod::Greedy },
        ] {
            let plan = PlanBuilder::new(32, 48).batch_hint(3).backend(spec).build();
            let op = compile(&plan, WeightSource::Dense(&w));
            let y = run(&op, &x);
            assert_eq!(y.len(), 32 * 3);
            assert!(y.iter().all(|v| v.is_finite()), "{}", op.backend_name());
        }
    }

    #[test]
    fn naive_and_blocked_agree_bit_exactly_on_ints() {
        let mut g = MatrixRng::seed_from(91);
        let w = g.small_int_matrix(20, 30, 2);
        let x = g.small_int_col(30, 4, 2);
        let naive = compile(
            &PlanBuilder::new(20, 30).backend(BackendSpec::Fp32Naive).build(),
            WeightSource::Dense(&w),
        );
        let blocked = compile(
            &PlanBuilder::new(20, 30).backend(BackendSpec::Fp32Blocked).build(),
            WeightSource::Dense(&w),
        );
        assert_eq!(run(&naive, &x), run(&blocked, &x));
    }

    #[test]
    fn biq_from_signs_matches_dense_reference() {
        let mut g = MatrixRng::seed_from(92);
        let signs = g.signs(24, 40);
        let x = g.small_int_col(40, 5, 3);
        let plan = PlanBuilder::new(24, 40)
            .batch_hint(5)
            .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
            .build();
        let op = compile(&plan, WeightSource::Signs(&signs));
        let y = run(&op, &x);
        let y_ref = biq_gemm::gemm_naive(&signs.to_f32(), &x);
        assert_eq!(y, y_ref.as_slice());
    }

    #[test]
    #[should_panic(expected = "disagrees with plan")]
    fn shape_mismatch_rejected() {
        let w = Matrix::zeros(4, 4);
        let plan = PlanBuilder::new(8, 8).backend(BackendSpec::Fp32Naive).build();
        let _ = compile(&plan, WeightSource::Dense(&w));
    }

    #[test]
    #[should_panic(expected = "packed weights use µ")]
    fn packed_mu_mismatch_rejected() {
        let signs = SignMatrix::ones(4, 16);
        let packed = BiqWeights::from_signs_unscaled(&signs, 4);
        let plan = PlanBuilder::new(4, 16)
            .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
            .config(BiqConfig::with_mu(8))
            .build();
        let _ = compile(&plan, WeightSource::Packed(packed));
    }
}
