//! The executor's reusable scratch memory.
//!
//! One [`Arena`] serves every backend family: BiQGEMM draws its LUT bank /
//! accumulator / DP steps from the embedded [`BiqArena`], the blocked dense
//! kernels reuse the input-pack panel, and all buffers grow monotonically —
//! after the first call at a given shape, repeat serial runs never touch
//! the allocator.

use biqgemm_core::planner::ScratchSpec;
use biqgemm_core::{BiqArena, BiqConfig, ParallelArena};

/// Reusable scratch shared by all [`crate::GemmBackend`] implementations.
#[derive(Debug, Default)]
pub struct Arena {
    /// BiQGEMM scratch: LUT bank, batch accumulator, DP step vectors.
    pub(crate) biq: BiqArena,
    /// Row-major input-pack panel for the blocked dense kernels.
    pub(crate) pack: Vec<f32>,
    /// Per-worker scratch pool for the parallel BiQGEMM drivers, created on
    /// first parallel run (sized to the rayon worker count at that moment).
    pub(crate) par: Option<ParallelArena>,
}

impl Arena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-grows the BiQGEMM buffers for `cfg` at batch `b` (so even the
    /// first run is allocation-free) and returns the scratch spec that was
    /// provisioned.
    pub fn warm_biq(&mut self, cfg: &BiqConfig, b: usize) -> ScratchSpec {
        self.biq.reserve(cfg, b);
        biqgemm_core::planner::scratch_spec(cfg, b)
    }

    /// Pre-grows the dense-kernel pack panel for an `n × b` input.
    pub fn warm_pack(&mut self, n: usize, b: usize) {
        if self.pack.len() < n * b {
            self.pack.resize(n * b, 0.0);
        }
    }

    /// Pre-grows every per-worker slot of the parallel scratch pool for
    /// runs of `cfg` at batch `b` over `bits` weight planes.
    pub fn warm_parallel(&mut self, cfg: &BiqConfig, bits: usize, b: usize) {
        self.par_pool().reserve(cfg, bits, b);
    }

    /// The parallel scratch pool, created lazily so arenas that only ever
    /// run serial plans never pay for the slots.
    pub(crate) fn par_pool(&mut self) -> &mut ParallelArena {
        self.par.get_or_insert_with(ParallelArena::with_current_threads)
    }

    /// Bytes of lookup-table data currently resident (serial bank plus
    /// every per-worker parallel bank).
    pub fn resident_lut_bytes(&self) -> usize {
        self.biq.resident_lut_bytes()
            + self.par.as_ref().map_or(0, ParallelArena::resident_lut_bytes)
    }

    /// Bytes of the dense input-pack panel.
    pub fn pack_bytes(&self) -> usize {
        self.pack.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_pack_grows_monotonically() {
        let mut a = Arena::new();
        a.warm_pack(8, 4);
        assert_eq!(a.pack_bytes(), 8 * 4 * 4);
        a.warm_pack(2, 2);
        assert_eq!(a.pack_bytes(), 8 * 4 * 4, "never shrinks");
    }

    #[test]
    fn warm_biq_reports_spec() {
        let mut a = Arena::new();
        let cfg = BiqConfig::default();
        let spec = a.warm_biq(&cfg, 4);
        assert_eq!(spec.dp_steps_floats, cfg.mu * 4);
    }
}
