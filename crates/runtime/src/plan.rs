//! Execution plans: every decision the runtime makes ahead of the first
//! byte of compute, recorded in one value.
//!
//! A plan is pure data — building one performs no quantization, packing, or
//! allocation beyond the struct itself. Binding a plan to weights
//! ([`crate::compile`]) produces a [`crate::CompiledOp`]; running it is the
//! executor's job. This split is what makes per-layer plan caching cheap:
//! models build their plans once and re-run them every forward pass.

use biqgemm_core::planner::{
    auto_width1_clamp, plan as plan_cfg, recommend_parallel, scratch_spec, ScratchSpec, Threading,
    DEFAULT_LUT_BUDGET_BYTES,
};
use biqgemm_core::simd::env_override_active;
use biqgemm_core::{BiqConfig, KernelRequest, ResolvedKernel};

/// Weight quantization recipe for BiQGEMM backends (mirrors the paper's two
/// binary-coding heuristics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuantMethod {
    /// Greedy binary coding (Guo et al.).
    Greedy,
    /// Greedy + alternating refinement (`iters` rounds, Xu et al.).
    Alternating {
        /// Maximum refinement rounds.
        iters: usize,
    },
}

/// Which kernel family a plan executes on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendSpec {
    /// Dense fp32 triple loop (`kCpu` baseline).
    Fp32Naive,
    /// Dense fp32 cache-blocked GEMM (the vendor-library stand-in).
    Fp32Blocked,
    /// INT8 fixed-point pipeline (dynamic activation quantization).
    Int8,
    /// XNOR-popcount over `bits` weight planes (activations binarised).
    Xnor {
        /// Weight quantization bits β_w.
        bits: usize,
    },
    /// BiQGEMM over `bits`-plane binary-coding quantized weights.
    Biq {
        /// Weight quantization bits β_w.
        bits: usize,
        /// Quantizer flavour (used when compiling from dense weights).
        method: QuantMethod,
    },
}

/// A fully resolved execution plan for one `m × n` weight operand.
#[derive(Clone, Copy, Debug)]
pub struct ExecutionPlan {
    /// Output size `m`.
    pub m: usize,
    /// Input size `n`.
    pub n: usize,
    /// Expected batch size (plans stay valid for other batches; scratch
    /// re-grows if a larger batch arrives).
    pub batch_hint: usize,
    /// Kernel family.
    pub spec: BackendSpec,
    /// BiQGEMM configuration: µ, tile shapes, LUT layout and build method,
    /// parallel schedule. Ignored by the dense backends.
    pub cfg: BiqConfig,
    /// The threading request the plan was built with.
    pub threading: Threading,
    /// The resolved decision: `true` runs the rayon drivers, `false` the
    /// serial arena path.
    pub parallel: bool,
    /// The kernel level every hot loop of this plan runs at — resolved
    /// exactly once here at plan build (from the builder's request /
    /// `cfg.kernel` / the `BIQ_KERNEL` override) and pinned; compiled ops
    /// carry it, the BIQM manifest records it, and no kernel re-probes
    /// CPU features at run time.
    ///
    /// `Auto` resolution is shape-aware: after picking the host's richest
    /// level it applies [`auto_width1_clamp`] — at `batch_hint == 1` the
    /// query is the width-1 gather, whose 8-lane canonical accumulation
    /// tree fills one 256-bit register, so an AVX-512 pick is
    /// level-neutral-or-worse there and Auto pins AVX2 instead. The clamp
    /// never fires for `Exact`/`AtMost` requests or under a `BIQ_KERNEL`
    /// override, and [`ExecutionPlan::kernel_reason`] records when it did.
    pub kernel: ResolvedKernel,
    /// Why `Auto` resolution deviated from the host-best level, when it
    /// did (`None` for explicit requests, forced levels, and the plain
    /// host-best pick). Surfaced by `biq inspect`.
    pub kernel_reason: Option<&'static str>,
    /// Record of the scratch-buffer sizes a serial run needs — capacity
    /// planning / introspection. `Executor::warm` provisions from the
    /// config and debug-asserts it agrees with this record.
    pub scratch: ScratchSpec,
}

impl ExecutionPlan {
    /// Bytes of lookup-table bank the plan keeps live in the arena.
    pub fn lut_tile_bytes(&self) -> usize {
        self.cfg.lut_tile_bytes()
    }
}

/// Builder for [`ExecutionPlan`] — the single front door to the planner.
#[derive(Clone, Copy, Debug)]
pub struct PlanBuilder {
    m: usize,
    n: usize,
    batch_hint: usize,
    spec: BackendSpec,
    threading: Threading,
    lut_budget: usize,
    threads: Option<usize>,
    cfg_override: Option<BiqConfig>,
    kernel: Option<KernelRequest>,
}

impl PlanBuilder {
    /// Starts a plan for an `m × n` weight operand. Defaults: batch 1,
    /// 1-bit greedy BiQGEMM backend, automatic threading, half-L2 LUT
    /// budget.
    ///
    /// # Panics
    /// Panics when either dimension is zero.
    pub fn new(m: usize, n: usize) -> Self {
        assert!(m > 0 && n > 0, "degenerate weight shape {m}x{n}");
        Self {
            m,
            n,
            batch_hint: 1,
            spec: BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy },
            threading: Threading::Auto,
            lut_budget: DEFAULT_LUT_BUDGET_BYTES,
            threads: None,
            cfg_override: None,
            kernel: None,
        }
    }

    /// Expected batch size (`b`): drives tile sizing and the serial/parallel
    /// decision.
    pub fn batch_hint(mut self, b: usize) -> Self {
        self.batch_hint = b.max(1);
        self
    }

    /// Selects the kernel family.
    pub fn backend(mut self, spec: BackendSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Threading policy (default [`Threading::Auto`]).
    pub fn threading(mut self, threading: Threading) -> Self {
        self.threading = threading;
        self
    }

    /// SRAM budget for live lookup tables, in bytes.
    pub fn lut_budget(mut self, bytes: usize) -> Self {
        self.lut_budget = bytes;
        self
    }

    /// Worker count assumed by [`Threading::Auto`] (default: the machine's
    /// available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Full `BiqConfig` override, bypassing the planner's µ/tile search
    /// (expert knob; the config is still validated at build).
    pub fn config(mut self, cfg: BiqConfig) -> Self {
        self.cfg_override = Some(cfg);
        self
    }

    /// Kernel-level request (default: the config's `kernel` field, i.e.
    /// [`KernelRequest::Auto`] unless a config override says otherwise).
    /// Resolution happens once, in [`PlanBuilder::build`].
    pub fn kernel(mut self, request: KernelRequest) -> Self {
        self.kernel = Some(request);
        self
    }

    /// Resolves the plan.
    ///
    /// # Panics
    /// Panics on an invalid config override, or — with the kernel layer's
    /// message — when the kernel request (or a `BIQ_KERNEL` override)
    /// names a level this host cannot execute. Callers that want a
    /// recoverable error validate the request with
    /// [`KernelRequest::resolve`] first (the CLI does).
    pub fn build(self) -> ExecutionPlan {
        let mut cfg = match self.cfg_override {
            Some(cfg) => {
                cfg.validate();
                cfg
            }
            None => plan_cfg(self.m, self.n, self.batch_hint, self.lut_budget),
        };
        if let Some(request) = self.kernel {
            cfg.kernel = request;
        }
        let mut kernel = cfg.kernel.resolve().unwrap_or_else(|e| panic!("{e}"));
        let mut kernel_reason = None;
        if cfg.kernel == KernelRequest::Auto && !env_override_active() {
            if let Some((clamped, why)) = auto_width1_clamp(self.batch_hint, kernel.level()) {
                // Exact(clamped) re-resolves through the only checked
                // constructor; the clamp already verified host support.
                kernel = KernelRequest::Exact(clamped).resolve().unwrap_or_else(|e| panic!("{e}"));
                kernel_reason = Some(why);
            }
        }
        let threads = self
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1));
        let parallel = match self.threading {
            Threading::Auto => recommend_parallel(self.m, self.batch_hint, threads),
            Threading::Serial => false,
            Threading::Parallel => true,
        };
        ExecutionPlan {
            m: self.m,
            n: self.n,
            batch_hint: self.batch_hint,
            spec: self.spec,
            cfg,
            threading: self.threading,
            parallel,
            kernel,
            kernel_reason,
            scratch: scratch_spec(&cfg, self.batch_hint),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biqgemm_core::planner::SMALL_BATCH_SERIAL_MAX;

    #[test]
    fn defaults_follow_planner() {
        let p = PlanBuilder::new(1024, 1024).batch_hint(32).threads(8).build();
        assert_eq!(p.cfg.mu, 8, "paper's empirical µ for paper-sized shapes");
        assert!(p.parallel, "large batch on many workers should parallelise");
        assert!(p.lut_tile_bytes() <= DEFAULT_LUT_BUDGET_BYTES);
        assert!(p.kernel.level().is_supported(), "resolved level must be executable");
    }

    #[test]
    fn kernel_request_is_resolved_and_pinned() {
        use biqgemm_core::KernelLevel;
        let p = PlanBuilder::new(64, 64).kernel(KernelRequest::Exact(KernelLevel::Scalar)).build();
        assert_eq!(p.kernel.level(), KernelLevel::Scalar);
        assert_eq!(p.cfg.kernel, KernelRequest::Exact(KernelLevel::Scalar));
        // Auto pins the host's best level at build time (absent BIQ_KERNEL).
        let auto = PlanBuilder::new(64, 64).build();
        assert!(auto.kernel.level().is_supported());
    }

    #[test]
    fn auto_is_shape_aware_at_batch_one() {
        use biqgemm_core::{host_best, KernelLevel};
        // No BIQ_KERNEL in the test environment ⇒ Auto starts from
        // host_best and may clamp. The assertions branch on the host so
        // the test is meaningful on AVX-512, AVX2, NEON, and scalar boxes.
        if env_override_active() {
            return; // forced level: the clamp must stand down (covered below anyway)
        }
        let b1 = PlanBuilder::new(512, 512).batch_hint(1).build();
        let b8 = PlanBuilder::new(512, 512).batch_hint(8).build();
        assert_eq!(b8.kernel.level(), host_best());
        assert_eq!(b8.kernel_reason, None, "batched Auto keeps host best");
        if host_best() == KernelLevel::Avx512 {
            assert_eq!(b1.kernel.level(), KernelLevel::Avx2);
            assert!(b1.kernel_reason.is_some(), "the demotion must be explained");
        } else {
            assert_eq!(b1.kernel.level(), host_best());
            assert_eq!(b1.kernel_reason, None);
        }
        // Explicit requests are never second-guessed.
        let exact = PlanBuilder::new(512, 512)
            .batch_hint(1)
            .kernel(KernelRequest::Exact(host_best()))
            .build();
        assert_eq!(exact.kernel.level(), host_best());
        assert_eq!(exact.kernel_reason, None);
        let at_most = PlanBuilder::new(512, 512)
            .batch_hint(1)
            .kernel(KernelRequest::AtMost(host_best()))
            .build();
        assert_eq!(at_most.kernel.level(), host_best());
        assert_eq!(at_most.kernel_reason, None);
    }

    #[test]
    fn small_batch_resolves_serial_under_auto() {
        let p = PlanBuilder::new(4096, 4096).batch_hint(SMALL_BATCH_SERIAL_MAX).threads(16).build();
        assert!(!p.parallel);
        assert!(p.scratch.lut_bank_floats > 0);
    }

    #[test]
    fn explicit_threading_wins_over_auto() {
        let serial = PlanBuilder::new(4096, 4096)
            .batch_hint(64)
            .threads(16)
            .threading(Threading::Serial)
            .build();
        assert!(!serial.parallel);
        let par = PlanBuilder::new(64, 64).threading(Threading::Parallel).build();
        assert!(par.parallel);
    }

    #[test]
    fn config_override_is_validated_and_kept() {
        let cfg = BiqConfig {
            mu: 4,
            tile_rows: 2,
            tile_chunks: 2,
            tile_batch: 2,
            ..BiqConfig::default()
        };
        let p = PlanBuilder::new(16, 16).config(cfg).build();
        assert_eq!(p.cfg.mu, 4);
        assert_eq!(p.cfg.tile_rows, 2);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_shape_rejected() {
        let _ = PlanBuilder::new(0, 8);
    }
}
