//! The stateful runner: one [`Executor`] owns the arena every compiled op
//! draws scratch from.
//!
//! An executor is deliberately *not* tied to one operator: a model holds a
//! single executor and runs all of its layers' [`CompiledOp`]s through it,
//! so the LUT bank, accumulators and pack panel warm to the largest layer
//! and are reused across layers and time-steps. [`SharedExecutor`] is the
//! cheaply cloneable handle layers hold for exactly that pattern.

use crate::arena::Arena;
use crate::backends::CompiledOp;
use biq_matrix::{ColMatrix, Matrix};
use biqgemm_core::PhaseProfile;
use std::sync::{Arc, Mutex};

/// Runs compiled ops against a reusable [`Arena`].
#[derive(Debug, Default)]
pub struct Executor {
    arena: Arena,
    profile: PhaseProfile,
    runs: u64,
}

impl Executor {
    /// A fresh executor with an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// An executor pre-warmed for `op` at its plan's batch hint, so even
    /// the first [`Executor::run_into`] is allocation-free on serial plans.
    pub fn warmed_for(op: &CompiledOp) -> Self {
        let mut e = Self::new();
        e.warm(op);
        e
    }

    /// Pre-grows the arena for `op` at the plan's batch hint — only the
    /// buffers the op's backend family actually draws (LUT scratch for
    /// BiQGEMM plans, the pack panel for blocked dense plans).
    pub fn warm(&mut self, op: &CompiledOp) {
        self.warm_batch(op, op.plan().batch_hint);
    }

    /// Like [`Executor::warm`] but provisioning for batch `b` instead of
    /// the plan's hint. Serving layers warm each worker to the largest
    /// batch the batcher may pack so even the first full-window batch is
    /// allocation-free.
    pub fn warm_batch(&mut self, op: &CompiledOp, b: usize) {
        let plan = op.plan();
        match plan.spec {
            crate::plan::BackendSpec::Biq { bits, .. } => {
                if plan.parallel {
                    // Parallel plans draw per-worker banks from the pooled
                    // scratch slots instead of the serial arena.
                    self.arena.warm_parallel(&plan.cfg, bits, b);
                } else {
                    let provisioned = self.arena.warm_biq(&plan.cfg, b);
                    debug_assert!(
                        b != plan.batch_hint || provisioned == plan.scratch,
                        "plan.scratch out of sync with the arena's provisioning"
                    );
                }
            }
            crate::plan::BackendSpec::Fp32Blocked => {
                self.arena.warm_pack(plan.n, b);
            }
            // Naive, int8, xnor draw nothing here.
            _ => {}
        }
    }

    /// `Y = W · X` into a fresh row-major matrix.
    pub fn run(&mut self, op: &CompiledOp, x: &ColMatrix) -> Matrix {
        let mut y = Matrix::zeros(op.output_size(), x.cols());
        self.run_into(op, x, y.as_mut_slice());
        y
    }

    /// `Y = W · X` into a caller-provided row-major `m × b` buffer
    /// (overwritten). On serial plans this is the allocation-free
    /// steady-state path.
    ///
    /// # Panics
    /// Panics if `x.rows() != op.input_size()` or `y.len() != m·b`.
    pub fn run_into(&mut self, op: &CompiledOp, x: &ColMatrix, y: &mut [f32]) {
        assert_eq!(x.rows(), op.input_size(), "inner dimension mismatch");
        assert_eq!(y.len(), op.output_size() * x.cols(), "output buffer must hold m·b floats");
        self.runs += 1;
        // One span per executor pass, not per phase — disabled tracing
        // costs a single relaxed load here.
        let _span = biq_obs::span!("exec.run");
        op.backend().execute(x, &mut self.arena, &mut self.profile, y);
    }

    /// Accumulated phase profile over every run (build / query / replace).
    pub fn profile(&self) -> &PhaseProfile {
        &self.profile
    }

    /// Clears the accumulated profile.
    pub fn reset_profile(&mut self) {
        self.profile = PhaseProfile::new();
    }

    /// Number of ops executed.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// The arena (for capacity inspection).
    pub fn arena(&self) -> &Arena {
        &self.arena
    }
}

/// A cheaply cloneable executor handle for sharing one arena across the
/// layers of a model (clones share state; `Clone` is a handle copy).
///
/// Backed by `Arc<Mutex>` so layers — and the models holding them — stay
/// `Send + Sync`: a serving layer can move models across threads or give
/// each worker its own clone-of-model with a fresh handle. The lock is
/// uncontended in the workspace's forward passes (one thread walks the
/// layers; kernels parallelise internally) and its cost is noise next to a
/// matmul.
///
/// # Contention hazard
///
/// The mutex serialises **every** run through the handle: N threads
/// hammering one `SharedExecutor` time-slice a single arena and get no
/// concurrency at all — each caller blocks for the full duration of every
/// other caller's matmul. This is by design (one arena, one run at a time),
/// but it makes a shared handle the wrong tool for concurrent traffic. The
/// sanctioned concurrent path is one **owned** [`Executor`] per worker
/// thread, which is exactly what the `biq_serve` worker pool does; use
/// [`SharedExecutor::try_run`] when a caller would rather fail fast (and,
/// say, fall back to a private executor) than queue on the lock.
#[derive(Clone, Debug, Default)]
pub struct SharedExecutor(Arc<Mutex<Executor>>);

impl SharedExecutor {
    /// A fresh executor behind a shared handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `op` through the shared executor (see [`Executor::run`]).
    ///
    /// # Panics
    /// Panics if the executor lock was poisoned by a panicking run.
    pub fn run(&self, op: &CompiledOp, x: &ColMatrix) -> Matrix {
        self.lock().run(op, x)
    }

    /// Non-blocking [`SharedExecutor::run`]: returns `None` without
    /// computing anything when another thread currently holds the
    /// executor, instead of queueing on the lock (see the contention
    /// hazard note on this type).
    ///
    /// # Panics
    /// Panics if the executor lock was poisoned by a panicking run.
    pub fn try_run(&self, op: &CompiledOp, x: &ColMatrix) -> Option<Matrix> {
        match self.0.try_lock() {
            Ok(mut exec) => Some(exec.run(op, x)),
            Err(std::sync::TryLockError::WouldBlock) => None,
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("executor lock poisoned"),
        }
    }

    /// Runs `op` into a caller buffer (see [`Executor::run_into`]).
    pub fn run_into(&self, op: &CompiledOp, x: &ColMatrix, y: &mut [f32]) {
        self.lock().run_into(op, x, y)
    }

    /// Pre-grows the shared arena for `op`.
    pub fn warm(&self, op: &CompiledOp) {
        self.lock().warm(op)
    }

    /// Number of ops executed through this handle's executor.
    pub fn runs(&self) -> u64 {
        self.lock().runs()
    }

    /// Snapshot of the accumulated phase profile.
    pub fn profile(&self) -> PhaseProfile {
        *self.lock().profile()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Executor> {
        self.0.lock().expect("executor lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::{compile, WeightSource};
    use crate::plan::{BackendSpec, PlanBuilder, QuantMethod};
    use biq_matrix::MatrixRng;

    #[test]
    fn repeat_runs_are_bit_identical() {
        let mut g = MatrixRng::seed_from(95);
        let signs = g.signs(40, 64);
        let x = g.small_int_col(64, 4, 3);
        let plan = PlanBuilder::new(40, 64)
            .batch_hint(4)
            .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
            .build();
        let op = compile(&plan, WeightSource::Signs(&signs));
        let mut exec = Executor::new();
        let y1 = exec.run(&op, &x);
        let y2 = exec.run(&op, &x);
        assert_eq!(y1.as_slice(), y2.as_slice());
        assert_eq!(exec.runs(), 2);
        assert!(exec.profile().query > std::time::Duration::ZERO);
    }

    #[test]
    fn one_executor_serves_ops_of_different_shapes() {
        let mut g = MatrixRng::seed_from(96);
        let mut exec = Executor::new();
        for (m, n, b) in [(16usize, 24usize, 2usize), (48, 16, 1), (8, 80, 5)] {
            let w = g.gaussian(m, n, 0.0, 1.0);
            let x = g.gaussian_col(n, b, 0.0, 1.0);
            let plan =
                PlanBuilder::new(m, n).batch_hint(b).backend(BackendSpec::Fp32Blocked).build();
            let op = compile(&plan, WeightSource::Dense(&w));
            let y = exec.run(&op, &x);
            assert_eq!(y.shape(), (m, b));
        }
        assert_eq!(exec.runs(), 3);
    }

    #[test]
    fn shared_handle_shares_state() {
        let mut g = MatrixRng::seed_from(97);
        let w = g.gaussian(8, 8, 0.0, 1.0);
        let x = g.gaussian_col(8, 1, 0.0, 1.0);
        let plan = PlanBuilder::new(8, 8).backend(BackendSpec::Fp32Naive).build();
        let op = compile(&plan, WeightSource::Dense(&w));
        let a = SharedExecutor::new();
        let b = a.clone();
        let _ = a.run(&op, &x);
        let _ = b.run(&op, &x);
        assert_eq!(a.runs(), 2, "clones share one executor");
    }

    #[test]
    fn try_run_computes_when_uncontended_and_skips_when_held() {
        let mut g = MatrixRng::seed_from(99);
        let w = g.gaussian(8, 8, 0.0, 1.0);
        let x = g.gaussian_col(8, 1, 0.0, 1.0);
        let plan = PlanBuilder::new(8, 8).backend(BackendSpec::Fp32Naive).build();
        let op = compile(&plan, WeightSource::Dense(&w));
        let shared = SharedExecutor::new();
        let direct = shared.run(&op, &x);
        let tried = shared.try_run(&op, &x).expect("uncontended try_run must run");
        assert_eq!(tried.as_slice(), direct.as_slice());
        // Hold the lock on another thread; try_run must refuse, not queue.
        let held = shared.clone();
        let (locked_tx, locked_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let holder = std::thread::spawn(move || {
            let guard = held.0.lock().unwrap();
            locked_tx.send(()).unwrap();
            release_rx.recv().unwrap();
            drop(guard);
        });
        locked_rx.recv().unwrap();
        assert!(shared.try_run(&op, &x).is_none(), "contended try_run must not block");
        release_tx.send(()).unwrap();
        holder.join().unwrap();
        assert_eq!(shared.runs(), 2, "the refused attempt must not count as a run");
    }

    #[test]
    fn warm_batch_provisions_beyond_the_plan_hint() {
        let mut g = MatrixRng::seed_from(100);
        let signs = g.signs(64, 128);
        let plan = PlanBuilder::new(64, 128)
            .batch_hint(1)
            .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
            .threading(biqgemm_core::planner::Threading::Serial)
            .build();
        let op = compile(&plan, WeightSource::Signs(&signs));
        let mut exec = Executor::new();
        exec.warm_batch(&op, 16);
        let x = g.small_int_col(128, 16, 2);
        let y = exec.run(&op, &x);
        assert_eq!(y.shape(), (64, 16));
    }

    #[test]
    fn warmed_executor_reports_resident_lut() {
        let mut g = MatrixRng::seed_from(98);
        let signs = g.signs(64, 128);
        let plan = PlanBuilder::new(64, 128)
            .batch_hint(2)
            .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
            .build();
        let op = compile(&plan, WeightSource::Signs(&signs));
        let exec = Executor::warmed_for(&op);
        // The bank itself materialises on first build; warm() only sizes
        // the accumulator — resident bytes may still be zero here.
        let _ = exec.arena().resident_lut_bytes();
    }
}
