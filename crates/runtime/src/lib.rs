//! # biq_runtime — the plan/executor layer over every GEMM path
//!
//! The workspace's kernels (dense baselines in `biq_gemm`, the BiQGEMM
//! engine in `biqgemm_core`) historically each exposed their own entry
//! point and allocated their own scratch per call. This crate unifies them
//! behind three abstractions, in the style of storage engines that separate
//! a planner from stateful chunk writers with shared buffers:
//!
//! * an [`ExecutionPlan`] — the *decision record*: backend choice, µ, tile
//!   shapes, LUT layout, thread schedule, and the scratch-buffer sizes it
//!   implies (built by [`PlanBuilder`], which extends
//!   `biqgemm_core::planner`);
//! * a [`CompiledOp`] — a plan bound to packed weights via the
//!   [`GemmBackend`] trait (one impl per kernel family: naive / blocked /
//!   int8 / xnor dense paths, serial and parallel BiQGEMM);
//! * an [`Executor`] — the *stateful runner*: owns a reusable [`Arena`]
//!   (LUT bank, accumulators, DP steps, input-pack panel) and runs any
//!   compiled op against it. After warm-up, serial runs perform **zero
//!   per-call heap allocation** — the property the paper's small-batch
//!   serving regime cares about.
//!
//! ```text
//!  shapes, batch, budget          weights (dense / quantized / packed)
//!          │                                  │
//!     PlanBuilder ──► ExecutionPlan ──► compile() ──► CompiledOp
//!                                                        │
//!                        Executor::run(&op, x) ──────────┘
//!                          │ owns Arena {LUT bank, acc, steps, pack}
//!                          ▼
//!                        Y = W·X
//! ```
//!
//! ## Example
//!
//! ```
//! use biq_matrix::MatrixRng;
//! use biq_runtime::{compile, BackendSpec, Executor, PlanBuilder, WeightSource};
//!
//! let mut rng = MatrixRng::seed_from(7);
//! let w = rng.gaussian(128, 64, 0.0, 1.0);
//! let x = rng.gaussian_col(64, 4, 0.0, 1.0);
//!
//! let plan = PlanBuilder::new(128, 64)
//!     .batch_hint(4)
//!     .backend(BackendSpec::Biq { bits: 2, method: biq_runtime::QuantMethod::Greedy })
//!     .build();
//! let op = compile(&plan, WeightSource::Dense(&w));
//!
//! let mut exec = Executor::new();
//! let y = exec.run(&op, &x);           // allocates the output
//! let y2 = exec.run(&op, &x);          // arena reused: no scratch allocation
//! assert_eq!(y.as_slice(), y2.as_slice());
//! ```

pub mod arena;
pub mod backends;
pub mod executor;
pub mod plan;

pub use arena::Arena;
pub use backends::{compile, CompiledOp, GemmBackend, PackedPayload, WeightSource};
pub use executor::{Executor, SharedExecutor};
pub use plan::{BackendSpec, ExecutionPlan, PlanBuilder, QuantMethod};

// The planner and kernel-layer vocabulary the plans are built from,
// re-exported so callers need not depend on biqgemm_core directly.
pub use biqgemm_core::planner::{ScratchSpec, Threading, SMALL_BATCH_SERIAL_MAX};
pub use biqgemm_core::{KernelError, KernelLevel, KernelRequest, ResolvedKernel, KERNEL_ENV};
