//! The `BIQ_KERNEL` environment override — kept in its **own** integration
//! binary (one `#[test]`) because env vars are process-global: the cases
//! run sequentially here and no other test in this process resolves
//! kernels concurrently.

use biq_runtime::{BackendSpec, KernelLevel, KernelRequest, PlanBuilder, QuantMethod, KERNEL_ENV};

#[test]
fn biq_kernel_env_forces_auto_and_atmost_but_not_exact() {
    // 1. Forcing scalar pins every Auto-resolved plan to scalar.
    std::env::set_var(KERNEL_ENV, "scalar");
    let plan = PlanBuilder::new(64, 64)
        .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
        .build();
    assert_eq!(plan.kernel.level(), KernelLevel::Scalar, "env forces Auto");

    // ... and AtMost requests (the artifact-load path), so a forced-scalar
    // CI run loads artifacts scalar too.
    let at_most = KernelRequest::AtMost(biqgemm_core::simd::host_best()).resolve().unwrap();
    assert_eq!(at_most.level(), KernelLevel::Scalar, "env forces AtMost");

    // 2. Explicit Exact requests are NOT overridden — the per-level
    // property tests must mean what they say even under a forced env.
    let best = biqgemm_core::simd::host_best();
    let exact = KernelRequest::Exact(best).resolve().unwrap();
    assert_eq!(exact.level(), best, "Exact ignores the env override");

    // 3. An env value naming an unsupported level errors clearly instead
    // of downgrading. Every host lacks at least one of the four levels.
    if let Some(foreign) = KernelLevel::ALL.into_iter().find(|l| !l.is_supported()) {
        std::env::set_var(KERNEL_ENV, foreign.name());
        let err = KernelRequest::Auto.resolve().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains(KERNEL_ENV), "error names the env var: {msg}");
        assert!(msg.contains(foreign.name()), "error names the level: {msg}");
    }

    // 4. Garbage values error with the accepted vocabulary.
    std::env::set_var(KERNEL_ENV, "sse9");
    let err = KernelRequest::Auto.resolve().unwrap_err();
    assert!(err.to_string().contains("scalar | avx2 | avx512 | neon"), "{err}");

    // 5. 'auto' and empty mean no override.
    std::env::set_var(KERNEL_ENV, "auto");
    assert_eq!(
        KernelRequest::Auto.resolve().unwrap().level(),
        biqgemm_core::simd::host_best(),
        "'auto' is a no-op override"
    );

    std::env::remove_var(KERNEL_ENV);
    assert_eq!(
        KernelRequest::Auto.resolve().unwrap().level(),
        biqgemm_core::simd::host_best(),
        "unset env resolves to host best"
    );
}
