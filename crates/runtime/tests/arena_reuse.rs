//! Arena-reuse guarantee: once the executor has run a serial plan once, a
//! repeat run performs **zero heap allocation** — measured with a counting
//! global allocator, not inferred.
//!
//! This is the acceptance gate for the plan/executor refactor: the seed's
//! per-call `LutBank`, accumulator and DP-step allocations are gone from
//! the steady state of small-batch (`b ≤ 8`) inference, the paper's target
//! serving regime.

use biq_matrix::MatrixRng;
use biq_runtime::{
    compile, BackendSpec, Executor, PlanBuilder, QuantMethod, Threading, WeightSource,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation made through the global allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn serial_small_batch_steady_state_allocates_nothing() {
    // The paper's serving regime: small batch against a large-ish matrix.
    for b in [1usize, 4, 8] {
        let mut g = MatrixRng::seed_from(0xa0 + b as u64);
        let (m, n) = (256, 512);
        let signs = g.signs(m, n);
        let x = g.small_int_col(n, b, 3);
        let plan = PlanBuilder::new(m, n)
            .batch_hint(b)
            .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
            .threading(Threading::Serial)
            .build();
        let op = compile(&plan, WeightSource::Signs(&signs));
        let mut exec = Executor::warmed_for(&op);
        let mut y = vec![0.0f32; m * b];

        // First run may still touch the allocator in theory; it is the
        // warm-up. Steady state starts at run two.
        exec.run_into(&op, &x, &mut y);
        let before = allocs();
        for _ in 0..16 {
            exec.run_into(&op, &x, &mut y);
        }
        let after = allocs();
        assert_eq!(
            after - before,
            0,
            "b = {b}: query phase allocated {} times in 16 steady-state runs",
            after - before
        );
    }
}

#[test]
fn warmed_executor_is_allocation_free_from_the_first_run() {
    let mut g = MatrixRng::seed_from(0xa9);
    let (m, n, b) = (128, 384, 4);
    let signs = g.signs(m, n);
    let x = g.small_int_col(n, b, 3);
    let plan = PlanBuilder::new(m, n)
        .batch_hint(b)
        .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
        .threading(Threading::Serial)
        .build();
    let op = compile(&plan, WeightSource::Signs(&signs));
    let mut exec = Executor::warmed_for(&op);
    let mut y = vec![0.0f32; m * b];
    let before = allocs();
    exec.run_into(&op, &x, &mut y);
    let after = allocs();
    assert_eq!(after - before, 0, "warmed first run allocated {} times", after - before);
}

#[test]
fn fp32_blocked_steady_state_allocates_nothing() {
    // The dense serving path shares the arena's pack panel.
    let mut g = MatrixRng::seed_from(0xaa);
    let (m, n, b) = (128, 256, 6);
    let w = g.gaussian(m, n, 0.0, 1.0);
    let x = g.gaussian_col(n, b, 0.0, 1.0);
    let plan = PlanBuilder::new(m, n)
        .batch_hint(b)
        .backend(BackendSpec::Fp32Blocked)
        .threading(Threading::Serial)
        .build();
    let op = compile(&plan, WeightSource::Dense(&w));
    let mut exec = Executor::warmed_for(&op);
    let mut y = vec![0.0f32; m * b];
    exec.run_into(&op, &x, &mut y);
    let before = allocs();
    for _ in 0..8 {
        exec.run_into(&op, &x, &mut y);
    }
    assert_eq!(allocs() - before, 0, "blocked fp32 steady state allocated");
}

#[test]
fn parallel_steady_state_allocates_nothing_per_worker() {
    // The arena-aware parallel drivers draw every per-task buffer (LUT
    // bank, accumulator, DP steps, key-row ranges) from the executor's
    // persistent per-worker pool. Pinning the pool to one thread makes the
    // rayon shim degrade to an inline loop with no thread spawns, so the
    // counting allocator can observe the drivers' own behaviour: after
    // warm-up, repeat parallel runs must not touch the heap at all.
    use biqgemm_core::{BiqConfig, Schedule};
    let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    pool.install(|| {
        for schedule in [Schedule::RowParallel, Schedule::SharedLut] {
            let mut g = MatrixRng::seed_from(0xb0 + schedule as u64);
            let (m, n, b) = (256, 512, 16);
            let signs = g.signs(m, n);
            let x = g.small_int_col(n, b, 3);
            let plan = PlanBuilder::new(m, n)
                .batch_hint(b)
                .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
                .config(BiqConfig { schedule, ..BiqConfig::default() })
                .threading(Threading::Parallel)
                .build();
            let op = compile(&plan, WeightSource::Signs(&signs));
            let mut exec = Executor::warmed_for(&op);
            let mut y = vec![0.0f32; m * b];
            exec.run_into(&op, &x, &mut y); // warm-up run
            let before = allocs();
            for _ in 0..8 {
                exec.run_into(&op, &x, &mut y);
            }
            let after = allocs();
            assert_eq!(
                after - before,
                0,
                "{schedule:?}: parallel steady state allocated {} times in 8 runs",
                after - before
            );
        }
    });
}

#[test]
fn legacy_one_shot_facade_allocates_every_call() {
    // Contrast case documenting what the refactor removed: the
    // self-contained `BiqGemm` facade builds a fresh arena (bank +
    // accumulator) per call. (The deprecated free-function shims that used
    // to demonstrate this are deleted; the facade remains the one-shot
    // path.)
    use biqgemm_core::{BiqConfig, BiqGemm};
    let mut g = MatrixRng::seed_from(0xab);
    let signs = g.signs(64, 128);
    let x = g.small_int_col(128, 4, 3);
    let engine = BiqGemm::from_signs(&signs, BiqConfig::default());
    let _ = engine.matmul(&x); // warm anything warmable
    let before = allocs();
    let _ = engine.matmul(&x);
    let per_call = allocs() - before;
    assert!(per_call > 0, "one-shot path unexpectedly allocation-free");
}
