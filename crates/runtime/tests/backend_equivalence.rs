//! The unification property: every BiQGEMM path — the naive dense
//! reference, the serial tiled kernel, both parallel schedules, and the
//! executor-driven runtime (serial and parallel plans) — produces
//! **bit-identical** outputs for arbitrary shapes, µ, and batch sizes.
//!
//! Integer-valued inputs make every accumulation order exact, so agreement
//! must be `==` on the raw f32 bits, not approximate. Edge cases the
//! strategies force: `n` not divisible by µ (ragged tail chunk), `b = 1`
//! (GEMV fast path), `m = 1` (single output row), and µ larger than `n`.

use biq_matrix::{ColMatrix, MatrixRng, SignMatrix};
use biq_runtime::{
    compile, BackendSpec, Executor, PlanBuilder, QuantMethod, Threading, WeightSource,
};
use biqgemm_core::{BiqConfig, BiqGemm, LutLayout, Schedule};
use proptest::prelude::*;

fn sign_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = SignMatrix> {
    (1..=max_rows, 1..=max_cols, any::<u64>())
        .prop_map(|(r, c, seed)| MatrixRng::seed_from(seed).signs(r, c))
}

/// Runs one shape through every path and asserts bit-identity.
fn assert_all_paths_agree(signs: &SignMatrix, x: &ColMatrix, cfg: BiqConfig) {
    let (m, n) = signs.shape();
    let b = x.cols();

    // Reference: dense naive GEMM on the ±1 matrix.
    let reference = biq_gemm::gemm_naive(&signs.to_f32(), x);
    let reference = reference.as_slice();

    // Serial tiled engine (the BiqGemm facade).
    let engine = BiqGemm::from_signs(signs, cfg);
    assert_eq!(engine.matmul(x).as_slice(), reference, "serial tiled");

    // Both parallel schedules.
    for schedule in [Schedule::RowParallel, Schedule::SharedLut] {
        let engine = BiqGemm::from_signs(signs, BiqConfig { schedule, ..cfg });
        assert_eq!(engine.matmul_parallel(x).as_slice(), reference, "parallel {schedule:?}");
    }

    // Executor-driven, serial and parallel plans, shared one executor so
    // arena reuse across differently-shaped ops is exercised too.
    let mut exec = Executor::new();
    for threading in [Threading::Serial, Threading::Parallel] {
        let plan = PlanBuilder::new(m, n)
            .batch_hint(b)
            .backend(BackendSpec::Biq { bits: 1, method: QuantMethod::Greedy })
            .config(cfg)
            .threading(threading)
            .build();
        let op = compile(&plan, WeightSource::Signs(signs));
        assert_eq!(exec.run(&op, x).as_slice(), reference, "executor {threading:?}");
        // Repeat run through the warmed arena must not drift.
        assert_eq!(exec.run(&op, x).as_slice(), reference, "executor rerun {threading:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random shapes, µ, tile sizes, layouts and batches.
    #[test]
    fn all_paths_bit_identical(
        signs in sign_matrix(33, 48),
        mu in 1usize..=12,
        (tr, tc, tb) in (1usize..=9, 1usize..=5, 1usize..=6),
        batch in 1usize..=7,
        layout_key_major in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let n = signs.cols();
        let x = MatrixRng::seed_from(seed).small_int_col(n, batch, 3);
        let cfg = BiqConfig {
            mu,
            tile_rows: tr,
            tile_chunks: tc,
            tile_batch: tb,
            layout: if layout_key_major { LutLayout::KeyMajor } else { LutLayout::BatchMajor },
            ..BiqConfig::default()
        };
        assert_all_paths_agree(&signs, &x, cfg);
    }

    /// Ragged tail: µ chosen to *never* divide n.
    #[test]
    fn ragged_tail_chunks(
        (n_chunks, tail) in (1usize..=4, 1usize..=7),
        m in 1usize..=24,
        batch in 1usize..=5,
        seed in any::<u64>(),
    ) {
        let mu = 8usize;
        let n = n_chunks * mu + tail.min(mu - 1).max(1); // guaranteed µ ∤ n
        let mut g = MatrixRng::seed_from(seed);
        let signs = g.signs(m, n);
        let x = g.small_int_col(n, batch, 2);
        assert_all_paths_agree(&signs, &x, BiqConfig { mu, tile_rows: 3, tile_chunks: 2, tile_batch: 2, ..BiqConfig::default() });
    }
}

#[test]
fn gemv_single_batch_column() {
    let mut g = MatrixRng::seed_from(0xb1);
    let signs = g.signs(40, 70);
    let x = g.small_int_col(70, 1, 4);
    assert_all_paths_agree(&signs, &x, BiqConfig::default());
}

#[test]
fn single_output_row() {
    let mut g = MatrixRng::seed_from(0xb2);
    let signs = g.signs(1, 100);
    let x = g.small_int_col(100, 6, 3);
    assert_all_paths_agree(&signs, &x, BiqConfig::with_mu(8));
}

#[test]
fn mu_larger_than_input() {
    let mut g = MatrixRng::seed_from(0xb3);
    let signs = g.signs(9, 5); // single ragged chunk: µ = 8 > n = 5
    let x = g.small_int_col(5, 3, 3);
    assert_all_paths_agree(&signs, &x, BiqConfig::with_mu(8));
}

#[test]
fn multibit_weights_agree_across_paths() {
    // Multi-bit planes stress the key-row stacking (r mod m indexing).
    use biq_quant::greedy_quantize_matrix_rowwise;
    let mut g = MatrixRng::seed_from(0xb4);
    let wf = g.small_int_matrix(21, 40, 2);
    let x = g.small_int_col(40, 4, 2);
    let q = greedy_quantize_matrix_rowwise(&wf, 3);
    let cfg =
        BiqConfig { mu: 8, tile_rows: 5, tile_chunks: 2, tile_batch: 3, ..BiqConfig::default() };

    let engine = BiqGemm::new(&q, cfg);
    let serial = engine.matmul(&x);
    assert_eq!(engine.matmul_parallel(&x).as_slice(), serial.as_slice());

    let mut exec = Executor::new();
    for threading in [Threading::Serial, Threading::Parallel] {
        let plan = PlanBuilder::new(21, 40)
            .batch_hint(4)
            .backend(BackendSpec::Biq { bits: 3, method: QuantMethod::Greedy })
            .config(cfg)
            .threading(threading)
            .build();
        let op = compile(&plan, WeightSource::Quantized(&q));
        assert_eq!(exec.run(&op, &x).as_slice(), serial.as_slice(), "{threading:?}");
    }
}
