//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply cloneable, advanceable view over an immutable
//! byte buffer; [`BytesMut`] is an append-only builder that freezes into
//! [`Bytes`]. The [`Buf`]/[`BufMut`] traits carry the little-endian
//! accessors the workspace serializers use. Semantics match the real crate
//! for this surface, including panics on under-full reads.

use std::ops::Deref;
use std::sync::Arc;

/// Read access to a cursor over bytes.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `n` bytes.
    ///
    /// # Panics
    /// Panics if `n > self.remaining()`.
    fn advance(&mut self, n: usize);

    /// Copies `dst.len()` bytes out, consuming them.
    ///
    /// # Panics
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one `u8`.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads one `i8`.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends one `i8`.
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

/// An immutable, cheaply cloneable byte buffer with a read cursor.
///
/// Views created by [`Bytes::slice`] and `clone` share one reference-counted
/// allocation — no payload bytes are copied, matching the real crate. This
/// is what makes zero-copy artifact loading possible: a loaded file is one
/// `Bytes`, and every section is a `slice` into it.
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
    end: usize,
}

impl Default for Bytes {
    fn default() -> Self {
        Self { data: Arc::from(&[][..]), pos: 0, end: 0 }
    }
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the unconsumed bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }

    /// A view of sub-range `range` of the unconsumed bytes. Shares the
    /// backing allocation — the returned view's pointer lies inside this
    /// buffer's memory.
    ///
    /// # Panics
    /// Panics when the range exceeds [`Bytes::len`].
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            pos: self.pos + range.start,
            end: self.pos + range.end,
        }
    }

    /// Length of the unconsumed bytes.
    pub fn len(&self) -> usize {
        self.remaining()
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self { data: v.into(), pos: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        let end = v.len();
        Self { data: v.into(), pos: 0, end }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.chunk() == other.chunk()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.end - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..self.end]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end of buffer");
        self.pos += n;
    }
}

/// A growable byte builder.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut b = BytesMut::with_capacity(32);
        b.put_slice(b"HDR!");
        b.put_u8(7);
        b.put_i8(-3);
        b.put_u16_le(0xBEEF);
        b.put_u64_le(0x0123_4567_89AB_CDEF);
        b.put_f32_le(-1.5);
        let mut r = b.freeze();
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"HDR!");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_i8(), -3);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f32_le(), -1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn clone_does_not_share_cursor() {
        let mut a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        a.advance(2);
        assert_eq!(a.remaining(), 1);
        assert_eq!(b.remaining(), 3);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u64_le();
    }

    #[test]
    fn slice_shares_storage_without_copying() {
        let b = Bytes::from(vec![0u8; 256]);
        let s = b.slice(64..192);
        assert_eq!(s.len(), 128);
        let base = b.as_ref().as_ptr() as usize;
        let sub = s.as_ref().as_ptr() as usize;
        assert_eq!(sub, base + 64, "slice must point into the parent allocation");
        let nested = s.slice(8..16);
        assert_eq!(nested.as_ref().as_ptr() as usize, base + 72);
        assert_eq!(nested.len(), 8);
    }

    #[test]
    fn slice_bounds_are_respected_after_advance() {
        let mut b = Bytes::from((0u8..32).collect::<Vec<_>>());
        b.advance(4);
        let s = b.slice(2..6);
        assert_eq!(s.as_ref(), &[6, 7, 8, 9]);
        assert_eq!(s.remaining(), 4);
    }

    #[test]
    fn nan_bits_preserved() {
        let bits = 0x7FC0_1234u32;
        let mut w = BytesMut::new();
        w.put_f32_le(f32::from_bits(bits));
        let mut r = w.freeze();
        assert_eq!(r.get_f32_le().to_bits(), bits);
    }
}
