//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides `Criterion`, benchmark groups, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! calibrated median: each benchmark body is batched until a batch takes
//! ≳200 µs, then `sample_size` batches are timed and the median per-iteration
//! time is printed as
//!
//! ```text
//! bench  group/name ... median 123 ns/iter (k samples)
//! ```
//!
//! No plots, no statistics beyond the median, no baseline files — enough to
//! compare kernels by eye and to keep `cargo bench` runnable offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Label of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` labelling.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self { label: format!("{name}/{parameter}") }
    }

    /// Parameter-only labelling.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Timer handed to benchmark bodies.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    median_ns: f64,
}

impl Bencher {
    /// Measures `f`, recording the median per-iteration time.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Calibrate the batch size so one batch is long enough to time.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_micros(200) || batch >= 1 << 24 {
                break;
            }
            batch *= 2;
        }
        let mut per_iter: Vec<f64> = (0..self.samples.max(1))
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..batch {
                    std::hint::black_box(f());
                }
                t0.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = per_iter[per_iter.len() / 2];
    }
}

fn run_one(group: &str, label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples, median_ns: f64::NAN };
    f(&mut b);
    let sep = if group.is_empty() { "" } else { "/" };
    println!(
        "bench  {group}{sep}{label} ... median {:.0} ns/iter ({samples} samples)",
        b.median_ns
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&self.name, &id.into().label, self.samples, &mut f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&self.name, &id.into().label, self.samples, &mut |b| f(b, input));
        self
    }

    /// Ends the group (printing happens eagerly; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    default_samples: usize,
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = if self.default_samples == 0 { 10 } else { self.default_samples };
        BenchmarkGroup { _criterion: self, name: name.into(), samples }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let samples = if self.default_samples == 0 { 10 } else { self.default_samples };
        run_one("", &id.into().label, samples, &mut f);
        self
    }
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
        });
        group.bench_with_input(BenchmarkId::new("sum", 8), &8usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>());
        });
        group.finish();
    }
}
