//! Offline stand-in for the `rayon` crate.
//!
//! Provides the slice-parallel surface this workspace uses —
//! `par_chunks_mut(..).enumerate().for_each(..)` — executed on real OS
//! threads via `std::thread::scope`, plus `current_num_threads` and a
//! minimal `ThreadPoolBuilder`/`ThreadPool::install` for pinning the
//! worker count in benchmarks.
//!
//! Work distribution is a shared atomic cursor over the chunk list, so
//! uneven chunks still balance. With one logical CPU (or one chunk) the
//! driver degrades to a plain serial loop with no thread spawns.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Global worker-count override installed by [`ThreadPool::install`]
/// (0 = use the machine's available parallelism).
static POOL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of threads parallel operations will use.
pub fn current_num_threads() -> usize {
    match POOL_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// Builder for a fixed-size pool.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Pool construction error (never produced by this shim; kept for API
/// compatibility with `build().expect(..)` call sites).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with the default (machine) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a fixed worker count (0 = machine default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// A scoped worker-count setting. Unlike real rayon there are no persistent
/// workers; [`ThreadPool::install`] just pins [`current_num_threads`] for
/// the duration of the closure (threads are spawned per parallel call).
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count installed as the default.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.swap(self.num_threads, Ordering::Relaxed);
        let out = f();
        POOL_THREADS.store(prev, Ordering::Relaxed);
        out
    }
}

/// Runs `f(index, item)` for every item, distributing items over worker
/// threads with a shared atomic cursor.
fn run_indexed<I, F>(items: Vec<I>, f: F)
where
    I: Send,
    F: Fn(usize, I) + Sync,
{
    let threads = current_num_threads().min(items.len()).max(1);
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let slots = &slots;
    let cursor = &cursor;
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let item = slots[i].lock().expect("slot lock poisoned").take();
                if let Some(item) = item {
                    f(i, item);
                }
            });
        }
    });
}

/// Runs `f(index, chunk)` over the chunks of `slice`. With one logical
/// worker (or a single chunk) this is a plain serial loop that touches
/// neither the allocator nor the thread spawner — the property the
/// counting-allocator tests pin for steady-state runs under a 1-thread
/// pool; otherwise chunks are collected and distributed over real threads.
fn run_chunks<T, F>(slice: &mut [T], chunk_size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_size > 0, "chunk size must be positive");
    let n_chunks = slice.len().div_ceil(chunk_size);
    if current_num_threads().min(n_chunks) <= 1 {
        for (i, c) in slice.chunks_mut(chunk_size).enumerate() {
            f(i, c);
        }
        return;
    }
    run_indexed(slice.chunks_mut(chunk_size).collect(), f);
}

/// Parallel iterator over disjoint mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs every chunk with its index.
    pub fn enumerate(self) -> EnumerateParChunksMut<'a, T> {
        EnumerateParChunksMut { slice: self.slice, chunk_size: self.chunk_size }
    }

    /// Applies `f` to every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        run_chunks(self.slice, self.chunk_size, |_, c| f(c));
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct EnumerateParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<T: Send> EnumerateParChunksMut<'_, T> {
    /// Applies `f` to every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        run_chunks(self.slice, self.chunk_size, |i, c| f((i, c)));
    }
}

/// Mutable slice parallelism (the `rayon::slice::ParallelSliceMut` role).
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into chunks of at most `chunk_size` elements that
    /// can be processed in parallel.
    ///
    /// # Panics
    /// Panics if `chunk_size` is zero.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut { slice: self, chunk_size }
    }
}

/// The customary glob import.
pub mod prelude {
    pub use crate::ParallelSliceMut;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn chunks_see_disjoint_data_and_all_of_it() {
        let mut v = vec![0u32; 103];
        v.as_mut_slice().par_chunks_mut(10).enumerate().for_each(|(i, c)| {
            for x in c.iter_mut() {
                *x = i as u32 + 1;
            }
        });
        assert!(v.iter().all(|&x| x > 0));
        assert_eq!(v[0], 1);
        assert_eq!(v[102], 11);
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 2);
        assert_ne!(POOL_THREADS.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let mut v: Vec<u64> = (0..1000).collect();
        v.as_mut_slice().par_chunks_mut(7).for_each(|c| {
            for x in c.iter_mut() {
                *x *= 3;
            }
        });
        assert_eq!(v.iter().sum::<u64>(), 3 * (999 * 1000 / 2));
    }
}
