//! Offline stand-in for the `proptest` crate.
//!
//! Random property testing with the `proptest!` macro, strategy
//! combinators (`prop_map`, `prop_flat_map`), range/tuple/`Just`/`any`
//! strategies, `collection::vec`, and `prop_oneof!`. Differences from the
//! real crate:
//!
//! * **no shrinking** — a failing case panics with the generated inputs in
//!   the assertion message, but is not minimised;
//! * case generation is seeded deterministically from the test name, so
//!   failures reproduce run to run.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary label (e.g. the test name).
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Number of cases each property runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and draws from
    /// the result (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe strategy core for boxing.
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given options.
    ///
    /// # Panics
    /// Panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_strategy_impls {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )+};
}

int_strategy_impls!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for RangeInclusive<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let span = hi - lo;
        if span == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.below(span + 1)
    }
}

macro_rules! float_strategy_impls {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )+};
}

float_strategy_impls!(f32, f64);

macro_rules! tuple_strategy_impls {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy_impls!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Types with a canonical "anything goes" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value (full bit range for floats, so NaNs and
    /// infinities are produced).
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits((rng.next_u64() >> 32) as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Arbitrary for i8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 56) as i8
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Strategy for any value of `T` — see [`Arbitrary`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Acceptable size arguments for [`vec()`]: a fixed size or a range.
    pub trait IntoSizeRange {
        /// `(min, max)` inclusive bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty size range");
            (*self.start(), *self.end())
        }
    }

    /// Strategy for a `Vec` whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.max > self.min {
                self.min + rng.below((self.max - self.min + 1) as u64) as usize
            } else {
                self.min
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// The customary glob import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts a condition inside a property (plain `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests. Each `fn` runs `config.cases` times with fresh
/// random inputs drawn from its argument strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in -5i32..=5, b in 1usize..10, f in -2.0f32..2.0) {
            prop_assert!((-5..=5).contains(&a));
            prop_assert!((1..10).contains(&b));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn flat_map_links_dimensions((r, c) in (1usize..=4, 1usize..=4)) {
            let v = Strategy::generate(
                &(1usize..=3).prop_flat_map(|k| super::collection::vec(0i32..10, k * 2)),
                &mut TestRng::deterministic("inner"),
            );
            prop_assert!(v.len() % 2 == 0);
            prop_assert!(r * c <= 16);
        }

        #[test]
        fn oneof_picks_only_listed(v in prop_oneof![Just(1i8), Just(-1i8)]) {
            prop_assert!(v == 1 || v == -1);
        }
    }

    #[test]
    fn any_f32_produces_nan_eventually() {
        let mut rng = TestRng::deterministic("nan-hunt");
        let found = (0..100_000).any(|_| f32::arbitrary(&mut rng).is_nan());
        assert!(found, "full-bit-range f32 should hit NaN patterns");
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
