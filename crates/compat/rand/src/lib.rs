//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! Implements exactly the surface this workspace uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), [`Rng::random`] for
//! `f32`/`f64`/`bool`/unsigned integers, and [`Rng::random_range`] over
//! integer ranges. The generator is xoshiro256** seeded through SplitMix64,
//! so streams are high-quality and fully reproducible from a `u64` seed.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG via [`Rng::random`].
pub trait Standard {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

/// Ranges samplable via [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough bounded draw via 128-bit multiply-shift.
#[inline]
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range_impls {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(bounded(rng, span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(bounded(rng, span + 1) as $wide) as $t
            }
        }
    )+};
}

int_range_impls!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f32::sample(rng)
    }
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// One uniform sample of `T` (`f32`/`f64` in `[0,1)`, full-range ints).
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// One uniform sample from `range`.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut g = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f32 = g.random();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = g.random();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn ranges_hit_bounds() {
        let mut g = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = g.random_range(-2i32..=2);
            seen[(v + 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "inclusive range should hit all values");
        for _ in 0..1000 {
            let v = g.random_range(0usize..7);
            assert!(v < 7);
        }
    }

    #[test]
    fn bools_are_balanced() {
        let mut g = StdRng::seed_from_u64(3);
        let heads = (0..4000).filter(|_| g.random::<bool>()).count();
        assert!((heads as f64 / 4000.0 - 0.5).abs() < 0.05);
    }
}
