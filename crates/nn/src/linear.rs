//! The backend-pluggable fully-connected layer — the single compute-bearing
//! primitive every model in this crate is built from (Fig. 1 of the paper).
//!
//! `forward` computes `Y = W·X (+ bias)` with `W : out × in` and activations
//! as column-major `features × batch`. The multiplication engine is chosen at
//! construction:
//!
//! * [`Backend::Fp32`] — dense blocked GEMM (serial or rayon-parallel), the
//!   `eigen`/`mkl` role;
//! * [`Backend::Biq`] — binary-coding quantized weights through BiQGEMM;
//! * [`Backend::Xnor`] — weights *and* activations binarised, XNOR-popcount.
//!
//! Quantized constructors consume the fp32 weights, quantize once, and keep
//! only the packed form — mirroring a real deployment where the dense matrix
//! never ships.

use biq_gemm::xnor::{xnor_gemm, XnorWeights};
use biq_gemm::{gemm_blocked, par_gemm_blocked};
use biq_matrix::{ColMatrix, Matrix};
use biq_quant::alternating::alternating_quantize_matrix_rowwise;
use biq_quant::greedy_quantize_matrix_rowwise;
use biqgemm_core::{BiqConfig, BiqGemm};

/// Which engine a [`Linear`] uses (coarse tag, for reporting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// Dense fp32 GEMM.
    Fp32,
    /// BiQGEMM over binary-coding quantized weights.
    Biq,
    /// XNOR-popcount (1-bit activations too).
    Xnor,
}

/// The matmul engine of a [`Linear`] layer.
#[derive(Clone, Debug)]
pub enum Backend {
    /// Dense fp32 weights, blocked GEMM. `parallel` selects the rayon driver.
    Fp32 {
        /// Dense `out × in` weights.
        weight: Matrix,
        /// Use the rayon-parallel kernel.
        parallel: bool,
    },
    /// Binary-coding quantized weights through BiQGEMM.
    Biq {
        /// Packed engine.
        engine: BiqGemm,
        /// Use the rayon-parallel kernel.
        parallel: bool,
    },
    /// XNOR-popcount with on-the-fly activation binarisation.
    Xnor {
        /// Packed weight planes.
        weights: XnorWeights,
    },
}

/// Quantization recipe for [`Linear::quantized`].
#[derive(Clone, Copy, Debug)]
pub enum QuantMethod {
    /// Greedy binary coding (Guo et al.).
    Greedy,
    /// Greedy + alternating refinement (`iters` rounds).
    Alternating {
        /// Maximum refinement rounds.
        iters: usize,
    },
}

/// A fully-connected layer with optional bias.
#[derive(Clone, Debug)]
pub struct Linear {
    backend: Backend,
    bias: Option<Vec<f32>>,
    out_features: usize,
    in_features: usize,
}

impl Linear {
    /// Full-precision layer (serial blocked GEMM).
    pub fn fp32(weight: Matrix, bias: Option<Vec<f32>>) -> Self {
        Self::fp32_with(weight, bias, false)
    }

    /// Full-precision layer, optionally rayon-parallel.
    pub fn fp32_with(weight: Matrix, bias: Option<Vec<f32>>, parallel: bool) -> Self {
        let (out_features, in_features) = weight.shape();
        Self::check_bias(&bias, out_features);
        Self { backend: Backend::Fp32 { weight, parallel }, bias, out_features, in_features }
    }

    /// Quantizes `weight` to `bits` binary-coding planes and runs it through
    /// BiQGEMM.
    pub fn quantized(
        weight: &Matrix,
        bits: usize,
        method: QuantMethod,
        cfg: BiqConfig,
        bias: Option<Vec<f32>>,
    ) -> Self {
        let (out_features, in_features) = weight.shape();
        Self::check_bias(&bias, out_features);
        let quant = match method {
            QuantMethod::Greedy => greedy_quantize_matrix_rowwise(weight, bits),
            QuantMethod::Alternating { iters } => {
                alternating_quantize_matrix_rowwise(weight, bits, iters)
            }
        };
        let engine = BiqGemm::new(&quant, cfg);
        Self {
            backend: Backend::Biq { engine, parallel: false },
            bias,
            out_features,
            in_features,
        }
    }

    /// Like [`Self::quantized`] but using the rayon-parallel BiQGEMM driver.
    pub fn quantized_parallel(
        weight: &Matrix,
        bits: usize,
        method: QuantMethod,
        cfg: BiqConfig,
        bias: Option<Vec<f32>>,
    ) -> Self {
        let mut l = Self::quantized(weight, bits, method, cfg, bias);
        if let Backend::Biq { parallel, .. } = &mut l.backend {
            *parallel = true;
        }
        l
    }

    /// Quantizes to `bits` planes and runs XNOR-popcount (activations are
    /// binarised dynamically each forward).
    pub fn xnor(weight: &Matrix, bits: usize, bias: Option<Vec<f32>>) -> Self {
        let (out_features, in_features) = weight.shape();
        Self::check_bias(&bias, out_features);
        let quant = greedy_quantize_matrix_rowwise(weight, bits);
        Self {
            backend: Backend::Xnor { weights: XnorWeights::from_multibit(&quant) },
            bias,
            out_features,
            in_features,
        }
    }

    /// Wraps a prebuilt backend.
    pub fn from_backend(
        backend: Backend,
        bias: Option<Vec<f32>>,
        out_features: usize,
        in_features: usize,
    ) -> Self {
        Self::check_bias(&bias, out_features);
        Self { backend, bias, out_features, in_features }
    }

    fn check_bias(bias: &Option<Vec<f32>>, out: usize) {
        if let Some(b) = bias {
            assert_eq!(b.len(), out, "bias length must equal out_features");
        }
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Which kind of engine this layer runs on.
    pub fn backend_kind(&self) -> BackendKind {
        match self.backend {
            Backend::Fp32 { .. } => BackendKind::Fp32,
            Backend::Biq { .. } => BackendKind::Biq,
            Backend::Xnor { .. } => BackendKind::Xnor,
        }
    }

    /// `Y = W·X (+ bias)`, activations column-major `in × batch`, output
    /// column-major `out × batch`.
    ///
    /// # Panics
    /// Panics if `x.rows() != in_features`.
    pub fn forward(&self, x: &ColMatrix) -> ColMatrix {
        assert_eq!(x.rows(), self.in_features, "input feature mismatch");
        let y: Matrix = match &self.backend {
            Backend::Fp32 { weight, parallel } => {
                if *parallel {
                    par_gemm_blocked(weight, x)
                } else {
                    gemm_blocked(weight, x)
                }
            }
            Backend::Biq { engine, parallel } => {
                if *parallel {
                    engine.matmul_parallel(x)
                } else {
                    engine.matmul(x)
                }
            }
            Backend::Xnor { weights } => xnor_gemm(weights, x),
        };
        let mut out = y.to_col_major();
        if let Some(bias) = &self.bias {
            for j in 0..out.cols() {
                for (v, &bv) in out.col_mut(j).iter_mut().zip(bias) {
                    *v += bv;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biq_matrix::MatrixRng;
    use biq_quant::error_metrics::relative_l2;

    #[test]
    fn fp32_forward_with_bias() {
        let w = Matrix::from_vec(2, 3, vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0]);
        let l = Linear::fp32(w, Some(vec![10.0, 20.0]));
        let x = ColMatrix::from_column(vec![1.0, 2.0, 3.0]);
        let y = l.forward(&x);
        assert_eq!(y.col(0), &[11.0, 22.0]);
    }

    #[test]
    fn quantized_forward_tracks_fp32_within_quant_error() {
        let mut g = MatrixRng::seed_from(310);
        let w = g.gaussian(64, 128, 0.0, 0.05);
        let x = g.gaussian_col(128, 4, 0.0, 1.0);
        let fp = Linear::fp32(w.clone(), None);
        let y_fp = fp.forward(&x);
        let mut prev_err = f64::INFINITY;
        for bits in [1usize, 2, 3] {
            let lq = Linear::quantized(&w, bits, QuantMethod::Greedy, BiqConfig::default(), None);
            let y_q = lq.forward(&x);
            let err = relative_l2(y_q.as_slice(), y_fp.as_slice());
            assert!(err < prev_err, "error should fall with bits: {err} vs {prev_err}");
            prev_err = err;
        }
        // 3 greedy bits give ≈13 dB weight SQNR (relative weight error ≈0.22),
        // which propagates roughly 1:1 to the output of a single layer.
        assert!(prev_err < 0.3, "3-bit relative error {prev_err}");
    }

    #[test]
    fn alternating_no_worse_than_greedy_end_to_end() {
        let mut g = MatrixRng::seed_from(311);
        let w = g.gaussian(32, 96, 0.0, 1.0);
        let x = g.gaussian_col(96, 3, 0.0, 1.0);
        let y_fp = Linear::fp32(w.clone(), None).forward(&x);
        let yg = Linear::quantized(&w, 2, QuantMethod::Greedy, BiqConfig::default(), None)
            .forward(&x);
        let ya = Linear::quantized(
            &w,
            2,
            QuantMethod::Alternating { iters: 10 },
            BiqConfig::default(),
            None,
        )
        .forward(&x);
        let eg = relative_l2(yg.as_slice(), y_fp.as_slice());
        let ea = relative_l2(ya.as_slice(), y_fp.as_slice());
        assert!(ea <= eg * 1.05, "alternating {ea} vs greedy {eg}");
    }

    #[test]
    fn parallel_variants_match_serial() {
        let mut g = MatrixRng::seed_from(312);
        let w = g.small_int_matrix(40, 60, 2);
        let x = g.small_int_col(60, 5, 2);
        let ys = Linear::fp32_with(w.clone(), None, false).forward(&x);
        let yp = Linear::fp32_with(w.clone(), None, true).forward(&x);
        assert_eq!(ys.as_slice(), yp.as_slice());
        let qs = Linear::quantized(&w, 1, QuantMethod::Greedy, BiqConfig::default(), None);
        let qp =
            Linear::quantized_parallel(&w, 1, QuantMethod::Greedy, BiqConfig::default(), None);
        assert_eq!(qs.forward(&x).as_slice(), qp.forward(&x).as_slice());
    }

    #[test]
    fn xnor_backend_runs_and_is_rough() {
        let mut g = MatrixRng::seed_from(313);
        let w = g.gaussian(32, 64, 0.0, 1.0);
        let x = g.gaussian_col(64, 2, 0.0, 1.0);
        let l = Linear::xnor(&w, 1, None);
        assert_eq!(l.backend_kind(), BackendKind::Xnor);
        let y = l.forward(&x);
        assert_eq!(y.shape(), (32, 2));
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "bias length")]
    fn bad_bias_rejected() {
        let w = Matrix::zeros(2, 2);
        let _ = Linear::fp32(w, Some(vec![0.0; 3]));
    }

    #[test]
    #[should_panic(expected = "input feature mismatch")]
    fn bad_input_rejected() {
        let w = Matrix::zeros(2, 4);
        let l = Linear::fp32(w, None);
        let _ = l.forward(&ColMatrix::zeros(3, 1));
    }
}
