//! The backend-pluggable fully-connected layer — the single compute-bearing
//! primitive every model in this crate is built from (Fig. 1 of the paper).
//!
//! `forward` computes `Y = W·X (+ bias)` with `W : out × in` and activations
//! as column-major `features × batch`. Since the plan/executor refactor a
//! layer is a compiled runtime op plus a (shareable) executor:
//!
//! * the **plan** ([`biq_runtime::ExecutionPlan`]) decides the kernel family
//!   (fp32 naive/blocked, int8, xnor, BiQGEMM), µ, tile shapes and
//!   threading — built once at construction;
//! * the **compiled op** owns the packed weights (the dense matrix never
//!   ships for quantized layers, mirroring a real deployment);
//! * the **executor** owns the reusable scratch arenas (LUT bank,
//!   accumulators, pack panel). Models pass one [`SharedExecutor`] to all
//!   their layers so arenas are reused across layers and time-steps.
//!
//! The historical constructors ([`Linear::fp32`], [`Linear::quantized`],
//! [`Linear::xnor`], …) remain as thin shims over [`Linear::from_plan`];
//! each creates a private executor, which is correct but forgoes
//! cross-layer arena sharing.

use biq_matrix::store::PodStore;
use biq_matrix::{ColMatrix, Matrix};
use biq_runtime::{
    compile, BackendSpec, CompiledOp, ExecutionPlan, PlanBuilder, SharedExecutor, Threading,
    WeightSource,
};
use biqgemm_core::BiqConfig;
use std::sync::Arc;

pub use biq_runtime::QuantMethod;

/// Which engine a [`Linear`] uses (coarse tag, for reporting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// Dense fp32 GEMM.
    Fp32,
    /// BiQGEMM over binary-coding quantized weights.
    Biq,
    /// XNOR-popcount (1-bit activations too).
    Xnor,
    /// INT8 fixed-point pipeline.
    Int8,
}

impl BackendKind {
    fn of(spec: &BackendSpec) -> Self {
        match spec {
            BackendSpec::Fp32Naive | BackendSpec::Fp32Blocked => BackendKind::Fp32,
            BackendSpec::Int8 => BackendKind::Int8,
            BackendSpec::Xnor { .. } => BackendKind::Xnor,
            BackendSpec::Biq { .. } => BackendKind::Biq,
        }
    }
}

/// A fully-connected layer with optional bias.
///
/// `Clone` is cheap: the compiled op (packed weights) is reference-counted
/// and the executor handle is shared, so clones reuse both.
#[derive(Clone, Debug)]
pub struct Linear {
    op: Arc<CompiledOp>,
    exec: SharedExecutor,
    bias: Option<PodStore<f32>>,
    out_features: usize,
    in_features: usize,
    kind: BackendKind,
}

impl Linear {
    /// The one true constructor: binds `plan` to `weights` and runs through
    /// `exec`. All other constructors are conveniences over this.
    ///
    /// # Panics
    /// Panics when the weight shape disagrees with the plan or
    /// `bias.len() != m`.
    pub fn from_plan(
        plan: &ExecutionPlan,
        weights: WeightSource<'_>,
        bias: Option<Vec<f32>>,
        exec: SharedExecutor,
    ) -> Self {
        let op = compile(plan, weights);
        Self::from_compiled_op(Arc::new(op), bias.map(PodStore::from), exec)
    }

    /// Wraps an already-compiled op (the artifact restore path: the op's
    /// packed weights and `bias` may both borrow a loaded file buffer).
    ///
    /// # Panics
    /// Panics when `bias.len() != m`.
    pub fn from_compiled_op(
        op: Arc<CompiledOp>,
        bias: Option<PodStore<f32>>,
        exec: SharedExecutor,
    ) -> Self {
        if let Some(b) = &bias {
            assert_eq!(b.len(), op.output_size(), "bias length must equal out_features");
        }
        exec.warm(&op);
        Self {
            out_features: op.output_size(),
            in_features: op.input_size(),
            kind: BackendKind::of(&op.plan().spec),
            op,
            exec,
            bias,
        }
    }

    /// Full-precision layer (serial blocked GEMM).
    pub fn fp32(weight: Matrix, bias: Option<Vec<f32>>) -> Self {
        Self::fp32_with(weight, bias, false)
    }

    /// Full-precision layer, optionally rayon-parallel.
    pub fn fp32_with(weight: Matrix, bias: Option<Vec<f32>>, parallel: bool) -> Self {
        let (m, n) = weight.shape();
        let plan = PlanBuilder::new(m, n)
            .backend(BackendSpec::Fp32Blocked)
            .threading(if parallel { Threading::Parallel } else { Threading::Serial })
            .build();
        Self::from_plan(&plan, WeightSource::Dense(&weight), bias, SharedExecutor::new())
    }

    /// Quantizes `weight` to `bits` binary-coding planes and runs it through
    /// BiQGEMM with the explicit engine config `cfg`.
    pub fn quantized(
        weight: &Matrix,
        bits: usize,
        method: QuantMethod,
        cfg: BiqConfig,
        bias: Option<Vec<f32>>,
    ) -> Self {
        Self::quantized_threaded(weight, bits, method, cfg, bias, Threading::Serial)
    }

    /// Like [`Self::quantized`] but using the rayon-parallel BiQGEMM driver.
    pub fn quantized_parallel(
        weight: &Matrix,
        bits: usize,
        method: QuantMethod,
        cfg: BiqConfig,
        bias: Option<Vec<f32>>,
    ) -> Self {
        Self::quantized_threaded(weight, bits, method, cfg, bias, Threading::Parallel)
    }

    fn quantized_threaded(
        weight: &Matrix,
        bits: usize,
        method: QuantMethod,
        cfg: BiqConfig,
        bias: Option<Vec<f32>>,
        threading: Threading,
    ) -> Self {
        let (m, n) = weight.shape();
        let plan = PlanBuilder::new(m, n)
            .backend(BackendSpec::Biq { bits, method })
            .config(cfg)
            .threading(threading)
            .build();
        Self::from_plan(&plan, WeightSource::Dense(weight), bias, SharedExecutor::new())
    }

    /// Quantizes to `bits` planes and runs XNOR-popcount (activations are
    /// binarised dynamically each forward).
    pub fn xnor(weight: &Matrix, bits: usize, bias: Option<Vec<f32>>) -> Self {
        let (m, n) = weight.shape();
        let plan = PlanBuilder::new(m, n).backend(BackendSpec::Xnor { bits }).build();
        Self::from_plan(&plan, WeightSource::Dense(weight), bias, SharedExecutor::new())
    }

    /// The layer bias, if any.
    pub fn bias(&self) -> Option<&[f32]> {
        self.bias.as_deref()
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Which kind of engine this layer runs on.
    pub fn backend_kind(&self) -> BackendKind {
        self.kind
    }

    /// The execution plan this layer was compiled from.
    pub fn plan(&self) -> &ExecutionPlan {
        self.op.plan()
    }

    /// The executor handle this layer runs through (share it with other
    /// layers to pool arenas).
    pub fn executor(&self) -> &SharedExecutor {
        &self.exec
    }

    /// The layer's compiled op, shared by reference count — the handle a
    /// serving layer registers (`biq_serve::ModelRegistry::register_linear`)
    /// so batched traffic runs against the same packed weights this layer
    /// forwards through. The op computes `W·X` only; bias stays with the
    /// layer.
    pub fn compiled_op(&self) -> Arc<CompiledOp> {
        Arc::clone(&self.op)
    }

    /// `Y = W·X (+ bias)`, activations column-major `in × batch`, output
    /// column-major `out × batch`.
    ///
    /// # Panics
    /// Panics if `x.rows() != in_features`.
    pub fn forward(&self, x: &ColMatrix) -> ColMatrix {
        assert_eq!(x.rows(), self.in_features, "input feature mismatch");
        let y = self.exec.run(&self.op, x);
        let mut out = y.to_col_major();
        if let Some(bias) = &self.bias {
            for j in 0..out.cols() {
                for (v, &bv) in out.col_mut(j).iter_mut().zip(bias.as_slice()) {
                    *v += bv;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biq_matrix::MatrixRng;
    use biq_quant::error_metrics::relative_l2;

    #[test]
    fn fp32_forward_with_bias() {
        let w = Matrix::from_vec(2, 3, vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0]);
        let l = Linear::fp32(w, Some(vec![10.0, 20.0]));
        let x = ColMatrix::from_column(vec![1.0, 2.0, 3.0]);
        let y = l.forward(&x);
        assert_eq!(y.col(0), &[11.0, 22.0]);
    }

    #[test]
    fn quantized_forward_tracks_fp32_within_quant_error() {
        let mut g = MatrixRng::seed_from(310);
        let w = g.gaussian(64, 128, 0.0, 0.05);
        let x = g.gaussian_col(128, 4, 0.0, 1.0);
        let fp = Linear::fp32(w.clone(), None);
        let y_fp = fp.forward(&x);
        let mut prev_err = f64::INFINITY;
        for bits in [1usize, 2, 3] {
            let lq = Linear::quantized(&w, bits, QuantMethod::Greedy, BiqConfig::default(), None);
            let y_q = lq.forward(&x);
            let err = relative_l2(y_q.as_slice(), y_fp.as_slice());
            assert!(err < prev_err, "error should fall with bits: {err} vs {prev_err}");
            prev_err = err;
        }
        // 3 greedy bits give ≈13 dB weight SQNR (relative weight error ≈0.22),
        // which propagates roughly 1:1 to the output of a single layer.
        assert!(prev_err < 0.3, "3-bit relative error {prev_err}");
    }

    #[test]
    fn alternating_no_worse_than_greedy_end_to_end() {
        let mut g = MatrixRng::seed_from(311);
        let w = g.gaussian(32, 96, 0.0, 1.0);
        let x = g.gaussian_col(96, 3, 0.0, 1.0);
        let y_fp = Linear::fp32(w.clone(), None).forward(&x);
        let yg =
            Linear::quantized(&w, 2, QuantMethod::Greedy, BiqConfig::default(), None).forward(&x);
        let ya = Linear::quantized(
            &w,
            2,
            QuantMethod::Alternating { iters: 10 },
            BiqConfig::default(),
            None,
        )
        .forward(&x);
        let eg = relative_l2(yg.as_slice(), y_fp.as_slice());
        let ea = relative_l2(ya.as_slice(), y_fp.as_slice());
        assert!(ea <= eg * 1.05, "alternating {ea} vs greedy {eg}");
    }

    #[test]
    fn parallel_variants_match_serial() {
        let mut g = MatrixRng::seed_from(312);
        let w = g.small_int_matrix(40, 60, 2);
        let x = g.small_int_col(60, 5, 2);
        let ys = Linear::fp32_with(w.clone(), None, false).forward(&x);
        let yp = Linear::fp32_with(w.clone(), None, true).forward(&x);
        assert_eq!(ys.as_slice(), yp.as_slice());
        let qs = Linear::quantized(&w, 1, QuantMethod::Greedy, BiqConfig::default(), None);
        let qp = Linear::quantized_parallel(&w, 1, QuantMethod::Greedy, BiqConfig::default(), None);
        assert_eq!(qs.forward(&x).as_slice(), qp.forward(&x).as_slice());
    }

    #[test]
    fn xnor_backend_runs_and_is_rough() {
        let mut g = MatrixRng::seed_from(313);
        let w = g.gaussian(32, 64, 0.0, 1.0);
        let x = g.gaussian_col(64, 2, 0.0, 1.0);
        let l = Linear::xnor(&w, 1, None);
        assert_eq!(l.backend_kind(), BackendKind::Xnor);
        let y = l.forward(&x);
        assert_eq!(y.shape(), (32, 2));
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn clones_share_the_executor_arena() {
        let mut g = MatrixRng::seed_from(314);
        let w = g.gaussian(8, 8, 0.0, 1.0);
        let x = g.gaussian_col(8, 1, 0.0, 1.0);
        let a = Linear::fp32(w, None);
        let b = a.clone();
        let _ = a.forward(&x);
        let _ = b.forward(&x);
        assert_eq!(a.executor().runs(), 2, "clone shares the executor");
    }

    #[test]
    fn from_plan_with_shared_executor_pools_arenas() {
        let mut g = MatrixRng::seed_from(315);
        let exec = SharedExecutor::new();
        let mk = |g: &mut MatrixRng, m: usize, n: usize, exec: &SharedExecutor| {
            let w = g.gaussian(m, n, 0.0, 1.0);
            let plan = PlanBuilder::new(m, n)
                .backend(BackendSpec::Biq { bits: 2, method: QuantMethod::Greedy })
                .build();
            Linear::from_plan(&plan, WeightSource::Dense(&w), None, exec.clone())
        };
        let l1 = mk(&mut g, 16, 24, &exec);
        let l2 = mk(&mut g, 24, 16, &exec);
        let x = g.gaussian_col(24, 2, 0.0, 1.0);
        let h = l1.forward(&x);
        let _ = l2.forward(&h);
        assert_eq!(exec.runs(), 2, "both layers ran through one executor");
    }

    #[test]
    fn linear_stays_send_and_sync() {
        // A serving layer moves models across threads; the executor handle
        // (Arc<Mutex>) and Arc'd compiled op must keep that possible.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Linear>();
    }

    #[test]
    #[should_panic(expected = "bias length")]
    fn bad_bias_rejected() {
        let w = Matrix::zeros(2, 2);
        let _ = Linear::fp32(w, Some(vec![0.0; 3]));
    }

    #[test]
    #[should_panic(expected = "input feature mismatch")]
    fn bad_input_rejected() {
        let w = Matrix::zeros(2, 4);
        let l = Linear::fp32(w, None);
        let _ = l.forward(&ColMatrix::zeros(3, 1));
    }
}
