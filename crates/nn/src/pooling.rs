//! Spatial pooling over [`crate::conv::FeatureMap`]s — the glue that turns
//! the Conv2d layer into a complete quantized-CNN inference path (the
//! XNOR-Net \[19\] / LQ-Nets \[17\] setting the paper's quantizer lineage
//! comes from).

use crate::conv::FeatureMap;

/// Max pooling with a square window and equal stride (no padding).
///
/// # Panics
/// Panics if the window does not fit the input.
pub fn max_pool2d(input: &FeatureMap, window: usize, stride: usize) -> FeatureMap {
    assert!(window > 0 && stride > 0, "window/stride must be positive");
    assert!(input.height >= window && input.width >= window, "pool window larger than input");
    let ho = (input.height - window) / stride + 1;
    let wo = (input.width - window) / stride + 1;
    let mut out = FeatureMap::zeros(input.channels, ho, wo);
    for c in 0..input.channels {
        for oy in 0..ho {
            for ox in 0..wo {
                let mut best = f32::NEG_INFINITY;
                for ky in 0..window {
                    for kx in 0..window {
                        best = best.max(input.get(c, oy * stride + ky, ox * stride + kx));
                    }
                }
                out.set(c, oy, ox, best);
            }
        }
    }
    out
}

/// Global average pooling: collapses each channel to its spatial mean,
/// producing the feature vector a classifier head consumes.
pub fn global_avg_pool(input: &FeatureMap) -> Vec<f32> {
    let area = (input.height * input.width) as f32;
    (0..input.channels)
        .map(|c| {
            let mut acc = 0.0f32;
            for y in 0..input.height {
                for x in 0..input.width {
                    acc += input.get(c, y, x);
                }
            }
            acc / area
        })
        .collect()
}

/// ReLU applied element-wise to a feature map, in place.
pub fn relu_inplace(input: &mut FeatureMap) {
    let (c, h, w) = (input.channels, input.height, input.width);
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                let v = input.get(ci, y, x);
                if v < 0.0 {
                    input.set(ci, y, x, 0.0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_reduces_and_selects_maxima() {
        // 1 channel, 4x4 ramp; 2x2/2 pooling picks each block's bottom-right.
        let fm = FeatureMap::from_vec(1, 4, 4, (0..16).map(|v| v as f32).collect());
        let p = max_pool2d(&fm, 2, 2);
        assert_eq!((p.channels, p.height, p.width), (1, 2, 2));
        assert_eq!(p.get(0, 0, 0), 5.0);
        assert_eq!(p.get(0, 0, 1), 7.0);
        assert_eq!(p.get(0, 1, 0), 13.0);
        assert_eq!(p.get(0, 1, 1), 15.0);
    }

    #[test]
    fn overlapping_pool_geometry() {
        let fm = FeatureMap::zeros(2, 5, 5);
        let p = max_pool2d(&fm, 3, 1);
        assert_eq!((p.height, p.width), (3, 3));
        assert_eq!(p.channels, 2);
    }

    #[test]
    fn global_avg_pool_is_channel_mean() {
        let mut fm = FeatureMap::zeros(2, 2, 2);
        for (i, v) in [1.0f32, 2.0, 3.0, 4.0].iter().enumerate() {
            fm.set(0, i / 2, i % 2, *v);
        }
        fm.set(1, 0, 0, 8.0);
        let g = global_avg_pool(&fm);
        assert_eq!(g, vec![2.5, 2.0]);
    }

    #[test]
    fn relu_clamps_only_negatives() {
        let mut fm = FeatureMap::from_vec(1, 1, 3, vec![-1.0, 0.0, 2.0]);
        relu_inplace(&mut fm);
        assert_eq!(fm.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "pool window larger")]
    fn oversized_window_rejected() {
        let fm = FeatureMap::zeros(1, 2, 2);
        let _ = max_pool2d(&fm, 3, 1);
    }
}
