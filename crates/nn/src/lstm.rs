//! LSTM cells and (bi-directional) layers — the paper's ASR workload
//! (Section II-C cites LAS: six bi-LSTM encoder layers with `2.5K × 5K`
//! weight matrices).
//!
//! Gate layout follows the usual packed convention: the input-to-hidden and
//! hidden-to-hidden matrices each stack the four gates `[i; f; g; o]`
//! vertically (`4h × in` and `4h × h`), so one step costs exactly two
//! few-batch GEMMs — the memory-bound shape BiQGEMM accelerates. Both
//! matrices run through a backend-pluggable [`Linear`].

use crate::activations::{sigmoid, tanh};
use crate::linear::Linear;
use crate::transformer::LayerBackend;
use biq_matrix::{ColMatrix, MatrixRng};
use biq_runtime::SharedExecutor;

/// One LSTM cell (`input_size → hidden`).
#[derive(Clone, Debug)]
pub struct LstmCell {
    /// Input projection `4h × input_size` (gates stacked `[i; f; g; o]`).
    w_ih: Linear,
    /// Recurrent projection `4h × h`.
    w_hh: Linear,
    hidden: usize,
    input_size: usize,
}

/// The running state of an LSTM: `(h, c)`, each `hidden × batch`.
#[derive(Clone, Debug)]
pub struct LstmState {
    /// Hidden state.
    pub h: ColMatrix,
    /// Cell state.
    pub c: ColMatrix,
}

impl LstmState {
    /// Zero state for `hidden × batch`.
    pub fn zeros(hidden: usize, batch: usize) -> Self {
        Self { h: ColMatrix::zeros(hidden, batch), c: ColMatrix::zeros(hidden, batch) }
    }
}

impl LstmCell {
    /// Builds a cell from its two packed projections.
    ///
    /// # Panics
    /// Panics unless both have `4h` output rows and `w_hh` is `4h × h`.
    pub fn new(w_ih: Linear, w_hh: Linear) -> Self {
        let four_h = w_ih.out_features();
        assert_eq!(w_hh.out_features(), four_h, "gate stack mismatch");
        assert_eq!(four_h % 4, 0, "output rows must be 4·hidden");
        let hidden = four_h / 4;
        assert_eq!(w_hh.in_features(), hidden, "w_hh must be 4h × h");
        Self { input_size: w_ih.in_features(), w_ih, w_hh, hidden }
    }

    /// Randomly initialised cell on `backend` (private executor).
    pub fn random(
        rng: &mut MatrixRng,
        input_size: usize,
        hidden: usize,
        backend: LayerBackend,
    ) -> Self {
        Self::random_shared(rng, input_size, hidden, backend, &SharedExecutor::new())
    }

    /// [`Self::random`] with an explicit executor: both gate projections —
    /// and, via the same handle, every time-step of the unrolled sequence —
    /// reuse one arena pool.
    pub fn random_shared(
        rng: &mut MatrixRng,
        input_size: usize,
        hidden: usize,
        backend: LayerBackend,
        exec: &SharedExecutor,
    ) -> Self {
        let std_i = (input_size as f32).powf(-0.5);
        let std_h = (hidden as f32).powf(-0.5);
        let w_ih = backend_linear(backend, rng, 4 * hidden, input_size, std_i, exec);
        let w_hh = backend_linear(backend, rng, 4 * hidden, hidden, std_h, exec);
        Self::new(w_ih, w_hh)
    }

    /// Hidden size `h`.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// The input projection (`4h × input_size`).
    pub fn w_ih(&self) -> &Linear {
        &self.w_ih
    }

    /// The recurrent projection (`4h × h`).
    pub fn w_hh(&self) -> &Linear {
        &self.w_hh
    }

    /// Input size.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// One time step: consumes `x_t` (`input × batch`) and the previous
    /// state, returns the next state.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn step(&self, x: &ColMatrix, state: &LstmState) -> LstmState {
        assert_eq!(x.rows(), self.input_size, "input feature mismatch");
        assert_eq!(state.h.rows(), self.hidden, "state size mismatch");
        assert_eq!(x.cols(), state.h.cols(), "batch mismatch");
        let batch = x.cols();
        let gx = self.w_ih.forward(x); // 4h × b
        let gh = self.w_hh.forward(&state.h); // 4h × b
        let h = self.hidden;
        let mut next = LstmState::zeros(h, batch);
        for col in 0..batch {
            let gxc = gx.col(col);
            let ghc = gh.col(col);
            let cprev = state.c.col(col);
            let hc = next.h.col_mut(col);
            // Gates: i = σ, f = σ, g = tanh, o = σ.
            for r in 0..h {
                let i = sigmoid(gxc[r] + ghc[r]);
                let f = sigmoid(gxc[h + r] + ghc[h + r]);
                let g = tanh(gxc[2 * h + r] + ghc[2 * h + r]);
                let o = sigmoid(gxc[3 * h + r] + ghc[3 * h + r]);
                let c = f * cprev[r] + i * g;
                hc[r] = o * tanh(c);
                // store c afterwards (separate borrow)
                // (written below)
                next.c.set(r, col, c);
            }
        }
        next
    }
}

fn backend_linear(
    backend: LayerBackend,
    rng: &mut MatrixRng,
    out: usize,
    inp: usize,
    std: f32,
    exec: &SharedExecutor,
) -> Linear {
    backend.linear_shared(rng.gaussian(out, inp, 0.0, std), None, exec)
}

/// A unidirectional LSTM layer unrolled over a sequence.
#[derive(Clone, Debug)]
pub struct Lstm {
    cell: LstmCell,
}

impl Lstm {
    /// Wraps a cell.
    pub fn new(cell: LstmCell) -> Self {
        Self { cell }
    }

    /// Randomly initialised layer.
    pub fn random(
        rng: &mut MatrixRng,
        input_size: usize,
        hidden: usize,
        backend: LayerBackend,
    ) -> Self {
        Self::new(LstmCell::random(rng, input_size, hidden, backend))
    }

    /// Randomly initialised layer on a shared executor.
    pub fn random_shared(
        rng: &mut MatrixRng,
        input_size: usize,
        hidden: usize,
        backend: LayerBackend,
        exec: &SharedExecutor,
    ) -> Self {
        Self::new(LstmCell::random_shared(rng, input_size, hidden, backend, exec))
    }

    /// The cell.
    pub fn cell(&self) -> &LstmCell {
        &self.cell
    }

    /// Runs the sequence (`seq` of `input × batch` frames), returning all
    /// hidden states (`seq` of `hidden × batch`).
    pub fn forward(&self, seq: &[ColMatrix]) -> Vec<ColMatrix> {
        let batch = seq.first().map_or(0, |x| x.cols());
        let mut state = LstmState::zeros(self.cell.hidden(), batch);
        let mut out = Vec::with_capacity(seq.len());
        for x in seq {
            state = self.cell.step(x, &state);
            out.push(state.h.clone());
        }
        out
    }
}

/// A bi-directional LSTM layer: forward and backward passes concatenated
/// along the feature axis (output size `2h`), the LAS encoder building
/// block.
#[derive(Clone, Debug)]
pub struct BiLstm {
    fwd: Lstm,
    bwd: Lstm,
}

impl BiLstm {
    /// Randomly initialised bi-LSTM. Both directions share one executor,
    /// so the backward pass reuses the arenas the forward pass warmed.
    pub fn random(
        rng: &mut MatrixRng,
        input_size: usize,
        hidden: usize,
        backend: LayerBackend,
    ) -> Self {
        let exec = SharedExecutor::new();
        Self {
            fwd: Lstm::random_shared(rng, input_size, hidden, backend, &exec),
            bwd: Lstm::random_shared(rng, input_size, hidden, backend, &exec),
        }
    }

    /// Output feature size (`2h`).
    pub fn output_size(&self) -> usize {
        2 * self.fwd.cell().hidden()
    }

    /// Runs both directions and concatenates per time step.
    pub fn forward(&self, seq: &[ColMatrix]) -> Vec<ColMatrix> {
        let f = self.fwd.forward(seq);
        let rev: Vec<ColMatrix> = seq.iter().rev().cloned().collect();
        let mut b = self.bwd.forward(&rev);
        b.reverse();
        f.into_iter()
            .zip(b)
            .map(|(hf, hb)| {
                let (h, batch) = hf.shape();
                ColMatrix::from_fn(2 * h, batch, |i, j| {
                    if i < h {
                        hf.get(i, j)
                    } else {
                        hb.get(i - h, j)
                    }
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::QuantMethod;
    use biq_quant::error_metrics::cosine_similarity;
    use biqgemm_core::BiqConfig;

    const FP: LayerBackend = LayerBackend::Fp32 { parallel: false };

    #[test]
    fn state_shapes_propagate() {
        let mut g = MatrixRng::seed_from(340);
        let cell = LstmCell::random(&mut g, 10, 8, FP);
        let x = g.gaussian_col(10, 3, 0.0, 1.0);
        let s = cell.step(&x, &LstmState::zeros(8, 3));
        assert_eq!(s.h.shape(), (8, 3));
        assert_eq!(s.c.shape(), (8, 3));
    }

    #[test]
    fn hidden_state_is_bounded_by_one() {
        // |h| = |o·tanh(c)| ≤ 1 always.
        let mut g = MatrixRng::seed_from(341);
        let cell = LstmCell::random(&mut g, 6, 5, FP);
        let mut state = LstmState::zeros(5, 2);
        for _ in 0..20 {
            let x = g.gaussian_col(6, 2, 0.0, 3.0);
            state = cell.step(&x, &state);
            assert!(state.h.as_slice().iter().all(|&v| v.abs() <= 1.0 + 1e-6));
        }
    }

    #[test]
    fn forget_gate_zero_input_decays_cell() {
        // With zero input and zero hidden, gates are σ(0)=0.5, g=tanh(0)=0,
        // so c' = 0.5·c every step.
        let mut g = MatrixRng::seed_from(342);
        let cell = LstmCell::random(&mut g, 4, 3, FP);
        let x = ColMatrix::zeros(4, 1);
        let mut state = LstmState::zeros(3, 1);
        state.c.set(0, 0, 1.0);
        // After one step from h=0, c0' = 0.5·1 + 0.5·0 = 0.5 exactly? Only if
        // biases are zero — Linear::random has no bias here, so gx = gh = 0.
        let next = cell.step(&x, &state);
        assert!((next.c.get(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn sequence_unroll_length() {
        let mut g = MatrixRng::seed_from(343);
        let lstm = Lstm::random(&mut g, 6, 4, FP);
        let seq: Vec<ColMatrix> = (0..7).map(|_| g.gaussian_col(6, 2, 0.0, 1.0)).collect();
        let out = lstm.forward(&seq);
        assert_eq!(out.len(), 7);
        assert!(out.iter().all(|h| h.shape() == (4, 2)));
    }

    #[test]
    fn bilstm_concatenates_directions() {
        let mut g = MatrixRng::seed_from(344);
        let bi = BiLstm::random(&mut g, 6, 4, FP);
        assert_eq!(bi.output_size(), 8);
        let seq: Vec<ColMatrix> = (0..5).map(|_| g.gaussian_col(6, 2, 0.0, 1.0)).collect();
        let out = bi.forward(&seq);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|h| h.shape() == (8, 2)));
        // The forward half of step 0 equals a pure forward LSTM's step 0.
        let f = bi.fwd.forward(&seq);
        for i in 0..4 {
            assert_eq!(out[0].get(i, 0), f[0].get(i, 0));
        }
    }

    #[test]
    fn quantized_lstm_tracks_fp32() {
        let x_seq: Vec<ColMatrix> = {
            let mut g = MatrixRng::seed_from(345);
            (0..4).map(|_| g.gaussian_col(16, 2, 0.0, 1.0)).collect()
        };
        let mk = |backend| {
            let mut g = MatrixRng::seed_from(888);
            Lstm::random(&mut g, 16, 12, backend)
        };
        let fp = mk(FP);
        let q = mk(LayerBackend::Biq {
            bits: 3,
            method: QuantMethod::Greedy,
            cfg: BiqConfig::default(),
            parallel: false,
        });
        let yf = fp.forward(&x_seq);
        let yq = q.forward(&x_seq);
        let cs = cosine_similarity(yq[3].as_slice(), yf[3].as_slice());
        assert!(cs > 0.9, "cosine similarity {cs}");
    }

    #[test]
    #[should_panic(expected = "w_hh must be 4h × h")]
    fn mismatched_recurrent_rejected() {
        let mut g = MatrixRng::seed_from(346);
        let w_ih = Linear::fp32(g.gaussian(16, 6, 0.0, 1.0), None);
        let w_hh = Linear::fp32(g.gaussian(16, 5, 0.0, 1.0), None);
        let _ = LstmCell::new(w_ih, w_hh);
    }
}
