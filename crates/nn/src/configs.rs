//! Named model configurations from Section II-C of the paper — the matrix
//! shapes that motivate BiQGEMM's target regime (few-batch multiplications
//! against multi-thousand-dimensional weights).

/// Shape summary of a Transformer-family model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Hidden (model) size `n`.
    pub d_model: usize,
    /// Feed-forward inner size (4·n for the classic architecture).
    pub d_ff: usize,
    /// Encoder layers.
    pub encoder_layers: usize,
    /// Decoder layers (0 for encoder-only models like BERT).
    pub decoder_layers: usize,
    /// Attention heads.
    pub heads: usize,
}

impl TransformerConfig {
    /// Transformer *base* (paper: n = 512, 6 encoder layers).
    pub const BASE: Self =
        Self { d_model: 512, d_ff: 2048, encoder_layers: 6, decoder_layers: 6, heads: 8 };

    /// Transformer *big* (paper: n = 1024).
    pub const BIG: Self =
        Self { d_model: 1024, d_ff: 4096, encoder_layers: 6, decoder_layers: 6, heads: 16 };

    /// BERT-large (paper: 24 encoder layers, hidden 1024).
    pub const BERT_LARGE: Self =
        Self { d_model: 1024, d_ff: 4096, encoder_layers: 24, decoder_layers: 0, heads: 16 };

    /// Weight-matrix shapes of one encoder layer: four `(n × n)` attention
    /// projections plus `(4n × n)` and `(n × 4n)` feed-forward matrices.
    pub fn encoder_layer_matrices(&self) -> Vec<(usize, usize)> {
        vec![
            (self.d_model, self.d_model),
            (self.d_model, self.d_model),
            (self.d_model, self.d_model),
            (self.d_model, self.d_model),
            (self.d_ff, self.d_model),
            (self.d_model, self.d_ff),
        ]
    }

    /// Total weight parameters of the encoder stack.
    pub fn encoder_params(&self) -> usize {
        self.encoder_layers
            * self.encoder_layer_matrices().iter().map(|&(r, c)| r * c).sum::<usize>()
    }
}

/// The biggest matrix in ALBERT xx-large (paper: `4K × 16K`, 256 MB fp32).
pub const ALBERT_XXLARGE_FF: (usize, usize) = (4096, 16384);

/// LAS speech recogniser shapes (paper: six encoder bi-LSTM layers with
/// `2.5K × 5K` matrices; two decoder layers with `1.2K × 1.2K`).
#[derive(Clone, Copy, Debug)]
pub struct LasConfig {
    /// Encoder bi-LSTM layers.
    pub encoder_layers: usize,
    /// Encoder weight shape (rows 4·hidden stacked gates? — the paper quotes
    /// the raw matrix as `2.5K × 5K`).
    pub encoder_matrix: (usize, usize),
    /// Decoder layers.
    pub decoder_layers: usize,
    /// Decoder weight shape.
    pub decoder_matrix: (usize, usize),
}

/// LAS per the paper.
pub const LAS: LasConfig = LasConfig {
    encoder_layers: 6,
    encoder_matrix: (2560, 5120),
    decoder_layers: 2,
    decoder_matrix: (1280, 1280),
};

/// Fp32 megabytes (decimal) of a matrix of this shape.
pub fn matrix_fp32_mb(shape: (usize, usize)) -> f64 {
    shape.0 as f64 * shape.1 as f64 * 4.0 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_and_big_match_paper() {
        assert_eq!(TransformerConfig::BASE.d_model, 512);
        assert_eq!(TransformerConfig::BASE.encoder_layers, 6);
        assert_eq!(TransformerConfig::BIG.d_model, 1024);
        assert_eq!(TransformerConfig::BERT_LARGE.encoder_layers, 24);
        assert_eq!(TransformerConfig::BERT_LARGE.decoder_layers, 0);
    }

    #[test]
    fn encoder_layer_has_six_matrices() {
        let mats = TransformerConfig::BASE.encoder_layer_matrices();
        assert_eq!(mats.len(), 6);
        assert_eq!(mats[4], (2048, 512));
        assert_eq!(mats[5], (512, 2048));
    }

    #[test]
    fn albert_matrix_is_256mb_fp32() {
        // Paper: "(4K×16K), which requires 256 MB (with FP32)".
        let mb = matrix_fp32_mb(ALBERT_XXLARGE_FF);
        assert!((mb - 268.435456).abs() < 1e-6); // 4096·16384·4 bytes
    }

    #[test]
    fn encoder_params_formula() {
        let c = TransformerConfig::BASE;
        let per_layer = 4 * 512 * 512 + 2 * 512 * 2048;
        assert_eq!(c.encoder_params(), 6 * per_layer);
    }

    #[test]
    fn las_shapes() {
        assert_eq!(LAS.encoder_matrix, (2560, 5120));
        assert_eq!(LAS.decoder_matrix, (1280, 1280));
    }
}
