//! Token embeddings and sinusoidal positional encodings — the non-GEMM
//! front end of the paper's NMT workload.
//!
//! Embedding lookup is a gather, not a matrix multiply, so it stays fp32;
//! the *output projection* (embedding transposed, `vocab × d`) is a real
//! few-batch GEMM and is quantizable like any [`crate::linear::Linear`].

use biq_matrix::{ColMatrix, Matrix, MatrixRng};

/// A `vocab × d_model` embedding table.
#[derive(Clone, Debug)]
pub struct Embedding {
    table: Matrix,
}

impl Embedding {
    /// Wraps an existing table.
    pub fn new(table: Matrix) -> Self {
        Self { table }
    }

    /// Randomly initialised table (`N(0, d^{-1/2})`, the Transformer init).
    pub fn random(rng: &mut MatrixRng, vocab: usize, d_model: usize) -> Self {
        Self { table: rng.gaussian(vocab, d_model, 0.0, (d_model as f32).powf(-0.5)) }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.rows()
    }

    /// Embedding width.
    pub fn d_model(&self) -> usize {
        self.table.cols()
    }

    /// The raw table (e.g. to tie the output projection).
    pub fn table(&self) -> &Matrix {
        &self.table
    }

    /// Embeds a token sequence into a `d_model × len` activation matrix.
    ///
    /// # Panics
    /// Panics if any token id is out of vocabulary.
    pub fn forward(&self, tokens: &[usize]) -> ColMatrix {
        let d = self.d_model();
        let mut out = ColMatrix::zeros(d, tokens.len());
        for (j, &tok) in tokens.iter().enumerate() {
            assert!(tok < self.vocab(), "token {tok} out of vocabulary {}", self.vocab());
            let row = self.table.row(tok);
            out.col_mut(j).copy_from_slice(row);
        }
        out
    }
}

/// Adds the standard sinusoidal positional encoding in place:
/// `PE(pos, 2i) = sin(pos / 10000^{2i/d})`, `PE(pos, 2i+1) = cos(…)`.
pub fn add_positional_encoding(x: &mut ColMatrix, start_pos: usize) {
    let d = x.rows();
    for j in 0..x.cols() {
        let pos = (start_pos + j) as f32;
        let col = x.col_mut(j);
        for (i, c) in col.iter_mut().enumerate() {
            let pair = (i / 2) as f32;
            let freq = 1.0f32 / 10000f32.powf(2.0 * pair / d as f32);
            let angle = pos * freq;
            *c += if i % 2 == 0 { angle.sin() } else { angle.cos() };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embeds_tokens_to_table_rows() {
        let table = Matrix::from_fn(4, 3, |i, j| (i * 10 + j) as f32);
        let e = Embedding::new(table);
        let x = e.forward(&[2, 0, 2]);
        assert_eq!(x.shape(), (3, 3));
        assert_eq!(x.col(0), &[20.0, 21.0, 22.0]);
        assert_eq!(x.col(1), &[0.0, 1.0, 2.0]);
        assert_eq!(x.col(0), x.col(2));
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_token_panics() {
        let e = Embedding::new(Matrix::zeros(4, 2));
        let _ = e.forward(&[4]);
    }

    #[test]
    fn positional_encoding_position_zero_is_sin0_cos0() {
        let mut x = ColMatrix::zeros(6, 1);
        add_positional_encoding(&mut x, 0);
        // pos 0: sin(0) = 0 on even dims, cos(0) = 1 on odd dims.
        for i in 0..6 {
            let expected = if i % 2 == 0 { 0.0 } else { 1.0 };
            assert!((x.get(i, 0) - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn positional_encoding_is_shift_consistent() {
        // Encoding column j with start 0 equals column 0 with start j.
        let d = 8;
        let mut a = ColMatrix::zeros(d, 4);
        add_positional_encoding(&mut a, 0);
        for j in 0..4 {
            let mut b = ColMatrix::zeros(d, 1);
            add_positional_encoding(&mut b, j);
            for i in 0..d {
                assert!((a.get(i, j) - b.get(i, 0)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn positional_values_bounded() {
        let mut x = ColMatrix::zeros(16, 32);
        add_positional_encoding(&mut x, 100);
        assert!(x.as_slice().iter().all(|&v| v.abs() <= 1.0 + 1e-6));
    }

    #[test]
    fn random_embedding_shapes() {
        let mut g = MatrixRng::seed_from(42);
        let e = Embedding::random(&mut g, 100, 16);
        assert_eq!(e.vocab(), 100);
        assert_eq!(e.d_model(), 16);
        assert_eq!(e.forward(&[7, 8]).shape(), (16, 2));
    }
}
