//! Neural-network substrate exercising BiQGEMM on the workloads the paper's
//! introduction motivates (Section II-C): Transformer attention/feed-forward
//! blocks and (bi-directional) LSTM speech models.
//!
//! Activations flow as **column-major `features × batch`** matrices
//! ([`biq_matrix::ColMatrix`]): a batch column is one token (Transformers) or
//! one time-step sample (LSTMs), matching the paper's observation that the
//! sub-words of a sequence are processed "in a group manner" — i.e. sequence
//! length plays the role of GEMM batch size.
//!
//! The only compute-bearing primitive is [`linear::Linear`], a compiled
//! runtime op with a pluggable kernel family: full-precision blocked GEMM,
//! BiQGEMM over binary-coding quantized weights, XNOR-popcount, or INT8.
//! Every composite layer (attention, Transformer encoder/decoder, LSTM) is
//! backend-agnostic, so an entire model can be flipped from fp32 to
//! quantized inference with one constructor argument — exactly the
//! deployment story BiQGEMM targets.
//!
//! For concurrent serving traffic, a model's layers route through the
//! `biq_serve` batching layer instead of their private executors:
//! [`linear::Linear::compiled_op`] hands the layer's packed weights to a
//! `ModelRegistry` (`register_linear`), and the server packs concurrent
//! single-column requests so one LUT build serves a whole bucket.

pub mod activations;
pub mod attention;
pub mod configs;
pub mod conv;
pub mod embedding;
pub mod layernorm;
pub mod linear;
pub mod lstm;
pub mod model;
pub mod pooling;
pub mod seq2seq;
pub mod transformer;

pub use linear::{BackendKind, Linear, QuantMethod};
pub use model::{CompiledModel, ModelBuilder};
