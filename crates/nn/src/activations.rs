//! Element-wise activations and column softmax.
//!
//! The paper keeps activations in floating point throughout (weight-only
//! quantization), so these run on plain `f32` — and layer-norm/softmax are
//! precisely the operations it cites as demanding float math in INT8
//! pipelines.

use biq_matrix::ColMatrix;

/// ReLU.
#[inline]
pub fn relu(v: f32) -> f32 {
    v.max(0.0)
}

/// Numerically-stable logistic sigmoid.
#[inline]
pub fn sigmoid(v: f32) -> f32 {
    if v >= 0.0 {
        1.0 / (1.0 + (-v).exp())
    } else {
        let e = v.exp();
        e / (1.0 + e)
    }
}

/// Hyperbolic tangent.
#[inline]
pub fn tanh(v: f32) -> f32 {
    v.tanh()
}

/// GELU, tanh approximation (the Transformer/BERT feed-forward activation).
#[inline]
pub fn gelu(v: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    0.5 * v * (1.0 + (C * (v + 0.044715 * v * v * v)).tanh())
}

/// Applies `f` to every element in place.
pub fn map_inplace(x: &mut ColMatrix, f: impl Fn(f32) -> f32) {
    for v in x.as_mut_slice() {
        *v = f(*v);
    }
}

/// Numerically-stable softmax over a slice, in place.
pub fn softmax_inplace(v: &mut [f32]) {
    if v.is_empty() {
        return;
    }
    let max = v.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
    let mut sum = 0.0f32;
    for x in v.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    let inv = 1.0 / sum;
    for x in v.iter_mut() {
        *x *= inv;
    }
}

/// Softmax over each *column* of a column-major matrix (per-token
/// distribution over the feature axis).
pub fn softmax_columns(x: &mut ColMatrix) {
    for j in 0..x.cols() {
        softmax_inplace(x.col_mut(j));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(relu(-1.0), 0.0);
        assert_eq!(relu(2.5), 2.5);
    }

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        for v in [-30.0f32, -2.0, 0.3, 10.0, 50.0] {
            let s = sigmoid(v);
            assert!((0.0..=1.0).contains(&s));
            assert!((sigmoid(-v) - (1.0 - s)).abs() < 1e-6);
        }
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!(sigmoid(-1e4).is_finite());
        assert!(sigmoid(1e4).is_finite());
        assert!(sigmoid(-1e4) < 1e-30);
        assert!((sigmoid(1e4) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gelu_known_values() {
        assert_eq!(gelu(0.0), 0.0);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!(gelu(-5.0).abs() < 1e-3);
        assert!((gelu(5.0) - 5.0).abs() < 1e-3);
    }

    #[test]
    fn softmax_sums_to_one_and_is_shift_invariant() {
        let mut a = vec![1.0f32, 2.0, 3.0];
        let mut b = vec![101.0f32, 102.0, 103.0];
        softmax_inplace(&mut a);
        softmax_inplace(&mut b);
        assert!((a.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
        assert!(a[2] > a[1] && a[1] > a[0]);
    }

    #[test]
    fn softmax_handles_large_inputs() {
        let mut v = vec![1000.0f32, 1000.0];
        softmax_inplace(&mut v);
        assert!((v[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_empty_is_noop() {
        let mut v: Vec<f32> = vec![];
        softmax_inplace(&mut v);
    }

    #[test]
    fn softmax_columns_normalises_each_column() {
        let mut x = ColMatrix::from_fn(3, 2, |i, j| (i + j) as f32);
        softmax_columns(&mut x);
        for j in 0..2 {
            let s: f32 = x.col(j).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn map_inplace_applies_everywhere() {
        let mut x = ColMatrix::from_fn(2, 2, |i, j| (i as f32) - (j as f32));
        map_inplace(&mut x, relu);
        assert!(x.as_slice().iter().all(|&v| v >= 0.0));
    }
}
