//! Transformer encoder / decoder layers (Section II-C of the paper:
//! "an encoder layer includes one attention block structured as four (n × n)
//! weight matrices and a feed-forward block with (n × 4n) and (4n × n)
//! matrices").
//!
//! Post-norm residual arrangement as in the original Transformer:
//! `x ← LN(x + Attn(x))`, `x ← LN(x + FF(x))` with `FF = W₂·gelu(W₁·x)`.

use crate::activations::{gelu, map_inplace};
use crate::attention::MultiHeadAttention;
use crate::layernorm::LayerNorm;
use crate::linear::{Linear, QuantMethod};
use biq_matrix::{ColMatrix, Matrix, MatrixRng};
use biq_runtime::{BackendSpec, PlanBuilder, SharedExecutor, Threading, WeightSource};
use biqgemm_core::BiqConfig;

/// How the weight matrices of a generated layer are executed.
#[derive(Clone, Copy, Debug)]
pub enum LayerBackend {
    /// Dense fp32 (blocked GEMM); `parallel` picks the rayon driver.
    Fp32 {
        /// Use the multi-threaded kernel.
        parallel: bool,
    },
    /// BiQGEMM over `bits`-bit binary-coding quantized weights.
    Biq {
        /// Quantization bits β_w.
        bits: usize,
        /// Quantizer flavour.
        method: QuantMethod,
        /// Engine configuration.
        cfg: BiqConfig,
        /// Use the multi-threaded kernel.
        parallel: bool,
    },
    /// XNOR-popcount with `bits`-bit weights (activations binarised 1-bit).
    Xnor {
        /// Quantization bits β_w.
        bits: usize,
    },
    /// INT8 fixed-point pipeline (dynamic activation quantization).
    Int8,
}

impl LayerBackend {
    /// Builds a [`Linear`] for `weight` on this backend, routed through
    /// `exec` — the per-model plan-caching hook: every layer built with the
    /// same handle shares one executor, so LUT arenas and pack panels are
    /// reused across layers and (for recurrent models) time-steps.
    pub fn linear_shared(
        &self,
        weight: Matrix,
        bias: Option<Vec<f32>>,
        exec: &SharedExecutor,
    ) -> Linear {
        let (m, n) = weight.shape();
        let threading = |parallel: bool| {
            if parallel {
                Threading::Parallel
            } else {
                Threading::Serial
            }
        };
        let plan = match *self {
            LayerBackend::Fp32 { parallel } => PlanBuilder::new(m, n)
                .backend(BackendSpec::Fp32Blocked)
                .threading(threading(parallel))
                .build(),
            LayerBackend::Biq { bits, method, cfg, parallel } => PlanBuilder::new(m, n)
                .backend(BackendSpec::Biq { bits, method })
                .config(cfg)
                .threading(threading(parallel))
                .build(),
            LayerBackend::Xnor { bits } => {
                PlanBuilder::new(m, n).backend(BackendSpec::Xnor { bits }).build()
            }
            LayerBackend::Int8 => PlanBuilder::new(m, n).backend(BackendSpec::Int8).build(),
        };
        Linear::from_plan(&plan, WeightSource::Dense(&weight), bias, exec.clone())
    }

    /// Builds a [`Linear`] on a private executor (no arena sharing).
    pub fn linear(&self, weight: Matrix, bias: Option<Vec<f32>>) -> Linear {
        self.linear_shared(weight, bias, &SharedExecutor::new())
    }
}

/// One Transformer encoder layer.
#[derive(Clone, Debug)]
pub struct EncoderLayer {
    attn: MultiHeadAttention,
    ff1: Linear,
    ff2: Linear,
    ln1: LayerNorm,
    ln2: LayerNorm,
}

impl EncoderLayer {
    /// Assembles a layer from parts.
    ///
    /// # Panics
    /// Panics on dimension mismatches between the blocks.
    pub fn new(
        attn: MultiHeadAttention,
        ff1: Linear,
        ff2: Linear,
        ln1: LayerNorm,
        ln2: LayerNorm,
    ) -> Self {
        let d = attn.d_model();
        assert_eq!(ff1.in_features(), d, "ff1 input must be d_model");
        assert_eq!(ff2.out_features(), d, "ff2 output must be d_model");
        assert_eq!(ff1.out_features(), ff2.in_features(), "ff inner dim mismatch");
        assert_eq!(ln1.dim(), d, "ln1 dim");
        assert_eq!(ln2.dim(), d, "ln2 dim");
        Self { attn, ff1, ff2, ln1, ln2 }
    }

    /// Randomly initialised layer (`d_model`, `d_ff`, `heads`) on the given
    /// backend — the harness's way of instantiating paper-sized workloads.
    /// The layer's six projections share one private executor.
    pub fn random(
        rng: &mut MatrixRng,
        d_model: usize,
        d_ff: usize,
        heads: usize,
        backend: LayerBackend,
    ) -> Self {
        Self::random_shared(rng, d_model, d_ff, heads, backend, &SharedExecutor::new())
    }

    /// [`Self::random`] with an explicit executor, so a whole model stack
    /// pools its arenas.
    pub fn random_shared(
        rng: &mut MatrixRng,
        d_model: usize,
        d_ff: usize,
        heads: usize,
        backend: LayerBackend,
        exec: &SharedExecutor,
    ) -> Self {
        let std_a = (d_model as f32).powf(-0.5);
        let std_f = (d_ff as f32).powf(-0.5);
        let exec = exec.clone();
        let proj = |rng: &mut MatrixRng, b: &LayerBackend, e: &SharedExecutor| {
            b.linear_shared(rng.gaussian(d_model, d_model, 0.0, std_a), None, e)
        };
        let attn = MultiHeadAttention::new(
            proj(rng, &backend, &exec),
            proj(rng, &backend, &exec),
            proj(rng, &backend, &exec),
            proj(rng, &backend, &exec),
            heads,
        );
        let ff1 = backend.linear_shared(
            rng.gaussian(d_ff, d_model, 0.0, std_a),
            Some(vec![0.0; d_ff]),
            &exec,
        );
        let ff2 = backend.linear_shared(
            rng.gaussian(d_model, d_ff, 0.0, std_f),
            Some(vec![0.0; d_model]),
            &exec,
        );
        Self::new(attn, ff1, ff2, LayerNorm::new(d_model), LayerNorm::new(d_model))
    }

    /// Model width.
    pub fn d_model(&self) -> usize {
        self.attn.d_model()
    }

    /// The attention block.
    pub fn attn(&self) -> &MultiHeadAttention {
        &self.attn
    }

    /// The first feed-forward projection (`d_ff × d_model`).
    pub fn ff1(&self) -> &Linear {
        &self.ff1
    }

    /// The second feed-forward projection (`d_model × d_ff`).
    pub fn ff2(&self) -> &Linear {
        &self.ff2
    }

    /// The post-attention layer norm.
    pub fn ln1(&self) -> &LayerNorm {
        &self.ln1
    }

    /// The post-feed-forward layer norm.
    pub fn ln2(&self) -> &LayerNorm {
        &self.ln2
    }

    /// Forward over a `d_model × seq` activation matrix.
    pub fn forward(&self, x: &ColMatrix) -> ColMatrix {
        // x ← LN(x + Attn(x))
        let mut h = self.attn.forward(x);
        add_inplace(&mut h, x);
        self.ln1.forward_inplace(&mut h);
        // x ← LN(x + FF(x))
        let mut f = self.ff1.forward(&h);
        map_inplace(&mut f, gelu);
        let mut f = self.ff2.forward(&f);
        add_inplace(&mut f, &h);
        self.ln2.forward_inplace(&mut f);
        f
    }
}

/// One Transformer decoder layer (self-attention + cross-attention + FF).
#[derive(Clone, Debug)]
pub struct DecoderLayer {
    self_attn: MultiHeadAttention,
    cross_attn: MultiHeadAttention,
    ff1: Linear,
    ff2: Linear,
    ln1: LayerNorm,
    ln2: LayerNorm,
    ln3: LayerNorm,
}

impl DecoderLayer {
    /// Assembles a decoder layer from parts.
    ///
    /// # Panics
    /// Panics on dimension mismatches between the blocks.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        self_attn: MultiHeadAttention,
        cross_attn: MultiHeadAttention,
        ff1: Linear,
        ff2: Linear,
        ln1: LayerNorm,
        ln2: LayerNorm,
        ln3: LayerNorm,
    ) -> Self {
        let d = self_attn.d_model();
        assert_eq!(cross_attn.d_model(), d, "cross-attention width mismatch");
        assert_eq!(ff1.in_features(), d, "ff1 input must be d_model");
        assert_eq!(ff2.out_features(), d, "ff2 output must be d_model");
        assert_eq!(ff1.out_features(), ff2.in_features(), "ff inner dim mismatch");
        assert_eq!(ln1.dim(), d, "ln1 dim");
        assert_eq!(ln2.dim(), d, "ln2 dim");
        assert_eq!(ln3.dim(), d, "ln3 dim");
        Self { self_attn, cross_attn, ff1, ff2, ln1, ln2, ln3 }
    }

    /// The self-attention block.
    pub fn self_attn(&self) -> &MultiHeadAttention {
        &self.self_attn
    }

    /// The cross-attention block.
    pub fn cross_attn(&self) -> &MultiHeadAttention {
        &self.cross_attn
    }

    /// The first feed-forward projection.
    pub fn ff1(&self) -> &Linear {
        &self.ff1
    }

    /// The second feed-forward projection.
    pub fn ff2(&self) -> &Linear {
        &self.ff2
    }

    /// The post-self-attention layer norm.
    pub fn ln1(&self) -> &LayerNorm {
        &self.ln1
    }

    /// The post-cross-attention layer norm.
    pub fn ln2(&self) -> &LayerNorm {
        &self.ln2
    }

    /// The post-feed-forward layer norm.
    pub fn ln3(&self) -> &LayerNorm {
        &self.ln3
    }

    /// Randomly initialised decoder layer (private executor).
    pub fn random(
        rng: &mut MatrixRng,
        d_model: usize,
        d_ff: usize,
        heads: usize,
        backend: LayerBackend,
    ) -> Self {
        Self::random_shared(rng, d_model, d_ff, heads, backend, &SharedExecutor::new())
    }

    /// [`Self::random`] with an explicit executor for model-level arena
    /// pooling.
    pub fn random_shared(
        rng: &mut MatrixRng,
        d_model: usize,
        d_ff: usize,
        heads: usize,
        backend: LayerBackend,
        exec: &SharedExecutor,
    ) -> Self {
        let std_a = (d_model as f32).powf(-0.5);
        let std_f = (d_ff as f32).powf(-0.5);
        let exec = exec.clone();
        let proj = |rng: &mut MatrixRng| {
            backend.linear_shared(rng.gaussian(d_model, d_model, 0.0, std_a), None, &exec)
        };
        let self_attn = MultiHeadAttention::new(proj(rng), proj(rng), proj(rng), proj(rng), heads);
        let cross_attn = MultiHeadAttention::new(proj(rng), proj(rng), proj(rng), proj(rng), heads);
        let ff1 = backend.linear_shared(
            rng.gaussian(d_ff, d_model, 0.0, std_a),
            Some(vec![0.0; d_ff]),
            &exec,
        );
        let ff2 = backend.linear_shared(
            rng.gaussian(d_model, d_ff, 0.0, std_f),
            Some(vec![0.0; d_model]),
            &exec,
        );
        Self {
            self_attn,
            cross_attn,
            ff1,
            ff2,
            ln1: LayerNorm::new(d_model),
            ln2: LayerNorm::new(d_model),
            ln3: LayerNorm::new(d_model),
        }
    }

    /// Forward: `x` is the decoder stream (`d × s_dec`), `memory` the encoder
    /// output (`d × s_enc`).
    pub fn forward(&self, x: &ColMatrix, memory: &ColMatrix) -> ColMatrix {
        let mut h = self.self_attn.forward(x);
        add_inplace(&mut h, x);
        self.ln1.forward_inplace(&mut h);
        let mut c = self.cross_attn.attend(&h, memory);
        add_inplace(&mut c, &h);
        self.ln2.forward_inplace(&mut c);
        let mut f = self.ff1.forward(&c);
        map_inplace(&mut f, gelu);
        let mut f = self.ff2.forward(&f);
        add_inplace(&mut f, &c);
        self.ln3.forward_inplace(&mut f);
        f
    }
}

/// A stack of encoder layers.
#[derive(Clone, Debug)]
pub struct Encoder {
    layers: Vec<EncoderLayer>,
}

impl Encoder {
    /// Randomly initialised `num_layers`-deep encoder. One executor spans
    /// the whole stack: every layer's forward pass reuses the same LUT
    /// arenas (the per-model plan cache).
    pub fn random(
        rng: &mut MatrixRng,
        num_layers: usize,
        d_model: usize,
        d_ff: usize,
        heads: usize,
        backend: LayerBackend,
    ) -> Self {
        Self::random_shared(rng, num_layers, d_model, d_ff, heads, backend, &SharedExecutor::new())
    }

    /// [`Self::random`] on an explicit executor, so a larger model (e.g. a
    /// seq2seq with a decoder stack) can pool arenas across *all* its parts.
    pub fn random_shared(
        rng: &mut MatrixRng,
        num_layers: usize,
        d_model: usize,
        d_ff: usize,
        heads: usize,
        backend: LayerBackend,
        exec: &SharedExecutor,
    ) -> Self {
        Self {
            layers: (0..num_layers)
                .map(|_| EncoderLayer::random_shared(rng, d_model, d_ff, heads, backend, exec))
                .collect(),
        }
    }

    /// Wraps an existing layer stack.
    ///
    /// # Panics
    /// Panics when the stack is empty or widths disagree.
    pub fn from_layers(layers: Vec<EncoderLayer>) -> Self {
        assert!(!layers.is_empty(), "encoder needs at least one layer");
        let d = layers[0].d_model();
        assert!(layers.iter().all(|l| l.d_model() == d), "encoder width mismatch");
        Self { layers }
    }

    /// The layer stack.
    pub fn layers(&self) -> &[EncoderLayer] {
        &self.layers
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Runs all layers.
    pub fn forward(&self, x: &ColMatrix) -> ColMatrix {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.forward(&h);
        }
        h
    }
}

fn add_inplace(a: &mut ColMatrix, b: &ColMatrix) {
    assert_eq!(a.shape(), b.shape(), "residual shape mismatch");
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += *y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biq_quant::error_metrics::cosine_similarity;

    #[test]
    fn encoder_layer_preserves_shape_and_finiteness() {
        let mut g = MatrixRng::seed_from(330);
        let layer =
            EncoderLayer::random(&mut g, 32, 128, 4, LayerBackend::Fp32 { parallel: false });
        let x = g.gaussian_col(32, 6, 0.0, 1.0);
        let y = layer.forward(&x);
        assert_eq!(y.shape(), (32, 6));
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn quantized_encoder_tracks_fp32_direction() {
        // Table I proxy at miniature scale: 3-bit quantized layer output
        // should stay directionally close to fp32.
        let mut g = MatrixRng::seed_from(331);
        let x = g.gaussian_col(32, 4, 0.0, 1.0);
        let mut g1 = MatrixRng::seed_from(777);
        let fp = EncoderLayer::random(&mut g1, 32, 64, 4, LayerBackend::Fp32 { parallel: false });
        let mut g2 = MatrixRng::seed_from(777);
        let q = EncoderLayer::random(
            &mut g2,
            32,
            64,
            4,
            LayerBackend::Biq {
                bits: 3,
                method: QuantMethod::Greedy,
                cfg: BiqConfig::default(),
                parallel: false,
            },
        );
        let cs = cosine_similarity(q.forward(&x).as_slice(), fp.forward(&x).as_slice());
        assert!(cs > 0.95, "cosine similarity {cs}");
    }

    #[test]
    fn encoder_stack_runs_depth() {
        let mut g = MatrixRng::seed_from(332);
        let enc = Encoder::random(&mut g, 3, 16, 32, 2, LayerBackend::Fp32 { parallel: false });
        assert_eq!(enc.depth(), 3);
        let x = g.gaussian_col(16, 5, 0.0, 1.0);
        assert_eq!(enc.forward(&x).shape(), (16, 5));
    }

    #[test]
    fn decoder_layer_consumes_memory() {
        let mut g = MatrixRng::seed_from(333);
        let dec = DecoderLayer::random(&mut g, 16, 32, 2, LayerBackend::Fp32 { parallel: false });
        let x = g.gaussian_col(16, 3, 0.0, 1.0);
        let mem = g.gaussian_col(16, 8, 0.0, 1.0);
        let y = dec.forward(&x, &mem);
        assert_eq!(y.shape(), (16, 3));
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic_given_seed() {
        let x = MatrixRng::seed_from(42).gaussian_col(16, 2, 0.0, 1.0);
        let mk = || {
            let mut g = MatrixRng::seed_from(9);
            EncoderLayer::random(&mut g, 16, 32, 2, LayerBackend::Fp32 { parallel: false })
        };
        assert_eq!(mk().forward(&x).as_slice(), mk().forward(&x).as_slice());
    }
}
