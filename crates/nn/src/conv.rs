//! 2-D convolution lowered to GEMM via im2col — the CNN counterpart of the
//! paper's workloads (its binary-coding lineage, XNOR-Net \[19\] and
//! LQ-Nets \[17\], is all convolutional).
//!
//! A convolution with kernels `K ∈ R^{C_out × C_in × kh × kw}` over an input
//! `C_in × H × W` becomes one matrix multiplication:
//!
//! ```text
//! W_mat : C_out × (C_in·kh·kw)      (each kernel flattened to a row)
//! X_col : (C_in·kh·kw) × (H_out·W_out)   (im2col patches as columns)
//! Y     = W_mat · X_col             -> C_out × (H_out·W_out)
//! ```
//!
//! `W_mat` is a fixed weight matrix, so it quantizes and runs through
//! BiQGEMM exactly like a Linear layer; the im2col gather stays fp32. The
//! patch-column count `H_out·W_out` plays the role of GEMM batch — large for
//! early layers, which is the regime where the paper's crossover analysis
//! (Fig. 10) matters.

use crate::linear::Linear;
use biq_matrix::{ColMatrix, Matrix, MatrixRng};

/// A `C × H × W` feature map, channel-major contiguous.
#[derive(Clone, Debug, PartialEq)]
pub struct FeatureMap {
    /// Channels.
    pub channels: usize,
    /// Height.
    pub height: usize,
    /// Width.
    pub width: usize,
    data: Vec<f32>,
}

impl FeatureMap {
    /// Zero-filled map.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Self {
        Self { channels, height, width, data: vec![0.0; channels * height * width] }
    }

    /// Wraps a channel-major buffer.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn from_vec(channels: usize, height: usize, width: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), channels * height * width, "buffer length mismatch");
        Self { channels, height, width, data }
    }

    /// Random map.
    pub fn random(rng: &mut MatrixRng, channels: usize, height: usize, width: usize) -> Self {
        Self::from_vec(channels, height, width, rng.gaussian_vec(channels * height * width))
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        debug_assert!(c < self.channels && y < self.height && x < self.width);
        self.data[(c * self.height + y) * self.width + x]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: f32) {
        self.data[(c * self.height + y) * self.width + x] = v;
    }

    /// The backing slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }
}

/// Geometry of a convolution.
#[derive(Clone, Copy, Debug)]
pub struct ConvShape {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Kernel height/width.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Symmetric zero padding.
    pub padding: usize,
}

impl ConvShape {
    /// Output spatial size for an input of `h × w`.
    ///
    /// # Panics
    /// Panics if the kernel does not fit the padded input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        assert!(ph >= self.kernel && pw >= self.kernel, "kernel larger than padded input");
        ((ph - self.kernel) / self.stride + 1, (pw - self.kernel) / self.stride + 1)
    }

    /// Rows of the im2col matrix (`C_in · k · k`).
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Lowers an input map to the im2col matrix (`patch_len × H_out·W_out`,
/// column-major — each output position is one column, ready for the
/// workspace's GEMM convention).
pub fn im2col(input: &FeatureMap, shape: &ConvShape) -> ColMatrix {
    assert_eq!(input.channels, shape.in_channels, "channel mismatch");
    let (ho, wo) = shape.output_hw(input.height, input.width);
    let plen = shape.patch_len();
    let mut out = ColMatrix::zeros(plen, ho * wo);
    let pad = shape.padding as isize;
    for oy in 0..ho {
        for ox in 0..wo {
            let col = out.col_mut(oy * wo + ox);
            let mut r = 0;
            for c in 0..shape.in_channels {
                for ky in 0..shape.kernel {
                    for kx in 0..shape.kernel {
                        let iy = (oy * shape.stride + ky) as isize - pad;
                        let ix = (ox * shape.stride + kx) as isize - pad;
                        col[r] = if iy >= 0
                            && ix >= 0
                            && (iy as usize) < input.height
                            && (ix as usize) < input.width
                        {
                            input.get(c, iy as usize, ix as usize)
                        } else {
                            0.0
                        };
                        r += 1;
                    }
                }
            }
        }
    }
    out
}

/// A 2-D convolution layer executing as im2col + backend matmul.
#[derive(Clone, Debug)]
pub struct Conv2d {
    shape: ConvShape,
    /// `C_out × patch_len` flattened kernels on a pluggable backend.
    weight: Linear,
}

impl Conv2d {
    /// Wraps flattened kernels (`C_out × C_in·k·k`) already in a [`Linear`].
    ///
    /// # Panics
    /// Panics if the linear's shape disagrees with `shape`.
    pub fn new(shape: ConvShape, weight: Linear) -> Self {
        assert_eq!(weight.out_features(), shape.out_channels, "out_channels mismatch");
        assert_eq!(weight.in_features(), shape.patch_len(), "patch length mismatch");
        Self { shape, weight }
    }

    /// Randomly initialised convolution on `backend`.
    pub fn random(
        rng: &mut MatrixRng,
        shape: ConvShape,
        backend: crate::transformer::LayerBackend,
    ) -> Self {
        let std = (shape.patch_len() as f32).powf(-0.5);
        let w = rng.gaussian(shape.out_channels, shape.patch_len(), 0.0, std);
        Self::new(shape, backend.linear(w, None))
    }

    /// Geometry.
    pub fn shape(&self) -> &ConvShape {
        &self.shape
    }

    /// Convolves one feature map.
    pub fn forward(&self, input: &FeatureMap) -> FeatureMap {
        let (ho, wo) = self.shape.output_hw(input.height, input.width);
        let xcol = im2col(input, &self.shape);
        let y = self.weight.forward(&xcol); // C_out × (ho·wo), column-major
        let mut out = FeatureMap::zeros(self.shape.out_channels, ho, wo);
        for c in 0..self.shape.out_channels {
            for p in 0..ho * wo {
                out.set(c, p / wo, p % wo, y.get(c, p));
            }
        }
        out
    }
}

/// Direct (nested-loop) convolution — the test oracle for the im2col path.
pub fn conv2d_direct(input: &FeatureMap, kernels: &Matrix, shape: &ConvShape) -> FeatureMap {
    assert_eq!(kernels.rows(), shape.out_channels);
    assert_eq!(kernels.cols(), shape.patch_len());
    let (ho, wo) = shape.output_hw(input.height, input.width);
    let mut out = FeatureMap::zeros(shape.out_channels, ho, wo);
    let pad = shape.padding as isize;
    for co in 0..shape.out_channels {
        let krow = kernels.row(co);
        for oy in 0..ho {
            for ox in 0..wo {
                let mut acc = 0.0f32;
                let mut r = 0;
                for c in 0..shape.in_channels {
                    for ky in 0..shape.kernel {
                        for kx in 0..shape.kernel {
                            let iy = (oy * shape.stride + ky) as isize - pad;
                            let ix = (ox * shape.stride + kx) as isize - pad;
                            if iy >= 0
                                && ix >= 0
                                && (iy as usize) < input.height
                                && (ix as usize) < input.width
                            {
                                acc += krow[r] * input.get(c, iy as usize, ix as usize);
                            }
                            r += 1;
                        }
                    }
                }
                out.set(co, oy, ox, acc);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::QuantMethod;
    use crate::transformer::LayerBackend;
    use biq_quant::error_metrics::relative_l2;
    use biqgemm_core::BiqConfig;

    const FP: LayerBackend = LayerBackend::Fp32 { parallel: false };

    fn shape(ci: usize, co: usize, k: usize, s: usize, p: usize) -> ConvShape {
        ConvShape { in_channels: ci, out_channels: co, kernel: k, stride: s, padding: p }
    }

    #[test]
    fn output_geometry() {
        assert_eq!(shape(1, 1, 3, 1, 0).output_hw(8, 8), (6, 6));
        assert_eq!(shape(1, 1, 3, 1, 1).output_hw(8, 8), (8, 8)); // "same"
        assert_eq!(shape(1, 1, 3, 2, 1).output_hw(8, 8), (4, 4));
        assert_eq!(shape(1, 1, 1, 1, 0).output_hw(5, 7), (5, 7));
    }

    #[test]
    fn im2col_identity_kernel_geometry() {
        // 1×1 kernel, stride 1: im2col is just the channel-major reshape.
        let mut g = MatrixRng::seed_from(800);
        let fm = FeatureMap::random(&mut g, 3, 4, 5);
        let sh = shape(3, 8, 1, 1, 0);
        let cols = im2col(&fm, &sh);
        assert_eq!(cols.shape(), (3, 20));
        for p in 0..20 {
            for c in 0..3 {
                assert_eq!(cols.get(c, p), fm.get(c, p / 5, p % 5));
            }
        }
    }

    #[test]
    fn im2col_conv_matches_direct_for_all_geometries() {
        let mut g = MatrixRng::seed_from(801);
        for (k, s, p) in [(3usize, 1usize, 0usize), (3, 1, 1), (3, 2, 1), (5, 2, 2), (1, 1, 0)] {
            let sh = shape(2, 4, k, s, p);
            let fm = FeatureMap::random(&mut g, 2, 9, 11);
            let kernels = g.gaussian(4, sh.patch_len(), 0.0, 0.5);
            let conv = Conv2d::new(sh, Linear::fp32(kernels.clone(), None));
            let y = conv.forward(&fm);
            let y_ref = conv2d_direct(&fm, &kernels, &sh);
            assert_eq!(y.channels, y_ref.channels);
            assert_eq!((y.height, y.width), (y_ref.height, y_ref.width));
            for (a, b) in y.as_slice().iter().zip(y_ref.as_slice()) {
                assert!((a - b).abs() < 1e-4, "k={k} s={s} p={p}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn padding_zeroes_outside() {
        // All-ones input, all-ones 3×3 kernel, padding 1: the corner output
        // sums only the 4 in-bounds taps.
        let fm = FeatureMap::from_vec(1, 3, 3, vec![1.0; 9]);
        let sh = shape(1, 1, 3, 1, 1);
        let kernels = Matrix::filled(1, 9, 1.0);
        let y = conv2d_direct(&fm, &kernels, &sh);
        assert_eq!(y.get(0, 0, 0), 4.0);
        assert_eq!(y.get(0, 1, 1), 9.0);
    }

    #[test]
    fn quantized_conv_tracks_fp32() {
        let sh = shape(4, 16, 3, 1, 1);
        let fm = {
            let mut g = MatrixRng::seed_from(802);
            FeatureMap::random(&mut g, 4, 8, 8)
        };
        let mk = |backend| {
            let mut g = MatrixRng::seed_from(803);
            Conv2d::random(&mut g, sh, backend)
        };
        let y_fp = mk(FP).forward(&fm);
        let y_q = mk(LayerBackend::Biq {
            bits: 3,
            method: QuantMethod::Greedy,
            cfg: BiqConfig::default(),
            parallel: false,
        })
        .forward(&fm);
        let err = relative_l2(y_q.as_slice(), y_fp.as_slice());
        assert!(err < 0.35, "3-bit conv relative error {err}");
    }

    #[test]
    #[should_panic(expected = "patch length mismatch")]
    fn wrong_kernel_width_rejected() {
        let sh = shape(2, 3, 3, 1, 0);
        let _ = Conv2d::new(sh, Linear::fp32(Matrix::zeros(3, 10), None));
    }
}
