//! Whole-model snapshot and restore: any model in this crate ↔ one `BIQM`
//! artifact.
//!
//! [`CompiledModel`] wraps the four model families and walks their layer
//! graphs in a canonical order — the same order on both sides, so
//! [`CompiledModel::snapshot`] and [`CompiledModel::from_artifact`] are
//! exact inverses:
//!
//! * every [`Linear`] becomes one [`biq_artifact::LayerManifest`] plus
//!   payload sections exported through the runtime's packed-weights hook
//!   (no dense fp32 ships for quantized layers);
//! * layer norms and the embedding table become named fp32 parameter
//!   sections;
//! * model shape parameters (widths, depths, heads, special tokens) live
//!   in the manifest's `dims`.
//!
//! Restoring rebuilds each plan via `PlanBuilder` with the *stored*
//! resolved threading decision, compiles packed weights that **borrow the
//! artifact buffer** (zero payload copies — see
//! [`biq_artifact::load_weights`]), and routes every layer through one
//! shared executor so arenas warm to the artifact's shapes exactly as a
//! freshly constructed model's would. The round trip is bit-identical: a
//! loaded model produces the same outputs as the model it was snapshot
//! from, for every backend family.

use crate::embedding::Embedding;
use crate::layernorm::LayerNorm;
use crate::linear::Linear;
use crate::lstm::{Lstm, LstmCell};
use crate::seq2seq::{Seq2Seq, SpecialTokens};
use crate::transformer::{DecoderLayer, Encoder, EncoderLayer};
use biq_artifact::{
    compile_layer, load_bias, load_param, sec, snapshot_layer, Artifact, ArtifactBuilder,
    ArtifactError, LayerManifest, ModelKind, ModelManifest, SectionId,
};
use biq_matrix::store::PodStore;
use biq_matrix::{ColMatrix, Matrix, MatrixRng};
use biq_runtime::SharedExecutor;
use bytes::Bytes;
use std::sync::Arc;

use crate::attention::MultiHeadAttention;

fn bad(msg: impl Into<String>) -> ArtifactError {
    ArtifactError::Manifest(msg.into())
}

/// A model wrapped for artifact snapshot/restore.
#[derive(Clone, Debug)]
pub enum CompiledModel {
    /// One linear layer.
    Linear(Linear),
    /// A Transformer encoder stack.
    Transformer(Encoder),
    /// A unidirectional LSTM.
    Lstm(Lstm),
    /// An encoder–decoder seq2seq Transformer.
    Seq2Seq(Seq2Seq),
}

// ---------------------------------------------------------------- snapshot

/// Accumulates layers and parameters into an [`ArtifactBuilder`] in
/// canonical order — the writer half of the model ↔ artifact bijection.
pub struct ModelBuilder {
    builder: ArtifactBuilder,
    layers: Vec<LayerManifest>,
    params: Vec<(String, SectionId)>,
}

impl ModelBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self { builder: ArtifactBuilder::new(), layers: Vec::new(), params: Vec::new() }
    }

    /// Exports one linear layer (plan + packed payload + bias).
    pub fn add_linear(&mut self, name: impl Into<String>, layer: &Linear) {
        let idx = self.layers.len() as u32;
        let op = layer.compiled_op();
        self.layers.push(snapshot_layer(&mut self.builder, idx, name, &op, layer.bias()));
    }

    /// Exports one named fp32 parameter section.
    pub fn add_param(&mut self, name: impl Into<String>, values: &[f32]) {
        let id = self.builder.add_f32_section(sec::PARAM, u32::MAX, values);
        self.params.push((name.into(), id));
    }

    /// Exports a layer norm as three parameter sections
    /// (`{prefix}.gamma/beta/eps`).
    pub fn add_layernorm(&mut self, prefix: &str, ln: &LayerNorm) {
        self.add_param(format!("{prefix}.gamma"), ln.gamma());
        self.add_param(format!("{prefix}.beta"), ln.beta());
        self.add_param(format!("{prefix}.eps"), &[ln.eps()]);
    }

    /// Seals the artifact around the manifest.
    pub fn finish(self, kind: ModelKind, dims: Vec<u64>) -> Bytes {
        let manifest =
            ModelManifest { kind, dims, params: self.params, layers: self.layers }.encode();
        self.builder.finish(manifest.as_ref())
    }
}

impl Default for ModelBuilder {
    fn default() -> Self {
        Self::new()
    }
}

// The canonical layer-walk order. `named_linears`/`named_layernorms` are
// the single definition of it: snapshot writes what they yield, the
// `Restorer` consumes the same sequence, and serve registration reuses the
// same names — so the order cannot silently diverge between the three.

fn attention_linears<'a>(out: &mut Vec<(String, &'a Linear)>, p: &str, a: &'a MultiHeadAttention) {
    out.push((format!("{p}.wq"), a.wq()));
    out.push((format!("{p}.wk"), a.wk()));
    out.push((format!("{p}.wv"), a.wv()));
    out.push((format!("{p}.wo"), a.wo()));
}

fn encoder_linears<'a>(out: &mut Vec<(String, &'a Linear)>, prefix: &str, layer: &'a EncoderLayer) {
    attention_linears(out, &format!("{prefix}attn"), layer.attn());
    out.push((format!("{prefix}ff1"), layer.ff1()));
    out.push((format!("{prefix}ff2"), layer.ff2()));
}

fn decoder_linears<'a>(out: &mut Vec<(String, &'a Linear)>, prefix: &str, layer: &'a DecoderLayer) {
    attention_linears(out, &format!("{prefix}sa"), layer.self_attn());
    attention_linears(out, &format!("{prefix}ca"), layer.cross_attn());
    out.push((format!("{prefix}ff1"), layer.ff1()));
    out.push((format!("{prefix}ff2"), layer.ff2()));
}

impl CompiledModel {
    /// Which manifest kind this model snapshots as.
    pub fn kind(&self) -> ModelKind {
        match self {
            CompiledModel::Linear(_) => ModelKind::Linear,
            CompiledModel::Transformer(_) => ModelKind::Transformer,
            CompiledModel::Lstm(_) => ModelKind::Lstm,
            CompiledModel::Seq2Seq(_) => ModelKind::Seq2Seq,
        }
    }

    /// The manifest's kind-specific shape parameters.
    pub fn dims(&self) -> Vec<u64> {
        match self {
            CompiledModel::Linear(_) => vec![],
            CompiledModel::Transformer(enc) => {
                let l0 = &enc.layers()[0];
                vec![
                    l0.d_model() as u64,
                    l0.ff1().out_features() as u64,
                    l0.attn().heads() as u64,
                    enc.depth() as u64,
                ]
            }
            CompiledModel::Lstm(lstm) => {
                vec![lstm.cell().input_size() as u64, lstm.cell().hidden() as u64]
            }
            CompiledModel::Seq2Seq(s) => {
                let enc0 = &s.encoder().layers()[0];
                vec![
                    s.vocab() as u64,
                    s.embed().d_model() as u64,
                    enc0.ff1().out_features() as u64,
                    enc0.attn().heads() as u64,
                    s.encoder().depth() as u64,
                    s.decoder_layers().len() as u64,
                    s.specials().bos as u64,
                    s.specials().eos as u64,
                ]
            }
        }
    }

    /// Every linear layer with its canonical artifact name, in snapshot
    /// order (what `biq_serve::ModelRegistry::load_artifact` registers).
    pub fn named_linears(&self) -> Vec<(String, &Linear)> {
        let mut out: Vec<(String, &Linear)> = Vec::new();
        match self {
            CompiledModel::Linear(l) => out.push(("linear".into(), l)),
            CompiledModel::Transformer(enc) => {
                for (i, layer) in enc.layers().iter().enumerate() {
                    encoder_linears(&mut out, &format!("enc{i}."), layer);
                }
            }
            CompiledModel::Lstm(lstm) => {
                out.push(("lstm.w_ih".into(), lstm.cell().w_ih()));
                out.push(("lstm.w_hh".into(), lstm.cell().w_hh()));
            }
            CompiledModel::Seq2Seq(s) => {
                for (i, layer) in s.encoder().layers().iter().enumerate() {
                    encoder_linears(&mut out, &format!("enc{i}."), layer);
                }
                for (i, layer) in s.decoder_layers().iter().enumerate() {
                    decoder_linears(&mut out, &format!("dec{i}."), layer);
                }
                out.push(("out_proj".into(), s.out_proj()));
            }
        }
        out
    }

    /// Every layer norm with its canonical parameter-name prefix, in
    /// snapshot order (the embedding table, when present, precedes these in
    /// the manifest's param list).
    fn named_layernorms(&self) -> Vec<(String, &LayerNorm)> {
        let mut out: Vec<(String, &LayerNorm)> = Vec::new();
        match self {
            CompiledModel::Linear(_) | CompiledModel::Lstm(_) => {}
            CompiledModel::Transformer(enc) => {
                for (i, layer) in enc.layers().iter().enumerate() {
                    out.push((format!("enc{i}.ln1"), layer.ln1()));
                    out.push((format!("enc{i}.ln2"), layer.ln2()));
                }
            }
            CompiledModel::Seq2Seq(s) => {
                for (i, layer) in s.encoder().layers().iter().enumerate() {
                    out.push((format!("enc{i}.ln1"), layer.ln1()));
                    out.push((format!("enc{i}.ln2"), layer.ln2()));
                }
                for (i, layer) in s.decoder_layers().iter().enumerate() {
                    out.push((format!("dec{i}.ln1"), layer.ln1()));
                    out.push((format!("dec{i}.ln2"), layer.ln2()));
                    out.push((format!("dec{i}.ln3"), layer.ln3()));
                }
            }
        }
        out
    }

    /// Serializes the whole model into `BIQM` artifact bytes. The layer and
    /// parameter orders come from [`CompiledModel::named_linears`] /
    /// `named_layernorms`, so snapshot, restore and serve registration all
    /// share one definition of the walk.
    pub fn snapshot(&self) -> Bytes {
        let mut b = ModelBuilder::new();
        if let CompiledModel::Seq2Seq(s) = self {
            b.add_param("embed.table", s.embed().table().as_slice());
        }
        for (name, layer) in self.named_linears() {
            b.add_linear(name, layer);
        }
        for (prefix, ln) in self.named_layernorms() {
            b.add_layernorm(&prefix, ln);
        }
        b.finish(self.kind(), self.dims())
    }

    /// Writes the artifact to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.snapshot().as_ref())
    }

    /// Reconstructs a model from a loaded artifact: plans rebuilt through
    /// `PlanBuilder`, packed weights borrowed zero-copy from the file
    /// buffer, all layers on one shared executor.
    pub fn from_artifact(artifact: &Artifact) -> Result<Self, ArtifactError> {
        let manifest = ModelManifest::decode(artifact.manifest_bytes())?;
        let mut r = Restorer {
            artifact,
            manifest: &manifest,
            layer_i: 0,
            param_i: 0,
            exec: SharedExecutor::new(),
        };
        let model = match manifest.kind {
            ModelKind::Linear => {
                let lm = r.peek_layer()?;
                let (m, n) = (lm.m, lm.n);
                let linear = r.next_linear("linear", m, n)?;
                r.done()?;
                CompiledModel::Linear(linear)
            }
            ModelKind::Transformer => {
                let [d_model, d_ff, heads, depth] = r.dims::<4>()?;
                validate_attention_dims(d_model, heads)?;
                if d_ff == 0 || depth == 0 {
                    return Err(bad("transformer d_ff and depth must be positive"));
                }
                let layers = (0..depth)
                    .map(|i| r.encoder_layer(&format!("enc{i}."), d_model, d_ff, heads))
                    .collect::<Result<Vec<_>, _>>()?;
                r.done()?;
                CompiledModel::Transformer(Encoder::from_layers(layers))
            }
            ModelKind::Lstm => {
                let [input, hidden] = r.dims::<2>()?;
                if input == 0 || hidden == 0 {
                    return Err(bad("zero LSTM dimension"));
                }
                let w_ih = r.next_linear("lstm.w_ih", 4 * hidden, input)?;
                let w_hh = r.next_linear("lstm.w_hh", 4 * hidden, hidden)?;
                r.done()?;
                CompiledModel::Lstm(Lstm::new(LstmCell::new(w_ih, w_hh)))
            }
            ModelKind::Seq2Seq => {
                let [vocab, d_model, d_ff, heads, enc_layers, dec_layers, bos, eos] =
                    r.dims::<8>()?;
                validate_attention_dims(d_model, heads)?;
                if d_ff == 0 || enc_layers == 0 {
                    return Err(bad("seq2seq d_ff and encoder depth must be positive"));
                }
                if vocab < 4 || bos >= vocab || eos >= vocab {
                    return Err(bad("special tokens outside vocabulary"));
                }
                let table = r.next_param_shared("embed.table", vocab * d_model)?;
                let embed = Embedding::new(Matrix::from_shared(vocab, d_model, table));
                let enc = (0..enc_layers)
                    .map(|i| r.encoder_layer(&format!("enc{i}."), d_model, d_ff, heads))
                    .collect::<Result<Vec<_>, _>>()?;
                // dec_layers = 0 is legitimate (encoder + output projection
                // only); the decode loop simply runs no decoder layers.
                let dec = (0..dec_layers)
                    .map(|i| r.decoder_layer(&format!("dec{i}."), d_model, d_ff, heads))
                    .collect::<Result<Vec<_>, _>>()?;
                let out_proj = r.next_linear("out_proj", vocab, d_model)?;
                r.done()?;
                CompiledModel::Seq2Seq(Seq2Seq::from_parts(
                    embed,
                    Encoder::from_layers(enc),
                    dec,
                    out_proj,
                    SpecialTokens { bos, eos },
                ))
            }
        };
        Ok(model)
    }

    /// Opens and reconstructs a model from an artifact file.
    pub fn load(path: &std::path::Path) -> Result<Self, ArtifactError> {
        Self::from_artifact(&Artifact::open(path)?)
    }

    /// One-line structural description (CLI reporting).
    pub fn describe(&self) -> String {
        match self {
            CompiledModel::Linear(l) => {
                format!("linear {}x{} [{:?}]", l.out_features(), l.in_features(), l.backend_kind())
            }
            CompiledModel::Transformer(_) => {
                let d = self.dims();
                format!(
                    "transformer encoder: d_model {} d_ff {} heads {} depth {}",
                    d[0], d[1], d[2], d[3]
                )
            }
            CompiledModel::Lstm(lstm) => {
                format!("lstm: input {} hidden {}", lstm.cell().input_size(), lstm.cell().hidden())
            }
            CompiledModel::Seq2Seq(_) => {
                let d = self.dims();
                format!(
                    "seq2seq: vocab {} d_model {} d_ff {} heads {} enc {} dec {}",
                    d[0], d[1], d[2], d[3], d[4], d[5]
                )
            }
        }
    }

    /// Runs one deterministic seeded inference — the CLI `run-model` body
    /// and the round-trip tests' comparison signal. Returns the flat fp32
    /// output (token ids as floats for seq2seq).
    pub fn run_seeded(&self, seed: u64, len: usize) -> Vec<f32> {
        let len = len.max(1);
        let mut g = MatrixRng::seed_from(seed);
        match self {
            CompiledModel::Linear(l) => {
                let x = g.gaussian_col(l.in_features(), len, 0.0, 1.0);
                l.forward(&x).as_slice().to_vec()
            }
            CompiledModel::Transformer(enc) => {
                let d_model = enc.layers()[0].d_model();
                let x = g.gaussian_col(d_model, len, 0.0, 1.0);
                enc.forward(&x).as_slice().to_vec()
            }
            CompiledModel::Lstm(lstm) => {
                let input = lstm.cell().input_size();
                let seq: Vec<ColMatrix> =
                    (0..len).map(|_| g.gaussian_col(input, 1, 0.0, 1.0)).collect();
                lstm.forward(&seq).iter().flat_map(|h| h.as_slice().to_vec()).collect()
            }
            CompiledModel::Seq2Seq(s) => {
                let vocab = s.vocab();
                let src: Vec<usize> = (0..len)
                    .map(|_| (g.uniform_f32(0.0, vocab as f32) as usize).min(vocab - 1))
                    .collect();
                s.greedy_decode(&src, 2 * len).iter().map(|&t| t as f32).collect()
            }
        }
    }
}

fn validate_attention_dims(d_model: usize, heads: usize) -> Result<(), ArtifactError> {
    if d_model == 0 || heads == 0 || !d_model.is_multiple_of(heads) {
        return Err(bad(format!("heads {heads} must divide d_model {d_model}")));
    }
    Ok(())
}

// ----------------------------------------------------------------- restore

/// Cursor walking a manifest's layers/params in canonical order, verifying
/// names and shapes before any constructor (whose asserts would otherwise
/// panic on hostile manifests) runs.
struct Restorer<'a> {
    artifact: &'a Artifact,
    manifest: &'a ModelManifest,
    layer_i: usize,
    param_i: usize,
    exec: SharedExecutor,
}

impl Restorer<'_> {
    fn dims<const N: usize>(&self) -> Result<[usize; N], ArtifactError> {
        if self.manifest.dims.len() != N {
            return Err(bad(format!(
                "{} dims, expected {N} for {:?}",
                self.manifest.dims.len(),
                self.manifest.kind
            )));
        }
        let mut out = [0usize; N];
        for (o, &d) in out.iter_mut().zip(&self.manifest.dims) {
            // Zero is legitimate for token ids (bos); per-kind code checks
            // the dims that must be positive. The cap keeps every product
            // of two dims (e.g. the `vocab · d_model` embedding size) far
            // from usize overflow on hostile manifests.
            if d > biq_artifact::MAX_DIM as u64 {
                return Err(bad(format!("dim {d} exceeds the 2^24 cap")));
            }
            *o = d as usize;
        }
        Ok(out)
    }

    fn peek_layer(&self) -> Result<&LayerManifest, ArtifactError> {
        self.manifest.layers.get(self.layer_i).ok_or_else(|| bad("missing layer"))
    }

    fn next_linear(&mut self, name: &str, m: usize, n: usize) -> Result<Linear, ArtifactError> {
        let lm = self
            .manifest
            .layers
            .get(self.layer_i)
            .ok_or_else(|| bad(format!("layer list exhausted looking for '{name}'")))?;
        self.layer_i += 1;
        if lm.name != name {
            return Err(bad(format!(
                "layer {} is '{}', expected '{name}'",
                self.layer_i - 1,
                lm.name
            )));
        }
        if lm.m != m || lm.n != n {
            return Err(bad(format!(
                "layer '{name}' is {}x{}, model graph expects {m}x{n}",
                lm.m, lm.n
            )));
        }
        let op = compile_layer(self.artifact, lm)?;
        let bias = load_bias(self.artifact, lm)?;
        Ok(Linear::from_compiled_op(Arc::new(op), bias, self.exec.clone()))
    }

    fn next_param(&mut self, name: &str, want: usize) -> Result<PodStore<f32>, ArtifactError> {
        Ok(self.next_param_shared(name, want)?.into())
    }

    fn next_param_shared(
        &mut self,
        name: &str,
        want: usize,
    ) -> Result<biq_matrix::store::PodView<f32>, ArtifactError> {
        let (got_name, id) = self
            .manifest
            .params
            .get(self.param_i)
            .ok_or_else(|| bad(format!("param list exhausted looking for '{name}'")))?;
        self.param_i += 1;
        if got_name != name {
            return Err(bad(format!("param is '{got_name}', expected '{name}'")));
        }
        load_param(self.artifact, *id, want, name)
    }

    fn layernorm(&mut self, prefix: &str, dim: usize) -> Result<LayerNorm, ArtifactError> {
        let gamma = self.next_param(&format!("{prefix}.gamma"), dim)?;
        let beta = self.next_param(&format!("{prefix}.beta"), dim)?;
        let eps = self.next_param(&format!("{prefix}.eps"), 1)?[0];
        if !eps.is_finite() {
            return Err(bad("layer-norm eps must be finite"));
        }
        Ok(LayerNorm::with_param_stores(gamma, beta, eps))
    }

    fn attention(
        &mut self,
        prefix: &str,
        d_model: usize,
        heads: usize,
    ) -> Result<MultiHeadAttention, ArtifactError> {
        let wq = self.next_linear(&format!("{prefix}.wq"), d_model, d_model)?;
        let wk = self.next_linear(&format!("{prefix}.wk"), d_model, d_model)?;
        let wv = self.next_linear(&format!("{prefix}.wv"), d_model, d_model)?;
        let wo = self.next_linear(&format!("{prefix}.wo"), d_model, d_model)?;
        Ok(MultiHeadAttention::new(wq, wk, wv, wo, heads))
    }

    fn encoder_layer(
        &mut self,
        prefix: &str,
        d_model: usize,
        d_ff: usize,
        heads: usize,
    ) -> Result<EncoderLayer, ArtifactError> {
        let attn = self.attention(&format!("{prefix}attn"), d_model, heads)?;
        let ff1 = self.next_linear(&format!("{prefix}ff1"), d_ff, d_model)?;
        let ff2 = self.next_linear(&format!("{prefix}ff2"), d_model, d_ff)?;
        let ln1 = self.layernorm(&format!("{prefix}ln1"), d_model)?;
        let ln2 = self.layernorm(&format!("{prefix}ln2"), d_model)?;
        Ok(EncoderLayer::new(attn, ff1, ff2, ln1, ln2))
    }

    fn decoder_layer(
        &mut self,
        prefix: &str,
        d_model: usize,
        d_ff: usize,
        heads: usize,
    ) -> Result<DecoderLayer, ArtifactError> {
        let sa = self.attention(&format!("{prefix}sa"), d_model, heads)?;
        let ca = self.attention(&format!("{prefix}ca"), d_model, heads)?;
        let ff1 = self.next_linear(&format!("{prefix}ff1"), d_ff, d_model)?;
        let ff2 = self.next_linear(&format!("{prefix}ff2"), d_model, d_ff)?;
        let ln1 = self.layernorm(&format!("{prefix}ln1"), d_model)?;
        let ln2 = self.layernorm(&format!("{prefix}ln2"), d_model)?;
        let ln3 = self.layernorm(&format!("{prefix}ln3"), d_model)?;
        Ok(DecoderLayer::new(sa, ca, ff1, ff2, ln1, ln2, ln3))
    }

    /// Verifies the manifest holds nothing beyond what the model graph
    /// consumed (stray sections would otherwise silently ship).
    fn done(&self) -> Result<(), ArtifactError> {
        if self.layer_i != self.manifest.layers.len() {
            return Err(bad(format!(
                "{} unconsumed layer entries",
                self.manifest.layers.len() - self.layer_i
            )));
        }
        if self.param_i != self.manifest.params.len() {
            return Err(bad(format!(
                "{} unconsumed param entries",
                self.manifest.params.len() - self.param_i
            )));
        }
        Ok(())
    }
}
