//! Multi-head self-attention (Vaswani et al.) with backend-pluggable
//! projections.
//!
//! An encoder attention block is "four `(n × n)` weight matrices"
//! (paper Section II-C): `W_q, W_k, W_v, W_o`. Those four projections are
//! [`Linear`] layers and therefore quantizable; the score computation
//! (`QᵀK`, softmax, `V · A`) stays fp32 — the paper quantizes weights only,
//! and score matmuls have no fixed weight operand.
//!
//! Activations are column-major `d_model × seq`; each column is one token,
//! so sequence length is the GEMM batch for every projection.

use crate::activations::softmax_inplace;
use crate::linear::Linear;
use biq_matrix::ColMatrix;

/// Multi-head attention over equal-length query/key/value sequences.
#[derive(Clone, Debug)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    d_model: usize,
    d_head: usize,
}

impl MultiHeadAttention {
    /// Assembles an attention block from its four projections.
    ///
    /// # Panics
    /// Panics unless all four are `d_model × d_model` and
    /// `heads | d_model`.
    pub fn new(wq: Linear, wk: Linear, wv: Linear, wo: Linear, heads: usize) -> Self {
        let d_model = wq.out_features();
        for (name, l) in [("wq", &wq), ("wk", &wk), ("wv", &wv), ("wo", &wo)] {
            assert_eq!(l.out_features(), d_model, "{name} must be square d_model");
            assert_eq!(l.in_features(), d_model, "{name} must be square d_model");
        }
        assert!(heads > 0 && d_model.is_multiple_of(heads), "heads must divide d_model");
        Self { wq, wk, wv, wo, heads, d_model, d_head: d_model / heads }
    }

    /// Model width.
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// The query projection.
    pub fn wq(&self) -> &Linear {
        &self.wq
    }

    /// The key projection.
    pub fn wk(&self) -> &Linear {
        &self.wk
    }

    /// The value projection.
    pub fn wv(&self) -> &Linear {
        &self.wv
    }

    /// The output projection.
    pub fn wo(&self) -> &Linear {
        &self.wo
    }

    /// Self-attention: `attend(x, x)`.
    pub fn forward(&self, x: &ColMatrix) -> ColMatrix {
        self.attend(x, x)
    }

    /// Cross-attention: queries from `xq`, keys/values from `xkv`
    /// (decoder↔encoder). Sequences are the matrices' column counts.
    ///
    /// # Panics
    /// Panics if feature dimensions differ from `d_model`.
    pub fn attend(&self, xq: &ColMatrix, xkv: &ColMatrix) -> ColMatrix {
        assert_eq!(xq.rows(), self.d_model, "query feature mismatch");
        assert_eq!(xkv.rows(), self.d_model, "key/value feature mismatch");
        let (sq, skv) = (xq.cols(), xkv.cols());
        let q = self.wq.forward(xq); // d_model × sq
        let k = self.wk.forward(xkv); // d_model × skv
        let v = self.wv.forward(xkv); // d_model × skv
        let scale = 1.0 / (self.d_head as f32).sqrt();
        let mut ctx = ColMatrix::zeros(self.d_model, sq);
        let mut scores = vec![0.0f32; skv];
        for h in 0..self.heads {
            let r0 = h * self.d_head;
            for ti in 0..sq {
                let qcol = &q.col(ti)[r0..r0 + self.d_head];
                for (tj, s) in scores.iter_mut().enumerate() {
                    let kcol = &k.col(tj)[r0..r0 + self.d_head];
                    let mut dot = 0.0f32;
                    for (a, b) in qcol.iter().zip(kcol) {
                        dot += a * b;
                    }
                    *s = dot * scale;
                }
                softmax_inplace(&mut scores);
                let ccol = &mut ctx.col_mut(ti)[r0..r0 + self.d_head];
                for (tj, &w) in scores.iter().enumerate() {
                    let vcol = &v.col(tj)[r0..r0 + self.d_head];
                    for (c, &vv) in ccol.iter_mut().zip(vcol) {
                        *c += w * vv;
                    }
                }
            }
        }
        self.wo.forward(&ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biq_matrix::{Matrix, MatrixRng};
    use biq_quant::error_metrics::relative_l2;
    use biqgemm_core::BiqConfig;

    fn fp_attention(g: &mut MatrixRng, d: usize, heads: usize) -> MultiHeadAttention {
        let mk =
            |g: &mut MatrixRng| Linear::fp32(g.gaussian(d, d, 0.0, (d as f32).powf(-0.5)), None);
        MultiHeadAttention::new(mk(g), mk(g), mk(g), mk(g), heads)
    }

    #[test]
    fn output_shape_matches_input() {
        let mut g = MatrixRng::seed_from(320);
        let attn = fp_attention(&mut g, 32, 4);
        let x = g.gaussian_col(32, 7, 0.0, 1.0);
        let y = attn.forward(&x);
        assert_eq!(y.shape(), (32, 7));
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn single_token_attention_is_value_projection_chain() {
        // With one token, softmax over one score is 1, so
        // out = Wo · Wv · x regardless of Wq/Wk.
        let mut g = MatrixRng::seed_from(321);
        let d = 16;
        let wv = g.gaussian(d, d, 0.0, 0.3);
        let wo = g.gaussian(d, d, 0.0, 0.3);
        let attn = MultiHeadAttention::new(
            Linear::fp32(g.gaussian(d, d, 0.0, 0.3), None),
            Linear::fp32(g.gaussian(d, d, 0.0, 0.3), None),
            Linear::fp32(wv.clone(), None),
            Linear::fp32(wo.clone(), None),
            4,
        );
        let x = g.gaussian_col(d, 1, 0.0, 1.0);
        let y = attn.forward(&x);
        let expected = Linear::fp32(wo, None).forward(&Linear::fp32(wv, None).forward(&x));
        for i in 0..d {
            assert!((y.get(i, 0) - expected.get(i, 0)).abs() < 1e-4);
        }
    }

    #[test]
    fn permutation_equivariance_of_self_attention() {
        // Self-attention commutes with permuting token order.
        let mut g = MatrixRng::seed_from(322);
        let attn = fp_attention(&mut g, 24, 3);
        let x = g.gaussian_col(24, 5, 0.0, 1.0);
        let perm = [3usize, 1, 4, 0, 2];
        let xp = ColMatrix::from_fn(24, 5, |i, j| x.get(i, perm[j]));
        let y = attn.forward(&x);
        let yp = attn.forward(&xp);
        for (j, &pj) in perm.iter().enumerate() {
            for i in 0..24 {
                assert!((yp.get(i, j) - y.get(i, pj)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn quantized_projections_track_fp32() {
        let mut g = MatrixRng::seed_from(323);
        let d = 64;
        let mats: Vec<Matrix> = (0..4).map(|_| g.gaussian(d, d, 0.0, 0.1)).collect();
        let fp = MultiHeadAttention::new(
            Linear::fp32(mats[0].clone(), None),
            Linear::fp32(mats[1].clone(), None),
            Linear::fp32(mats[2].clone(), None),
            Linear::fp32(mats[3].clone(), None),
            8,
        );
        let cfg = BiqConfig::default();
        let q = MultiHeadAttention::new(
            Linear::quantized(&mats[0], 3, crate::linear::QuantMethod::Greedy, cfg, None),
            Linear::quantized(&mats[1], 3, crate::linear::QuantMethod::Greedy, cfg, None),
            Linear::quantized(&mats[2], 3, crate::linear::QuantMethod::Greedy, cfg, None),
            Linear::quantized(&mats[3], 3, crate::linear::QuantMethod::Greedy, cfg, None),
            8,
        );
        let x = g.gaussian_col(d, 6, 0.0, 1.0);
        // Four quantized projections compound (softmax renormalises some of
        // it away); ≈0.4 relative error is the empirical 3-bit level here —
        // the assertion guards against regressions to 1-bit-like collapse.
        let err = relative_l2(q.forward(&x).as_slice(), fp.forward(&x).as_slice());
        assert!(err < 0.6, "3-bit attention relative error {err}");
    }

    #[test]
    fn cross_attention_supports_different_lengths() {
        let mut g = MatrixRng::seed_from(324);
        let attn = fp_attention(&mut g, 16, 2);
        let xq = g.gaussian_col(16, 3, 0.0, 1.0);
        let xkv = g.gaussian_col(16, 9, 0.0, 1.0);
        let y = attn.attend(&xq, &xkv);
        assert_eq!(y.shape(), (16, 3));
    }

    #[test]
    #[should_panic(expected = "heads must divide")]
    fn bad_head_count_rejected() {
        let mut g = MatrixRng::seed_from(325);
        let _ = fp_attention(&mut g, 30, 4);
    }
}
