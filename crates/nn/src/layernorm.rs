//! Layer normalisation over the feature axis (per batch column).
//!
//! Kept in fp32 deliberately: the paper (Section II-A) points out that
//! Transformer layer-norm "demands floating-point computations" and that
//! INT8 pipelines pay 15–30% overhead converting around it — one of the
//! motivations for weight-only binary-coding quantization.

use biq_matrix::store::PodStore;
use biq_matrix::ColMatrix;

/// Learnable layer normalisation `y = γ ∘ (x − mean)/√(var + ε) + β`.
///
/// Parameters live in shared-capable storage ([`PodStore`]): a layer norm
/// restored from a model artifact borrows the artifact buffer; mutation
/// copies-on-write.
#[derive(Clone, Debug)]
pub struct LayerNorm {
    gamma: PodStore<f32>,
    beta: PodStore<f32>,
    eps: f32,
}

impl LayerNorm {
    /// Identity-initialised (`γ = 1`, `β = 0`) norm over `dim` features.
    pub fn new(dim: usize) -> Self {
        Self { gamma: vec![1.0; dim].into(), beta: vec![0.0; dim].into(), eps: 1e-5 }
    }

    /// With explicit parameters.
    ///
    /// # Panics
    /// Panics if `gamma` and `beta` lengths differ.
    pub fn with_params(gamma: Vec<f32>, beta: Vec<f32>, eps: f32) -> Self {
        Self::with_param_stores(gamma.into(), beta.into(), eps)
    }

    /// [`LayerNorm::with_params`] over shared-capable storage (artifact
    /// restore path).
    ///
    /// # Panics
    /// Panics if `gamma` and `beta` lengths differ.
    pub fn with_param_stores(gamma: PodStore<f32>, beta: PodStore<f32>, eps: f32) -> Self {
        assert_eq!(gamma.len(), beta.len(), "gamma/beta length mismatch");
        Self { gamma, beta, eps }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.gamma.len()
    }

    /// The scale parameters γ.
    pub fn gamma(&self) -> &[f32] {
        &self.gamma
    }

    /// The shift parameters β.
    pub fn beta(&self) -> &[f32] {
        &self.beta
    }

    /// The numerical-stability epsilon.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Mutable access to γ (for tests/toy training).
    pub fn gamma_mut(&mut self) -> &mut [f32] {
        self.gamma.as_mut_slice()
    }

    /// Mutable access to β.
    pub fn beta_mut(&mut self) -> &mut [f32] {
        self.beta.as_mut_slice()
    }

    /// Normalises every column of `x` in place.
    ///
    /// # Panics
    /// Panics if `x.rows() != self.dim()`.
    pub fn forward_inplace(&self, x: &mut ColMatrix) {
        assert_eq!(x.rows(), self.dim(), "feature dimension mismatch");
        let d = self.dim() as f32;
        for j in 0..x.cols() {
            let col = x.col_mut(j);
            let mean = col.iter().sum::<f32>() / d;
            let var = col.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d;
            let inv = 1.0 / (var + self.eps).sqrt();
            for (v, (&g, &bt)) in col.iter_mut().zip(self.gamma.iter().zip(self.beta.iter())) {
                *v = g * (*v - mean) * inv + bt;
            }
        }
    }

    /// Out-of-place convenience.
    pub fn forward(&self, x: &ColMatrix) -> ColMatrix {
        let mut out = x.clone();
        self.forward_inplace(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biq_matrix::MatrixRng;

    #[test]
    fn output_has_zero_mean_unit_var_per_column() {
        let mut g = MatrixRng::seed_from(300);
        let x = g.gaussian_col(64, 5, 3.0, 2.0);
        let ln = LayerNorm::new(64);
        let y = ln.forward(&x);
        for j in 0..5 {
            let col = y.col(j);
            let mean: f32 = col.iter().sum::<f32>() / 64.0;
            let var: f32 = col.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn gamma_beta_scale_and_shift() {
        let x = ColMatrix::from_fn(4, 1, |i, _| i as f32);
        let ln = LayerNorm::with_params(vec![2.0; 4], vec![1.0; 4], 1e-5);
        let base = LayerNorm::new(4).forward(&x);
        let y = ln.forward(&x);
        for i in 0..4 {
            assert!((y.get(i, 0) - (2.0 * base.get(i, 0) + 1.0)).abs() < 1e-6);
        }
    }

    #[test]
    fn constant_column_is_stable() {
        let x = ColMatrix::from_fn(8, 1, |_, _| 5.0);
        let y = LayerNorm::new(8).forward(&x);
        assert!(y.as_slice().iter().all(|v| v.is_finite() && v.abs() < 1e-2));
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn wrong_dim_rejected() {
        let mut x = ColMatrix::zeros(4, 1);
        LayerNorm::new(8).forward_inplace(&mut x);
    }
}
