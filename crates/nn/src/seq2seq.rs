//! An end-to-end NMT-style sequence-to-sequence Transformer with greedy
//! decoding — the workload the paper's introduction is written around: a
//! decode loop of *few-batch* multiplications against large fixed weights,
//! where BiQGEMM's lookup tables replace the memory-bound GEMV/GEMM calls.
//!
//! This is an inference engine over randomly initialised weights (no
//! training data is available here; DESIGN.md §3): it exercises the complete
//! code path — embedding, positional encoding, encoder stack, step-by-step
//! decoder with cross-attention over the encoder memory, quantizable output
//! projection, argmax sampling — with every weight matrix on a pluggable
//! backend.

use crate::embedding::{add_positional_encoding, Embedding};
use crate::linear::Linear;
use crate::transformer::{DecoderLayer, Encoder, LayerBackend};
use biq_matrix::{ColMatrix, MatrixRng};
use biq_runtime::SharedExecutor;

/// Special token ids used by the decoder loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpecialTokens {
    /// Beginning-of-sequence (decoder start).
    pub bos: usize,
    /// End-of-sequence (stops greedy decoding).
    pub eos: usize,
}

/// A full encoder–decoder Transformer for toy NMT inference.
#[derive(Clone, Debug)]
pub struct Seq2Seq {
    embed: Embedding,
    encoder: Encoder,
    decoder: Vec<DecoderLayer>,
    out_proj: Linear,
    specials: SpecialTokens,
}

impl Seq2Seq {
    /// Randomly initialised model. `backend` applies to every weight matrix
    /// (attention/FFN projections and the `vocab × d` output projection).
    #[allow(clippy::too_many_arguments)]
    pub fn random(
        rng: &mut MatrixRng,
        vocab: usize,
        d_model: usize,
        d_ff: usize,
        heads: usize,
        enc_layers: usize,
        dec_layers: usize,
        backend: LayerBackend,
    ) -> Self {
        assert!(vocab >= 4, "vocabulary too small");
        let embed = Embedding::random(rng, vocab, d_model);
        // One executor for the whole model: encoder stack, decoder stack and
        // the output projection pool their arenas (decode re-runs the same
        // plans every emitted token).
        let exec = SharedExecutor::new();
        let encoder = Encoder::random_shared(rng, enc_layers, d_model, d_ff, heads, backend, &exec);
        let decoder = (0..dec_layers)
            .map(|_| DecoderLayer::random_shared(rng, d_model, d_ff, heads, backend, &exec))
            .collect();
        let proj_w = rng.gaussian(vocab, d_model, 0.0, (d_model as f32).powf(-0.5));
        let out_proj = backend.linear_shared(proj_w, None, &exec);
        Self { embed, encoder, decoder, out_proj, specials: SpecialTokens { bos: 0, eos: 1 } }
    }

    /// Assembles a model from parts (the artifact restore path).
    ///
    /// # Panics
    /// Panics on width mismatches between the blocks.
    pub fn from_parts(
        embed: Embedding,
        encoder: Encoder,
        decoder: Vec<DecoderLayer>,
        out_proj: Linear,
        specials: SpecialTokens,
    ) -> Self {
        let d = embed.d_model();
        assert_eq!(out_proj.in_features(), d, "output projection must consume d_model");
        assert_eq!(out_proj.out_features(), embed.vocab(), "output projection must emit vocab");
        assert!(specials.bos < embed.vocab() && specials.eos < embed.vocab(), "specials in vocab");
        Self { embed, encoder, decoder, out_proj, specials }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.embed.vocab()
    }

    /// The special tokens.
    pub fn specials(&self) -> SpecialTokens {
        self.specials
    }

    /// The embedding table.
    pub fn embed(&self) -> &Embedding {
        &self.embed
    }

    /// The encoder stack.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// The decoder layers.
    pub fn decoder_layers(&self) -> &[DecoderLayer] {
        &self.decoder
    }

    /// The `vocab × d_model` output projection.
    pub fn out_proj(&self) -> &Linear {
        &self.out_proj
    }

    /// Encodes a source token sequence into the decoder memory
    /// (`d_model × src_len`).
    pub fn encode(&self, src: &[usize]) -> ColMatrix {
        assert!(!src.is_empty(), "empty source sequence");
        let mut x = self.embed.forward(src);
        add_positional_encoding(&mut x, 0);
        self.encoder.forward(&x)
    }

    /// One decoder forward over the *whole* target prefix (no KV cache —
    /// simple and sufficient for the toy scale), returning logits for the
    /// final position.
    fn decode_step(&self, prefix: &[usize], memory: &ColMatrix) -> Vec<f32> {
        let mut y = self.embed.forward(prefix);
        add_positional_encoding(&mut y, 0);
        for layer in &self.decoder {
            y = layer.forward(&y, memory);
        }
        let last = ColMatrix::from_column(y.col(y.cols() - 1).to_vec());
        let logits = self.out_proj.forward(&last);
        logits.col(0).to_vec()
    }

    /// Greedy decoding: starts from BOS, repeatedly appends the argmax
    /// token, stops at EOS or `max_len`. Returns the generated tokens
    /// (without BOS, with EOS if produced).
    pub fn greedy_decode(&self, src: &[usize], max_len: usize) -> Vec<usize> {
        let memory = self.encode(src);
        let mut prefix = vec![self.specials.bos];
        let mut out = Vec::new();
        for _ in 0..max_len {
            let logits = self.decode_step(&prefix, &memory);
            let next = argmax(&logits);
            out.push(next);
            if next == self.specials.eos {
                break;
            }
            prefix.push(next);
        }
        out
    }
}

fn argmax(v: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &x) in v.iter().enumerate() {
        if x > best_v {
            best_v = x;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::QuantMethod;
    use biqgemm_core::BiqConfig;

    const FP: LayerBackend = LayerBackend::Fp32 { parallel: false };

    fn tiny(backend: LayerBackend, seed: u64) -> Seq2Seq {
        let mut g = MatrixRng::seed_from(seed);
        Seq2Seq::random(&mut g, 32, 16, 32, 2, 1, 1, backend)
    }

    #[test]
    fn encode_shapes() {
        let m = tiny(FP, 1);
        let mem = m.encode(&[3, 4, 5, 6]);
        assert_eq!(mem.shape(), (16, 4));
        assert!(mem.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn greedy_decode_terminates_and_stays_in_vocab() {
        let m = tiny(FP, 2);
        let out = m.greedy_decode(&[5, 6, 7], 12);
        assert!(!out.is_empty());
        assert!(out.len() <= 12);
        assert!(out.iter().all(|&t| t < m.vocab()));
        // If EOS appears it must be last.
        if let Some(pos) = out.iter().position(|&t| t == m.specials().eos) {
            assert_eq!(pos, out.len() - 1);
        }
    }

    #[test]
    fn decoding_is_deterministic() {
        let a = tiny(FP, 3).greedy_decode(&[9, 10], 8);
        let b = tiny(FP, 3).greedy_decode(&[9, 10], 8);
        assert_eq!(a, b);
    }

    #[test]
    fn different_sources_usually_decode_differently() {
        let m = tiny(FP, 4);
        let a = m.greedy_decode(&[2, 3, 4, 5, 6], 8);
        let b = m.greedy_decode(&[20, 21, 22, 23, 24], 8);
        // Random models could coincide, but with 5 distinct inputs over a
        // 32-vocab this would be astronomically unlucky; treat as a real
        // cross-attention signal check.
        assert_ne!(a, b, "decoder ignored the encoder memory");
    }

    #[test]
    fn quantized_model_runs_the_same_loop() {
        let backend = LayerBackend::Biq {
            bits: 2,
            method: QuantMethod::Greedy,
            cfg: BiqConfig::default(),
            parallel: false,
        };
        let m = tiny(backend, 5);
        let out = m.greedy_decode(&[7, 8, 9], 6);
        assert!(!out.is_empty() && out.len() <= 6);
        assert!(out.iter().all(|&t| t < m.vocab()));
    }

    #[test]
    #[should_panic(expected = "empty source")]
    fn empty_source_rejected() {
        let m = tiny(FP, 6);
        let _ = m.encode(&[]);
    }

    #[test]
    fn argmax_basic() {
        assert_eq!(argmax(&[0.1, 5.0, -2.0]), 1);
        assert_eq!(argmax(&[-1.0]), 0);
    }
}
