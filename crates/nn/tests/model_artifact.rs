//! Artifact round-trip properties: compile → save → load → run must be
//! bit-identical to the in-memory model, across every backend family and
//! non-divisible shapes, and loading must borrow payloads from the file
//! buffer instead of copying them.

use biq_artifact::Artifact;
use biq_matrix::MatrixRng;
use biq_nn::model::CompiledModel;
use biq_nn::transformer::LayerBackend;
use biq_nn::{Linear, QuantMethod};
use biq_runtime::{
    BackendSpec, PackedPayload, PlanBuilder, SharedExecutor, Threading, WeightSource,
};
use biqgemm_core::BiqConfig;
use bytes::Bytes;
use proptest::prelude::*;

fn linear_on(spec: BackendSpec, m: usize, n: usize, bias: bool, seed: u64) -> Linear {
    let mut g = MatrixRng::seed_from(seed);
    let w = g.gaussian(m, n, 0.0, 1.0);
    let bias = bias.then(|| g.gaussian_vec(m));
    let plan = PlanBuilder::new(m, n).backend(spec).threading(Threading::Serial).build();
    Linear::from_plan(&plan, WeightSource::Dense(&w), bias, SharedExecutor::new())
}

fn round_trip(model: &CompiledModel) -> (Artifact, CompiledModel) {
    let bytes = model.snapshot();
    let artifact = Artifact::from_bytes(bytes).expect("snapshot must validate");
    let loaded = CompiledModel::from_artifact(&artifact).expect("restore must succeed");
    (artifact, loaded)
}

const SPECS: &[BackendSpec] = &[
    BackendSpec::Fp32Naive,
    BackendSpec::Fp32Blocked,
    BackendSpec::Int8,
    BackendSpec::Xnor { bits: 2 },
    BackendSpec::Biq { bits: 2, method: QuantMethod::Greedy },
];

#[test]
fn every_backend_family_round_trips_bit_identically() {
    for (i, &spec) in SPECS.iter().enumerate() {
        // 45 % 8 != 0 exercises the ragged-chunk path; b = 1 the GEMV path.
        let model = CompiledModel::Linear(linear_on(spec, 24, 45, true, 900 + i as u64));
        let (_artifact, loaded) = round_trip(&model);
        for b in [1usize, 3] {
            assert_eq!(
                model.run_seeded(7, b),
                loaded.run_seeded(7, b),
                "{spec:?} b={b} must round-trip bit-identically"
            );
        }
    }
}

#[test]
fn loaded_biq_payload_borrows_the_artifact_buffer() {
    let spec = BackendSpec::Biq { bits: 3, method: QuantMethod::Greedy };
    let model = CompiledModel::Linear(linear_on(spec, 32, 50, false, 42));
    let (artifact, loaded) = round_trip(&model);
    let base = artifact.as_bytes().as_ref().as_ptr() as usize;
    let end = base + artifact.as_bytes().len();
    let CompiledModel::Linear(l) = &loaded else { panic!("kind changed") };
    let op = l.compiled_op();
    let PackedPayload::Biq(w) = op.payload() else { panic!("payload family changed") };
    let keys = w.keys().as_slice().as_ptr() as usize;
    let scales = w.scales().as_ptr() as usize;
    assert!(w.keys().is_shared(), "keys must be a shared view, not an owned copy");
    assert!(keys >= base && keys < end, "keys must point into the artifact buffer");
    assert!(scales >= base && scales < end, "scales must point into the artifact buffer");
}

#[test]
fn loaded_dense_int8_and_xnor_payloads_borrow_the_artifact_buffer() {
    for &spec in &[BackendSpec::Fp32Blocked, BackendSpec::Int8, BackendSpec::Xnor { bits: 2 }] {
        let model = CompiledModel::Linear(linear_on(spec, 16, 30, false, 77));
        let (artifact, loaded) = round_trip(&model);
        let base = artifact.as_bytes().as_ref().as_ptr() as usize;
        let end = base + artifact.as_bytes().len();
        let CompiledModel::Linear(l) = &loaded else { panic!("kind changed") };
        let op = l.compiled_op();
        let inside = |p: usize, what: &str| {
            assert!(p >= base && p < end, "{what} must point into the artifact buffer");
        };
        match op.payload() {
            PackedPayload::Dense(w) => {
                assert!(w.is_shared(), "dense weights must stay a shared view");
                inside(w.as_slice().as_ptr() as usize, "dense weights");
            }
            PackedPayload::Int8(w) => {
                inside(w.as_slice().as_ptr() as usize, "int8 values");
                inside(w.row_scales().as_ptr() as usize, "int8 scales");
            }
            PackedPayload::Xnor(w) => {
                for (scales, words) in w.planes() {
                    inside(scales.as_slice().as_ptr() as usize, "xnor scales");
                    inside(words.as_words().as_ptr() as usize, "xnor words");
                }
            }
            PackedPayload::Biq(_) => unreachable!(),
        }
    }
}

#[test]
fn transformer_round_trip_is_bit_identical() {
    let mut g = MatrixRng::seed_from(1234);
    let backend = LayerBackend::Biq {
        bits: 2,
        method: QuantMethod::Greedy,
        cfg: BiqConfig::default(),
        parallel: false,
    };
    let enc = biq_nn::transformer::Encoder::random(&mut g, 2, 24, 48, 4, backend);
    let model = CompiledModel::Transformer(enc);
    let (_artifact, loaded) = round_trip(&model);
    assert_eq!(model.run_seeded(3, 5), loaded.run_seeded(3, 5));
    assert_eq!(model.dims(), loaded.dims());
}

#[test]
fn lstm_round_trip_is_bit_identical() {
    let mut g = MatrixRng::seed_from(4321);
    let backend = LayerBackend::Biq {
        bits: 2,
        method: QuantMethod::Greedy,
        cfg: BiqConfig::default(),
        parallel: false,
    };
    let lstm = biq_nn::lstm::Lstm::random(&mut g, 18, 10, backend);
    let model = CompiledModel::Lstm(lstm);
    let (_artifact, loaded) = round_trip(&model);
    assert_eq!(model.run_seeded(9, 6), loaded.run_seeded(9, 6));
}

#[test]
fn seq2seq_round_trip_decodes_identically() {
    let mut g = MatrixRng::seed_from(5678);
    let backend = LayerBackend::Biq {
        bits: 1,
        method: QuantMethod::Greedy,
        cfg: BiqConfig::default(),
        parallel: false,
    };
    let s = biq_nn::seq2seq::Seq2Seq::random(&mut g, 32, 16, 32, 2, 1, 1, backend);
    let model = CompiledModel::Seq2Seq(s);
    let (_artifact, loaded) = round_trip(&model);
    assert_eq!(model.run_seeded(11, 4), loaded.run_seeded(11, 4));
    let CompiledModel::Seq2Seq(l) = &loaded else { panic!("kind changed") };
    assert_eq!(l.specials().bos, 0);
    assert_eq!(l.specials().eos, 1);
}

#[test]
fn named_linears_match_manifest_order() {
    let mut g = MatrixRng::seed_from(8);
    let enc = biq_nn::transformer::Encoder::random(
        &mut g,
        1,
        16,
        32,
        2,
        LayerBackend::Fp32 { parallel: false },
    );
    let model = CompiledModel::Transformer(enc);
    let names: Vec<String> = model.named_linears().into_iter().map(|(n, _)| n).collect();
    assert_eq!(
        names,
        ["enc0.attn.wq", "enc0.attn.wk", "enc0.attn.wv", "enc0.attn.wo", "enc0.ff1", "enc0.ff2"]
    );
    let artifact = Artifact::from_bytes(model.snapshot()).unwrap();
    let manifest = biq_artifact::ModelManifest::decode(artifact.manifest_bytes()).unwrap();
    let manifest_names: Vec<&str> = manifest.layers.iter().map(|l| l.name.as_str()).collect();
    assert_eq!(names, manifest_names);
}

#[test]
fn hostile_huge_dimensions_error_instead_of_overflowing() {
    use biq_artifact::{sec, ArtifactBuilder, ElemKind, LayerManifest, ModelManifest, PayloadRefs};
    // A checksum-valid artifact whose manifest declares absurd shapes must
    // fail with an error — not panic on `m * n` overflow or wrap and pass
    // validation against an empty section.
    let mut b = ArtifactBuilder::new();
    let dense = b.add_section(sec::DENSE, ElemKind::F32, 0, vec![]);
    let layer = LayerManifest {
        name: "linear".into(),
        m: 1 << 32,
        n: 1 << 32,
        batch_hint: 1,
        spec: BackendSpec::Fp32Blocked,
        cfg: BiqConfig::default(),
        parallel: false,
        kernel: biqgemm_core::KernelLevel::Scalar,
        bias: None,
        payload: PayloadRefs::Dense { dense },
    };
    let manifest = ModelManifest {
        kind: biq_artifact::ModelKind::Linear,
        dims: vec![],
        params: vec![],
        layers: vec![layer],
    }
    .encode();
    let artifact = Artifact::from_bytes(b.finish(manifest.as_ref())).unwrap();
    assert!(CompiledModel::from_artifact(&artifact).is_err(), "2^32-dim layer must be rejected");

    // Same for model-level dims whose *product* would overflow (the
    // seq2seq embedding table is vocab · d_model).
    let b = ArtifactBuilder::new();
    let manifest = ModelManifest {
        kind: biq_artifact::ModelKind::Seq2Seq,
        dims: vec![1 << 30, 1 << 30, 1, 1, 1, 0, 0, 1],
        params: vec![],
        layers: vec![],
    }
    .encode();
    let artifact = Artifact::from_bytes(b.finish(manifest.as_ref())).unwrap();
    assert!(CompiledModel::from_artifact(&artifact).is_err(), "2^30 dims must be rejected");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// compile → save → load → run is bit-identical for every backend
    /// family across random shapes, including n not divisible by µ and
    /// single-column batches.
    #[test]
    fn linear_round_trip_is_bit_identical(
        m in 1usize..40,
        n in 1usize..60,
        b in 1usize..5,
        spec_i in 0usize..5,
        bias in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let spec = SPECS[spec_i];
        let model = CompiledModel::Linear(linear_on(spec, m, n, bias, seed));
        let (_artifact, loaded) = round_trip(&model);
        prop_assert_eq!(
            model.run_seeded(seed ^ 1, b),
            loaded.run_seeded(seed ^ 1, b),
            "spec {:?} m={} n={} b={}", spec, m, n, b
        );
    }

    /// Truncating or bit-flipping a BIQM file must yield an error — never a
    /// panic, never a silently wrong model.
    #[test]
    fn corrupted_model_artifacts_error_cleanly(
        cut_frac in 0.0f64..1.0,
        flip_frac in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        let spec = BackendSpec::Biq { bits: 2, method: QuantMethod::Greedy };
        let model = CompiledModel::Linear(linear_on(spec, 9, 21, true, seed));
        let bytes = model.snapshot().to_vec();

        let cut = ((bytes.len() as f64 * cut_frac) as usize).min(bytes.len() - 1);
        let truncated = Bytes::from(bytes[..cut].to_vec());
        prop_assert!(Artifact::from_bytes(truncated).is_err(), "cut at {} must error", cut);

        let mut flipped = bytes.clone();
        let at = ((bytes.len() as f64 * flip_frac) as usize).min(bytes.len() - 1);
        flipped[at] ^= 1 << (seed % 8);
        let res = Artifact::from_bytes(Bytes::from(flipped))
            .and_then(|a| CompiledModel::from_artifact(&a).map(|_| ()));
        prop_assert!(res.is_err(), "flip at byte {} must be caught", at);
    }
}
