//! The artifact portability rule, end to end: a BIQM layer manifest
//! records the kernel level it was **compiled** with; loading re-resolves
//! it for the running host (`KernelRequest::AtMost`). An artifact claiming
//! a level the host lacks — e.g. compiled on an AVX-512 box, loaded on a
//! plain AVX2/scalar machine, or carrying a NEON level onto x86 — must
//! load cleanly, run at the host's richest level of no higher rank, and
//! produce **bit-identical** outputs (the kernel layer's bit-exactness
//! contract is what makes the downgrade invisible).

use biq_artifact::model::{compile_layer, snapshot_layer};
use biq_artifact::{Artifact, ArtifactBuilder, ModelManifest};
use biq_matrix::MatrixRng;
use biq_runtime::{
    compile, BackendSpec, Executor, KernelLevel, PlanBuilder, QuantMethod, Threading, WeightSource,
};

/// Builds a one-layer BIQM artifact whose manifest claims `recorded` as
/// the compiled kernel level, plus the original op for comparison.
fn artifact_claiming(recorded: KernelLevel) -> (Artifact, biq_runtime::CompiledOp) {
    let mut g = MatrixRng::seed_from(9100);
    let w = g.gaussian(24, 37, 0.0, 1.0); // ragged n (µ=8 → 5 chunks, tail 5)
    let plan = PlanBuilder::new(24, 37)
        .batch_hint(5)
        .backend(BackendSpec::Biq { bits: 2, method: QuantMethod::Greedy })
        .threading(Threading::Serial)
        .build();
    let op = compile(&plan, WeightSource::Dense(&w));
    let mut builder = ArtifactBuilder::new();
    let mut lm = snapshot_layer(&mut builder, 0, "fc", &op, None);
    // Overwrite the recorded level, simulating a compile host with a
    // different (possibly richer or foreign) ISA.
    lm.kernel = recorded;
    let manifest = ModelManifest {
        kind: biq_artifact::ModelKind::Linear,
        dims: vec![24, 37],
        params: vec![],
        layers: vec![lm],
    };
    let bytes = builder.finish(&manifest.encode());
    (Artifact::from_bytes(bytes).expect("self-built artifact must validate"), op)
}

#[test]
fn every_recorded_level_loads_and_runs_bit_identically() {
    let mut g = MatrixRng::seed_from(9101);
    let x = g.gaussian_col(37, 5, 0.0, 1.0);
    let mut exec = Executor::new();
    let mut reference: Option<Vec<f32>> = None;
    // All four levels — including ones this host cannot run (claiming a
    // "higher" level than the host is exactly the cross-machine scenario).
    for recorded in KernelLevel::ALL {
        let (artifact, original) = artifact_claiming(recorded);
        let manifest = ModelManifest::decode(artifact.manifest_bytes()).unwrap();
        assert_eq!(manifest.layers[0].kernel, recorded, "manifest round-trips the level");
        let loaded = compile_layer(&artifact, &manifest.layers[0]).expect("load must succeed");
        let resolved = loaded.plan().kernel.level();
        assert!(resolved.is_supported(), "re-resolved level must be executable here");
        assert!(
            resolved.rank() <= recorded.rank() || recorded.is_supported(),
            "downgrade never climbs above the recorded rank \
             (recorded {recorded}, resolved {resolved})"
        );
        let y = exec.run(&loaded, &x);
        let y_orig = exec.run(&original, &x);
        assert_eq!(
            y.as_slice(),
            y_orig.as_slice(),
            "loaded op (recorded {recorded}, resolved {resolved}) must match the original"
        );
        match &reference {
            Some(r) => assert_eq!(
                r.as_slice(),
                y.as_slice(),
                "every recorded level runs bit-identically (recorded {recorded})"
            ),
            None => reference = Some(y.as_slice().to_vec()),
        }
    }
}

#[test]
fn supported_recorded_level_is_kept_exactly() {
    // A level the host supports is *not* upgraded on load: an artifact
    // deliberately compiled scalar (ablation) stays scalar.
    let (artifact, _) = artifact_claiming(KernelLevel::Scalar);
    let manifest = ModelManifest::decode(artifact.manifest_bytes()).unwrap();
    let loaded = compile_layer(&artifact, &manifest.layers[0]).unwrap();
    if std::env::var(biq_runtime::KERNEL_ENV).is_err() {
        assert_eq!(loaded.plan().kernel.level(), KernelLevel::Scalar);
    }
}
