//! The model manifest: the layer graph and plan parameters stored inside a
//! `BIQM` container.
//!
//! The manifest is what turns a bag of sections back into a runnable model:
//! it records the model family and its shape parameters, the name, plan
//! (backend spec, `BiqConfig`, threading, batch hint) and section
//! references of every linear layer, plus model-level fp32 parameter
//! sections (layer-norm γ/β, embedding tables). Payload bytes never live
//! here — only `SectionId` references into the TOC.
//!
//! Decoding is hardened: every read checks the remaining length, every
//! count is sanity-capped, and unknown tags are errors — hostile manifests
//! fail with [`ArtifactError::Manifest`], never a panic.

use crate::container::{ArtifactError, SectionId};
use biq_runtime::{BackendSpec, QuantMethod};
use biqgemm_core::{BiqConfig, KernelLevel, KernelRequest, LutBuildMethod, LutLayout, Schedule};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Section `kind` tags referenced by manifests (free-form u32 namespace of
/// the container TOC).
pub mod sec {
    /// BiQGEMM key matrix (`u16`).
    pub const KEYS: u32 = 1;
    /// BiQGEMM stacked per-key-row scales (`f32`).
    pub const SCALES: u32 = 2;
    /// Dense fp32 weight matrix, row-major (`f32`).
    pub const DENSE: u32 = 3;
    /// XNOR plane per-row scales (`f32`).
    pub const XNOR_SCALES: u32 = 4;
    /// XNOR plane packed sign words (`u64`).
    pub const XNOR_WORDS: u32 = 5;
    /// Int8 weight values, row-major (`i8`).
    pub const INT8_DATA: u32 = 6;
    /// Int8 per-row scales (`f32`).
    pub const INT8_SCALES: u32 = 7;
    /// Layer bias (`f32`).
    pub const BIAS: u32 = 8;
    /// Model-level fp32 parameter (layer-norm γ/β, embedding table).
    pub const PARAM: u32 = 9;
}

/// Human-readable name of a section kind tag (for `biq inspect`).
pub fn sec_kind_name(kind: u32) -> &'static str {
    match kind {
        sec::KEYS => "keys",
        sec::SCALES => "scales",
        sec::DENSE => "dense",
        sec::XNOR_SCALES => "xnor-scales",
        sec::XNOR_WORDS => "xnor-words",
        sec::INT8_DATA => "int8-data",
        sec::INT8_SCALES => "int8-scales",
        sec::BIAS => "bias",
        sec::PARAM => "param",
        _ => "unknown",
    }
}

/// Which model family the artifact holds (decides how `layers`/`params`
/// reassemble).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelKind {
    /// A single linear layer.
    Linear,
    /// A Transformer encoder stack (`dims = [d_model, d_ff, heads, depth]`).
    Transformer,
    /// A unidirectional LSTM (`dims = [input_size, hidden]`).
    Lstm,
    /// An encoder–decoder seq2seq Transformer
    /// (`dims = [vocab, d_model, d_ff, heads, enc_layers, dec_layers, bos, eos]`).
    Seq2Seq,
}

impl ModelKind {
    fn to_u8(self) -> u8 {
        match self {
            ModelKind::Linear => 0,
            ModelKind::Transformer => 1,
            ModelKind::Lstm => 2,
            ModelKind::Seq2Seq => 3,
        }
    }

    fn from_u8(v: u8) -> Result<Self, ArtifactError> {
        Ok(match v {
            0 => ModelKind::Linear,
            1 => ModelKind::Transformer,
            2 => ModelKind::Lstm,
            3 => ModelKind::Seq2Seq,
            other => return Err(bad(format!("unknown model kind {other}"))),
        })
    }

    /// Stable lowercase name (CLI/reporting).
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Linear => "linear",
            ModelKind::Transformer => "transformer",
            ModelKind::Lstm => "lstm",
            ModelKind::Seq2Seq => "seq2seq",
        }
    }
}

/// Section references of one layer's packed payload, by kernel family.
#[derive(Clone, Debug)]
pub enum PayloadRefs {
    /// Dense fp32 weights.
    Dense {
        /// Row-major `m × n` f32 section.
        dense: SectionId,
    },
    /// BiQGEMM keys + stacked scales.
    Biq {
        /// `(bits·m) × ⌈n/µ⌉` u16 key section.
        keys: SectionId,
        /// `bits·m` f32 scale section.
        scales: SectionId,
    },
    /// XNOR planes, one `(scales, words)` pair per weight bit.
    Xnor {
        /// Per-plane `(f32 scales, u64 words)` sections.
        planes: Vec<(SectionId, SectionId)>,
    },
    /// Int8 values + per-row scales.
    Int8 {
        /// `m × n` i8 section.
        data: SectionId,
        /// `m` f32 section.
        scales: SectionId,
    },
}

/// Everything needed to rebuild one linear layer: plan parameters plus
/// payload section references.
#[derive(Clone, Debug)]
pub struct LayerManifest {
    /// Registration/reporting name (e.g. `enc0.attn.wq`).
    pub name: String,
    /// Output size `m`.
    pub m: usize,
    /// Input size `n`.
    pub n: usize,
    /// The plan's batch hint.
    pub batch_hint: usize,
    /// Kernel family + quantization recipe.
    pub spec: BackendSpec,
    /// Full engine configuration (µ, tiles, layout, schedule, kernel
    /// request).
    pub cfg: BiqConfig,
    /// The resolved threading decision (stored resolved so a loaded model
    /// plans identically on any machine).
    pub parallel: bool,
    /// The kernel level the layer was **compiled** with (the plan's
    /// resolved level). On load it is re-resolved via
    /// [`biqgemm_core::KernelRequest::AtMost`]: the same level where the
    /// host supports it, else the richest host level of no higher rank —
    /// outputs stay bit-identical either way (the kernel layer's
    /// bit-exactness contract).
    pub kernel: KernelLevel,
    /// Optional bias section (`m` f32).
    pub bias: Option<SectionId>,
    /// Packed payload references.
    pub payload: PayloadRefs,
}

/// The artifact's model graph.
#[derive(Clone, Debug)]
pub struct ModelManifest {
    /// Model family.
    pub kind: ModelKind,
    /// Kind-specific shape parameters (see [`ModelKind`] docs).
    pub dims: Vec<u64>,
    /// Named model-level fp32 parameter sections, in reassembly order.
    pub params: Vec<(String, SectionId)>,
    /// Linear layers, in reassembly order.
    pub layers: Vec<LayerManifest>,
}

/// Upper bound on any single layer/model dimension (2^24 = 16M — an order
/// of magnitude above the largest shape the paper names), so products of
/// two dims and a bit count can never overflow `usize` on 64-bit hosts.
pub const MAX_DIM: usize = 1 << 24;

/// Upper bound on a stored batch hint.
pub const MAX_BATCH_HINT: usize = 1 << 20;

fn bad(msg: impl Into<String>) -> ArtifactError {
    ArtifactError::Manifest(msg.into())
}

// ---------------------------------------------------------------- encoding

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_spec(buf: &mut BytesMut, spec: &BackendSpec) {
    match spec {
        BackendSpec::Fp32Naive => {
            buf.put_u8(0);
            buf.put_u8(0);
            buf.put_u8(0);
            buf.put_u32_le(0);
        }
        BackendSpec::Fp32Blocked => {
            buf.put_u8(1);
            buf.put_u8(0);
            buf.put_u8(0);
            buf.put_u32_le(0);
        }
        BackendSpec::Int8 => {
            buf.put_u8(2);
            buf.put_u8(0);
            buf.put_u8(0);
            buf.put_u32_le(0);
        }
        BackendSpec::Xnor { bits } => {
            buf.put_u8(3);
            buf.put_u8(*bits as u8);
            buf.put_u8(0);
            buf.put_u32_le(0);
        }
        BackendSpec::Biq { bits, method } => {
            buf.put_u8(4);
            buf.put_u8(*bits as u8);
            match method {
                QuantMethod::Greedy => {
                    buf.put_u8(0);
                    buf.put_u32_le(0);
                }
                QuantMethod::Alternating { iters } => {
                    buf.put_u8(1);
                    buf.put_u32_le(*iters as u32);
                }
            }
        }
    }
}

fn put_cfg(buf: &mut BytesMut, cfg: &BiqConfig) {
    buf.put_u8(cfg.mu as u8);
    buf.put_u32_le(cfg.tile_rows as u32);
    buf.put_u32_le(cfg.tile_chunks as u32);
    buf.put_u32_le(cfg.tile_batch as u32);
    buf.put_u8(match cfg.build {
        LutBuildMethod::DynamicProgramming => 0,
        LutBuildMethod::Gemm => 1,
    });
    buf.put_u8(match cfg.layout {
        LutLayout::KeyMajor => 0,
        LutLayout::BatchMajor => 1,
    });
    buf.put_u8(match cfg.schedule {
        Schedule::RowParallel => 0,
        Schedule::SharedLut => 1,
    });
    let (req_tag, req_level) = match cfg.kernel {
        KernelRequest::Auto => (0u8, 0u8),
        KernelRequest::Exact(l) => (1, level_to_u8(l)),
        KernelRequest::AtMost(l) => (2, level_to_u8(l)),
    };
    buf.put_u8(req_tag);
    buf.put_u8(req_level);
}

fn level_to_u8(l: KernelLevel) -> u8 {
    match l {
        KernelLevel::Scalar => 0,
        KernelLevel::Avx2 => 1,
        KernelLevel::Avx512 => 2,
        KernelLevel::Neon => 3,
    }
}

fn level_from_u8(v: u8) -> Result<KernelLevel, ArtifactError> {
    Ok(match v {
        0 => KernelLevel::Scalar,
        1 => KernelLevel::Avx2,
        2 => KernelLevel::Avx512,
        3 => KernelLevel::Neon,
        other => return Err(bad(format!("unknown kernel level {other}"))),
    })
}

fn put_payload(buf: &mut BytesMut, payload: &PayloadRefs) {
    match payload {
        PayloadRefs::Dense { dense } => {
            buf.put_u8(0);
            buf.put_u32_le(dense.0);
        }
        PayloadRefs::Biq { keys, scales } => {
            buf.put_u8(1);
            buf.put_u32_le(keys.0);
            buf.put_u32_le(scales.0);
        }
        PayloadRefs::Xnor { planes } => {
            buf.put_u8(2);
            buf.put_u32_le(planes.len() as u32);
            for (scales, words) in planes {
                buf.put_u32_le(scales.0);
                buf.put_u32_le(words.0);
            }
        }
        PayloadRefs::Int8 { data, scales } => {
            buf.put_u8(3);
            buf.put_u32_le(data.0);
            buf.put_u32_le(scales.0);
        }
    }
}

impl ModelManifest {
    /// Serializes the manifest (the byte payload the container stores).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u8(self.kind.to_u8());
        buf.put_u32_le(self.dims.len() as u32);
        for &d in &self.dims {
            buf.put_u64_le(d);
        }
        buf.put_u32_le(self.params.len() as u32);
        for (name, id) in &self.params {
            put_string(&mut buf, name);
            buf.put_u32_le(id.0);
        }
        buf.put_u32_le(self.layers.len() as u32);
        for layer in &self.layers {
            put_string(&mut buf, &layer.name);
            buf.put_u64_le(layer.m as u64);
            buf.put_u64_le(layer.n as u64);
            buf.put_u64_le(layer.batch_hint as u64);
            put_spec(&mut buf, &layer.spec);
            put_cfg(&mut buf, &layer.cfg);
            buf.put_u8(u8::from(layer.parallel));
            buf.put_u8(level_to_u8(layer.kernel));
            match layer.bias {
                Some(id) => {
                    buf.put_u8(1);
                    buf.put_u32_le(id.0);
                }
                None => buf.put_u8(0),
            }
            put_payload(&mut buf, &layer.payload);
        }
        buf.freeze()
    }

    /// Parses a manifest payload. Hostile input yields
    /// [`ArtifactError::Manifest`] — never a panic or an oversized
    /// allocation.
    pub fn decode(data: Bytes) -> Result<Self, ArtifactError> {
        let mut r = Reader(data);
        let kind = ModelKind::from_u8(r.u8()?)?;
        let dim_count = r.count("dims", 8)?;
        let mut dims = Vec::with_capacity(dim_count);
        for _ in 0..dim_count {
            dims.push(r.u64()?);
        }
        let param_count = r.count("params", 5)?;
        let mut params = Vec::with_capacity(param_count);
        for _ in 0..param_count {
            let name = r.string()?;
            params.push((name, SectionId(r.u32()?)));
        }
        let layer_count = r.count("layers", 30)?;
        let mut layers = Vec::with_capacity(layer_count);
        for _ in 0..layer_count {
            layers.push(r.layer()?);
        }
        if r.0.remaining() != 0 {
            return Err(bad(format!("{} trailing manifest bytes", r.0.remaining())));
        }
        Ok(Self { kind, dims, params, layers })
    }
}

// ---------------------------------------------------------------- decoding

/// Bounds-checked little-endian reader (the `Buf` accessors panic on
/// underflow; hostile input must instead surface errors).
struct Reader(Bytes);

impl Reader {
    fn need(&self, n: usize) -> Result<(), ArtifactError> {
        if self.0.remaining() < n {
            Err(bad("manifest truncated"))
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8, ArtifactError> {
        self.need(1)?;
        Ok(self.0.get_u8())
    }

    fn u32(&mut self) -> Result<u32, ArtifactError> {
        self.need(4)?;
        Ok(self.0.get_u32_le())
    }

    fn u64(&mut self) -> Result<u64, ArtifactError> {
        self.need(8)?;
        Ok(self.0.get_u64_le())
    }

    /// Reads an entry count and bounds it by the bytes actually present
    /// (each entry occupies at least `min_entry_bytes`), so a corrupted
    /// count cannot drive allocation.
    fn count(&mut self, what: &str, min_entry_bytes: usize) -> Result<usize, ArtifactError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_entry_bytes) > self.0.remaining() {
            return Err(bad(format!("{what} count {n} exceeds manifest size")));
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, ArtifactError> {
        let len = self.u32()? as usize;
        if len > 4096 {
            return Err(bad(format!("string length {len} too large")));
        }
        self.need(len)?;
        let mut raw = vec![0u8; len];
        self.0.copy_to_slice(&mut raw);
        String::from_utf8(raw).map_err(|_| bad("string is not UTF-8"))
    }

    fn spec(&mut self) -> Result<BackendSpec, ArtifactError> {
        let tag = self.u8()?;
        let bits = self.u8()? as usize;
        let method_tag = self.u8()?;
        let iters = self.u32()? as usize;
        let method = match method_tag {
            0 => QuantMethod::Greedy,
            1 => QuantMethod::Alternating { iters },
            other => return Err(bad(format!("unknown quant method {other}"))),
        };
        Ok(match tag {
            0 => BackendSpec::Fp32Naive,
            1 => BackendSpec::Fp32Blocked,
            2 => BackendSpec::Int8,
            3 => {
                if bits == 0 || bits > 32 {
                    return Err(bad(format!("xnor bits {bits} out of range")));
                }
                BackendSpec::Xnor { bits }
            }
            4 => {
                if bits == 0 || bits > 32 {
                    return Err(bad(format!("biq bits {bits} out of range")));
                }
                BackendSpec::Biq { bits, method }
            }
            other => return Err(bad(format!("unknown backend spec {other}"))),
        })
    }

    fn cfg(&mut self) -> Result<BiqConfig, ArtifactError> {
        let mu = self.u8()? as usize;
        let tile_rows = self.u32()? as usize;
        let tile_chunks = self.u32()? as usize;
        let tile_batch = self.u32()? as usize;
        let build = match self.u8()? {
            0 => LutBuildMethod::DynamicProgramming,
            1 => LutBuildMethod::Gemm,
            other => return Err(bad(format!("unknown LUT build method {other}"))),
        };
        let layout = match self.u8()? {
            0 => LutLayout::KeyMajor,
            1 => LutLayout::BatchMajor,
            other => return Err(bad(format!("unknown LUT layout {other}"))),
        };
        let schedule = match self.u8()? {
            0 => Schedule::RowParallel,
            1 => Schedule::SharedLut,
            other => return Err(bad(format!("unknown schedule {other}"))),
        };
        let req_tag = self.u8()?;
        let req_level = level_from_u8(self.u8()?)?;
        let kernel = match req_tag {
            0 => KernelRequest::Auto,
            1 => KernelRequest::Exact(req_level),
            2 => KernelRequest::AtMost(req_level),
            other => return Err(bad(format!("unknown kernel request tag {other}"))),
        };
        if !(1..=16).contains(&mu) {
            return Err(bad(format!("µ = {mu} out of 1..=16")));
        }
        if tile_rows == 0 || tile_chunks == 0 || tile_batch == 0 {
            return Err(bad("zero tile dimension"));
        }
        Ok(BiqConfig { mu, tile_rows, tile_chunks, tile_batch, build, layout, schedule, kernel })
    }

    fn payload(&mut self) -> Result<PayloadRefs, ArtifactError> {
        Ok(match self.u8()? {
            0 => PayloadRefs::Dense { dense: SectionId(self.u32()?) },
            1 => PayloadRefs::Biq { keys: SectionId(self.u32()?), scales: SectionId(self.u32()?) },
            2 => {
                let count = self.count("xnor planes", 8)?;
                if count == 0 || count > 32 {
                    return Err(bad(format!("xnor plane count {count} out of range")));
                }
                let mut planes = Vec::with_capacity(count);
                for _ in 0..count {
                    planes.push((SectionId(self.u32()?), SectionId(self.u32()?)));
                }
                PayloadRefs::Xnor { planes }
            }
            3 => PayloadRefs::Int8 { data: SectionId(self.u32()?), scales: SectionId(self.u32()?) },
            other => return Err(bad(format!("unknown payload tag {other}"))),
        })
    }

    fn layer(&mut self) -> Result<LayerManifest, ArtifactError> {
        let name = self.string()?;
        let m = self.u64()? as usize;
        let n = self.u64()? as usize;
        let batch_hint = self.u64()? as usize;
        if m == 0 || n == 0 {
            return Err(bad(format!("degenerate layer shape {m}x{n}")));
        }
        // Cap dimensions so every downstream size product (`m·n`,
        // `bits·m·⌈n/µ⌉`, …) stays far from usize overflow — hostile
        // manifests must fail here, not panic (or wrap) at a multiply.
        if m > MAX_DIM || n > MAX_DIM {
            return Err(bad(format!("layer shape {m}x{n} exceeds the 2^24 dimension cap")));
        }
        if batch_hint > MAX_BATCH_HINT {
            return Err(bad(format!("batch hint {batch_hint} out of range")));
        }
        let spec = self.spec()?;
        let cfg = self.cfg()?;
        let parallel = match self.u8()? {
            0 => false,
            1 => true,
            other => return Err(bad(format!("bad parallel flag {other}"))),
        };
        let kernel = level_from_u8(self.u8()?)?;
        let bias = match self.u8()? {
            0 => None,
            1 => Some(SectionId(self.u32()?)),
            other => return Err(bad(format!("bad bias flag {other}"))),
        };
        let payload = self.payload()?;
        Ok(LayerManifest { name, m, n, batch_hint, spec, cfg, parallel, kernel, bias, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ModelManifest {
        ModelManifest {
            kind: ModelKind::Transformer,
            dims: vec![64, 128, 4, 2],
            params: vec![
                ("enc0.ln1.gamma".into(), SectionId(5)),
                ("enc0.ln1.beta".into(), SectionId(6)),
            ],
            layers: vec![
                LayerManifest {
                    name: "enc0.attn.wq".into(),
                    m: 64,
                    n: 64,
                    batch_hint: 4,
                    spec: BackendSpec::Biq { bits: 2, method: QuantMethod::Greedy },
                    cfg: BiqConfig::default(),
                    parallel: false,
                    kernel: KernelLevel::Avx512,
                    bias: None,
                    payload: PayloadRefs::Biq { keys: SectionId(0), scales: SectionId(1) },
                },
                LayerManifest {
                    name: "enc0.ff1".into(),
                    m: 128,
                    n: 64,
                    batch_hint: 4,
                    spec: BackendSpec::Fp32Blocked,
                    cfg: BiqConfig::default(),
                    parallel: true,
                    kernel: KernelLevel::Scalar,
                    bias: Some(SectionId(3)),
                    payload: PayloadRefs::Dense { dense: SectionId(2) },
                },
            ],
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let m = sample();
        let rt = ModelManifest::decode(m.encode()).unwrap();
        assert_eq!(rt.kind, m.kind);
        assert_eq!(rt.dims, m.dims);
        assert_eq!(rt.params, m.params);
        assert_eq!(rt.layers.len(), 2);
        let l0 = &rt.layers[0];
        assert_eq!(l0.name, "enc0.attn.wq");
        assert_eq!((l0.m, l0.n, l0.batch_hint), (64, 64, 4));
        assert!(matches!(l0.spec, BackendSpec::Biq { bits: 2, .. }));
        assert!(!l0.parallel);
        assert_eq!(l0.kernel, KernelLevel::Avx512, "recorded compile level survives");
        assert!(matches!(
            l0.payload,
            PayloadRefs::Biq { keys: SectionId(0), scales: SectionId(1) }
        ));
        let l1 = &rt.layers[1];
        assert!(l1.parallel);
        assert_eq!(l1.bias, Some(SectionId(3)));
    }

    #[test]
    fn truncations_error_never_panic() {
        let enc = sample().encode();
        for cut in 0..enc.len() {
            assert!(ModelManifest::decode(enc.slice(0..cut)).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn oversized_counts_rejected_without_allocation() {
        let mut raw = sample().encode().to_vec();
        // dims count lives at offset 1 (after the kind byte).
        raw[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(ModelManifest::decode(Bytes::from(raw)).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut raw = sample().encode().to_vec();
        raw.push(0);
        assert!(ModelManifest::decode(Bytes::from(raw)).is_err());
    }
}
